#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace bdlfi::tensor {

Tensor::Tensor(Shape shape)
    : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(shape), data_(std::move(data)) {
  BDLFI_CHECK_MSG(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
                  "data size does not match shape");
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t{shape};
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t{shape};
  for (float& v : t.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t{shape};
  for (float& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::arange(Shape shape) {
  Tensor t{shape};
  for (std::size_t i = 0; i < t.data_.size(); ++i) {
    t.data_[i] = static_cast<float>(i);
  }
  return t;
}

Tensor Tensor::view(Shape shape, float* storage) {
  BDLFI_CHECK(storage != nullptr || shape.numel() == 0);
  Tensor t;
  t.shape_ = shape;
  t.view_ = storage;
  t.view_n_ = shape.numel();
  return t;
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  if (other.view_ != nullptr) {
    data_.assign(other.view_, other.view_ + other.view_n_);
  } else {
    data_ = other.data_;
  }
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  if (other.view_ != nullptr) {
    data_.assign(other.view_, other.view_ + other.view_n_);
  } else {
    data_ = other.data_;
  }
  view_ = nullptr;
  view_n_ = 0;
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(other.shape_),
      data_(std::move(other.data_)),
      view_(other.view_),
      view_n_(other.view_n_) {
  other.shape_ = Shape{};
  other.view_ = nullptr;
  other.view_n_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  shape_ = other.shape_;
  data_ = std::move(other.data_);
  view_ = other.view_;
  view_n_ = other.view_n_;
  other.shape_ = Shape{};
  other.view_ = nullptr;
  other.view_n_ = 0;
  return *this;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  BDLFI_CHECK_MSG(new_shape.numel() == numel(), "reshape changes numel");
  Tensor t = *this;
  t.shape_ = new_shape;
  return t;
}

void Tensor::fill(float value) {
  std::fill_n(data(), static_cast<std::size_t>(numel()), value);
}

void Tensor::scale(float factor) {
  float* p = data();
  for (std::int64_t i = 0; i < numel(); ++i) p[i] *= factor;
}

std::int64_t Tensor::offset(std::initializer_list<std::int64_t> idx) const {
  BDLFI_DCHECK(static_cast<int>(idx.size()) == shape_.rank());
  std::int64_t off = 0;
  int d = 0;
  for (std::int64_t i : idx) {
    BDLFI_DCHECK(i >= 0 && i < shape_[d]);
    off = off * shape_[d] + i;
    ++d;
  }
  return off;
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  BDLFI_CHECK(a.shape() == b.shape());
  float worst = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

std::string Tensor::to_string(std::int64_t max_elems) const {
  std::ostringstream out;
  out << "Tensor" << shape_.to_string() << " {";
  const std::int64_t n = std::min<std::int64_t>(numel(), max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) out << ", ";
    out << data()[i];
  }
  if (numel() > n) out << ", ...";
  out << '}';
  return out.str();
}

}  // namespace bdlfi::tensor
