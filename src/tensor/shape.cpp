#include "tensor/shape.h"

#include <sstream>

namespace bdlfi::tensor {

Shape::Shape(std::initializer_list<std::int64_t> dims) {
  BDLFI_CHECK_MSG(dims.size() <= kMaxRank, "shape rank exceeds kMaxRank");
  for (std::int64_t d : dims) {
    BDLFI_CHECK_MSG(d >= 0, "negative dimension");
    dims_[static_cast<std::size_t>(rank_++)] = d;
  }
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (int i = 0; i < rank_; ++i) n *= dims_[static_cast<std::size_t>(i)];
  return n;
}

bool Shape::operator==(const Shape& other) const {
  if (rank_ != other.rank_) return false;
  for (int i = 0; i < rank_; ++i) {
    if (dims_[static_cast<std::size_t>(i)] !=
        other.dims_[static_cast<std::size_t>(i)]) {
      return false;
    }
  }
  return true;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << '[';
  for (int i = 0; i < rank_; ++i) {
    if (i) out << ", ";
    out << dims_[static_cast<std::size_t>(i)];
  }
  out << ']';
  return out.str();
}

}  // namespace bdlfi::tensor
