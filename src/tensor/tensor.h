// Dense fp32 tensor with value semantics.
//
// All NN parameters, activations and fault masks operate on contiguous
// float32 buffers — matching the paper's fault model, which flips bits of the
// 32-bit IEEE-754 encodings. Copies are deep (a corrupted copy of the golden
// weights must never alias the original); moves are O(1).
//
// A tensor can also be a *borrowed view* over storage it does not own
// (Tensor::view) — the planned-execution arena hands out activation slots
// this way so eval forwards allocate nothing. Views keep value semantics at
// the copy boundary: copying a view materializes an owning deep copy, so a
// view never escapes the lifetime of its arena by accident.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace bdlfi::tensor {

class Tensor {
 public:
  Tensor() = default;
  /// Allocates zero-initialized storage of the given shape.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor{shape}; }
  static Tensor full(Shape shape, float value);
  /// I.i.d. N(mean, stddev) entries.
  static Tensor randn(Shape shape, util::Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor uniform(Shape shape, util::Rng& rng, float lo, float hi);
  /// Row-major iota, handy in tests.
  static Tensor arange(Shape shape);

  /// Borrowed view over external storage holding shape.numel() floats. The
  /// view does not own or free the memory; the caller guarantees it outlives
  /// every use. Copy-constructing (or copy-assigning from) a view yields an
  /// ordinary owning tensor with the same contents.
  static Tensor view(Shape shape, float* storage);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const {
    return view_ != nullptr ? view_n_
                            : static_cast<std::int64_t>(data_.size());
  }
  bool empty() const { return numel() == 0; }
  /// True when this tensor borrows storage it does not own.
  bool is_view() const { return view_ != nullptr; }

  float* data() { return view_ != nullptr ? view_ : data_.data(); }
  const float* data() const {
    return view_ != nullptr ? view_ : data_.data();
  }
  std::span<float> flat() {
    return {data(), static_cast<std::size_t>(numel())};
  }
  std::span<const float> flat() const {
    return {data(), static_cast<std::size_t>(numel())};
  }

  float operator[](std::int64_t i) const {
    BDLFI_DCHECK(i >= 0 && i < numel());
    return data()[i];
  }
  float& operator[](std::int64_t i) {
    BDLFI_DCHECK(i >= 0 && i < numel());
    return data()[i];
  }

  /// Multi-index accessors (rank-checked in debug builds).
  float at(std::int64_t i0) const { return (*this)[offset({i0})]; }
  float at(std::int64_t i0, std::int64_t i1) const {
    return (*this)[offset({i0, i1})];
  }
  float at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
           std::int64_t i3) const {
    return (*this)[offset({i0, i1, i2, i3})];
  }
  float& at(std::int64_t i0) { return (*this)[offset({i0})]; }
  float& at(std::int64_t i0, std::int64_t i1) {
    return (*this)[offset({i0, i1})];
  }
  float& at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
            std::int64_t i3) {
    return (*this)[offset({i0, i1, i2, i3})];
  }

  /// Returns a same-data tensor with a different shape (numel must match).
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);
  /// Scales every element in place.
  void scale(float factor);

  /// Row-major linear offset of a full multi-index.
  std::int64_t offset(std::initializer_list<std::int64_t> idx) const;

  /// Max |a-b| over elements; shapes must match.
  static float max_abs_diff(const Tensor& a, const Tensor& b);

  std::string to_string(std::int64_t max_elems = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
  // Borrowed-view state: when view_ is non-null, data_ is empty and the
  // element count lives in view_n_ (Shape{} reports numel() == 1, so the
  // count cannot be derived from shape_ alone).
  float* view_ = nullptr;
  std::int64_t view_n_ = 0;
};

}  // namespace bdlfi::tensor
