// Dense fp32 tensor with value semantics.
//
// All NN parameters, activations and fault masks operate on contiguous
// float32 buffers — matching the paper's fault model, which flips bits of the
// 32-bit IEEE-754 encodings. Copies are deep (a corrupted copy of the golden
// weights must never alias the original); moves are O(1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace bdlfi::tensor {

class Tensor {
 public:
  Tensor() = default;
  /// Allocates zero-initialized storage of the given shape.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor{shape}; }
  static Tensor full(Shape shape, float value);
  /// I.i.d. N(mean, stddev) entries.
  static Tensor randn(Shape shape, util::Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor uniform(Shape shape, util::Rng& rng, float lo, float hi);
  /// Row-major iota, handy in tests.
  static Tensor arange(Shape shape);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float operator[](std::int64_t i) const {
    BDLFI_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  float& operator[](std::int64_t i) {
    BDLFI_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  /// Multi-index accessors (rank-checked in debug builds).
  float at(std::int64_t i0) const { return (*this)[offset({i0})]; }
  float at(std::int64_t i0, std::int64_t i1) const {
    return (*this)[offset({i0, i1})];
  }
  float at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
           std::int64_t i3) const {
    return (*this)[offset({i0, i1, i2, i3})];
  }
  float& at(std::int64_t i0) { return (*this)[offset({i0})]; }
  float& at(std::int64_t i0, std::int64_t i1) {
    return (*this)[offset({i0, i1})];
  }
  float& at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
            std::int64_t i3) {
    return (*this)[offset({i0, i1, i2, i3})];
  }

  /// Returns a same-data tensor with a different shape (numel must match).
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);
  /// Scales every element in place.
  void scale(float factor);

  /// Row-major linear offset of a full multi-index.
  std::int64_t offset(std::initializer_list<std::int64_t> idx) const;

  /// Max |a-b| over elements; shapes must match.
  static float max_abs_diff(const Tensor& a, const Tensor& b);

  std::string to_string(std::int64_t max_elems = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace bdlfi::tensor
