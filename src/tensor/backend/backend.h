// Runtime-dispatched kernel backends. Every hot numeric primitive the
// campaign loop touches — the GEMM microkernel, elementwise ops, softmax,
// the fused argmax+finiteness logits scan, and the fault-mask XOR — goes
// through one table of function pointers so a SIMD implementation can be
// swapped in per process without recompiling callers.
//
// Policy (DESIGN.md §8): the `scalar` table is the reference semantics and
// the default — checkpoints, tests, and resume all assume it. Vectorized
// backends are opt-in via BDLFI_BACKEND=avx2 (or `auto` for CPUID-best) and
// may differ from scalar by rounding (FMA contraction) but never by shape,
// NaN policy, or argmax tie-breaking.
//
// Threading stays ABOVE this table: tensor::gemm keeps its
// util::parallel_for row tiling and hands each backend a serial row range.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bdlfi::tensor::backend {

struct KernelBackend {
  const char* name;

  /// Serial GEMM microkernel over row range [r0, r1) of C:
  /// C = alpha * op(A) * op(B) + beta * C, row-major.
  void (*gemm_rows)(bool trans_a, bool trans_b, std::int64_t r0,
                    std::int64_t r1, std::int64_t n, std::int64_t k,
                    float alpha, const float* a, std::int64_t lda,
                    const float* b, std::int64_t ldb, float beta, float* c,
                    std::int64_t ldc);

  /// Multi-variant GEMM against one shared panel: C_v = A_v * B for each of
  /// `variants` fault variants, with A_v [m x k] row-major (lda), B [k x n]
  /// row-major (ldb) shared by every variant, and C_v [m x n] (ldc). Fixed
  /// alpha = 1, beta = 0. Per-element results are REQUIRED to be bit-identical
  /// to gemm_rows(false, false, 0, m, n, k, 1, A_v, lda, B, ldb, 0, C_v, ldc)
  /// on the same table — batched mask evaluation relies on that for exact
  /// parity with the sequential path. The win is amortization: B is packed
  /// once and stays cache-hot across all K variant passes.
  void (*gemm_variants)(std::int64_t m, std::int64_t n, std::int64_t k,
                        const float* const* a, std::size_t variants,
                        std::int64_t lda, const float* b, std::int64_t ldb,
                        float* const* c, std::int64_t ldc);

  /// out[i] += x[i].
  void (*add)(float* out, const float* x, std::int64_t n);
  /// out[i] += alpha * x[i].
  void (*axpy)(float* out, float alpha, const float* x, std::int64_t n);
  /// x[i] = max(0, x[i]).
  void (*relu)(float* x, std::int64_t n);
  /// grad[i] = 0 where z[i] <= 0.
  void (*relu_backward)(float* grad, const float* z, std::int64_t n);
  /// out[r*cols + c] += bias[c] for every row r.
  void (*bias_add_rows)(float* out, const float* bias, std::int64_t rows,
                        std::int64_t cols);
  /// x[i] += value (conv per-plane bias).
  void (*add_const)(float* x, float value, std::int64_t n);

  /// One numerically hardened softmax row (the scalar reference defines the
  /// +inf mass-split / all-NaN-uniform policy; see tensor::softmax_rows).
  void (*softmax_row)(const float* in, float* out, std::int64_t cols);

  /// Fused argmax + finiteness scan of one logits row. Argmax semantics are
  /// sequential and NaN-insensitive: a candidate displaces the incumbent only
  /// when strictly greater, so NaNs never win and ties keep the first index.
  void (*argmax_finite_row)(const float* row, std::int64_t cols,
                            std::int64_t* best, bool* all_finite);

  /// Fault-mask XOR apply/revert: *ptrs[i] ^= xor_masks[i] on the binary32
  /// encoding. Self-inverse; pointers may repeat.
  void (*mask_xor)(float* const* ptrs, const std::uint32_t* xor_masks,
                   std::size_t count);

  /// ABFT checksum reductions (tensor/abft.cpp). All accumulate in double;
  /// backends may differ from scalar by summation order (and thus rounding)
  /// — the checksum tolerance absorbs that, like GEMM's FMA contraction.
  ///
  /// Input checksums of op(B) [k x n]: w[l] += sum_j op(B)[l,j] and
  /// wabs[l] += sum_j |op(B)[l,j]| (callers pass zeroed w/wabs).
  void (*abft_col_sums)(bool trans_b, std::int64_t n, std::int64_t k,
                        const float* b, std::int64_t ldb, double* w,
                        double* wabs);
  /// Checksum dot of one op(A) row (elements x[0], x[stride], ...):
  /// *dot = sum_l x[l*stride] * w[l], *mag = sum_l |x[l*stride]| * wabs[l].
  void (*abft_row_dot)(const float* x, std::int64_t stride, const double* w,
                       const double* wabs, std::int64_t k, double* dot,
                       double* mag);
  /// Returns sum_j row[j] in double. Because double accumulation of binary32
  /// values cannot overflow, the result is non-finite iff the row holds a
  /// non-finite element — callers use std::isfinite(sum) as the row scan.
  double (*abft_row_sum)(const float* row, std::int64_t n);
};

/// The scalar reference table (always available, always the default).
const KernelBackend& scalar_backend();

#if defined(__x86_64__) || defined(_M_X64)
/// AVX2+FMA table; compiled on x86-64 only. Callers must gate on
/// avx2_supported() before activating it.
const KernelBackend& avx2_backend();
#endif

/// True when this build has an AVX2 table AND the CPU reports AVX2+FMA.
bool avx2_supported();

/// The currently active table. Resolved on first use from BDLFI_BACKEND
/// ("scalar", "avx2", or "auto" = best supported); unset/empty means scalar.
const KernelBackend& active();
/// Name of the active table ("scalar" or "avx2").
const char* active_name();

/// Backend names this process can activate (scalar first).
std::vector<std::string> available();

/// Activates a backend by name ("scalar", "avx2", "auto"). Returns false and
/// fills *error (if non-null) when the name is unknown or unsupported on
/// this CPU — the active backend is left unchanged in that case.
bool set_active(const std::string& name, std::string* error = nullptr);

/// Result of resolve(): which backend ended up active and why.
struct Resolution {
  std::string name;          // active backend name after resolution
  const char* source = "";   // "flag", "env", or "default"
  bool ok = true;            // false: the explicit request was unusable;
                             // `error` says why and the active backend is
                             // unchanged (callers typically exit 2)
  std::string error;
};

/// One-stop backend selection policy shared by the CLI, the benches, and
/// fleet workers — the single place the "flag beats env beats default"
/// precedence lives:
///   1. a non-empty `flag` (from --backend=...) is applied strictly: an
///      unusable name returns ok = false without touching the active table,
///      because silently falling back would invalidate a backend comparison;
///   2. else a non-empty `env` (normally the BDLFI_BACKEND value) is applied
///      with fallback-to-scalar on error plus a stderr note, matching the
///      lazy env resolution active() performs on first use;
///   3. else the current resolution stands (scalar unless something already
///      switched tables).
Resolution resolve(const std::string& flag, const char* env);

/// Overload reading BDLFI_BACKEND from the process environment.
Resolution resolve(const std::string& flag);

}  // namespace bdlfi::tensor::backend
