// The scalar reference backend: the kernels extracted verbatim from the
// original tensor/ops.cpp. This table defines the semantics every other
// backend is tested against, and is the only one checkpoints may assume
// (bit-exact resume depends on it — see DESIGN.md §8).
#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "tensor/backend/backend.h"

namespace bdlfi::tensor::backend {

namespace {

// Accessor folding the transpose flag into the index math.
inline float elem(const float* p, std::int64_t ld, bool trans, std::int64_t r,
                  std::int64_t c) {
  return trans ? p[c * ld + r] : p[r * ld + c];
}

void scalar_gemm_rows(bool trans_a, bool trans_b, std::int64_t r0,
                      std::int64_t r1, std::int64_t n, std::int64_t k,
                      float alpha, const float* a, std::int64_t lda,
                      const float* b, std::int64_t ldb, float beta, float* c,
                      std::int64_t ldc) {
  constexpr std::int64_t kBlock = 64;
  for (std::int64_t i = r0; i < r1; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  // ikj ordering with k-blocking: the B row (or column gather) stays hot and
  // the innermost loop is a contiguous saxpy over C.
  for (std::int64_t kb = 0; kb < k; kb += kBlock) {
    const std::int64_t ke = std::min(k, kb + kBlock);
    for (std::int64_t i = r0; i < r1; ++i) {
      float* crow = c + i * ldc;
      for (std::int64_t kk = kb; kk < ke; ++kk) {
        const float aik = alpha * elem(a, lda, trans_a, i, kk);
        // Skipping exact zeros is a real win on sparse gradients, and keeps
        // 0 × inf from manufacturing NaNs out of corrupted weights.
        if (aik == 0.0f) continue;
        if (!trans_b) {
          const float* brow = b + kk * ldb;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        } else {
          for (std::int64_t j = 0; j < n; ++j) {
            crow[j] += aik * b[j * ldb + kk];
          }
        }
      }
    }
  }
}

void scalar_gemm_variants(std::int64_t m, std::int64_t n, std::int64_t k,
                          const float* const* a, std::size_t variants,
                          std::int64_t lda, const float* b, std::int64_t ldb,
                          float* const* c, std::int64_t ldc) {
  // Reference semantics by construction: one scalar_gemm_rows pass per
  // variant (alpha = 1 keeps aik == a element bitwise, so the exact-zero
  // skip fires for the same elements). The shared B panel stays hot across
  // the loop — that locality, not a different loop nest, is the win here.
  for (std::size_t v = 0; v < variants; ++v) {
    scalar_gemm_rows(false, false, 0, m, n, k, 1.0f, a[v], lda, b, ldb, 0.0f,
                     c[v], ldc);
  }
}

void scalar_add(float* out, const float* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] += x[i];
}

void scalar_axpy(float* out, float alpha, const float* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] += alpha * x[i];
}

void scalar_relu(float* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) x[i] = std::max(0.0f, x[i]);
}

void scalar_relu_backward(float* grad, const float* z, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    if (z[i] <= 0.0f) grad[i] = 0.0f;
  }
}

void scalar_bias_add_rows(float* out, const float* bias, std::int64_t rows,
                          std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = out + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

void scalar_add_const(float* x, float value, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) x[i] += value;
}

void scalar_softmax_row(const float* in, float* o, std::int64_t cols) {
  float mx = -std::numeric_limits<float>::infinity();
  for (std::int64_t c = 0; c < cols; ++c) mx = std::max(mx, in[c]);
  // Fault-corrupted rows can contain +inf or be all-NaN; map them to the
  // limiting distributions instead of poisoning downstream statistics.
  if (!std::isfinite(mx)) {
    if (mx == std::numeric_limits<float>::infinity()) {
      // Mass splits evenly over the +inf entries.
      std::int64_t ties = 0;
      for (std::int64_t c = 0; c < cols; ++c) {
        if (in[c] == mx) ++ties;
      }
      for (std::int64_t c = 0; c < cols; ++c) {
        o[c] = in[c] == mx ? 1.0f / static_cast<float>(ties) : 0.0f;
      }
      return;
    }
    // All-NaN (or all -inf) row: uniform.
    const float u = 1.0f / static_cast<float>(cols);
    for (std::int64_t c = 0; c < cols; ++c) o[c] = u;
    return;
  }
  float sum = 0.0f;
  for (std::int64_t c = 0; c < cols; ++c) {
    const float e = std::exp(in[c] - mx);
    o[c] = std::isfinite(e) ? e : 0.0f;
    sum += o[c];
  }
  if (sum <= 0.0f || !std::isfinite(sum)) {
    const float u = 1.0f / static_cast<float>(cols);
    for (std::int64_t c = 0; c < cols; ++c) o[c] = u;
  } else {
    for (std::int64_t c = 0; c < cols; ++c) o[c] /= sum;
  }
}

void scalar_argmax_finite_row(const float* row, std::int64_t cols,
                              std::int64_t* best, bool* all_finite) {
  std::int64_t b = 0;
  bool finite = std::isfinite(row[0]);
  for (std::int64_t c = 1; c < cols; ++c) {
    // NaN-insensitive: comparisons with NaN are false, so a NaN never
    // displaces the incumbent — faulty logits still yield a deterministic
    // (if arbitrary) class, mirroring what argmax on real hardware returns.
    if (row[c] > row[b]) b = c;
    finite = finite && std::isfinite(row[c]);
  }
  *best = b;
  *all_finite = finite;
}

void scalar_mask_xor(float* const* ptrs, const std::uint32_t* xor_masks,
                     std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    *ptrs[i] = std::bit_cast<float>(std::bit_cast<std::uint32_t>(*ptrs[i]) ^
                                    xor_masks[i]);
  }
}

// The ABFT reductions run on every checked GEMM, so even the reference
// kernels break the serial dependency chain with paired accumulators —
// two in-flight double adds roughly double throughput on the long k/n
// loops without changing the O(...) cost.
void scalar_abft_col_sums(bool trans_b, std::int64_t n, std::int64_t k,
                          const float* b, std::int64_t ldb, double* w,
                          double* wabs) {
  if (trans_b) {
    // op(B)[l,j] = b[j*ldb + l]: each B row is a contiguous k-vector that
    // accumulates elementwise into w/wabs.
    for (std::int64_t j = 0; j < n; ++j) {
      const float* row = b + j * ldb;
      for (std::int64_t l = 0; l < k; ++l) {
        const auto v = static_cast<double>(row[l]);
        w[l] += v;
        wabs[l] += std::fabs(v);
      }
    }
  } else {
    for (std::int64_t l = 0; l < k; ++l) {
      const float* row = b + l * ldb;
      double s0 = 0.0, s1 = 0.0, a0 = 0.0, a1 = 0.0;
      std::int64_t j = 0;
      for (; j + 2 <= n; j += 2) {
        const auto v0 = static_cast<double>(row[j]);
        const auto v1 = static_cast<double>(row[j + 1]);
        s0 += v0;
        s1 += v1;
        a0 += std::fabs(v0);
        a1 += std::fabs(v1);
      }
      if (j < n) {
        const auto v = static_cast<double>(row[j]);
        s0 += v;
        a0 += std::fabs(v);
      }
      w[l] = s0 + s1;
      wabs[l] = a0 + a1;
    }
  }
}

void scalar_abft_row_dot(const float* x, std::int64_t stride, const double* w,
                         const double* wabs, std::int64_t k, double* dot,
                         double* mag) {
  double d0 = 0.0, d1 = 0.0, m0 = 0.0, m1 = 0.0;
  std::int64_t l = 0;
  for (; l + 2 <= k; l += 2) {
    const auto v0 = static_cast<double>(x[l * stride]);
    const auto v1 = static_cast<double>(x[(l + 1) * stride]);
    d0 += v0 * w[l];
    d1 += v1 * w[l + 1];
    m0 += std::fabs(v0) * wabs[l];
    m1 += std::fabs(v1) * wabs[l + 1];
  }
  if (l < k) {
    const auto v = static_cast<double>(x[l * stride]);
    d0 += v * w[l];
    m0 += std::fabs(v) * wabs[l];
  }
  *dot = d0 + d1;
  *mag = m0 + m1;
}

double scalar_abft_row_sum(const float* row, std::int64_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    s0 += static_cast<double>(row[j]);
    s1 += static_cast<double>(row[j + 1]);
    s2 += static_cast<double>(row[j + 2]);
    s3 += static_cast<double>(row[j + 3]);
  }
  for (; j < n; ++j) s0 += static_cast<double>(row[j]);
  return (s0 + s1) + (s2 + s3);
}

}  // namespace

const KernelBackend& scalar_backend() {
  static const KernelBackend table{
      "scalar",          scalar_gemm_rows,
      scalar_gemm_variants,
      scalar_add,        scalar_axpy,
      scalar_relu,       scalar_relu_backward,
      scalar_bias_add_rows, scalar_add_const,
      scalar_softmax_row, scalar_argmax_finite_row,
      scalar_mask_xor,
      scalar_abft_col_sums, scalar_abft_row_dot, scalar_abft_row_sum,
  };
  return table;
}

}  // namespace bdlfi::tensor::backend
