// AVX2+FMA backend. This translation unit is the only one compiled with
// -mavx2 -mfma (see src/tensor/CMakeLists.txt), so no AVX instruction can
// leak into code that runs before the CPUID check in backend.cpp.
//
// Semantics contract vs the scalar reference (DESIGN.md §8):
//  - relu / relu_backward / add / bias_add / add_const / softmax_row /
//    argmax_finite_row are element-for-element identical to scalar,
//    including the NaN policies (NaN relu input clamps to 0, NaN
//    pre-activation passes gradient through, NaN logits never win argmax).
//  - gemm_rows and axpy use FMA, so results differ from scalar by rounding
//    (one rounding per multiply-add instead of two); the parity suite bounds
//    the divergence against a double-precision reference. gemm also does not
//    replicate the scalar kernel's exact-zero skip, so corrupted weights
//    holding ±inf can surface 0 × inf NaNs that scalar suppresses — one more
//    reason the scalar table remains the reference for campaigns.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/backend/backend.h"

namespace bdlfi::tensor::backend {

namespace {

inline float elem(const float* p, std::int64_t ld, bool trans, std::int64_t r,
                  std::int64_t c) {
  return trans ? p[c * ld + r] : p[r * ld + c];
}

inline float hsum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
  return _mm_cvtss_f32(lo);
}

inline float hmax(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_max_ps(lo, hi);
  lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
  return _mm_cvtss_f32(lo);
}

// One IB-row stripe of the !trans_b kernel: IB (1..4) rows of C, all columns,
// the full k loop. The 16-wide column tiles keep IB*2 accumulators plus two B
// vectors and one broadcast in registers (11 ymm at IB=4).
template <int IB>
void gemm_block(bool trans_a, std::int64_t i0, std::int64_t n, std::int64_t k,
                float alpha, const float* a, std::int64_t lda, const float* b,
                std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 acc[IB][2];
    for (int ii = 0; ii < IB; ++ii) {
      const float* crow = c + (i0 + ii) * ldc + j;
      if (beta == 0.0f) {
        acc[ii][0] = _mm256_setzero_ps();
        acc[ii][1] = _mm256_setzero_ps();
      } else {
        const __m256 vb = _mm256_set1_ps(beta);
        acc[ii][0] = _mm256_mul_ps(vb, _mm256_loadu_ps(crow));
        acc[ii][1] = _mm256_mul_ps(vb, _mm256_loadu_ps(crow + 8));
      }
    }
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * ldb + j;
      const __m256 b0 = _mm256_loadu_ps(brow);
      const __m256 b1 = _mm256_loadu_ps(brow + 8);
      for (int ii = 0; ii < IB; ++ii) {
        const __m256 va =
            _mm256_set1_ps(alpha * elem(a, lda, trans_a, i0 + ii, kk));
        acc[ii][0] = _mm256_fmadd_ps(va, b0, acc[ii][0]);
        acc[ii][1] = _mm256_fmadd_ps(va, b1, acc[ii][1]);
      }
    }
    for (int ii = 0; ii < IB; ++ii) {
      float* crow = c + (i0 + ii) * ldc + j;
      _mm256_storeu_ps(crow, acc[ii][0]);
      _mm256_storeu_ps(crow + 8, acc[ii][1]);
    }
  }
  // Column remainder (< 16): one scalar FMA chain per element, same k order.
  for (; j < n; ++j) {
    for (int ii = 0; ii < IB; ++ii) {
      float* cp = c + (i0 + ii) * ldc + j;
      float acc = beta == 0.0f ? 0.0f : beta * *cp;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc = std::fma(alpha * elem(a, lda, trans_a, i0 + ii, kk),
                       b[kk * ldb + j], acc);
      }
      *cp = acc;
    }
  }
}

void avx2_gemm_rows(bool trans_a, bool trans_b, std::int64_t r0,
                    std::int64_t r1, std::int64_t n, std::int64_t k,
                    float alpha, const float* a, std::int64_t lda,
                    const float* b, std::int64_t ldb, float beta, float* c,
                    std::int64_t ldc) {
  if (trans_a && trans_b) {
    // Rare combination (no caller uses it); not worth a vector path.
    scalar_backend().gemm_rows(trans_a, trans_b, r0, r1, n, k, alpha, a, lda,
                               b, ldb, beta, c, ldc);
    return;
  }
  if (trans_b) {
    // B^T makes row j of B contiguous over kk, and !trans_a makes row i of A
    // contiguous too: each C element is one long dot product.
    for (std::int64_t i = r0; i < r1; ++i) {
      const float* arow = a + i * lda;
      float* crow = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * ldb;
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        std::int64_t kk = 0;
        for (; kk + 16 <= k; kk += 16) {
          acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                                 _mm256_loadu_ps(brow + kk), acc0);
          acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk + 8),
                                 _mm256_loadu_ps(brow + kk + 8), acc1);
        }
        for (; kk + 8 <= k; kk += 8) {
          acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                                 _mm256_loadu_ps(brow + kk), acc0);
        }
        float dot = hsum(_mm256_add_ps(acc0, acc1));
        for (; kk < k; ++kk) dot += arow[kk] * brow[kk];
        const float base = beta == 0.0f ? 0.0f : beta * crow[j];
        crow[j] = base + alpha * dot;
      }
    }
    return;
  }

  // !trans_b: register-blocked 4x16 microkernel. C accumulators live in ymm
  // registers across the entire k loop (loaded and stored exactly once), and
  // every B vector feeds four output rows, so B traffic drops 4x versus a
  // row-at-a-time saxpy — the difference between compute-bound and
  // L2-bandwidth-bound once B outgrows L1 (n >= 256).
  std::int64_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    gemm_block<4>(trans_a, i, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  }
  switch (r1 - i) {
    case 3:
      gemm_block<3>(trans_a, i, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
      break;
    case 2:
      gemm_block<2>(trans_a, i, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
      break;
    case 1:
      gemm_block<1>(trans_a, i, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
      break;
    default:
      break;
  }
}

// One IB-row stripe of the multi-variant kernel: alpha = 1 and beta = 0 are
// baked in, so the A broadcast is a plain memory vbroadcastss with no scalar
// multiply on the critical path. Per element this is the same single
// accumulator running the same FMA chain in the same k order as gemm_block
// (1.0f * a propagates every value, ±0, ±inf and NaN payloads included), so
// results are bit-identical to avx2_gemm_rows at alpha = 1, beta = 0 — the
// contract KernelBackend::gemm_variants documents. IB = 6 keeps 12 ymm
// accumulators live per 16-column tile; every B vector now feeds six output
// rows, cutting panel traffic 1.5x over the 4-row general kernel.
template <int IB>
void variants_block(std::int64_t i0, std::int64_t n, std::int64_t k,
                    const float* a, std::int64_t lda, const float* b,
                    std::int64_t ldb, float* c, std::int64_t ldc) {
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 acc[IB][2];
    for (int ii = 0; ii < IB; ++ii) {
      acc[ii][0] = _mm256_setzero_ps();
      acc[ii][1] = _mm256_setzero_ps();
    }
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* brow = b + kk * ldb + j;
      const __m256 b0 = _mm256_loadu_ps(brow);
      const __m256 b1 = _mm256_loadu_ps(brow + 8);
      for (int ii = 0; ii < IB; ++ii) {
        const __m256 va = _mm256_set1_ps(a[(i0 + ii) * lda + kk]);
        acc[ii][0] = _mm256_fmadd_ps(va, b0, acc[ii][0]);
        acc[ii][1] = _mm256_fmadd_ps(va, b1, acc[ii][1]);
      }
    }
    for (int ii = 0; ii < IB; ++ii) {
      float* crow = c + (i0 + ii) * ldc + j;
      _mm256_storeu_ps(crow, acc[ii][0]);
      _mm256_storeu_ps(crow + 8, acc[ii][1]);
    }
  }
  // Column remainder (< 16): scalar FMA chain per element, same k order as
  // gemm_block's remainder with the alpha multiply elided.
  for (; j < n; ++j) {
    for (int ii = 0; ii < IB; ++ii) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc = std::fma(a[(i0 + ii) * lda + kk], b[kk * ldb + j], acc);
      }
      c[(i0 + ii) * ldc + j] = acc;
    }
  }
}

void avx2_gemm_variants(std::int64_t m, std::int64_t n, std::int64_t k,
                        const float* const* a, std::size_t variants,
                        std::int64_t lda, const float* b, std::int64_t ldb,
                        float* const* c, std::int64_t ldc) {
  // Variants loop outermost: the shared panel B is streamed once per variant
  // from cache instead of being rebuilt, which is the whole amortization.
  for (std::size_t v = 0; v < variants; ++v) {
    const float* av = a[v];
    float* cv = c[v];
    std::int64_t i = 0;
    for (; i + 6 <= m; i += 6) {
      variants_block<6>(i, n, k, av, lda, b, ldb, cv, ldc);
    }
    switch (m - i) {
      case 5: variants_block<5>(i, n, k, av, lda, b, ldb, cv, ldc); break;
      case 4: variants_block<4>(i, n, k, av, lda, b, ldb, cv, ldc); break;
      case 3: variants_block<3>(i, n, k, av, lda, b, ldb, cv, ldc); break;
      case 2: variants_block<2>(i, n, k, av, lda, b, ldb, cv, ldc); break;
      case 1: variants_block<1>(i, n, k, av, lda, b, ldb, cv, ldc); break;
      default: break;
    }
  }
}

void avx2_add(float* out, const float* x, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_add_ps(_mm256_loadu_ps(out + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) out[i] += x[i];
}

void avx2_axpy(float* out, float alpha, const float* x, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                                              _mm256_loadu_ps(out + i)));
  }
  for (; i < n; ++i) out[i] += alpha * x[i];
}

void avx2_relu(float* x, std::int64_t n) {
  const __m256 vz = _mm256_setzero_ps();
  std::int64_t i = 0;
  // Operand order matters: maxps returns the second source when the compare
  // is unordered, so max(x, 0) clamps NaN inputs to 0 exactly like
  // std::max(0.0f, x).
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_max_ps(_mm256_loadu_ps(x + i), vz));
  }
  for (; i < n; ++i) x[i] = std::max(0.0f, x[i]);
}

void avx2_relu_backward(float* grad, const float* z, std::int64_t n) {
  const __m256 vz = _mm256_setzero_ps();
  std::int64_t i = 0;
  // Scalar zeroes the gradient when z <= 0 and keeps it when z is NaN, so
  // the keep-mask is !(z <= 0): NLE with unordered = true.
  for (; i + 8 <= n; i += 8) {
    const __m256 keep =
        _mm256_cmp_ps(_mm256_loadu_ps(z + i), vz, _CMP_NLE_UQ);
    _mm256_storeu_ps(grad + i, _mm256_and_ps(_mm256_loadu_ps(grad + i), keep));
  }
  for (; i < n; ++i) {
    if (z[i] <= 0.0f) grad[i] = 0.0f;
  }
}

void avx2_bias_add_rows(float* out, const float* bias, std::int64_t rows,
                        std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = out + r * cols;
    std::int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      _mm256_storeu_ps(row + c, _mm256_add_ps(_mm256_loadu_ps(row + c),
                                              _mm256_loadu_ps(bias + c)));
    }
    for (; c < cols; ++c) row[c] += bias[c];
  }
}

void avx2_add_const(float* x, float value, std::int64_t n) {
  const __m256 vv = _mm256_set1_ps(value);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_add_ps(_mm256_loadu_ps(x + i), vv));
  }
  for (; i < n; ++i) x[i] += value;
}

void avx2_softmax_row(const float* in, float* o, std::int64_t cols) {
  float mx = -std::numeric_limits<float>::infinity();
  std::int64_t c = 0;
  if (cols >= 8) {
    // max(x, acc) keeps the accumulator when x is NaN — the same
    // NaN-skipping scan as std::max(mx, in[c]).
    __m256 vmax = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
    for (; c + 8 <= cols; c += 8) {
      vmax = _mm256_max_ps(_mm256_loadu_ps(in + c), vmax);
    }
    mx = hmax(vmax);
  }
  for (; c < cols; ++c) mx = std::max(mx, in[c]);
  if (!std::isfinite(mx)) {
    // Corrupted row (+inf ties / all-NaN): take the reference path wholesale
    // so the limiting-distribution policy has exactly one definition.
    scalar_backend().softmax_row(in, o, cols);
    return;
  }
  float sum = 0.0f;
  for (std::int64_t j = 0; j < cols; ++j) {
    const float e = std::exp(in[j] - mx);
    o[j] = std::isfinite(e) ? e : 0.0f;
    sum += o[j];
  }
  if (sum <= 0.0f || !std::isfinite(sum)) {
    const float u = 1.0f / static_cast<float>(cols);
    for (std::int64_t j = 0; j < cols; ++j) o[j] = u;
    return;
  }
  const __m256 vsum = _mm256_set1_ps(sum);
  std::int64_t j = 0;
  for (; j + 8 <= cols; j += 8) {
    _mm256_storeu_ps(o + j, _mm256_div_ps(_mm256_loadu_ps(o + j), vsum));
  }
  for (; j < cols; ++j) o[j] /= sum;
}

void avx2_argmax_finite_row(const float* row, std::int64_t cols,
                            std::int64_t* best, bool* all_finite) {
  if (cols < 16) {
    // Logits rows are usually 2-10 classes wide; the vector setup would cost
    // more than the scan.
    scalar_backend().argmax_finite_row(row, cols, best, all_finite);
    return;
  }
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 vinf =
      _mm256_set1_ps(std::numeric_limits<float>::infinity());
  __m256 finite_lanes = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
  std::int64_t c = 0;
  for (; c + 8 <= cols; c += 8) {
    const __m256 mag = _mm256_and_ps(_mm256_loadu_ps(row + c), abs_mask);
    // |x| < inf is false for NaN and ±inf, exactly std::isfinite.
    finite_lanes = _mm256_and_ps(finite_lanes,
                                 _mm256_cmp_ps(mag, vinf, _CMP_LT_OQ));
  }
  bool finite = _mm256_movemask_ps(finite_lanes) == 0xff;
  for (; finite && c < cols; ++c) finite = std::isfinite(row[c]);
  if (!finite) {
    // The sequential NaN-insensitive argmax (a NaN incumbent at index 0 is
    // never displaced) is order-dependent; only the scalar loop gets it right.
    scalar_backend().argmax_finite_row(row, cols, best, all_finite);
    *all_finite = false;
    return;
  }
  // All finite: the max is well-defined, and the first index holding it is
  // exactly what the strict-greater sequential scan returns on ties.
  __m256 vmax = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  std::int64_t j = 0;
  for (; j + 8 <= cols; j += 8) {
    vmax = _mm256_max_ps(_mm256_loadu_ps(row + j), vmax);
  }
  float m = hmax(vmax);
  for (; j < cols; ++j) m = std::max(m, row[j]);
  const __m256 vm = _mm256_set1_ps(m);
  for (std::int64_t p = 0;; p += 8) {
    if (p + 8 <= cols) {
      const int hits = _mm256_movemask_ps(
          _mm256_cmp_ps(_mm256_loadu_ps(row + p), vm, _CMP_EQ_OQ));
      if (hits != 0) {
        *best = p + __builtin_ctz(static_cast<unsigned>(hits));
        break;
      }
    } else {
      for (std::int64_t q = p; q < cols; ++q) {
        if (row[q] == m) {
          *best = q;
          break;
        }
      }
      break;
    }
  }
  *all_finite = true;
}

inline double hsum_pd(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  lo = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));
  return _mm_cvtsd_f64(lo);
}

inline __m256d abs_pd(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

// 4 floats -> 4 doubles (the ABFT reductions accumulate in double).
inline __m256d load4_pd(const float* p) {
  return _mm256_cvtps_pd(_mm_loadu_ps(p));
}

void avx2_abft_col_sums(bool trans_b, std::int64_t n, std::int64_t k,
                        const float* b, std::int64_t ldb, double* w,
                        double* wabs) {
  if (trans_b) {
    // Each B row is a contiguous k-vector accumulating elementwise into
    // w/wabs — a 4-wide double add against the resident checksum arrays.
    for (std::int64_t j = 0; j < n; ++j) {
      const float* row = b + j * ldb;
      std::int64_t l = 0;
      for (; l + 4 <= k; l += 4) {
        const __m256d v = load4_pd(row + l);
        _mm256_storeu_pd(w + l, _mm256_add_pd(_mm256_loadu_pd(w + l), v));
        _mm256_storeu_pd(
            wabs + l, _mm256_add_pd(_mm256_loadu_pd(wabs + l), abs_pd(v)));
      }
      for (; l < k; ++l) {
        const auto v = static_cast<double>(row[l]);
        w[l] += v;
        wabs[l] += std::fabs(v);
      }
    }
  } else {
    for (std::int64_t l = 0; l < k; ++l) {
      const float* row = b + l * ldb;
      __m256d s = _mm256_setzero_pd(), sa = _mm256_setzero_pd();
      std::int64_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const __m256d v = load4_pd(row + j);
        s = _mm256_add_pd(s, v);
        sa = _mm256_add_pd(sa, abs_pd(v));
      }
      double st = hsum_pd(s), sat = hsum_pd(sa);
      for (; j < n; ++j) {
        const auto v = static_cast<double>(row[j]);
        st += v;
        sat += std::fabs(v);
      }
      w[l] = st;
      wabs[l] = sat;
    }
  }
}

void avx2_abft_row_dot(const float* x, std::int64_t stride, const double* w,
                       const double* wabs, std::int64_t k, double* dot,
                       double* mag) {
  if (stride != 1) {  // transposed-A rows gather; no lanes to win there
    scalar_backend().abft_row_dot(x, stride, w, wabs, k, dot, mag);
    return;
  }
  __m256d d = _mm256_setzero_pd(), m = _mm256_setzero_pd();
  std::int64_t l = 0;
  for (; l + 4 <= k; l += 4) {
    const __m256d v = load4_pd(x + l);
    d = _mm256_fmadd_pd(v, _mm256_loadu_pd(w + l), d);
    m = _mm256_fmadd_pd(abs_pd(v), _mm256_loadu_pd(wabs + l), m);
  }
  double dt = hsum_pd(d), mt = hsum_pd(m);
  for (; l < k; ++l) {
    const auto v = static_cast<double>(x[l]);
    dt += v * w[l];
    mt += std::fabs(v) * wabs[l];
  }
  *dot = dt;
  *mag = mt;
}

double avx2_abft_row_sum(const float* row, std::int64_t n) {
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    s0 = _mm256_add_pd(s0, load4_pd(row + j));
    s1 = _mm256_add_pd(s1, load4_pd(row + j + 4));
  }
  double s = hsum_pd(_mm256_add_pd(s0, s1));
  for (; j < n; ++j) s += static_cast<double>(row[j]);
  return s;
}

}  // namespace

const KernelBackend& avx2_backend() {
  static const KernelBackend table = [] {
    KernelBackend t = scalar_backend();  // mask_xor stays scalar: the
                                         // pointer-chasing XOR has no lanes
    t.name = "avx2";
    t.gemm_rows = avx2_gemm_rows;
    t.gemm_variants = avx2_gemm_variants;
    t.add = avx2_add;
    t.axpy = avx2_axpy;
    t.relu = avx2_relu;
    t.relu_backward = avx2_relu_backward;
    t.bias_add_rows = avx2_bias_add_rows;
    t.add_const = avx2_add_const;
    t.softmax_row = avx2_softmax_row;
    t.argmax_finite_row = avx2_argmax_finite_row;
    t.abft_col_sums = avx2_abft_col_sums;
    t.abft_row_dot = avx2_abft_row_dot;
    t.abft_row_sum = avx2_abft_row_sum;
    return t;
  }();
  return table;
}

}  // namespace bdlfi::tensor::backend

#endif  // x86-64
