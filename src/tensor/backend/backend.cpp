// Backend registry and dispatch: resolves BDLFI_BACKEND on first use,
// publishes the choice as obs gauges, and lets tools switch tables at
// startup (--backend=...). Switching mid-campaign is not supported — the
// checkpoint fingerprint pins the backend for the life of a campaign.
#include "tensor/backend/backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

namespace bdlfi::tensor::backend {

namespace {

std::atomic<const KernelBackend*> g_active{nullptr};

void publish(const KernelBackend& b) {
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("backend.avx2_supported").set(avx2_supported() ? 1.0 : 0.0);
  reg.gauge("backend.avx2_active")
      .set(std::string(b.name) == "avx2" ? 1.0 : 0.0);
}

/// Maps a backend name to its table; nullptr + *error on failure.
const KernelBackend* lookup(const std::string& name, std::string* error) {
  if (name == "scalar") return &scalar_backend();
  if (name == "auto") {
#if defined(__x86_64__) || defined(_M_X64)
    if (avx2_supported()) return &avx2_backend();
#endif
    return &scalar_backend();
  }
  if (name == "avx2") {
#if defined(__x86_64__) || defined(_M_X64)
    if (avx2_supported()) return &avx2_backend();
    if (error != nullptr) {
      *error = "backend 'avx2' requested but this CPU lacks AVX2+FMA";
    }
    return nullptr;
#else
    if (error != nullptr) {
      *error = "backend 'avx2' is not compiled into this (non-x86-64) build";
    }
    return nullptr;
#endif
  }
  if (error != nullptr) *error = "unknown backend '" + name + "'";
  return nullptr;
}

const KernelBackend* resolve_env() {
  const char* env = std::getenv("BDLFI_BACKEND");
  const std::string name = env != nullptr ? env : "";
  if (name.empty()) return &scalar_backend();
  std::string error;
  const KernelBackend* b = lookup(name, &error);
  if (b == nullptr) {
    std::fprintf(stderr, "[backend] BDLFI_BACKEND: %s; using scalar\n",
                 error.c_str());
    return &scalar_backend();
  }
  return b;
}

}  // namespace

bool avx2_supported() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelBackend& active() {
  const KernelBackend* b = g_active.load(std::memory_order_acquire);
  if (b == nullptr) {
    // Magic static: the env var is consulted exactly once even under races.
    static const KernelBackend* from_env = resolve_env();
    const KernelBackend* expected = nullptr;
    if (g_active.compare_exchange_strong(expected, from_env,
                                         std::memory_order_acq_rel)) {
      publish(*from_env);
    }
    b = g_active.load(std::memory_order_acquire);
  }
  return *b;
}

const char* active_name() { return active().name; }

std::vector<std::string> available() {
  std::vector<std::string> names{"scalar"};
  if (avx2_supported()) names.emplace_back("avx2");
  return names;
}

bool set_active(const std::string& name, std::string* error) {
  const KernelBackend* b = lookup(name, error);
  if (b == nullptr) return false;
  g_active.store(b, std::memory_order_release);
  publish(*b);
  return true;
}

Resolution resolve(const std::string& flag, const char* env) {
  Resolution r;
  if (!flag.empty()) {
    r.source = "flag";
    r.ok = set_active(flag, &r.error);
    r.name = active_name();
    return r;
  }
  const std::string from_env = env != nullptr ? env : "";
  if (!from_env.empty()) {
    r.source = "env";
    std::string error;
    if (!set_active(from_env, &error)) {
      // Env requests degrade gracefully (same policy as the lazy resolution
      // in active()): note it, run scalar.
      std::fprintf(stderr, "[backend] BDLFI_BACKEND: %s; using scalar\n",
                   error.c_str());
      set_active("scalar");
    }
    r.name = active_name();
    return r;
  }
  r.source = "default";
  r.name = active_name();
  return r;
}

Resolution resolve(const std::string& flag) {
  return resolve(flag, std::getenv("BDLFI_BACKEND"));
}

}  // namespace bdlfi::tensor::backend
