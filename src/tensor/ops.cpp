#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/backend/backend.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace bdlfi::tensor {

namespace {

// Per-thread grow-only scratch arena for the im2col workspaces. Conv
// forward/backward used to allocate (and zero) a fresh `cols` buffer per
// sample; a campaign evaluates the same geometry millions of times, so the
// buffers are hoisted here and sized high-water-mark once per thread. Slots
// keep the simultaneously-live buffers of one call apart; calls never nest
// within a thread (conv2d_forward / conv2d_backward / conv2d_forward_multi
// all use the arena only for the duration of their own loop bodies).
float* scratch_floats(std::size_t slot, std::size_t n) {
  thread_local std::vector<float> buffers[4];
  std::vector<float>& buf = buffers[slot];
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

// im2col into a panel with an explicit destination leading dimension: row r
// of the patch axis lands at cols[r * dst_ld + dst_col0 ...]. This is how
// several samples' columns fuse side by side into one wide [patch, T*OH*OW]
// panel for the multi-variant GEMM. im2col below is the dst_ld == OH*OW,
// dst_col0 == 0 special case (kept separate: it is the sequential hot path).
void im2col_ld(const float* input, std::int64_t channels, std::int64_t h,
               std::int64_t w, const Conv2dSpec& spec, float* cols,
               std::int64_t dst_ld, std::int64_t dst_col0) {
  const std::int64_t oh = spec.out_h(h), ow = spec.out_w(w);
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t kh = 0; kh < spec.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < spec.kernel_w; ++kw, ++row) {
        float* dst = cols + row * dst_ld + dst_col0;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * spec.stride - spec.pad_h + kh;
          if (iy < 0 || iy >= h) {
            std::fill(dst + oy * ow, dst + (oy + 1) * ow, 0.0f);
            continue;
          }
          const float* src_row = input + (c * h + iy) * w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * spec.stride - spec.pad_w + kw;
            dst[oy * ow + ox] = (ix >= 0 && ix < w) ? src_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

}  // namespace

// The per-element kernels live in the active backend::KernelBackend table
// (scalar reference or AVX2; see backend/backend.h). This file keeps the
// shape checking, threading, and the loop nests whose cost is index math
// rather than arithmetic (im2col, pooling).

void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc) {
  BDLFI_CHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;
  const backend::KernelBackend& be = backend::active();
  const std::int64_t flops = m * n * k;
  if (flops < (1 << 18) || m < 4) {
    be.gemm_rows(trans_a, trans_b, 0, m, n, k, alpha, a, lda, b, ldb, beta, c,
                 ldc);
    return;
  }
  util::parallel_for_chunked(
      0, static_cast<std::size_t>(m), util::ThreadPool::global().size(),
      [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
        be.gemm_rows(trans_a, trans_b, static_cast<std::int64_t>(lo),
                     static_cast<std::int64_t>(hi), n, k, alpha, a, lda, b,
                     ldb, beta, c, ldc);
      });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  BDLFI_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2);
  const std::int64_t m = a.shape()[0], k = a.shape()[1];
  BDLFI_CHECK_MSG(b.shape()[0] == k, "matmul inner dimensions differ");
  const std::int64_t n = b.shape()[1];
  Tensor c{Shape{m, n}};
  gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
       n);
  return c;
}

void add_inplace(Tensor& out, const Tensor& x) {
  BDLFI_CHECK(out.shape() == x.shape());
  backend::active().add(out.data(), x.data(), out.numel());
}

void axpy_inplace(Tensor& out, float alpha, const Tensor& x) {
  BDLFI_CHECK(out.shape() == x.shape());
  backend::active().axpy(out.data(), alpha, x.data(), out.numel());
}

void relu_inplace(Tensor& x) {
  backend::active().relu(x.data(), x.numel());
}

void relu_backward_inplace(Tensor& grad, const Tensor& pre_activation) {
  BDLFI_CHECK(grad.shape() == pre_activation.shape());
  backend::active().relu_backward(grad.data(), pre_activation.data(),
                                  grad.numel());
}

void bias_add_rows(Tensor& out, const Tensor& bias) {
  BDLFI_CHECK(out.shape().rank() == 2);
  BDLFI_CHECK_MSG(bias.numel() == out.shape()[1],
                  "bias length must match row width");
  backend::active().bias_add_rows(out.data(), bias.data(), out.shape()[0],
                                  out.shape()[1]);
}

Tensor softmax_rows(const Tensor& logits) {
  BDLFI_CHECK(logits.shape().rank() == 2);
  const std::int64_t rows = logits.shape()[0], cols = logits.shape()[1];
  Tensor out{logits.shape()};
  const backend::KernelBackend& be = backend::active();
  for (std::int64_t r = 0; r < rows; ++r) {
    be.softmax_row(logits.data() + r * cols, out.data() + r * cols, cols);
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  BDLFI_CHECK(logits.shape().rank() == 2);
  const std::int64_t rows = logits.shape()[0], cols = logits.shape()[1];
  Tensor out{logits.shape()};
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t c = 0; c < cols; ++c) mx = std::max(mx, in[c]);
    float sum = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) sum += std::exp(in[c] - mx);
    const float lse = mx + std::log(sum);
    for (std::int64_t c = 0; c < cols; ++c) o[c] = in[c] - lse;
  }
  return out;
}

std::vector<std::int64_t> argmax_rows(const Tensor& m) {
  BDLFI_CHECK(m.shape().rank() == 2);
  const std::int64_t rows = m.shape()[0], cols = m.shape()[1];
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  const backend::KernelBackend& be = backend::active();
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t best = 0;
    bool finite = false;
    be.argmax_finite_row(m.data() + r * cols, cols, &best, &finite);
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

void im2col(const float* input, std::int64_t channels, std::int64_t h,
            std::int64_t w, const Conv2dSpec& spec, float* cols) {
  const std::int64_t oh = spec.out_h(h), ow = spec.out_w(w);
  const std::int64_t cols_w = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t kh = 0; kh < spec.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < spec.kernel_w; ++kw, ++row) {
        float* dst = cols + row * cols_w;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * spec.stride - spec.pad_h + kh;
          if (iy < 0 || iy >= h) {
            std::fill(dst + oy * ow, dst + (oy + 1) * ow, 0.0f);
            continue;
          }
          const float* src_row = input + (c * h + iy) * w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * spec.stride - spec.pad_w + kw;
            dst[oy * ow + ox] =
                (ix >= 0 && ix < w) ? src_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, std::int64_t channels, std::int64_t h,
            std::int64_t w, const Conv2dSpec& spec, float* input_grad) {
  const std::int64_t oh = spec.out_h(h), ow = spec.out_w(w);
  const std::int64_t cols_w = oh * ow;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t kh = 0; kh < spec.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < spec.kernel_w; ++kw, ++row) {
        const float* src = cols + row * cols_w;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * spec.stride - spec.pad_h + kh;
          if (iy < 0 || iy >= h) continue;
          float* dst_row = input_grad + (c * h + iy) * w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * spec.stride - spec.pad_w + kw;
            if (ix >= 0 && ix < w) dst_row[ix] += src[oy * ow + ox];
          }
        }
      }
    }
  }
}

Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, const Conv2dSpec& spec) {
  // Default OpContext: ABFT off, no flips — gemm_checked degenerates to the
  // plain gemm call, bit-exactly.
  return conv2d_forward(input, weight, bias, spec, abft::OpContext{});
}

Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, const Conv2dSpec& spec,
                      const abft::OpContext& ctx) {
  const std::int64_t n = input.shape()[0], h = input.shape()[2],
                     w = input.shape()[3];
  const std::int64_t o = weight.shape()[0];
  Tensor output{Shape{n, o, spec.out_h(h), spec.out_w(w)}};
  conv2d_forward_into(input, weight, bias, spec, ctx, output);
  return output;
}

void conv2d_forward_into(const Tensor& input, const Tensor& weight,
                         const Tensor& bias, const Conv2dSpec& spec,
                         const abft::OpContext& ctx, Tensor& output) {
  BDLFI_CHECK(input.shape().rank() == 4 && weight.shape().rank() == 4);
  const std::int64_t n = input.shape()[0], c = input.shape()[1],
                     h = input.shape()[2], w = input.shape()[3];
  const std::int64_t o = weight.shape()[0];
  BDLFI_CHECK_MSG(weight.shape()[1] == c, "conv2d channel mismatch");
  BDLFI_CHECK(weight.shape()[2] == spec.kernel_h &&
              weight.shape()[3] == spec.kernel_w);
  const std::int64_t oh = spec.out_h(h), ow = spec.out_w(w);
  const std::int64_t patch = c * spec.kernel_h * spec.kernel_w;
  BDLFI_CHECK(output.shape() == Shape({n, o, oh, ow}));
  BDLFI_CHECK_MSG(output.data() != input.data(),
                  "conv2d_forward_into cannot run in place");

  util::parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t s) {
    float* cols = scratch_floats(0, static_cast<std::size_t>(patch * oh * ow));
    const float* in = input.data() + static_cast<std::int64_t>(s) * c * h * w;
    im2col(in, c, h, w, spec, cols);
    float* out =
        output.data() + static_cast<std::int64_t>(s) * o * oh * ow;
    // [O, patch] x [patch, OH*OW] -> [O, OH*OW]; sample s owns the flat
    // output window starting at s*o*oh*ow, which is how gemm_checked selects
    // this sample's compute-fault flips. Verification stays serial per call;
    // this loop is already sample-parallel.
    abft::gemm_checked(false, false, o, oh * ow, patch, 1.0f, weight.data(),
                       patch, cols, oh * ow, out, oh * ow, ctx,
                       static_cast<std::int64_t>(s) * o * oh * ow);
    if (!bias.empty()) {
      const backend::KernelBackend& be = backend::active();
      for (std::int64_t oc = 0; oc < o; ++oc) {
        be.add_const(out + oc * oh * ow, bias[oc], oh * ow);
      }
    }
  });
}

void conv2d_forward_multi(const float* input, bool shared_input,
                          std::size_t variants, std::int64_t n,
                          std::int64_t c, std::int64_t h, std::int64_t w,
                          const float* const* weights,
                          const float* const* biases, std::int64_t o,
                          const Conv2dSpec& spec, float* output) {
  BDLFI_CHECK(variants > 0 && n > 0);
  const std::int64_t oh = spec.out_h(h), ow = spec.out_w(w);
  const std::int64_t ohow = oh * ow;
  const std::int64_t patch = c * spec.kernel_h * spec.kernel_w;
  const std::int64_t chw = c * h * w;
  const auto v_count = static_cast<std::int64_t>(variants);

  // Samples per panel: target ~1 MiB panels (L2-resident across the variant
  // passes) and bound the per-tile output staging buffer.
  constexpr std::int64_t kPanelFloats = 256 * 1024;
  std::int64_t tile =
      std::clamp<std::int64_t>(kPanelFloats / std::max<std::int64_t>(
                                                  1, patch * ohow),
                               1, n);
  const std::int64_t stage_cap =
      std::max<std::int64_t>(1, (4 << 20) / (v_count * o * ohow));
  tile = std::min(tile, stage_cap);
  const std::int64_t num_tiles = (n + tile - 1) / tile;

  const backend::KernelBackend& be = backend::active();
  util::parallel_for(0, static_cast<std::size_t>(num_tiles), [&](std::size_t ti) {
    const std::int64_t t0 = static_cast<std::int64_t>(ti) * tile;
    const std::int64_t t_n = std::min(tile, n - t0);
    const std::int64_t pw = t_n * ohow;  // fused panel width
    float* panel =
        scratch_floats(2, static_cast<std::size_t>(patch * pw));

    // Writes each variant's staged [O, pw] GEMM result back into that
    // variant's per-sample [O, OH*OW] output windows, then applies the bias
    // exactly like the sequential path (add_const per output plane).
    const auto scatter = [&](std::int64_t v, const float* staged) {
      for (std::int64_t t = 0; t < t_n; ++t) {
        float* out = output + ((v * n + t0 + t) * o) * ohow;
        for (std::int64_t oc = 0; oc < o; ++oc) {
          std::copy_n(staged + oc * pw + t * ohow, ohow, out + oc * ohow);
        }
        if (biases[v] != nullptr) {
          for (std::int64_t oc = 0; oc < o; ++oc) {
            be.add_const(out + oc * ohow, biases[v][oc], ohow);
          }
        }
      }
    };

    if (shared_input) {
      // All variants read the same samples: unfold the panel once and run
      // every variant's weights against it in one kernel call.
      for (std::int64_t t = 0; t < t_n; ++t) {
        im2col_ld(input + (t0 + t) * chw, c, h, w, spec, panel, pw, t * ohow);
      }
      float* staged =
          scratch_floats(3, static_cast<std::size_t>(v_count * o * pw));
      std::vector<const float*> a_list(variants);
      std::vector<float*> c_list(variants);
      for (std::int64_t v = 0; v < v_count; ++v) {
        a_list[static_cast<std::size_t>(v)] = weights[v];
        c_list[static_cast<std::size_t>(v)] = staged + v * o * pw;
      }
      be.gemm_variants(o, pw, patch, a_list.data(), variants, patch, panel,
                       pw, c_list.data(), pw);
      for (std::int64_t v = 0; v < v_count; ++v) {
        scatter(v, staged + v * o * pw);
      }
    } else {
      // Diverged inputs: each variant gets its own fused panel; the width
      // amortization (one wide GEMM instead of t_n narrow ones) still holds.
      float* staged = scratch_floats(3, static_cast<std::size_t>(o * pw));
      for (std::int64_t v = 0; v < v_count; ++v) {
        const float* block = input + (v * n + t0) * chw;
        for (std::int64_t t = 0; t < t_n; ++t) {
          im2col_ld(block + t * chw, c, h, w, spec, panel, pw, t * ohow);
        }
        const float* a_list[1] = {weights[v]};
        float* c_list[1] = {staged};
        be.gemm_variants(o, pw, patch, a_list, 1, patch, panel, pw, c_list,
                         pw);
        scatter(v, staged);
      }
    }
  });
}

void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, const Conv2dSpec& spec,
                     Tensor& grad_input, Tensor& grad_weight,
                     Tensor& grad_bias) {
  const std::int64_t n = input.shape()[0], c = input.shape()[1],
                     h = input.shape()[2], w = input.shape()[3];
  const std::int64_t o = weight.shape()[0];
  const std::int64_t oh = spec.out_h(h), ow = spec.out_w(w);
  const std::int64_t patch = c * spec.kernel_h * spec.kernel_w;

  grad_input = Tensor{input.shape()};
  grad_weight = Tensor{weight.shape()};
  grad_bias = Tensor{Shape{o}};

  // Serial over batch: grad_weight accumulation would race otherwise, and the
  // inner GEMMs already parallelize.
  float* cols = scratch_floats(0, static_cast<std::size_t>(patch * oh * ow));
  float* dcols = scratch_floats(1, static_cast<std::size_t>(patch * oh * ow));
  for (std::int64_t s = 0; s < n; ++s) {
    const float* in = input.data() + s * c * h * w;
    const float* dout = grad_output.data() + s * o * oh * ow;
    im2col(in, c, h, w, spec, cols);
    // dW += dOut [O, OH*OW] x cols^T [OH*OW, patch]
    gemm(false, true, o, patch, oh * ow, 1.0f, dout, oh * ow, cols,
         oh * ow, 1.0f, grad_weight.data(), patch);
    // dCols = W^T [patch, O] x dOut [O, OH*OW]
    gemm(true, false, patch, oh * ow, o, 1.0f, weight.data(), patch, dout,
         oh * ow, 0.0f, dcols, oh * ow);
    col2im(dcols, c, h, w, spec, grad_input.data() + s * c * h * w);
    for (std::int64_t oc = 0; oc < o; ++oc) {
      const float* plane = dout + oc * oh * ow;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < oh * ow; ++i) acc += plane[i];
      grad_bias[oc] += acc;
    }
  }
}

Tensor maxpool2d_forward(const Tensor& input, std::int64_t kernel,
                         std::vector<std::int64_t>& argmax) {
  BDLFI_CHECK(input.shape().rank() == 4);
  const std::int64_t n = input.shape()[0], c = input.shape()[1],
                     h = input.shape()[2], w = input.shape()[3];
  Tensor out{Shape{n, c, h / kernel, w / kernel}};
  maxpool2d_forward_into(input, kernel, out, &argmax);
  return out;
}

void maxpool2d_forward_into(const Tensor& input, std::int64_t kernel,
                            Tensor& out, std::vector<std::int64_t>* argmax) {
  BDLFI_CHECK(input.shape().rank() == 4);
  const std::int64_t n = input.shape()[0], c = input.shape()[1],
                     h = input.shape()[2], w = input.shape()[3];
  // Floor division: a trailing remainder of rows/columns narrower than the
  // window is dropped, matching the common framework default for this
  // stride-=-kernel pooling. Previously non-divisible dims hard-failed.
  BDLFI_CHECK_MSG(kernel > 0 && h >= kernel && w >= kernel,
                  "maxpool2d input smaller than the pooling window");
  const std::int64_t oh = h / kernel, ow = w / kernel;
  BDLFI_CHECK(out.shape() == Shape({n, c, oh, ow}));
  if (argmax != nullptr) {
    argmax->assign(static_cast<std::size_t>(out.numel()), 0);
  }
  std::int64_t oi = 0;
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (s * c + ch) * h * w;
      const std::int64_t plane_off = (s * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = plane_off + (oy * kernel) * w + ox * kernel;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t iy = oy * kernel + ky;
              const std::int64_t ix = ox * kernel + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_off + iy * w + ix;
              }
            }
          }
          out[oi] = best;
          if (argmax != nullptr) {
            (*argmax)[static_cast<std::size_t>(oi)] = best_idx;
          }
        }
      }
    }
  }
}

Tensor maxpool2d_backward(const Tensor& grad_output, const Shape& input_shape,
                          const std::vector<std::int64_t>& argmax) {
  Tensor grad_in{input_shape};
  BDLFI_CHECK(argmax.size() ==
              static_cast<std::size_t>(grad_output.numel()));
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_in[argmax[static_cast<std::size_t>(i)]] += grad_output[i];
  }
  return grad_in;
}

Tensor global_avgpool_forward(const Tensor& input) {
  BDLFI_CHECK(input.shape().rank() == 4);
  Tensor out{Shape{input.shape()[0], input.shape()[1]}};
  global_avgpool_forward_into(input, out);
  return out;
}

void global_avgpool_forward_into(const Tensor& input, Tensor& out) {
  BDLFI_CHECK(input.shape().rank() == 4);
  const std::int64_t n = input.shape()[0], c = input.shape()[1],
                     h = input.shape()[2], w = input.shape()[3];
  BDLFI_CHECK(out.shape() == Shape({n, c}));
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (s * c + ch) * h * w;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < h * w; ++i) acc += plane[i];
      out.at(s, ch) = acc * inv;
    }
  }
}

Tensor global_avgpool_backward(const Tensor& grad_output,
                               const Shape& input_shape) {
  BDLFI_CHECK(grad_output.shape().rank() == 2 && input_shape.rank() == 4);
  const std::int64_t n = input_shape[0], c = input_shape[1],
                     h = input_shape[2], w = input_shape[3];
  Tensor grad_in{input_shape};
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_output.at(s, ch) * inv;
      float* plane = grad_in.data() + (s * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) plane[i] = g;
    }
  }
  return grad_in;
}

}  // namespace bdlfi::tensor
