// Numeric kernels on fp32 buffers: GEMM, elementwise, softmax, im2col-based
// convolution and pooling. These are the primitives the nn layers build on;
// keeping them free functions over spans makes them independently testable
// against naive reference implementations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/abft.h"
#include "tensor/tensor.h"

namespace bdlfi::tensor {

// --- GEMM -------------------------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C with row-major dense storage.
/// op(A) is m×k, op(B) is k×n, C is m×n. Cache-blocked; parallel over row
/// blocks when m*n*k is large.
void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, std::int64_t lda,
          const float* b, std::int64_t ldb, float beta, float* c,
          std::int64_t ldc);

/// Tensor-level matmul: a is [m,k], b is [k,n] → [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

// --- Elementwise ------------------------------------------------------------

/// out += x (shapes must match).
void add_inplace(Tensor& out, const Tensor& x);
/// out += alpha * x.
void axpy_inplace(Tensor& out, float alpha, const Tensor& x);
/// Elementwise max(0, x).
void relu_inplace(Tensor& x);
/// grad_in = grad_out where pre_activation > 0 else 0 (in place on grad).
void relu_backward_inplace(Tensor& grad, const Tensor& pre_activation);
/// out[r][c] += bias[c] for a [rows, cols] matrix (dense-layer bias).
void bias_add_rows(Tensor& out, const Tensor& bias);

// --- Softmax / classification ----------------------------------------------

/// Row-wise numerically stable softmax over a [rows, cols] matrix.
Tensor softmax_rows(const Tensor& logits);
/// Row-wise log-softmax.
Tensor log_softmax_rows(const Tensor& logits);
/// Index of the max element of each row of a [rows, cols] matrix.
std::vector<std::int64_t> argmax_rows(const Tensor& m);

// --- Convolution (NCHW, OIHW kernels) ----------------------------------------

struct Conv2dSpec {
  std::int64_t kernel_h = 3, kernel_w = 3;
  std::int64_t stride = 1;
  std::int64_t pad_h = 1, pad_w = 1;

  /// Convenience: sets both paddings (square-kernel "same" use).
  void set_pad(std::int64_t pad) { pad_h = pad_w = pad; }

  std::int64_t out_h(std::int64_t in_h) const {
    return (in_h + 2 * pad_h - kernel_h) / stride + 1;
  }
  std::int64_t out_w(std::int64_t in_w) const {
    return (in_w + 2 * pad_w - kernel_w) / stride + 1;
  }
};

/// Unfolds one sample [C,H,W] into columns [C*kh*kw, OH*OW].
void im2col(const float* input, std::int64_t channels, std::int64_t h,
            std::int64_t w, const Conv2dSpec& spec, float* cols);
/// Accumulating inverse of im2col (used by conv backward-to-input).
void col2im(const float* cols, std::int64_t channels, std::int64_t h,
            std::int64_t w, const Conv2dSpec& spec, float* input_grad);

/// input [N,C,H,W], weight [O,C,kh,kw], bias [O] (may be empty) → [N,O,OH,OW].
Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, const Conv2dSpec& spec);

/// Self-checking variant: routes each sample's im2col GEMM through
/// abft::gemm_checked, so transient compute faults in ctx.flips (flat indices
/// into the [N,O,OH,OW] output) land on the raw pre-bias MAC results and the
/// ABFT row checksums verify/recover per ctx.config. With a default OpContext
/// this is bit-exact with the plain overload.
Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, const Conv2dSpec& spec,
                      const abft::OpContext& ctx);

/// Allocation-free conv2d: writes the [N,O,OH,OW] result into `output`
/// (pre-shaped by the caller, must not alias `input`). Bit-exact with the
/// allocating overloads — they are thin wrappers around this. The only
/// per-call storage is the thread-local im2col scratch, which is grow-once.
void conv2d_forward_into(const Tensor& input, const Tensor& weight,
                         const Tensor& bias, const Conv2dSpec& spec,
                         const abft::OpContext& ctx, Tensor& output);

/// Batched multi-variant convolution over shared im2col panels — the kernel
/// bed of MultiMaskEvaluator (DESIGN.md §10). The input holds per-variant
/// sample blocks: variant v owns samples [v*n, (v+1)*n) of a [variants*n, C,
/// H, W] NCHW buffer, unless `shared_input` is set, in which case `input` is
/// a single [n, C, H, W] block that every variant reads (the dirty layer of
/// a truncated replay, where all variants restart from the same cached
/// activation). weights[v] points at variant v's [O, C, kh, kw] kernel and
/// biases[v] at its [O] bias (nullptr = no bias). Output is the stacked
/// [variants*n, O, OH, OW] buffer.
///
/// Samples are tiled into wide [patch, T*OH*OW] panels that feed the
/// backend's gemm_variants kernel, so im2col and panel traffic are paid once
/// per tile instead of once per (variant, sample). Per sample the results
/// are bit-identical to conv2d_forward with that variant's weights, on every
/// backend — panel width and row grouping never change per-element GEMM
/// results (see backend.h).
void conv2d_forward_multi(const float* input, bool shared_input,
                          std::size_t variants, std::int64_t n,
                          std::int64_t c, std::int64_t h, std::int64_t w,
                          const float* const* weights,
                          const float* const* biases, std::int64_t o,
                          const Conv2dSpec& spec, float* output);

/// Gradients of conv2d. grad_output is [N,O,OH,OW]; fills grad_input
/// (same shape as input), grad_weight, grad_bias (accumulated over batch).
void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, const Conv2dSpec& spec,
                     Tensor& grad_input, Tensor& grad_weight,
                     Tensor& grad_bias);

// --- Pooling -----------------------------------------------------------------

/// 2×2 (or k×k) max pooling with stride = kernel; non-divisible spatial dims
/// floor-divide (the trailing remainder is dropped). Returns output and
/// records the linear index of each selected element for the backward pass.
Tensor maxpool2d_forward(const Tensor& input, std::int64_t kernel,
                         std::vector<std::int64_t>& argmax);
/// Allocation-free variant writing into a pre-shaped output; `argmax` may be
/// null for eval-mode forwards that never run backward.
void maxpool2d_forward_into(const Tensor& input, std::int64_t kernel,
                            Tensor& output, std::vector<std::int64_t>* argmax);
Tensor maxpool2d_backward(const Tensor& grad_output, const Shape& input_shape,
                          const std::vector<std::int64_t>& argmax);

/// Global average pooling: [N,C,H,W] → [N,C].
Tensor global_avgpool_forward(const Tensor& input);
/// Allocation-free variant writing into a pre-shaped [N,C] output.
void global_avgpool_forward_into(const Tensor& input, Tensor& output);
Tensor global_avgpool_backward(const Tensor& grad_output,
                               const Shape& input_shape);

}  // namespace bdlfi::tensor
