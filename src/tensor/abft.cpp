#include "tensor/abft.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fault/bits.h"
#include "obs/metrics.h"
#include "tensor/backend/backend.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace bdlfi::tensor::abft {

namespace {

// Process-wide ABFT counters mirroring the per-network Stats, for live
// reporters and the JSONL metrics sink (EvalMetrics idiom).
struct AbftMetrics {
  obs::Counter& checks = obs::MetricsRegistry::global().counter("abft.checks");
  obs::Counter& detected =
      obs::MetricsRegistry::global().counter("abft.detected_rows");
  obs::Counter& corrected =
      obs::MetricsRegistry::global().counter("abft.corrected_rows");
  obs::Counter& injected =
      obs::MetricsRegistry::global().counter("abft.faults_injected");
  static AbftMetrics& get() {
    static AbftMetrics m;
    return m;
  }
};

}  // namespace

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kDetect: return "detect";
    case Mode::kCorrect: return "correct";
  }
  return "off";
}

bool parse_mode(const std::string& name, Mode* out) {
  if (name == "off") *out = Mode::kOff;
  else if (name == "detect") *out = Mode::kDetect;
  else if (name == "correct") *out = Mode::kCorrect;
  else return false;
  return true;
}

void Stats::reset() {
  checks.store(0, std::memory_order_relaxed);
  rows_checked.store(0, std::memory_order_relaxed);
  detected_rows.store(0, std::memory_order_relaxed);
  corrected_rows.store(0, std::memory_order_relaxed);
  faults_injected.store(0, std::memory_order_relaxed);
}

void gemm_checked(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                  std::int64_t k, float alpha, const float* a,
                  std::int64_t lda, const float* b, std::int64_t ldb, float* c,
                  std::int64_t ldc, const OpContext& ctx,
                  std::int64_t elem_base) {
  gemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, 0.0f, c, ldc);
  if (m == 0 || n == 0) return;

  // Transient compute faults: flip the requested output bits between the raw
  // multiply and the checksum verification. `flips` addresses the op's full
  // output tensor; this call owns the [elem_base, elem_base + m*n) window.
  std::uint64_t injected = 0;
  if (ctx.flips != nullptr && !ctx.flips->empty()) {
    const std::int64_t numel = m * n;
    const auto lo = std::lower_bound(
        ctx.flips->begin(), ctx.flips->end(), elem_base,
        [](const std::pair<std::int64_t, int>& f, std::int64_t v) {
          return f.first < v;
        });
    for (auto it = lo; it != ctx.flips->end() && it->first < elem_base + numel;
         ++it) {
      const std::int64_t local = it->first - elem_base;
      float& cell = c[(local / n) * ldc + (local % n)];
      cell = fault::flip_bit(cell, it->second);
      ++injected;
    }
  }

  std::uint64_t detected = 0, corrected = 0;
  if (ctx.config.mode != Mode::kOff) {
    // The checksum reductions run through the active kernel table so SIMD
    // backends verify at SIMD speed; the double accumulation keeps them an
    // order of magnitude more precise than the float GEMM they audit.
    const backend::KernelBackend& be = backend::active();

    // Input checksums: w[l] = sum_j op(B)[l,j] and its magnitude companion,
    // one pass over B in double.
    std::vector<double> w(static_cast<std::size_t>(k), 0.0);
    std::vector<double> wabs(static_cast<std::size_t>(k), 0.0);
    be.abft_col_sums(trans_b, n, k, b, ldb, w.data(), wabs.data());

    const double eps = std::numeric_limits<float>::epsilon();
    const double tol_factor = ctx.config.tolerance_scale * eps *
                              static_cast<double>(k + 2);
    const double aalpha = std::fabs(static_cast<double>(alpha));
    for (std::int64_t i = 0; i < m; ++i) {
      double predicted = 0.0, magnitude = 0.0;
      be.abft_row_dot(trans_a ? a + i : a + i * lda, trans_a ? lda : 1,
                      w.data(), wabs.data(), k, &predicted, &magnitude);
      predicted *= static_cast<double>(alpha);
      magnitude *= aalpha;
      // Double accumulation of binary32 values cannot overflow, so a
      // non-finite row sum occurs iff the row holds a non-finite element —
      // and a non-finite row always fails the check (NaN compares would
      // poison the tolerance test otherwise: a NaN-producing exponent flip
      // must not slip through as "within tolerance").
      const double actual = be.abft_row_sum(c + i * ldc, n);
      const bool bad = !std::isfinite(actual) ||
                       std::fabs(actual - predicted) > tol_factor * magnitude;
      if (!bad) continue;
      if (ctx.config.mode == Mode::kCorrect) {
        // The inputs were never corrupted: one serial recompute of the row
        // restores it. Injected flips are transient and are NOT re-applied.
        be.gemm_rows(trans_a, trans_b, i, i + 1, n, k, alpha, a, lda, b, ldb,
                     0.0f, c, ldc);
        ++corrected;
      } else {
        ++detected;
      }
    }
  }

  if (ctx.stats != nullptr) {
    if (ctx.config.mode != Mode::kOff) {
      ctx.stats->checks.fetch_add(1, std::memory_order_relaxed);
      ctx.stats->rows_checked.fetch_add(static_cast<std::uint64_t>(m),
                                        std::memory_order_relaxed);
      if (detected > 0) {
        ctx.stats->detected_rows.fetch_add(detected,
                                           std::memory_order_relaxed);
      }
      if (corrected > 0) {
        ctx.stats->corrected_rows.fetch_add(corrected,
                                            std::memory_order_relaxed);
      }
    }
    if (injected > 0) {
      ctx.stats->faults_injected.fetch_add(injected,
                                           std::memory_order_relaxed);
    }
  }
  if (obs::enabled()) {
    AbftMetrics& metrics = AbftMetrics::get();
    if (ctx.config.mode != Mode::kOff) metrics.checks.add();
    if (detected > 0) metrics.detected.add(detected);
    if (corrected > 0) metrics.corrected.add(corrected);
    if (injected > 0) metrics.injected.add(injected);
  }
}

}  // namespace bdlfi::tensor::abft
