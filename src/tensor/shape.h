// Tensor shapes. Rank ≤ 4 covers everything BDLFI needs (NCHW activations,
// OIHW conv kernels, [out,in] dense weights, vectors); a small inline array
// keeps Shape trivially copyable and cheap to pass by value.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "util/check.h"

namespace bdlfi::tensor {

class Shape {
 public:
  static constexpr int kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);

  int rank() const { return rank_; }
  std::int64_t operator[](int i) const {
    BDLFI_DCHECK(i >= 0 && i < rank_);
    return dims_[static_cast<std::size_t>(i)];
  }
  /// Total element count (1 for rank-0).
  std::int64_t numel() const;

  bool operator==(const Shape& other) const;
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[2, 3, 4]" rendering for diagnostics.
  std::string to_string() const;

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  int rank_ = 0;
};

}  // namespace bdlfi::tensor
