// Algorithm-based fault tolerance (ABFT) for the GEMM that carries every
// dense and convolution forward. Classic Huang–Abraham row checksums, adapted
// to float: for C = alpha * op(A) * op(B) with beta = 0, each output row must
// satisfy
//
//   rowsum_i(C) = alpha * sum_l op(A)[i,l] * w[l],   w[l] = sum_j op(B)[l,j]
//
// so one extra pass over the operands predicts every row's checksum. A row
// whose actual sum disagrees beyond a calibrated float tolerance has been
// corrupted *between* the multiply and the check — exactly the transient
// compute-fault model (`SiteKind::kCompute`) — and is either flagged
// (detect-only DUE) or recomputed from the still-clean inputs (recovery).
//
// Tolerance: all checksum arithmetic runs in double, so the only slack needed
// covers the float rounding of the GEMM itself. The standard forward-error
// bound for a length-k float dot product is |fl(x·y) − x·y| ≤ γ_k Σ|x_l y_l|
// with γ_k ≈ k·eps32; summing a row adds at most one more eps32 per stored
// element. We bound row i's magnitude by M_i = Σ_l |op(A)[i,l]| · wabs[l]
// (wabs[l] = Σ_j |op(B)[l,j]|) and accept
//
//   |actual − predicted| ≤ tolerance_scale · eps32 · (k + 2) · M_i
//
// With tolerance_scale ≥ 1 this is a strict worst-case bound — zero false
// positives on any clean GEMM, scalar or AVX2 (FMA only shrinks the error).
// The default of 4 adds headroom for future backends. The flip side: a flip
// of a low mantissa bit can hide inside the tolerance; such faults are
// numerically negligible and land in the masked outcome class anyway.
//
// ABFT here is a *deployment property* of a network (nn::Network::set_abft),
// orthogonal to fault injection: compute faults are injected whether or not
// checking is on, which is what lets campaigns compare unprotected vs
// detect-only vs detect+recover deployments under the same fault model.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bdlfi::tensor::abft {

enum class Mode {
  kOff,      // no checksums: bit-exact with the unchecked forward
  kDetect,   // verify, count mismatched rows, leave them corrupted (DUE)
  kCorrect,  // verify and recompute mismatched rows from the clean inputs
};

const char* mode_name(Mode mode);
/// Parses "off" / "detect" / "correct"; returns false on anything else.
bool parse_mode(const std::string& name, Mode* out);

struct Config {
  Mode mode = Mode::kOff;
  /// Multiplier on the worst-case rounding bound (see file comment). Values
  /// below 1 void the zero-false-positive guarantee.
  double tolerance_scale = 4.0;
};

/// Cumulative ABFT counters. Atomic because conv forwards run sample-parallel
/// (util::parallel_for) and every sample's GEMM shares one Stats instance.
struct Stats {
  std::atomic<std::uint64_t> checks{0};           // checked GEMM calls
  std::atomic<std::uint64_t> rows_checked{0};
  std::atomic<std::uint64_t> detected_rows{0};    // flagged, left corrupted
  std::atomic<std::uint64_t> corrected_rows{0};   // flagged and recomputed
  std::atomic<std::uint64_t> faults_injected{0};  // compute-fault bit flips

  void reset();
};

/// Transient compute faults for one op: (flat element index within the op's
/// full output tensor, bit). Must be sorted by element index.
using FlipList = std::vector<std::pair<std::int64_t, int>>;

/// Per-op checking context a network installs on a layer for one forward.
/// `flips` (optional) are applied to the raw GEMM output before verification
/// — faults strike mid-compute, so recovery recomputes *without* them.
struct OpContext {
  Config config;
  Stats* stats = nullptr;    // optional counter sink
  const FlipList* flips = nullptr;
};

/// C = alpha * op(A) * op(B) (beta = 0 by construction: every forward GEMM
/// overwrites its output), then compute-fault injection, then row-checksum
/// verification per ctx.config. `elem_base` is the flat index of C's element
/// (0,0) within the op's full output tensor; the logical output block is the
/// row-major [m, n] window whose rows sit ldc apart. Verification is serial —
/// conv callers already parallelize over samples above this.
void gemm_checked(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                  std::int64_t k, float alpha, const float* a,
                  std::int64_t lda, const float* b, std::int64_t ldb, float* c,
                  std::int64_t ldc, const OpContext& ctx,
                  std::int64_t elem_base);

}  // namespace bdlfi::tensor::abft
