// ResNet "basic block": two 3×3 conv+BN stages with a skip connection,
//   y = relu( bn2(conv2( relu(bn1(conv1(x))) )) + shortcut(x) )
// where shortcut is identity, or a strided 1×1 conv + BN when the block
// changes resolution/width (ResNet-18/34 style).
#pragma once

#include <memory>

#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/layers.h"

namespace bdlfi::nn {

class BasicBlock : public Layer {
 public:
  /// stride > 1 (or in != out channels) adds the projection shortcut.
  BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
             std::int64_t stride);

  std::string kind() const override { return "block"; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix,
                      std::vector<ParamRef>& out) override;
  void collect_buffers(const std::string& prefix,
                       std::vector<ParamRef>& out) override;
  void zero_grad() override;
  std::unique_ptr<Layer> clone() const override;

  void init_he(util::Rng& rng);

  bool has_projection() const { return proj_conv_ != nullptr; }

  // Sub-layer access for inference-only transformations (e.g. the int8
  // converter in src/quant rebuilds blocks with quantized convolutions).
  Conv2d& conv1() { return *conv1_; }
  BatchNorm2d& bn1() { return *bn1_; }
  Conv2d& conv2() { return *conv2_; }
  BatchNorm2d& bn2() { return *bn2_; }
  Conv2d* proj_conv() { return proj_conv_.get(); }
  BatchNorm2d* proj_bn() { return proj_bn_.get(); }

 private:
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Conv2d> proj_conv_;   // nullable
  std::unique_ptr<BatchNorm2d> proj_bn_;  // nullable
  // Backward caches.
  Tensor cached_mid_pre_;   // pre-activation of inner ReLU
  Tensor cached_sum_pre_;   // pre-activation of final ReLU
};

}  // namespace bdlfi::nn
