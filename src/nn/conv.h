// 2-D convolution layer (NCHW activations, OIHW kernels), im2col + GEMM.
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"

namespace bdlfi::nn {

class Conv2d : public Layer {
 public:
  /// Square kernel; pad = -1 means "same" padding (kernel/2).
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride = 1, std::int64_t pad = -1,
         bool bias = false);
  /// Rectangular kernel with explicit per-axis padding (e.g. 1×k FIR banks
  /// over [N,1,1,L] signals).
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel_h, std::int64_t kernel_w, std::int64_t stride,
         std::int64_t pad_h, std::int64_t pad_w, bool bias = false);

  std::string kind() const override { return "conv"; }
  Tensor forward(const Tensor& x, bool training) override;
  void forward_into(const Tensor& in, Tensor& out, Workspace& ws) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix,
                      std::vector<ParamRef>& out) override;
  void zero_grad() override;
  std::unique_ptr<Layer> clone() const override;

  void init_he(util::Rng& rng);

  const tensor::Conv2dSpec& spec() const { return spec_; }
  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  std::int64_t in_channels_, out_channels_;
  tensor::Conv2dSpec spec_;
  bool has_bias_;
  Tensor weight_, bias_;
  Tensor grad_weight_, grad_bias_;
  Tensor cached_input_;
};

}  // namespace bdlfi::nn
