#include "nn/batchnorm.h"

#include <cmath>

#include "util/check.h"

namespace bdlfi::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::full(Shape{channels}, 1.0f)),
      beta_(Shape{channels}),
      grad_gamma_(Shape{channels}),
      grad_beta_(Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Tensor::full(Shape{channels}, 1.0f)) {
  BDLFI_CHECK(channels > 0);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool training) {
  BDLFI_CHECK(x.shape().rank() == 4 && x.shape()[1] == channels_);
  const std::int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2],
                     w = x.shape()[3];
  const std::int64_t per_channel = n * h * w;
  Tensor y{x.shape()};

  if (!training) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float inv_std =
          1.0f / std::sqrt(running_var_[ch] + eps_);
      const float scale = gamma_[ch] * inv_std;
      const float shift = beta_[ch] - running_mean_[ch] * scale;
      for (std::int64_t s = 0; s < n; ++s) {
        const float* in = x.data() + (s * c + ch) * h * w;
        float* out = y.data() + (s * c + ch) * h * w;
        for (std::int64_t i = 0; i < h * w; ++i) out[i] = in[i] * scale + shift;
      }
    }
    return y;
  }

  cached_xhat_ = Tensor{x.shape()};
  cached_inv_std_ = Tensor{Shape{c}};
  for (std::int64_t ch = 0; ch < c; ++ch) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t s = 0; s < n; ++s) {
      const float* in = x.data() + (s * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) {
        sum += in[i];
        sq += static_cast<double>(in[i]) * in[i];
      }
    }
    const double mean = sum / static_cast<double>(per_channel);
    const double var =
        std::max(0.0, sq / static_cast<double>(per_channel) - mean * mean);
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    cached_inv_std_[ch] = inv_std;

    running_mean_[ch] = (1.0f - momentum_) * running_mean_[ch] +
                        momentum_ * static_cast<float>(mean);
    running_var_[ch] = (1.0f - momentum_) * running_var_[ch] +
                       momentum_ * static_cast<float>(var);

    const float g = gamma_[ch], b = beta_[ch];
    for (std::int64_t s = 0; s < n; ++s) {
      const float* in = x.data() + (s * c + ch) * h * w;
      float* out = y.data() + (s * c + ch) * h * w;
      float* xh = cached_xhat_.data() + (s * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) {
        const float xhat = (in[i] - static_cast<float>(mean)) * inv_std;
        xh[i] = xhat;
        out[i] = g * xhat + b;
      }
    }
  }
  return y;
}

void BatchNorm2d::forward_into(const Tensor& in, Tensor& out,
                               Workspace& /*ws*/) {
  BDLFI_CHECK(in.shape().rank() == 4 && in.shape()[1] == channels_);
  BDLFI_CHECK(in.numel() == out.numel());
  const std::int64_t n = in.shape()[0], c = in.shape()[1], h = in.shape()[2],
                     w = in.shape()[3];
  // Identical arithmetic to the eval branch of forward(); out may alias in
  // (each element is read exactly once before it is written).
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const float inv_std = 1.0f / std::sqrt(running_var_[ch] + eps_);
    const float scale = gamma_[ch] * inv_std;
    const float shift = beta_[ch] - running_mean_[ch] * scale;
    for (std::int64_t s = 0; s < n; ++s) {
      const float* src = in.data() + (s * c + ch) * h * w;
      float* dst = out.data() + (s * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) dst[i] = src[i] * scale + shift;
    }
  }
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  BDLFI_CHECK_MSG(!cached_xhat_.empty(),
                  "BatchNorm2d::backward without training forward");
  const Shape& shape = cached_xhat_.shape();
  const std::int64_t n = shape[0], c = shape[1], h = shape[2], w = shape[3];
  const auto m = static_cast<float>(n * h * w);
  Tensor grad_in{shape};

  for (std::int64_t ch = 0; ch < c; ++ch) {
    // Per-channel reductions: sum(dy), sum(dy * xhat).
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t s = 0; s < n; ++s) {
      const float* dy = grad_output.data() + (s * c + ch) * h * w;
      const float* xh = cached_xhat_.data() + (s * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    grad_beta_[ch] += static_cast<float>(sum_dy);
    grad_gamma_[ch] += static_cast<float>(sum_dy_xhat);

    const float g = gamma_[ch];
    const float inv_std = cached_inv_std_[ch];
    const auto mean_dy = static_cast<float>(sum_dy) / m;
    const auto mean_dy_xhat = static_cast<float>(sum_dy_xhat) / m;
    for (std::int64_t s = 0; s < n; ++s) {
      const float* dy = grad_output.data() + (s * c + ch) * h * w;
      const float* xh = cached_xhat_.data() + (s * c + ch) * h * w;
      float* dx = grad_in.data() + (s * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) {
        dx[i] = g * inv_std * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
      }
    }
  }
  return grad_in;
}

void BatchNorm2d::collect_params(const std::string& prefix,
                                 std::vector<ParamRef>& out) {
  out.push_back({prefix + "gamma", ParamRole::kBnGamma, &gamma_,
                 &grad_gamma_});
  out.push_back({prefix + "beta", ParamRole::kBnBeta, &beta_, &grad_beta_});
}

void BatchNorm2d::collect_buffers(const std::string& prefix,
                                  std::vector<ParamRef>& out) {
  out.push_back({prefix + "running_mean", ParamRole::kBnRunningMean,
                 &running_mean_, nullptr});
  out.push_back({prefix + "running_var", ParamRole::kBnRunningVar,
                 &running_var_, nullptr});
}

void BatchNorm2d::zero_grad() {
  grad_gamma_.fill(0.0f);
  grad_beta_.fill(0.0f);
}

std::unique_ptr<Layer> BatchNorm2d::clone() const {
  auto copy = std::make_unique<BatchNorm2d>(channels_, eps_, momentum_);
  copy->gamma_ = gamma_;
  copy->beta_ = beta_;
  copy->running_mean_ = running_mean_;
  copy->running_var_ = running_var_;
  return copy;
}

}  // namespace bdlfi::nn
