// Stateless and dense layers: Dense (fully connected), ReLU, Flatten,
// MaxPool2d, GlobalAvgPool. Conv2d and BatchNorm2d live in their own files.
#pragma once

#include "nn/layer.h"

namespace bdlfi::nn {

/// Fully connected layer: y = x W^T + b, weight stored [out, in] so each
/// output neuron's fan-in is one contiguous row (the Fig-1 "W" of the paper).
class Dense : public Layer {
 public:
  Dense(std::int64_t in_features, std::int64_t out_features, bool bias = true);

  std::string kind() const override { return "dense"; }
  Tensor forward(const Tensor& x, bool training) override;
  void forward_into(const Tensor& in, Tensor& out, Workspace& ws) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix,
                      std::vector<ParamRef>& out) override;
  void zero_grad() override;
  std::unique_ptr<Layer> clone() const override;

  /// He-normal initialization (appropriate for the ReLU nets in the paper).
  void init_he(util::Rng& rng);

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  std::int64_t in_, out_;
  bool has_bias_;
  Tensor weight_, bias_;
  Tensor grad_weight_, grad_bias_;
  Tensor cached_input_;
};

/// Elementwise max(0, x).
class ReLU : public Layer {
 public:
  std::string kind() const override { return "relu"; }
  Tensor forward(const Tensor& x, bool training) override;
  void forward_into(const Tensor& in, Tensor& out, Workspace& ws) override;
  bool inplace_capable() const override { return true; }
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>();
  }

 private:
  Tensor cached_pre_;
};

/// [N, C, H, W] → [N, C*H*W].
class Flatten : public Layer {
 public:
  std::string kind() const override { return "flatten"; }
  Tensor forward(const Tensor& x, bool training) override;
  void forward_into(const Tensor& in, Tensor& out, Workspace& ws) override;
  bool inplace_capable() const override { return true; }
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>();
  }

 private:
  Shape cached_shape_;
};

/// k×k max pooling with stride k.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::int64_t kernel) : kernel_(kernel) {}
  std::string kind() const override { return "maxpool"; }
  std::int64_t kernel() const { return kernel_; }
  Tensor forward(const Tensor& x, bool training) override;
  void forward_into(const Tensor& in, Tensor& out, Workspace& ws) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2d>(kernel_);
  }

 private:
  std::int64_t kernel_;
  Shape cached_shape_;
  std::vector<std::int64_t> argmax_;
};

/// [N, C, H, W] → [N, C] spatial mean (ResNet head).
class GlobalAvgPool : public Layer {
 public:
  std::string kind() const override { return "avgpool"; }
  Tensor forward(const Tensor& x, bool training) override;
  void forward_into(const Tensor& in, Tensor& out, Workspace& ws) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GlobalAvgPool>();
  }

 private:
  Shape cached_shape_;
};

}  // namespace bdlfi::nn
