#include "nn/conv.h"

#include <cmath>

#include "util/check.h"

namespace bdlfi::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool bias)
    : Conv2d(in_channels, out_channels, kernel, kernel, stride,
             pad >= 0 ? pad : kernel / 2, pad >= 0 ? pad : kernel / 2, bias) {}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel_h, std::int64_t kernel_w,
               std::int64_t stride, std::int64_t pad_h, std::int64_t pad_w,
               bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      has_bias_(bias),
      weight_(Shape{out_channels, in_channels, kernel_h, kernel_w}),
      bias_(bias ? Tensor{Shape{out_channels}} : Tensor{}),
      grad_weight_(weight_.shape()),
      grad_bias_(bias ? Tensor{Shape{out_channels}} : Tensor{}) {
  BDLFI_CHECK(in_channels > 0 && out_channels > 0 && kernel_h > 0 &&
              kernel_w > 0 && stride > 0 && pad_h >= 0 && pad_w >= 0);
  spec_.kernel_h = kernel_h;
  spec_.kernel_w = kernel_w;
  spec_.stride = stride;
  spec_.pad_h = pad_h;
  spec_.pad_w = pad_w;
}

void Conv2d::init_he(util::Rng& rng) {
  const auto fan_in = static_cast<float>(in_channels_ * spec_.kernel_h *
                                         spec_.kernel_w);
  const float stddev = std::sqrt(2.0f / fan_in);
  weight_ = Tensor::randn(weight_.shape(), rng, 0.0f, stddev);
  if (has_bias_) bias_.fill(0.0f);
}

Tensor Conv2d::forward(const Tensor& x, bool training) {
  BDLFI_CHECK(x.shape().rank() == 4 && x.shape()[1] == in_channels_);
  if (training) cached_input_ = x;
  if (compute_ctx_ != nullptr) {
    return tensor::conv2d_forward(x, weight_, bias_, spec_, *compute_ctx_);
  }
  return tensor::conv2d_forward(x, weight_, bias_, spec_);
}

void Conv2d::forward_into(const Tensor& in, Tensor& out, Workspace& /*ws*/) {
  BDLFI_CHECK(in.shape().rank() == 4 && in.shape()[1] == in_channels_);
  if (compute_ctx_ != nullptr) {
    tensor::conv2d_forward_into(in, weight_, bias_, spec_, *compute_ctx_, out);
  } else {
    tensor::conv2d_forward_into(in, weight_, bias_, spec_,
                                tensor::abft::OpContext{}, out);
  }
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  BDLFI_CHECK_MSG(!cached_input_.empty(),
                  "Conv2d::backward without training forward");
  Tensor grad_in, gw, gb;
  tensor::conv2d_backward(cached_input_, weight_, grad_output, spec_, grad_in,
                          gw, gb);
  tensor::add_inplace(grad_weight_, gw);
  if (has_bias_) tensor::add_inplace(grad_bias_, gb);
  return grad_in;
}

void Conv2d::collect_params(const std::string& prefix,
                            std::vector<ParamRef>& out) {
  out.push_back({prefix + "weight", ParamRole::kWeight, &weight_,
                 &grad_weight_});
  if (has_bias_) {
    out.push_back({prefix + "bias", ParamRole::kBias, &bias_, &grad_bias_});
  }
}

void Conv2d::zero_grad() {
  grad_weight_.fill(0.0f);
  if (has_bias_) grad_bias_.fill(0.0f);
}

std::unique_ptr<Layer> Conv2d::clone() const {
  auto copy = std::make_unique<Conv2d>(in_channels_, out_channels_,
                                       spec_.kernel_h, spec_.kernel_w,
                                       spec_.stride, spec_.pad_h,
                                       spec_.pad_w, has_bias_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  return copy;
}

}  // namespace bdlfi::nn
