// Dropout layer with Monte-Carlo inference support.
//
// The paper grounds BDLFI in Bayesian Deep Learning via Gal's work (ref [2]),
// whose flagship practical construction is MC-Dropout: dropout kept active at
// inference time approximates sampling from the posterior over weights, so
// the spread of repeated stochastic forward passes measures *epistemic*
// (model) uncertainty. BDLFI measures *fault-induced* uncertainty with the
// same predictive machinery; having both in one library lets campaigns
// separate "the model was unsure" from "the hardware broke it"
// (examples/uncertainty.cpp).
#pragma once

#include "nn/layer.h"
#include "nn/network.h"

namespace bdlfi::nn {

class Dropout : public Layer {
 public:
  /// `rate` is the drop probability in [0, 1). Inverted-dropout scaling keeps
  /// activation magnitudes unchanged in expectation.
  explicit Dropout(double rate, std::uint64_t seed = 0x5eed);

  std::string kind() const override { return "dropout"; }

  /// Training mode: stochastic mask + 1/(1-rate) scaling.
  /// Eval mode: identity — unless mc_mode(true) was set, in which case the
  /// layer keeps sampling (MC-Dropout predictive sampling).
  Tensor forward(const Tensor& x, bool training) override;
  void forward_into(const Tensor& in, Tensor& out, Workspace& ws) override;
  bool inplace_capable() const override { return true; }
  /// MC mode draws from the layer's RNG on every eval forward — the plan's
  /// shape probe would perturb the stream, so MC networks take the legacy
  /// path.
  bool plan_eval_safe() const override { return !mc_mode_; }
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;

  /// Enables/disables sampling during eval-mode forwards (MC-Dropout).
  void set_mc_mode(bool enabled) { mc_mode_ = enabled; }
  bool mc_mode() const { return mc_mode_; }
  double rate() const { return rate_; }

  /// Reseeds the layer's private RNG stream (per-replica decorrelation).
  void reseed(std::uint64_t seed) { rng_.reseed(seed); }

 private:
  double rate_;
  bool mc_mode_ = false;
  util::Rng rng_;
  Tensor cached_mask_;  // scaled keep mask used by backward
};

/// Walks a network and toggles MC mode on every Dropout layer; returns the
/// number of dropout layers found.
std::size_t set_mc_dropout(Network& net, bool enabled);

/// MC-Dropout predictive: runs `passes` stochastic forwards and returns the
/// per-sample class-vote entropy (nats) — the epistemic-uncertainty score —
/// together with the majority-vote predictions.
struct McDropoutResult {
  std::vector<std::int64_t> predictions;  // majority vote per sample
  std::vector<double> vote_entropy;       // 0 = all passes agree
};
McDropoutResult mc_dropout_predict(Network& net, const Tensor& inputs,
                                   std::size_t passes);

}  // namespace bdlfi::nn
