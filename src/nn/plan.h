// ExecutionPlan: pre-sized, allocation-free eval-mode forward execution.
//
// At first eval-mode forward the network walks its layer graph once (a probe
// forward) to size every intermediate activation, allocates all of them from
// a single 64-byte-aligned Arena, and compiles a step list referencing arena
// offsets. Steady-state evaluations then reuse the same buffers — zero heap
// allocations per forward — which is what lets a fault-injection campaign run
// millions of truncated replays without churning the allocator.
//
// The plan mirrors the legacy layer-by-layer forward exactly:
//   * Unfused execution is bit-exact with Network's legacy eval path: every
//     step calls the same kernels in the same order on the same values.
//   * Activation hooks fire once per *top-level* layer index with a borrowed
//     view of the arena slot — the same indices, values, and mutation
//     semantics as the legacy path (BasicBlock internals are never exposed,
//     exactly as before).
//   * ABFT checking and compute-fault plans run through the plan with the
//     same per-layer OpContext the legacy path installs (block-inner convs
//     get the flip-stripped context, matching BasicBlock::forward).
//
// Eval-mode fusion (opt-in via Network::set_eval_fusion) adds a second,
// fused lowering per BasicBlock: BN folded into the preceding conv's
// weights/bias (conv1+bn1+relu and conv2+bn2 / proj+proj_bn become single
// conv steps). Folding happens per execution from the live golden tensors, so
// weight-resident bit flips on either the conv or the BN parameters stay
// visible. Folding is restricted to block internals: those activations are
// never hook-addressable, so golden capture and masked evaluation see the
// same (folded) arithmetic and fault-free runs stay SDC-free. Top-level
// dense+relu pairs are additionally elided into one step when no hook is
// installed — that fusion is bit-exact (relu runs in place on the dense
// output), so it needs no tolerance. Checked (ABFT / compute-fault) and
// profiled runs always take the unfused steps.
//
// Thread safety: a plan owns one arena; run() is single-threaded per network
// instance, like the legacy forward (kernels still parallelize internally).
// Cloned networks compile their own plans — independent arenas by design.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/arena.h"
#include "nn/network.h"

namespace bdlfi::nn {

class BasicBlock;
class BatchNorm2d;
class Conv2d;

/// Per-forward scratch handed to Layer::forward_into. Grow-once: custom
/// layers may stage into `scratch` instead of allocating.
struct Workspace {
  std::vector<float> scratch;
};

/// Folds an eval-mode BatchNorm into the preceding convolution/dense weights:
///   scale[o] = gamma[o] / sqrt(running_var[o] + eps)
///   Wf[o,..] = W[o,..] * scale[o]
///   bf[o]    = (bias[o] or 0) * scale[o] + beta[o] - running_mean[o]*scale[o]
/// `weight` must be [O, ...] with the output channel outermost (OIHW convs,
/// [out, in] dense). `folded_weight`/`folded_bias` must be pre-shaped to
/// [O, ...] / [O]. Exposed for per-variant folding in the batched multi-mask
/// evaluator.
void fold_conv_bn(const Tensor& weight, const Tensor& bias, BatchNorm2d& bn,
                  Tensor& folded_weight, Tensor& folded_bias);

class ExecutionPlan {
 public:
  /// Compiles a plan for `net` by probing one legacy eval forward with
  /// `probe_input` (shapes are recorded; no layer state is perturbed — the
  /// caller must have verified plan_eval_safe() on every layer). The
  /// profiling flag is snapshotted here: toggling Network profiling
  /// invalidates the plan rather than changing a compiled one mid-campaign.
  static std::unique_ptr<ExecutionPlan> compile(Network& net,
                                                const Tensor& probe_input);

  /// True when this plan can execute layers [first_layer, end) on an
  /// activation of shape `shape` (shape must equal the probe activation
  /// entering that layer).
  bool covers(std::size_t first_layer, const Shape& shape) const;

  /// Runs layers [first_layer, end). `input` is the activation entering
  /// `first_layer`. Returns a borrowed view of the logits arena slot — valid
  /// until the next run() or plan destruction; copy to keep. `fuse` requests
  /// the fused lowering (ignored for checked or profiled execution).
  const Tensor& run(Network& net, std::size_t first_layer, const Tensor& input,
                    const Network::ActivationHook& hook, bool fuse);

  /// Profiling state captured at compile time (see Network::set_layer_profiling).
  bool profiling_snapshot() const { return profile_; }

  /// Arena capacity in floats — the planned high-water mark.
  std::size_t arena_floats() const { return arena_.size(); }
  /// Number of distinct rotating activation buffers the plan uses.
  std::size_t num_buffers() const { return buffer_sizes_.size(); }
  /// True if the compiled plan has any fused/folded lowering to offer.
  bool fusion_compiled() const;

 private:
  ExecutionPlan() = default;

  struct Step {
    enum class Op {
      kForwardInto,  // layer->forward_into(in, out, ws)
      kFoldedConv,   // conv with BN-folded weights; optional fused relu
      kDenseRelu,    // dense forward_into then relu in place (bit-exact)
      kAdd,          // out += in (residual join; in may be the group input)
      kRelu,         // relu in place on out
    };
    Op op = Op::kForwardInto;
    Layer* layer = nullptr;    // executed layer (kForwardInto / kDenseRelu)
    Conv2d* conv = nullptr;    // kFoldedConv source conv
    bool block_inner = false;  // lowered from inside a BasicBlock
    int in_buf = -1;           // -1: the group's input activation
    int out_buf = 0;
    int fold = -1;             // index into folds_ (kFoldedConv)
    bool relu_after = false;   // kFoldedConv: fused trailing relu
    Shape in_shape, out_shape;
    Tensor in_view, out_view;  // borrowed arena views (in_view unused if in_buf < 0)
  };

  struct Fold {
    Conv2d* conv = nullptr;
    BatchNorm2d* bn = nullptr;
    // Folded weights, lazily allocated on the first fused run and refreshed
    // from the live golden tensors before every fused execution.
    Tensor wf, bf;
  };

  struct Group {
    std::size_t layer = 0;  // top-level layer index (hook index)
    Shape in_shape, out_shape;
    int out_buf = 0;
    Tensor out_view;          // borrowed arena view handed to hooks
    std::vector<Step> steps;  // unfused lowering (always present)
    std::vector<Step> fused;  // fused lowering (empty: use steps)
    // Exact multi-group elision (dense+relu): when span_len > 1 and fusion is
    // on with no hook and no profiling, span_steps replaces this group and
    // the next span_len - 1 groups.
    std::size_t span_len = 1;
    std::vector<Step> span_steps;
  };

  void lower_layer(Network& net, std::size_t index, const Shape& in_shape,
                   const Shape& out_shape, int in_buf);
  void lower_block(BasicBlock& blk, Group& grp, int in_buf);
  int fresh_buffer(std::initializer_list<int> avoid);
  void note_use(int buf, std::int64_t numel);
  void finalize();
  void refold_all();
  void exec_step(Step& step, const Tensor& group_in, bool checked,
                 const tensor::abft::OpContext* ctx,
                 const tensor::abft::OpContext* inner_ctx);

  bool profile_ = false;
  std::vector<Group> groups_;
  std::vector<Fold> folds_;
  std::vector<std::int64_t> buffer_sizes_;  // floats, high-water per buffer
  std::vector<std::size_t> buffer_offsets_;
  Arena arena_;
  Workspace ws_;
};

}  // namespace bdlfi::nn
