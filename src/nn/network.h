// Network: an ordered container of layers with end-to-end forward/backward,
// stable parameter enumeration, deep cloning, and per-layer activation hooks
// used by the fault injector to corrupt intermediate activations in flight.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace bdlfi::nn {

/// Transient compute faults for one forward pass: layer index → sorted
/// (output element, bit) flips applied to that layer's raw GEMM results
/// mid-compute. Non-owning; installed per evaluation, never cloned.
using ComputeFaultPlan = std::map<std::size_t, tensor::abft::FlipList>;

class ExecutionPlan;

class Network {
 public:
  Network();
  ~Network();
  Network(Network&&) noexcept;
  Network& operator=(Network&&) noexcept;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Appends a layer with an explicit name (names must be unique; they anchor
  /// fault-site addressing and checkpoint matching).
  void add(std::string name, std::unique_ptr<Layer> layer);

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i).entry; }
  const std::string& layer_name(std::size_t i) const {
    return layers_.at(i).name;
  }
  std::string layer_kind(std::size_t i) const {
    return layers_.at(i).entry->kind();
  }

  /// Called after layer `i` produces its output; may mutate the activation.
  /// This is how BDLFI injects activation/memory faults mid-network without
  /// any ptrace-style system support (§I of the paper).
  using ActivationHook =
      std::function<void(std::size_t layer_index, Tensor& activation)>;

  /// Forward pass. `training` enables backward caches and batch-stat BN.
  Tensor forward(const Tensor& x, bool training = false,
                 const ActivationHook& hook = nullptr);

  /// Resumes inference mid-network: runs layers [first_layer, num_layers())
  /// on `act`, which must be the activation *entering* layer `first_layer`
  /// (i.e. the output of layer first_layer-1, or the network input when
  /// first_layer == 0). `hook` fires with the same layer indices as forward().
  /// first_layer == num_layers() returns `act` unchanged. In eval mode every
  /// layer is a deterministic function of its input, so replaying a suffix
  /// from a cached golden activation is bit-exact with a full forward — the
  /// invariant the truncated mask-evaluation pipeline rests on.
  Tensor forward_from(std::size_t first_layer, Tensor act,
                      bool training = false,
                      const ActivationHook& hook = nullptr);

  /// Zero-copy eval forward: like forward_from(first_layer, act, false, hook)
  /// but returns a borrowed reference to the logits — on the planned path, a
  /// view of the plan's arena slot; otherwise a reference to an internal
  /// fallback tensor. Valid until the next forward on this network; copy to
  /// keep. This is the hot path for mask-evaluation loops: steady state
  /// performs zero heap allocations.
  const Tensor& forward_view(std::size_t first_layer, const Tensor& act,
                             const ActivationHook& hook = nullptr);

  /// Planned execution toggle (default on). Eval-mode forwards compile an
  /// ExecutionPlan on first use — pre-sized arena buffers, no per-eval
  /// allocations — and are bit-exact with the legacy path when fusion is off.
  /// Training forwards, MC-dropout networks, and calibrating range guards
  /// always take the legacy path regardless.
  void set_planned(bool on);
  bool planned() const { return planned_; }

  /// Eval-mode fusion (default off; the --no-fuse escape hatch maps to
  /// set_eval_fusion(false)). Folds BN into conv weights inside residual
  /// blocks and elides dense+relu pairs. BN folding changes rounding relative
  /// to the unfused path (documented tolerance in DESIGN.md §13); dense+relu
  /// elision is bit-exact. A deployment property: clone() copies it. Ignored
  /// for checked (ABFT/compute-fault) and profiled forwards.
  void set_eval_fusion(bool on) { fuse_ = on; }
  bool eval_fusion() const { return fuse_; }

  /// The plan that covers an eval forward starting at layer 0 with input
  /// shape `shape`, or nullptr if none has been compiled yet. Test/telemetry
  /// introspection (arena high-water mark, buffer count).
  const ExecutionPlan* plan_for(const Shape& shape) const;

  /// Backward from d(loss)/d(logits); returns d(loss)/d(input).
  Tensor backward(const Tensor& grad_logits);

  void zero_grad();

  /// Stable, order-deterministic parameter enumeration. Pointers are valid
  /// until the network is modified or destroyed.
  std::vector<ParamRef> params();

  /// Non-trainable buffers (BN running stats), same ordering guarantees.
  std::vector<ParamRef> buffers();

  /// params() followed by buffers() — the full persistent state.
  std::vector<ParamRef> state();

  std::int64_t num_params();

  /// Deep copy of topology + parameters (not caches).
  Network clone() const;

  /// Class predictions (argmax of logits) for a batch.
  std::vector<std::int64_t> predict(const Tensor& x,
                                    const ActivationHook& hook = nullptr);

  /// Fraction of rows of `x` whose argmax equals `labels`.
  double accuracy(const Tensor& x, const std::vector<std::int64_t>& labels,
                  const ActivationHook& hook = nullptr);

  /// One-line-per-layer summary (name, kind, #params).
  std::string summary();

  /// Optional per-layer forward timing. Off by default (zero overhead); when
  /// on, every forward/forward_from accumulates wall time per layer. Not
  /// copied by clone(). Not thread-safe: profile a network from one thread.
  ///
  /// Interaction with planned execution: the flag is snapshotted when a plan
  /// is compiled, and toggling it invalidates compiled plans. This makes
  /// mid-campaign toggles well-defined — a layer is timed exactly once per
  /// forward from the next forward onward, never double-counted across
  /// fused/replayed steps. Accumulated seconds/calls survive re-enabling
  /// (use reset_layer_profile() to zero them).
  void set_layer_profiling(bool on);
  bool layer_profiling() const { return profile_; }
  struct LayerTiming {
    std::string name;
    std::string kind;
    double seconds = 0.0;
    std::size_t calls = 0;
  };
  /// One entry per layer (zeros for layers never executed while profiling).
  std::vector<LayerTiming> layer_profile() const;
  void reset_layer_profile();

  /// ABFT self-checking deployment for this network's GEMM-bearing layers
  /// (DESIGN.md §9). A *deployment property*: clone() copies it, so every
  /// MCMC replica of a protected network is protected the same way. With
  /// mode == kOff and no compute-fault plan, forward takes exactly today's
  /// code path (bit-exact parity).
  void set_abft(tensor::abft::Config config) { abft_ = config; }
  const tensor::abft::Config& abft() const { return abft_; }

  /// Restricts ABFT checking to a subset of layer indices — selective
  /// protection placement (DESIGN.md §14). Empty (the default) checks every
  /// GEMM-bearing layer, today's behavior. Unselected layers still *suffer*
  /// installed compute faults; they are simply unchecked, like an unprotected
  /// deployment. A deployment property: clone() copies it, and a non-empty
  /// restriction is appended to the campaign checkpoint fingerprint.
  void set_abft_layers(std::vector<std::size_t> layers);
  const std::vector<std::size_t>& abft_layers() const { return abft_layers_; }
  bool abft_layer_checked(std::size_t i) const;

  /// Cumulative ABFT/compute-fault counters for this network instance.
  /// Lazily created (atomics are not copyable; the network stays movable);
  /// clone() starts the copy at zero.
  tensor::abft::Stats& abft_stats() const;

  /// Installs (nullptr clears) the transient compute faults for subsequent
  /// forwards. Flips apply whether or not ABFT checking is on — an
  /// unprotected deployment still suffers the fault, it just never notices.
  void set_compute_fault_plan(const ComputeFaultPlan* plan) {
    compute_plan_ = plan;
  }

 private:
  friend class ExecutionPlan;

  struct Entry {
    std::string name;
    std::unique_ptr<Layer> entry;
  };

  /// Runs the planned path if a plan applies (compiling one when starting at
  /// layer 0); returns nullptr when the planned path cannot serve this call
  /// and the caller must fall back to the legacy loop.
  const Tensor* planned_forward(std::size_t first_layer, const Tensor& act,
                                const ActivationHook& hook);
  Tensor forward_from_legacy(std::size_t first_layer, Tensor act,
                             bool training, const ActivationHook& hook);

  std::vector<Entry> layers_;
  bool profile_ = false;
  std::vector<double> layer_seconds_;
  std::vector<std::size_t> layer_calls_;
  tensor::abft::Config abft_;
  std::vector<std::size_t> abft_layers_;  // sorted; empty = all layers
  mutable std::unique_ptr<tensor::abft::Stats> abft_stats_;
  const ComputeFaultPlan* compute_plan_ = nullptr;
  // Compiled execution plans, one per distinct probe shape (bounded LRU-ish
  // cache: oldest evicted). Per-instance — clones compile their own plans and
  // therefore own independent arenas.
  std::vector<std::unique_ptr<ExecutionPlan>> plans_;
  bool planned_ = true;
  bool fuse_ = false;
  Tensor fallback_logits_;  // forward_view storage on the legacy path
};

}  // namespace bdlfi::nn
