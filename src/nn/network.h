// Network: an ordered container of layers with end-to-end forward/backward,
// stable parameter enumeration, deep cloning, and per-layer activation hooks
// used by the fault injector to corrupt intermediate activations in flight.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace bdlfi::nn {

/// Transient compute faults for one forward pass: layer index → sorted
/// (output element, bit) flips applied to that layer's raw GEMM results
/// mid-compute. Non-owning; installed per evaluation, never cloned.
using ComputeFaultPlan = std::map<std::size_t, tensor::abft::FlipList>;

class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Appends a layer with an explicit name (names must be unique; they anchor
  /// fault-site addressing and checkpoint matching).
  void add(std::string name, std::unique_ptr<Layer> layer);

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i).entry; }
  const std::string& layer_name(std::size_t i) const {
    return layers_.at(i).name;
  }
  std::string layer_kind(std::size_t i) const {
    return layers_.at(i).entry->kind();
  }

  /// Called after layer `i` produces its output; may mutate the activation.
  /// This is how BDLFI injects activation/memory faults mid-network without
  /// any ptrace-style system support (§I of the paper).
  using ActivationHook =
      std::function<void(std::size_t layer_index, Tensor& activation)>;

  /// Forward pass. `training` enables backward caches and batch-stat BN.
  Tensor forward(const Tensor& x, bool training = false,
                 const ActivationHook& hook = nullptr);

  /// Resumes inference mid-network: runs layers [first_layer, num_layers())
  /// on `act`, which must be the activation *entering* layer `first_layer`
  /// (i.e. the output of layer first_layer-1, or the network input when
  /// first_layer == 0). `hook` fires with the same layer indices as forward().
  /// first_layer == num_layers() returns `act` unchanged. In eval mode every
  /// layer is a deterministic function of its input, so replaying a suffix
  /// from a cached golden activation is bit-exact with a full forward — the
  /// invariant the truncated mask-evaluation pipeline rests on.
  Tensor forward_from(std::size_t first_layer, Tensor act,
                      bool training = false,
                      const ActivationHook& hook = nullptr);

  /// Backward from d(loss)/d(logits); returns d(loss)/d(input).
  Tensor backward(const Tensor& grad_logits);

  void zero_grad();

  /// Stable, order-deterministic parameter enumeration. Pointers are valid
  /// until the network is modified or destroyed.
  std::vector<ParamRef> params();

  /// Non-trainable buffers (BN running stats), same ordering guarantees.
  std::vector<ParamRef> buffers();

  /// params() followed by buffers() — the full persistent state.
  std::vector<ParamRef> state();

  std::int64_t num_params();

  /// Deep copy of topology + parameters (not caches).
  Network clone() const;

  /// Class predictions (argmax of logits) for a batch.
  std::vector<std::int64_t> predict(const Tensor& x,
                                    const ActivationHook& hook = nullptr);

  /// Fraction of rows of `x` whose argmax equals `labels`.
  double accuracy(const Tensor& x, const std::vector<std::int64_t>& labels,
                  const ActivationHook& hook = nullptr);

  /// One-line-per-layer summary (name, kind, #params).
  std::string summary();

  /// Optional per-layer forward timing. Off by default (zero overhead); when
  /// on, every forward/forward_from accumulates wall time per layer. Not
  /// copied by clone(). Not thread-safe: profile a network from one thread.
  void set_layer_profiling(bool on);
  bool layer_profiling() const { return profile_; }
  struct LayerTiming {
    std::string name;
    std::string kind;
    double seconds = 0.0;
    std::size_t calls = 0;
  };
  /// One entry per layer (zeros for layers never executed while profiling).
  std::vector<LayerTiming> layer_profile() const;
  void reset_layer_profile();

  /// ABFT self-checking deployment for this network's GEMM-bearing layers
  /// (DESIGN.md §9). A *deployment property*: clone() copies it, so every
  /// MCMC replica of a protected network is protected the same way. With
  /// mode == kOff and no compute-fault plan, forward takes exactly today's
  /// code path (bit-exact parity).
  void set_abft(tensor::abft::Config config) { abft_ = config; }
  const tensor::abft::Config& abft() const { return abft_; }

  /// Cumulative ABFT/compute-fault counters for this network instance.
  /// Lazily created (atomics are not copyable; the network stays movable);
  /// clone() starts the copy at zero.
  tensor::abft::Stats& abft_stats() const;

  /// Installs (nullptr clears) the transient compute faults for subsequent
  /// forwards. Flips apply whether or not ABFT checking is on — an
  /// unprotected deployment still suffers the fault, it just never notices.
  void set_compute_fault_plan(const ComputeFaultPlan* plan) {
    compute_plan_ = plan;
  }

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<Layer> entry;
  };
  std::vector<Entry> layers_;
  bool profile_ = false;
  std::vector<double> layer_seconds_;
  std::vector<std::size_t> layer_calls_;
  tensor::abft::Config abft_;
  mutable std::unique_ptr<tensor::abft::Stats> abft_stats_;
  const ComputeFaultPlan* compute_plan_ = nullptr;
};

}  // namespace bdlfi::nn
