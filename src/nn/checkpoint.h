// Binary checkpointing of network parameters (and BN running stats).
//
// Format: magic "BDLFIckp" | u32 version | u64 #entries | entries, each
//   u32 name_len | name bytes | u32 rank | i64 dims[rank] | f32 data[numel].
// Running BN statistics are saved as pseudo-parameters suffixed
// ".running_mean"/".running_var" so an eval-mode network restores exactly.
#pragma once

#include <string>

#include "nn/network.h"

namespace bdlfi::nn {

/// Writes all parameters; returns false (and logs) on I/O error.
bool save_checkpoint(Network& net, const std::string& path);

/// Restores into an already-constructed network of identical topology.
/// Returns false on missing file, magic/shape mismatch, or truncation.
bool load_checkpoint(Network& net, const std::string& path);

}  // namespace bdlfi::nn
