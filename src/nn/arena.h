// Planned-allocation arena for eval-mode activations.
//
// An ExecutionPlan sizes every intermediate blob of a network once at
// compile time and carves them out of a single 64-byte-aligned float buffer.
// The arena is allocated exactly once per plan (grow-once; recompiling for a
// new shape reallocates), then reused across every subsequent eval — the
// reset-per-eval semantics are implicit: each plan step overwrites its slot
// in full, so there is nothing to clear between evals. Cloned networks
// compile their own plans and therefore own independent arenas.
//
// The process-wide allocation counter exists for tests: the steady-state
// zero-allocation guarantee is checked by asserting the counter (and the
// instrumented global allocator) stay flat across thousands of evals.
#pragma once

#include <cstddef>

namespace bdlfi::nn {

class Arena {
 public:
  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Ensures capacity for `floats` elements, 64-byte aligned. Growing frees
  /// the old buffer (plan compilation re-derives every offset anyway);
  /// shrinking requests keep the current buffer.
  void reserve(std::size_t floats);

  float* data() { return data_; }
  const float* data() const { return data_; }
  /// Base pointer displaced by a compile-time slot offset (in floats).
  float* at(std::size_t offset) { return data_ + offset; }

  std::size_t size() const { return size_; }

  /// Process-wide count of arena buffer allocations ever made. Steady-state
  /// eval loops must leave this unchanged.
  static std::size_t total_allocations();

 private:
  float* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace bdlfi::nn
