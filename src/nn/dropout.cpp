#include "nn/dropout.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "tensor/ops.h"
#include "util/check.h"

namespace bdlfi::nn {

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  BDLFI_CHECK(rate >= 0.0 && rate < 1.0);
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  const bool sample = training || mc_mode_;
  if (!sample || rate_ == 0.0) {
    cached_mask_ = Tensor{};  // identity pass: backward is identity too
    return x;
  }
  const auto scale = static_cast<float>(1.0 / (1.0 - rate_));
  Tensor mask{x.shape()};
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = rng_.bernoulli(rate_) ? 0.0f : scale;
  }
  Tensor y{x.shape()};
  for (std::int64_t i = 0; i < y.numel(); ++i) y[i] = x[i] * mask[i];
  if (training) cached_mask_ = std::move(mask);
  return y;
}

void Dropout::forward_into(const Tensor& in, Tensor& out, Workspace& /*ws*/) {
  // Planned execution is eval-mode and plan_eval_safe() gates out MC mode,
  // so this is always the identity pass.
  BDLFI_CHECK(!mc_mode_);
  BDLFI_CHECK(in.numel() == out.numel());
  if (out.data() != in.data()) {
    std::copy_n(in.data(), static_cast<std::size_t>(in.numel()), out.data());
  }
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (cached_mask_.empty()) return grad_output;
  BDLFI_CHECK(grad_output.shape() == cached_mask_.shape());
  Tensor grad = grad_output;
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    grad[i] *= cached_mask_[i];
  }
  return grad;
}

std::unique_ptr<Layer> Dropout::clone() const {
  auto copy = std::make_unique<Dropout>(rate_);
  copy->mc_mode_ = mc_mode_;
  copy->rng_ = rng_;
  return copy;
}

std::size_t set_mc_dropout(Network& net, bool enabled) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    if (auto* dropout = dynamic_cast<Dropout*>(&net.layer(i))) {
      dropout->set_mc_mode(enabled);
      ++count;
    }
  }
  return count;
}

McDropoutResult mc_dropout_predict(Network& net, const Tensor& inputs,
                                   std::size_t passes) {
  BDLFI_CHECK(passes >= 1);
  const std::size_t n = static_cast<std::size_t>(inputs.shape()[0]);
  std::vector<std::map<std::int64_t, std::size_t>> votes(n);
  for (std::size_t pass = 0; pass < passes; ++pass) {
    const auto preds = net.predict(inputs);
    for (std::size_t i = 0; i < n; ++i) ++votes[i][preds[i]];
  }
  McDropoutResult result;
  result.predictions.resize(n);
  result.vote_entropy.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t best = -1;
    std::size_t best_count = 0;
    double entropy = 0.0;
    for (const auto& [cls, count] : votes[i]) {
      if (count > best_count) {
        best_count = count;
        best = cls;
      }
      const double frac =
          static_cast<double>(count) / static_cast<double>(passes);
      entropy -= frac * std::log(frac);
    }
    result.predictions[i] = best;
    result.vote_entropy[i] = entropy;
  }
  return result;
}

}  // namespace bdlfi::nn
