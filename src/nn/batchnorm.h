// Batch normalization over the channel axis of NCHW tensors.
//
// Training mode normalizes with batch statistics and maintains running
// moments; eval mode (the mode all fault-injection forward passes use)
// normalizes with the frozen running moments, making the layer a per-channel
// affine map — exactly the behaviour of a deployed ResNet whose BN has been
// folded at inference time.
#pragma once

#include "nn/layer.h"

namespace bdlfi::nn {

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  std::string kind() const override { return "bn"; }
  Tensor forward(const Tensor& x, bool training) override;
  void forward_into(const Tensor& in, Tensor& out, Workspace& ws) override;
  bool inplace_capable() const override { return true; }
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix,
                      std::vector<ParamRef>& out) override;
  void collect_buffers(const std::string& prefix,
                       std::vector<ParamRef>& out) override;
  void zero_grad() override;
  std::unique_ptr<Layer> clone() const override;

  std::int64_t channels() const { return channels_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  // Affine parameters and epsilon, exposed for eval-mode BN folding (the
  // ExecutionPlan folds scale/shift into the preceding conv's weights).
  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }
  float eps() const { return eps_; }

 private:
  std::int64_t channels_;
  float eps_, momentum_;
  Tensor gamma_, beta_;
  Tensor grad_gamma_, grad_beta_;
  Tensor running_mean_, running_var_;
  // Backward caches (training mode only).
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // [C]
};

}  // namespace bdlfi::nn
