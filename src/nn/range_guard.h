// Range guards: activation-clamping fault detectors/correctors.
//
// A deployed fault-tolerance mechanism (Ranger, and the "reliability
// features" §III of the paper calls for): during fault-free calibration each
// guard records the min/max its input ever takes; at inference it clamps
// values outside the (slightly widened) range and squashes NaN to the range
// midpoint. Transient faults that blow an activation out to huge magnitudes
// are thereby contained before they can propagate to the output — at zero
// cost to fault-free accuracy, since in-range values pass through untouched.
//
// Usage: build the network with guards (or wrap one via add_range_guards),
// run calibrate-mode forwards on clean data, then freeze.
#pragma once

#include <atomic>

#include "nn/layer.h"
#include "nn/network.h"

namespace bdlfi::nn {

class RangeGuard : public Layer {
 public:
  /// margin: fractional widening of the calibrated range (0.1 = ±10%).
  explicit RangeGuard(double margin = 0.1);

  std::string kind() const override { return "guard"; }
  Tensor forward(const Tensor& x, bool training) override;
  void forward_into(const Tensor& in, Tensor& out, Workspace& ws) override;
  bool inplace_capable() const override { return true; }
  /// Calibration records state per forward; route it through the legacy path
  /// so the plan's shape probe cannot double-record.
  bool plan_eval_safe() const override { return !calibrating_; }
  /// Straight-through gradient (clamping is inactive on clean training data).
  Tensor backward(const Tensor& grad_output) override { return grad_output; }
  std::unique_ptr<Layer> clone() const override;

  /// While calibrating, forward() records min/max and never clamps.
  void set_calibrating(bool on) { calibrating_ = on; }
  bool calibrating() const { return calibrating_; }
  bool is_calibrated() const { return calibrated_; }
  float lo() const { return lo_; }
  float hi() const { return hi_; }
  /// Number of values clamped/squashed since construction (telemetry — the
  /// clamp is *silent* at inference; a deployed system would have to poll
  /// this to notice anything, so it does NOT count as fault detection in the
  /// outcome taxonomy). Atomic: MCMC chains evaluate a guarded network under
  /// util::parallel_for, and a shared network must tally safely.
  std::size_t corrections() const {
    return corrections_.load(std::memory_order_relaxed);
  }

 private:
  double margin_;
  bool calibrating_ = false;
  bool calibrated_ = false;
  float lo_ = 0.0f, hi_ = 0.0f;
  // Clone semantics (explicit): clone() copies the calibrated range but
  // starts the copy's counter at ZERO — each per-chain replica counts its own
  // firings, and a campaign-wide total is the sum over replicas.
  std::atomic<std::size_t> corrections_{0};
};

/// Builds a guarded twin of `net`: a RangeGuard is inserted after every
/// layer, calibrated by running the provided clean inputs through it.
/// Guard names are "<layer>_guard". Returns the hardened network (inference
/// use; training through it is supported but guards stay frozen).
Network add_range_guards(const Network& net, const Tensor& calibration_inputs,
                         double margin = 0.1);

/// Selective variant (budgeted protection placement, DESIGN.md §14): guards
/// only the listed layer indices of `net` (pre-insertion numbering; each
/// guard lands immediately after its layer). An empty list returns an
/// unguarded clone. Layers after an inserted guard shift up by one per guard
/// before them — harden::apply_plan remaps ABFT indices accordingly.
Network add_range_guards_at(const Network& net,
                            const std::vector<std::size_t>& layers,
                            const Tensor& calibration_inputs,
                            double margin = 0.1);

/// Sum of corrections() over all guards — total detector firings.
std::size_t total_guard_corrections(Network& net);

}  // namespace bdlfi::nn
