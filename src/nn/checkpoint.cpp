#include "nn/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/log.h"

namespace bdlfi::nn {

namespace {

constexpr char kMagic[8] = {'B', 'D', 'L', 'F', 'I', 'c', 'k', 'p'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
bool read_pod(std::ifstream& f, T& v) {
  f.read(reinterpret_cast<char*>(&v), sizeof v);
  return static_cast<bool>(f);
}

}  // namespace

bool save_checkpoint(Network& net, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    BDLFI_LOG_ERROR("save_checkpoint: cannot open %s", path.c_str());
    return false;
  }
  f.write(kMagic, sizeof kMagic);
  write_pod(f, kVersion);
  const auto refs = net.state();
  write_pod(f, static_cast<std::uint64_t>(refs.size()));
  for (const auto& r : refs) {
    write_pod(f, static_cast<std::uint32_t>(r.name.size()));
    f.write(r.name.data(), static_cast<std::streamsize>(r.name.size()));
    write_pod(f, static_cast<std::uint32_t>(r.value->shape().rank()));
    for (int d = 0; d < r.value->shape().rank(); ++d) {
      write_pod(f, static_cast<std::int64_t>(r.value->shape()[d]));
    }
    f.write(reinterpret_cast<const char*>(r.value->data()),
            static_cast<std::streamsize>(r.value->numel() * sizeof(float)));
  }
  return static_cast<bool>(f);
}

bool load_checkpoint(Network& net, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    BDLFI_LOG_ERROR("load_checkpoint: cannot open %s", path.c_str());
    return false;
  }
  char magic[8];
  f.read(magic, sizeof magic);
  if (!f || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    BDLFI_LOG_ERROR("load_checkpoint: bad magic in %s", path.c_str());
    return false;
  }
  std::uint32_t version = 0;
  if (!read_pod(f, version) || version != kVersion) {
    BDLFI_LOG_ERROR("load_checkpoint: unsupported version");
    return false;
  }
  std::uint64_t count = 0;
  if (!read_pod(f, count)) return false;

  auto refs = net.state();
  if (count != refs.size()) {
    BDLFI_LOG_ERROR("load_checkpoint: entry count mismatch (%llu vs %zu)",
                    static_cast<unsigned long long>(count), refs.size());
    return false;
  }
  for (auto& r : refs) {
    std::uint32_t name_len = 0;
    if (!read_pod(f, name_len)) return false;
    std::string name(name_len, '\0');
    f.read(name.data(), name_len);
    if (!f || name != r.name) {
      BDLFI_LOG_ERROR("load_checkpoint: name mismatch: '%s' vs '%s'",
                      name.c_str(), r.name.c_str());
      return false;
    }
    std::uint32_t rank = 0;
    if (!read_pod(f, rank) ||
        rank != static_cast<std::uint32_t>(r.value->shape().rank())) {
      BDLFI_LOG_ERROR("load_checkpoint: rank mismatch for %s", name.c_str());
      return false;
    }
    for (std::uint32_t d = 0; d < rank; ++d) {
      std::int64_t dim = 0;
      if (!read_pod(f, dim) || dim != r.value->shape()[static_cast<int>(d)]) {
        BDLFI_LOG_ERROR("load_checkpoint: shape mismatch for %s",
                        name.c_str());
        return false;
      }
    }
    f.read(reinterpret_cast<char*>(r.value->data()),
           static_cast<std::streamsize>(r.value->numel() * sizeof(float)));
    if (!f) {
      BDLFI_LOG_ERROR("load_checkpoint: truncated data for %s", name.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace bdlfi::nn
