// Golden activation cache for truncated forward replay.
//
// One eval-mode forward pass of a fixed batch is recorded layer by layer;
// afterwards, inference can resume from any cached layer via
// Network::forward_from instead of re-running the whole network. Because
// eval-mode layers (including BN on running stats) are deterministic pure
// functions of their input, a replay from a cached golden prefix is
// bit-identical to a full forward — so a fault campaign whose mask first
// touches layer L only pays for layers [L, depth) per evaluation.
//
// Memory is bounded: `capture` retains the longest *prefix* of per-layer
// activations whose cumulative size fits `budget_bytes` (a prefix, not a
// subset, because a replay starting at layer L needs exactly act[L-1]).
// Layer sizes are recorded for every layer regardless of retention, so the
// cache doubles as the activation geometry oracle for fault-site addressing.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.h"

namespace bdlfi::nn {

class ActivationCache {
 public:
  ActivationCache() = default;

  /// Runs one eval-mode forward of `net` on `input`, retaining the longest
  /// prefix of per-layer output activations that fits `budget_bytes`
  /// (budget 0 retains nothing — full-forward fallback). Records every
  /// layer's element count regardless. Returns the final logits.
  Tensor capture(Network& net, const Tensor& input, std::size_t budget_bytes);

  /// Number of layers observed by the captured forward (0 before capture).
  std::size_t num_layers() const { return layer_numel_.size(); }
  /// Cached prefix length: activations of layers [0, cached_layers()) are
  /// retained.
  std::size_t cached_layers() const { return cached_.size(); }
  bool has(std::size_t layer) const { return layer < cached_.size(); }

  /// Golden output activation of layer `layer`; only valid when has(layer).
  const Tensor& activation(std::size_t layer) const;

  /// Output element count of layer `layer` under the captured batch
  /// (recorded for all layers, cached or not).
  std::int64_t layer_numel(std::size_t layer) const;

  std::size_t bytes_retained() const { return bytes_; }

 private:
  std::vector<Tensor> cached_;             // prefix [0, cached_.size())
  std::vector<std::int64_t> layer_numel_;  // all layers
  std::size_t bytes_ = 0;
};

}  // namespace bdlfi::nn
