#include "nn/network.h"

#include <algorithm>
#include <sstream>

#include "nn/plan.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace bdlfi::nn {

// Out-of-line so the unique_ptr<ExecutionPlan> members see a complete type.
Network::Network() = default;
Network::~Network() = default;
Network::Network(Network&&) noexcept = default;
Network& Network::operator=(Network&&) noexcept = default;

void Network::add(std::string name, std::unique_ptr<Layer> layer) {
  BDLFI_CHECK(layer != nullptr);
  for (const auto& e : layers_) {
    BDLFI_CHECK_MSG(e.name != name, "duplicate layer name");
  }
  layers_.push_back({std::move(name), std::move(layer)});
}

Tensor Network::forward(const Tensor& x, bool training,
                        const ActivationHook& hook) {
  BDLFI_CHECK_MSG(!layers_.empty(), "forward on empty network");
  return forward_from(0, x, training, hook);
}

Tensor Network::forward_from(std::size_t first_layer, Tensor act,
                             bool training, const ActivationHook& hook) {
  BDLFI_CHECK_MSG(first_layer <= layers_.size(),
                  "forward_from past the end of the network");
  if (!training && planned_ && first_layer < layers_.size()) {
    if (const Tensor* out = planned_forward(first_layer, act, hook)) {
      return *out;  // deep copy: the arena view materializes to owned storage
    }
  }
  return forward_from_legacy(first_layer, std::move(act), training, hook);
}

const Tensor& Network::forward_view(std::size_t first_layer, const Tensor& act,
                                    const ActivationHook& hook) {
  BDLFI_CHECK_MSG(first_layer <= layers_.size(),
                  "forward_view past the end of the network");
  if (planned_ && first_layer < layers_.size()) {
    if (const Tensor* out = planned_forward(first_layer, act, hook)) {
      return *out;
    }
  }
  fallback_logits_ =
      forward_from_legacy(first_layer, act, /*training=*/false, hook);
  return fallback_logits_;
}

const Tensor* Network::planned_forward(std::size_t first_layer,
                                       const Tensor& act,
                                       const ActivationHook& hook) {
  // A single unsafe layer (MC-mode dropout, calibrating guard) routes the
  // whole forward through the legacy path — per-call, so toggling works.
  for (const auto& e : layers_) {
    if (!e.entry->plan_eval_safe()) return nullptr;
  }
  for (auto& plan : plans_) {
    if (plan->covers(first_layer, act.shape())) {
      return &plan->run(*this, first_layer, act, hook, fuse_);
    }
  }
  // Compiling needs a full-network probe, so only a layer-0 call can create
  // a plan; mid-network entries with an unknown shape fall back.
  if (first_layer != 0) return nullptr;
  constexpr std::size_t kMaxPlans = 4;
  if (plans_.size() >= kMaxPlans) plans_.erase(plans_.begin());
  plans_.push_back(ExecutionPlan::compile(*this, act));
  return &plans_.back()->run(*this, first_layer, act, hook, fuse_);
}

void Network::set_planned(bool on) {
  planned_ = on;
  if (!on) plans_.clear();
}

const ExecutionPlan* Network::plan_for(const Shape& shape) const {
  for (const auto& plan : plans_) {
    if (plan->covers(0, shape)) return plan.get();
  }
  return nullptr;
}

Tensor Network::forward_from_legacy(std::size_t first_layer, Tensor act,
                                    bool training,
                                    const ActivationHook& hook) {
  // Self-checking forward only when something asks for it (ABFT on, or a
  // compute-fault plan installed); otherwise the loops below are exactly the
  // unchecked forward — the bit-exact-parity guarantee of abft.h.
  const bool checked =
      abft_.mode != tensor::abft::Mode::kOff ||
      (compute_plan_ != nullptr && !compute_plan_->empty());
  const auto run_checked = [&](std::size_t i) {
    tensor::abft::OpContext ctx;
    ctx.config = abft_;
    // Layers outside a selective-placement restriction run unchecked (mode
    // off) but keep their flips: the fault still strikes, nothing notices.
    if (!abft_layer_checked(i)) ctx.config.mode = tensor::abft::Mode::kOff;
    ctx.stats = &abft_stats();
    if (compute_plan_ != nullptr) {
      const auto it = compute_plan_->find(i);
      if (it != compute_plan_->end()) ctx.flips = &it->second;
    }
    layers_[i].entry->set_compute_context(&ctx);
    Tensor out = layers_[i].entry->forward(act, training);
    layers_[i].entry->set_compute_context(nullptr);
    return out;
  };
  if (profile_) {
    for (std::size_t i = first_layer; i < layers_.size(); ++i) {
      const util::Stopwatch timer;
      act = checked ? run_checked(i) : layers_[i].entry->forward(act, training);
      layer_seconds_[i] += timer.seconds();
      ++layer_calls_[i];
      if (hook) hook(i, act);
    }
    return act;
  }
  if (checked) {
    for (std::size_t i = first_layer; i < layers_.size(); ++i) {
      act = run_checked(i);
      if (hook) hook(i, act);
    }
    return act;
  }
  for (std::size_t i = first_layer; i < layers_.size(); ++i) {
    act = layers_[i].entry->forward(act, training);
    if (hook) hook(i, act);
  }
  return act;
}

void Network::set_abft_layers(std::vector<std::size_t> layers) {
  std::sort(layers.begin(), layers.end());
  layers.erase(std::unique(layers.begin(), layers.end()), layers.end());
  abft_layers_ = std::move(layers);
}

bool Network::abft_layer_checked(std::size_t i) const {
  return abft_layers_.empty() ||
         std::binary_search(abft_layers_.begin(), abft_layers_.end(), i);
}

tensor::abft::Stats& Network::abft_stats() const {
  if (abft_stats_ == nullptr) {
    abft_stats_ = std::make_unique<tensor::abft::Stats>();
  }
  return *abft_stats_;
}

void Network::set_layer_profiling(bool on) {
  // Plans snapshot the profiling flag at compile time; invalidate them on any
  // change so a mid-campaign toggle recompiles instead of mixing timed and
  // untimed step lists (which previously double-counted fused/replayed
  // steps). See the header for the full semantics.
  if (profile_ != on) plans_.clear();
  profile_ = on;
  if (on && layer_seconds_.size() != layers_.size()) {
    layer_seconds_.assign(layers_.size(), 0.0);
    layer_calls_.assign(layers_.size(), 0);
  }
}

std::vector<Network::LayerTiming> Network::layer_profile() const {
  std::vector<LayerTiming> out;
  out.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    LayerTiming t;
    t.name = layers_[i].name;
    t.kind = layers_[i].entry->kind();
    if (i < layer_seconds_.size()) {
      t.seconds = layer_seconds_[i];
      t.calls = layer_calls_[i];
    }
    out.push_back(std::move(t));
  }
  return out;
}

void Network::reset_layer_profile() {
  layer_seconds_.assign(layers_.size(), 0.0);
  layer_calls_.assign(layers_.size(), 0);
}

Tensor Network::backward(const Tensor& grad_logits) {
  Tensor grad = grad_logits;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    grad = layers_[i].entry->backward(grad);
  }
  return grad;
}

void Network::zero_grad() {
  for (auto& e : layers_) e.entry->zero_grad();
}

std::vector<ParamRef> Network::params() {
  std::vector<ParamRef> refs;
  for (auto& e : layers_) {
    e.entry->collect_params(e.name + ".", refs);
  }
  return refs;
}

std::vector<ParamRef> Network::buffers() {
  std::vector<ParamRef> refs;
  for (auto& e : layers_) {
    e.entry->collect_buffers(e.name + ".", refs);
  }
  return refs;
}

std::vector<ParamRef> Network::state() {
  std::vector<ParamRef> refs = params();
  auto bufs = buffers();
  refs.insert(refs.end(), bufs.begin(), bufs.end());
  return refs;
}

std::int64_t Network::num_params() {
  std::int64_t n = 0;
  for (const auto& r : params()) n += r.value->numel();
  return n;
}

Network Network::clone() const {
  Network copy;
  for (const auto& e : layers_) {
    copy.layers_.push_back({e.name, e.entry->clone()});
  }
  // ABFT is a deployment property of the network, so replicas keep it; the
  // counters and any installed compute-fault plan are per-instance state and
  // start fresh (stats at zero, no plan). Planned execution and eval fusion
  // are deployment properties too, but compiled ExecutionPlans are not
  // copied: each replica compiles its own and therefore owns an independent
  // arena.
  copy.abft_ = abft_;
  copy.abft_layers_ = abft_layers_;
  copy.planned_ = planned_;
  copy.fuse_ = fuse_;
  return copy;
}

std::vector<std::int64_t> Network::predict(const Tensor& x,
                                           const ActivationHook& hook) {
  Tensor logits = forward(x, /*training=*/false, hook);
  return tensor::argmax_rows(logits);
}

double Network::accuracy(const Tensor& x,
                         const std::vector<std::int64_t>& labels,
                         const ActivationHook& hook) {
  const auto preds = predict(x, hook);
  BDLFI_CHECK(preds.size() == labels.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++hits;
  }
  return preds.empty() ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(preds.size());
}

std::string Network::summary() {
  std::ostringstream out;
  std::int64_t total = 0;
  for (auto& e : layers_) {
    const std::int64_t n = e.entry->num_params();
    total += n;
    out << "  " << e.name << " (" << e.entry->kind() << "): " << n
        << " params\n";
  }
  out << "  total: " << total << " params\n";
  return out.str();
}

}  // namespace bdlfi::nn
