#include "nn/network.h"

#include <sstream>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace bdlfi::nn {

void Network::add(std::string name, std::unique_ptr<Layer> layer) {
  BDLFI_CHECK(layer != nullptr);
  for (const auto& e : layers_) {
    BDLFI_CHECK_MSG(e.name != name, "duplicate layer name");
  }
  layers_.push_back({std::move(name), std::move(layer)});
}

Tensor Network::forward(const Tensor& x, bool training,
                        const ActivationHook& hook) {
  BDLFI_CHECK_MSG(!layers_.empty(), "forward on empty network");
  return forward_from(0, x, training, hook);
}

Tensor Network::forward_from(std::size_t first_layer, Tensor act,
                             bool training, const ActivationHook& hook) {
  BDLFI_CHECK_MSG(first_layer <= layers_.size(),
                  "forward_from past the end of the network");
  if (profile_) {
    for (std::size_t i = first_layer; i < layers_.size(); ++i) {
      const util::Stopwatch timer;
      act = layers_[i].entry->forward(act, training);
      layer_seconds_[i] += timer.seconds();
      ++layer_calls_[i];
      if (hook) hook(i, act);
    }
    return act;
  }
  for (std::size_t i = first_layer; i < layers_.size(); ++i) {
    act = layers_[i].entry->forward(act, training);
    if (hook) hook(i, act);
  }
  return act;
}

void Network::set_layer_profiling(bool on) {
  profile_ = on;
  if (on && layer_seconds_.size() != layers_.size()) {
    layer_seconds_.assign(layers_.size(), 0.0);
    layer_calls_.assign(layers_.size(), 0);
  }
}

std::vector<Network::LayerTiming> Network::layer_profile() const {
  std::vector<LayerTiming> out;
  out.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    LayerTiming t;
    t.name = layers_[i].name;
    t.kind = layers_[i].entry->kind();
    if (i < layer_seconds_.size()) {
      t.seconds = layer_seconds_[i];
      t.calls = layer_calls_[i];
    }
    out.push_back(std::move(t));
  }
  return out;
}

void Network::reset_layer_profile() {
  layer_seconds_.assign(layers_.size(), 0.0);
  layer_calls_.assign(layers_.size(), 0);
}

Tensor Network::backward(const Tensor& grad_logits) {
  Tensor grad = grad_logits;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    grad = layers_[i].entry->backward(grad);
  }
  return grad;
}

void Network::zero_grad() {
  for (auto& e : layers_) e.entry->zero_grad();
}

std::vector<ParamRef> Network::params() {
  std::vector<ParamRef> refs;
  for (auto& e : layers_) {
    e.entry->collect_params(e.name + ".", refs);
  }
  return refs;
}

std::vector<ParamRef> Network::buffers() {
  std::vector<ParamRef> refs;
  for (auto& e : layers_) {
    e.entry->collect_buffers(e.name + ".", refs);
  }
  return refs;
}

std::vector<ParamRef> Network::state() {
  std::vector<ParamRef> refs = params();
  auto bufs = buffers();
  refs.insert(refs.end(), bufs.begin(), bufs.end());
  return refs;
}

std::int64_t Network::num_params() {
  std::int64_t n = 0;
  for (const auto& r : params()) n += r.value->numel();
  return n;
}

Network Network::clone() const {
  Network copy;
  for (const auto& e : layers_) {
    copy.layers_.push_back({e.name, e.entry->clone()});
  }
  return copy;
}

std::vector<std::int64_t> Network::predict(const Tensor& x,
                                           const ActivationHook& hook) {
  Tensor logits = forward(x, /*training=*/false, hook);
  return tensor::argmax_rows(logits);
}

double Network::accuracy(const Tensor& x,
                         const std::vector<std::int64_t>& labels,
                         const ActivationHook& hook) {
  const auto preds = predict(x, hook);
  BDLFI_CHECK(preds.size() == labels.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++hits;
  }
  return preds.empty() ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(preds.size());
}

std::string Network::summary() {
  std::ostringstream out;
  std::int64_t total = 0;
  for (auto& e : layers_) {
    const std::int64_t n = e.entry->num_params();
    total += n;
    out << "  " << e.name << " (" << e.entry->kind() << "): " << n
        << " params\n";
  }
  out << "  total: " << total << " params\n";
  return out.str();
}

}  // namespace bdlfi::nn
