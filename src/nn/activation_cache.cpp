#include "nn/activation_cache.h"

#include "util/check.h"

namespace bdlfi::nn {

Tensor ActivationCache::capture(Network& net, const Tensor& input,
                                std::size_t budget_bytes) {
  cached_.clear();
  layer_numel_.assign(net.num_layers(), 0);
  bytes_ = 0;
  bool prefix_open = true;
  Tensor logits = net.forward(
      input, /*training=*/false, [&](std::size_t i, Tensor& act) {
        layer_numel_[i] = act.numel();
        if (!prefix_open) return;
        const std::size_t sz =
            static_cast<std::size_t>(act.numel()) * sizeof(float);
        if (bytes_ + sz > budget_bytes) {
          prefix_open = false;  // keep a contiguous prefix only
          return;
        }
        cached_.push_back(act);
        bytes_ += sz;
      });
  return logits;
}

const Tensor& ActivationCache::activation(std::size_t layer) const {
  BDLFI_CHECK(layer < cached_.size());
  return cached_[layer];
}

std::int64_t ActivationCache::layer_numel(std::size_t layer) const {
  BDLFI_CHECK(layer < layer_numel_.size());
  return layer_numel_[layer];
}

}  // namespace bdlfi::nn
