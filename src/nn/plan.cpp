#include "nn/plan.h"

#include <algorithm>
#include <cmath>

#include "nn/resblock.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace bdlfi::nn {

void fold_conv_bn(const Tensor& weight, const Tensor& bias, BatchNorm2d& bn,
                  Tensor& folded_weight, Tensor& folded_bias) {
  const std::int64_t o = weight.shape()[0];
  BDLFI_CHECK(folded_weight.numel() == weight.numel());
  BDLFI_CHECK(folded_bias.numel() == o);
  BDLFI_CHECK(bn.channels() == o);
  const std::int64_t per = weight.numel() / o;
  const float* w = weight.data();
  float* wf = folded_weight.data();
  for (std::int64_t ch = 0; ch < o; ++ch) {
    // Same scale/shift arithmetic as BatchNorm2d's eval forward, pushed
    // through linearity into the producing conv's weights.
    const float inv_std = 1.0f / std::sqrt(bn.running_var()[ch] + bn.eps());
    const float scale = bn.gamma()[ch] * inv_std;
    const float shift = bn.beta()[ch] - bn.running_mean()[ch] * scale;
    const float* src = w + ch * per;
    float* dst = wf + ch * per;
    for (std::int64_t i = 0; i < per; ++i) dst[i] = src[i] * scale;
    folded_bias[ch] = (bias.empty() ? 0.0f : bias[ch]) * scale + shift;
  }
}

std::unique_ptr<ExecutionPlan> ExecutionPlan::compile(Network& net,
                                                      const Tensor& probe) {
  BDLFI_CHECK_MSG(net.num_layers() > 0, "plan compile on empty network");
  std::unique_ptr<ExecutionPlan> plan(new ExecutionPlan);
  plan->profile_ = net.profile_;

  // Probe: one legacy eval forward records every layer-boundary shape. This
  // works for any Layer subclass (custom layers included) without requiring a
  // shape-inference virtual.
  std::vector<Shape> shapes;  // shapes[i] = activation entering layer i
  shapes.reserve(net.num_layers() + 1);
  Tensor act = probe;
  shapes.push_back(act.shape());
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    act = net.layer(i).forward(act, /*training=*/false);
    shapes.push_back(act.shape());
  }

  int in_buf = -1;  // group 0's input is always the external tensor
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    plan->lower_layer(net, i, shapes[i], shapes[i + 1], in_buf);
    in_buf = plan->groups_.back().out_buf;
  }

  // Exact dense+relu elision spans. The relu aliases the dense's buffer by
  // construction, so the elided step writes the same slot the unfused pair
  // would — downstream groups are none the wiser.
  for (std::size_t g = 0; g + 1 < plan->groups_.size(); ++g) {
    Group& a = plan->groups_[g];
    Group& b = plan->groups_[g + 1];
    if (net.layer_kind(a.layer) == "dense" &&
        net.layer_kind(b.layer) == "relu" && a.out_buf == b.out_buf) {
      Step s;
      s.op = Step::Op::kDenseRelu;
      s.layer = &net.layer(a.layer);
      s.in_buf = -1;
      s.out_buf = a.out_buf;
      s.in_shape = a.in_shape;
      s.out_shape = b.out_shape;
      a.span_len = 2;
      a.span_steps.push_back(std::move(s));
    }
  }

  plan->finalize();
  return plan;
}

void ExecutionPlan::lower_layer(Network& net, std::size_t index,
                                const Shape& in_shape, const Shape& out_shape,
                                int in_buf) {
  Group grp;
  grp.layer = index;
  grp.in_shape = in_shape;
  grp.out_shape = out_shape;
  Layer& layer = net.layer(index);
  if (auto* blk = dynamic_cast<BasicBlock*>(&layer)) {
    lower_block(*blk, grp, in_buf);
  } else {
    Step s;
    s.op = Step::Op::kForwardInto;
    s.layer = &layer;
    s.in_buf = -1;
    s.in_shape = in_shape;
    s.out_shape = out_shape;
    if (layer.inplace_capable() && in_buf >= 0) {
      // Elementwise: overwrite the producer's slot (legacy semantics — the
      // hook for the producing layer has already fired by the time this
      // group runs).
      s.out_buf = in_buf;
    } else {
      s.out_buf = fresh_buffer({in_buf});
    }
    note_use(s.out_buf, out_shape.numel());
    grp.out_buf = s.out_buf;
    grp.steps.push_back(std::move(s));
  }
  groups_.push_back(std::move(grp));
}

void ExecutionPlan::lower_block(BasicBlock& blk, Group& grp, int in_buf) {
  const Shape& x = grp.in_shape;
  const Shape& out = grp.out_shape;  // conv2/proj output geometry
  const Shape mid{x[0], blk.conv1().out_channels(),
                  blk.conv1().spec().out_h(x[2]),
                  blk.conv1().spec().out_w(x[3])};
  const int t1 = fresh_buffer({in_buf});
  const int t2 = fresh_buffer({in_buf, t1});
  const int t3 = blk.has_projection() ? fresh_buffer({in_buf, t1, t2}) : -1;
  note_use(t1, mid.numel());
  note_use(t2, out.numel());
  if (t3 >= 0) note_use(t3, out.numel());
  grp.out_buf = t2;

  const auto mk = [](Step::Op op, Layer* l, int in, int ob, const Shape& is,
                     const Shape& os) {
    Step s;
    s.op = op;
    s.layer = l;
    s.block_inner = true;
    s.in_buf = in;
    s.out_buf = ob;
    s.in_shape = is;
    s.out_shape = os;
    return s;
  };

  // Unfused lowering — mirrors BasicBlock::forward step for step (the main
  // branch, then the shortcut, then join + relu). Bit-exact by construction.
  grp.steps.push_back(mk(Step::Op::kForwardInto, &blk.conv1(), -1, t1, x, mid));
  grp.steps.push_back(mk(Step::Op::kForwardInto, &blk.bn1(), t1, t1, mid, mid));
  grp.steps.push_back(mk(Step::Op::kRelu, nullptr, t1, t1, mid, mid));
  grp.steps.push_back(
      mk(Step::Op::kForwardInto, &blk.conv2(), t1, t2, mid, out));
  grp.steps.push_back(mk(Step::Op::kForwardInto, &blk.bn2(), t2, t2, out, out));
  if (blk.has_projection()) {
    grp.steps.push_back(
        mk(Step::Op::kForwardInto, blk.proj_conv(), -1, t3, x, out));
    grp.steps.push_back(
        mk(Step::Op::kForwardInto, blk.proj_bn(), t3, t3, out, out));
    grp.steps.push_back(mk(Step::Op::kAdd, nullptr, t3, t2, out, out));
  } else {
    grp.steps.push_back(mk(Step::Op::kAdd, nullptr, -1, t2, x, out));
  }
  grp.steps.push_back(mk(Step::Op::kRelu, nullptr, t2, t2, out, out));

  // Fused lowering: BN folded into each conv, relu fused onto conv1. Fold
  // tensors are allocated lazily (first fused run) and refreshed from the
  // live golden tensors every fused execution, so weight/BN bit flips remain
  // visible through the fold.
  folds_.push_back(Fold{&blk.conv1(), &blk.bn1(), Tensor{}, Tensor{}});
  const int f1 = static_cast<int>(folds_.size()) - 1;
  folds_.push_back(Fold{&blk.conv2(), &blk.bn2(), Tensor{}, Tensor{}});
  const int f2 = static_cast<int>(folds_.size()) - 1;

  Step c1 = mk(Step::Op::kFoldedConv, nullptr, -1, t1, x, mid);
  c1.conv = &blk.conv1();
  c1.fold = f1;
  c1.relu_after = true;
  grp.fused.push_back(std::move(c1));
  Step c2 = mk(Step::Op::kFoldedConv, nullptr, t1, t2, mid, out);
  c2.conv = &blk.conv2();
  c2.fold = f2;
  grp.fused.push_back(std::move(c2));
  if (blk.has_projection()) {
    folds_.push_back(Fold{blk.proj_conv(), blk.proj_bn(), Tensor{}, Tensor{}});
    const int f3 = static_cast<int>(folds_.size()) - 1;
    Step c3 = mk(Step::Op::kFoldedConv, nullptr, -1, t3, x, out);
    c3.conv = blk.proj_conv();
    c3.fold = f3;
    grp.fused.push_back(std::move(c3));
    grp.fused.push_back(mk(Step::Op::kAdd, nullptr, t3, t2, out, out));
  } else {
    grp.fused.push_back(mk(Step::Op::kAdd, nullptr, -1, t2, x, out));
  }
  grp.fused.push_back(mk(Step::Op::kRelu, nullptr, t2, t2, out, out));
}

int ExecutionPlan::fresh_buffer(std::initializer_list<int> avoid) {
  int b = 0;
  for (;; ++b) {
    bool clash = false;
    for (const int a : avoid) clash = clash || (a == b);
    if (!clash) break;
  }
  while (static_cast<int>(buffer_sizes_.size()) <= b) {
    buffer_sizes_.push_back(0);
  }
  return b;
}

void ExecutionPlan::note_use(int buf, std::int64_t numel) {
  buffer_sizes_[static_cast<std::size_t>(buf)] =
      std::max(buffer_sizes_[static_cast<std::size_t>(buf)], numel);
}

void ExecutionPlan::finalize() {
  buffer_offsets_.resize(buffer_sizes_.size());
  std::size_t off = 0;
  for (std::size_t b = 0; b < buffer_sizes_.size(); ++b) {
    buffer_offsets_[b] = off;
    // 64-byte slot alignment: 16-float granularity on a 64-byte-aligned base.
    off += (static_cast<std::size_t>(buffer_sizes_[b]) + 15u) &
           ~static_cast<std::size_t>(15u);
  }
  arena_.reserve(off);
  const auto bind = [&](Step& s) {
    if (s.in_buf >= 0) {
      s.in_view = Tensor::view(
          s.in_shape, arena_.at(buffer_offsets_[static_cast<std::size_t>(
                          s.in_buf)]));
    }
    s.out_view = Tensor::view(
        s.out_shape,
        arena_.at(buffer_offsets_[static_cast<std::size_t>(s.out_buf)]));
  };
  for (Group& g : groups_) {
    for (Step& s : g.steps) bind(s);
    for (Step& s : g.fused) bind(s);
    for (Step& s : g.span_steps) bind(s);
    g.out_view = Tensor::view(
        g.out_shape,
        arena_.at(buffer_offsets_[static_cast<std::size_t>(g.out_buf)]));
  }
}

bool ExecutionPlan::covers(std::size_t first_layer, const Shape& shape) const {
  // Groups are 1:1 with top-level layers, in order.
  if (first_layer >= groups_.size()) return false;
  return groups_[first_layer].in_shape == shape;
}

bool ExecutionPlan::fusion_compiled() const {
  if (!folds_.empty()) return true;
  for (const Group& g : groups_) {
    if (g.span_len > 1) return true;
  }
  return false;
}

void ExecutionPlan::refold_all() {
  for (Fold& f : folds_) {
    if (f.wf.empty()) {
      f.wf = Tensor{f.conv->weight().shape()};
      f.bf = Tensor{Shape{f.conv->out_channels()}};
    }
    fold_conv_bn(f.conv->weight(), f.conv->bias(), *f.bn, f.wf, f.bf);
  }
}

void ExecutionPlan::exec_step(Step& s, const Tensor& group_in, bool checked,
                              const tensor::abft::OpContext* ctx,
                              const tensor::abft::OpContext* inner_ctx) {
  const Tensor& in = s.in_buf < 0 ? group_in : s.in_view;
  switch (s.op) {
    case Step::Op::kForwardInto:
      if (checked) {
        // Block-inner layers inherit the deployment minus the flip list,
        // matching BasicBlock::forward's inner-context handoff.
        s.layer->set_compute_context(s.block_inner ? inner_ctx : ctx);
        s.layer->forward_into(in, s.out_view, ws_);
        s.layer->set_compute_context(nullptr);
      } else {
        s.layer->forward_into(in, s.out_view, ws_);
      }
      break;
    case Step::Op::kFoldedConv: {
      Fold& f = folds_[static_cast<std::size_t>(s.fold)];
      tensor::conv2d_forward_into(in, f.wf, f.bf, s.conv->spec(),
                                  tensor::abft::OpContext{}, s.out_view);
      if (s.relu_after) tensor::relu_inplace(s.out_view);
      break;
    }
    case Step::Op::kDenseRelu:
      s.layer->forward_into(in, s.out_view, ws_);
      tensor::relu_inplace(s.out_view);
      break;
    case Step::Op::kAdd:
      tensor::add_inplace(s.out_view, in);
      break;
    case Step::Op::kRelu:
      tensor::relu_inplace(s.out_view);
      break;
  }
}

const Tensor& ExecutionPlan::run(Network& net, std::size_t first_layer,
                                 const Tensor& input,
                                 const Network::ActivationHook& hook,
                                 bool fuse) {
  BDLFI_CHECK(covers(first_layer, input.shape()));
  const bool checked =
      net.abft_.mode != tensor::abft::Mode::kOff ||
      (net.compute_plan_ != nullptr && !net.compute_plan_->empty());
  // Checked runs need the per-layer contexts of the unfused lowering;
  // profiled runs keep per-layer attribution meaningful. Both force unfused.
  const bool use_fused = fuse && !checked && !profile_;
  if (use_fused && !folds_.empty()) refold_all();

  std::size_t g = first_layer;
  while (g < groups_.size()) {
    Group& grp = groups_[g];
    const Tensor& gin = (g == first_layer) ? input : groups_[g - 1].out_view;

    // Exact elision spans only run hook-free: hooks must observe every
    // top-level index. Values are identical either way.
    if (use_fused && !hook && grp.span_len > 1) {
      for (Step& s : grp.span_steps) {
        exec_step(s, gin, /*checked=*/false, nullptr, nullptr);
      }
      g += grp.span_len;
      continue;
    }

    tensor::abft::OpContext ctx, inner;
    const tensor::abft::OpContext* inner_ptr = nullptr;
    if (checked) {
      ctx.config = net.abft_;
      // Same selective-placement semantics as the legacy path: unselected
      // layers run mode-off (still receiving their flips).
      if (!net.abft_layer_checked(grp.layer)) {
        ctx.config.mode = tensor::abft::Mode::kOff;
      }
      ctx.stats = &net.abft_stats();
      if (net.compute_plan_ != nullptr) {
        const auto it = net.compute_plan_->find(grp.layer);
        if (it != net.compute_plan_->end()) ctx.flips = &it->second;
      }
      inner = ctx;
      inner.flips = nullptr;  // flips address top-level output geometry
      inner_ptr = &inner;
    }

    std::vector<Step>& steps =
        (use_fused && !grp.fused.empty()) ? grp.fused : grp.steps;
    if (profile_) {
      const util::Stopwatch timer;
      for (Step& s : steps) exec_step(s, gin, checked, &ctx, inner_ptr);
      net.layer_seconds_[grp.layer] += timer.seconds();
      ++net.layer_calls_[grp.layer];
    } else {
      for (Step& s : steps) exec_step(s, gin, checked, &ctx, inner_ptr);
    }
    if (hook) hook(grp.layer, grp.out_view);
    ++g;
  }
  return groups_.back().out_view;
}

}  // namespace bdlfi::nn
