#include "nn/resblock.h"

#include "tensor/ops.h"
#include "util/check.h"

namespace bdlfi::nn {

BasicBlock::BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
                       std::int64_t stride)
    : conv1_(std::make_unique<Conv2d>(in_channels, out_channels, 3, stride)),
      bn1_(std::make_unique<BatchNorm2d>(out_channels)),
      conv2_(std::make_unique<Conv2d>(out_channels, out_channels, 3, 1)),
      bn2_(std::make_unique<BatchNorm2d>(out_channels)) {
  if (stride != 1 || in_channels != out_channels) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride,
                                          /*pad=*/0);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

void BasicBlock::init_he(util::Rng& rng) {
  conv1_->init_he(rng);
  conv2_->init_he(rng);
  if (proj_conv_) proj_conv_->init_he(rng);
}

Tensor BasicBlock::forward(const Tensor& x, bool training) {
  // The inner convs inherit the ABFT deployment (checksum coverage and its
  // counters) but not the flip list: compute-fault sites address top-level
  // layer outputs, and the block's output geometry is not its convs'.
  tensor::abft::OpContext inner;
  const tensor::abft::OpContext* sub = nullptr;
  if (compute_ctx_ != nullptr) {
    inner = *compute_ctx_;
    inner.flips = nullptr;
    sub = &inner;
  }
  conv1_->set_compute_context(sub);
  conv2_->set_compute_context(sub);
  if (proj_conv_) proj_conv_->set_compute_context(sub);

  Tensor mid = bn1_->forward(conv1_->forward(x, training), training);
  if (training) cached_mid_pre_ = mid;
  tensor::relu_inplace(mid);
  Tensor out = bn2_->forward(conv2_->forward(mid, training), training);

  Tensor shortcut = proj_conv_
      ? proj_bn_->forward(proj_conv_->forward(x, training), training)
      : x;
  tensor::add_inplace(out, shortcut);
  if (training) cached_sum_pre_ = out;
  tensor::relu_inplace(out);

  conv1_->set_compute_context(nullptr);
  conv2_->set_compute_context(nullptr);
  if (proj_conv_) proj_conv_->set_compute_context(nullptr);
  return out;
}

Tensor BasicBlock::backward(const Tensor& grad_output) {
  BDLFI_CHECK_MSG(!cached_sum_pre_.empty(),
                  "BasicBlock::backward without training forward");
  Tensor dsum = grad_output;
  tensor::relu_backward_inplace(dsum, cached_sum_pre_);

  // Main branch: bn2 <- conv2 <- relu <- bn1 <- conv1.
  Tensor dmid = conv2_->backward(bn2_->backward(dsum));
  tensor::relu_backward_inplace(dmid, cached_mid_pre_);
  Tensor dx_main = conv1_->backward(bn1_->backward(dmid));

  // Shortcut branch.
  Tensor dx_short = proj_conv_
      ? proj_conv_->backward(proj_bn_->backward(dsum))
      : dsum;

  tensor::add_inplace(dx_main, dx_short);
  return dx_main;
}

void BasicBlock::collect_params(const std::string& prefix,
                                std::vector<ParamRef>& out) {
  conv1_->collect_params(prefix + "conv1.", out);
  bn1_->collect_params(prefix + "bn1.", out);
  conv2_->collect_params(prefix + "conv2.", out);
  bn2_->collect_params(prefix + "bn2.", out);
  if (proj_conv_) {
    proj_conv_->collect_params(prefix + "proj.", out);
    proj_bn_->collect_params(prefix + "proj_bn.", out);
  }
}

void BasicBlock::collect_buffers(const std::string& prefix,
                                 std::vector<ParamRef>& out) {
  bn1_->collect_buffers(prefix + "bn1.", out);
  bn2_->collect_buffers(prefix + "bn2.", out);
  if (proj_bn_) proj_bn_->collect_buffers(prefix + "proj_bn.", out);
}

void BasicBlock::zero_grad() {
  conv1_->zero_grad();
  bn1_->zero_grad();
  conv2_->zero_grad();
  bn2_->zero_grad();
  if (proj_conv_) {
    proj_conv_->zero_grad();
    proj_bn_->zero_grad();
  }
}

std::unique_ptr<Layer> BasicBlock::clone() const {
  // Reconstruct with matching topology, then overwrite sublayers with clones.
  auto copy = std::make_unique<BasicBlock>(conv1_->in_channels(),
                                           conv1_->out_channels(),
                                           conv1_->spec().stride);
  copy->conv1_.reset(static_cast<Conv2d*>(conv1_->clone().release()));
  copy->bn1_.reset(static_cast<BatchNorm2d*>(bn1_->clone().release()));
  copy->conv2_.reset(static_cast<Conv2d*>(conv2_->clone().release()));
  copy->bn2_.reset(static_cast<BatchNorm2d*>(bn2_->clone().release()));
  if (proj_conv_) {
    copy->proj_conv_.reset(
        static_cast<Conv2d*>(proj_conv_->clone().release()));
    copy->proj_bn_.reset(
        static_cast<BatchNorm2d*>(proj_bn_->clone().release()));
  }
  return copy;
}

}  // namespace bdlfi::nn
