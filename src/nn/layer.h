// Layer abstraction.
//
// A Layer owns its parameters and the forward-pass caches needed for its
// backward pass. Two properties matter for fault injection:
//
//  1. *Stable parameter enumeration.* `collect_params` reports every
//     parameter tensor with a hierarchical name and a role, in an order that
//     is identical across clones and process runs. Fault sites are addressed
//     as (param index, element, bit) against this enumeration.
//  2. *Cloneability.* MCMC chains run on independent deep copies of the
//     network so corrupted forward passes never touch the golden weights and
//     chains can execute in parallel without locks.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/abft.h"
#include "tensor/tensor.h"

namespace bdlfi::nn {

using tensor::Shape;
using tensor::Tensor;

/// What a parameter tensor is, within its layer. Fault campaigns filter on
/// this (e.g. "weights only", as in the paper's memory-fault model).
enum class ParamRole {
  kWeight,
  kBias,
  kBnGamma,
  kBnBeta,
  // Non-trainable buffers (BN running statistics). Reported by
  // collect_buffers, not collect_params; still resident in accelerator
  // memory, hence valid fault targets.
  kBnRunningMean,
  kBnRunningVar,
};

const char* param_role_name(ParamRole role);

/// A live, mutable reference to one parameter tensor of a network, plus its
/// gradient accumulator. Invalidated by destroying/cloning the network.
struct ParamRef {
  std::string name;    // hierarchical, e.g. "block2.conv1.weight"
  ParamRole role;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Per-execution scratch passed through planned forwards (full definition in
/// nn/plan.h). Built-in layers keep their scratch thread-local or in the
/// plan's arena; the workspace exists so custom layers can stage without
/// allocating per eval.
struct Workspace;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Stable kind tag ("dense", "conv", "bn", "relu", ...), used to label the
  /// per-layer sensitivity results of Fig 3.
  virtual std::string kind() const = 0;

  /// Runs the layer, caching whatever backward() needs when `training`.
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Eval-mode forward into caller-provided storage — the planned-execution
  /// contract. `out` arrives pre-shaped with this layer's output geometry and
  /// may alias `in` only when inplace_capable(); implementations must write
  /// every element of `out` and never mutate `in`. The base implementation is
  /// a compatibility shim (run the allocating forward(), copy the result), so
  /// custom layers stay correct under planned execution — just not
  /// allocation-free until they override.
  virtual void forward_into(const Tensor& in, Tensor& out, Workspace& ws);

  /// True when forward_into tolerates out.data() == in.data(). Pure
  /// elementwise layers say yes so the plan can collapse their slot onto the
  /// producer's buffer.
  virtual bool inplace_capable() const { return false; }

  /// True when an extra eval-mode forward of this layer has no observable
  /// side effects (no RNG draws, no state recording). The plan compiler's
  /// shape probe and step replay rely on this; layers with stateful eval
  /// modes (MC-dropout sampling, calibrating range guards) return false to
  /// route the whole network through the legacy allocating path instead.
  virtual bool plan_eval_safe() const { return true; }

  /// Consumes d(loss)/d(output), accumulates parameter gradients, returns
  /// d(loss)/d(input). Only valid after a training-mode forward.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Appends this layer's parameters with names prefixed by `prefix`.
  virtual void collect_params(const std::string& prefix,
                              std::vector<ParamRef>& out) {
    (void)prefix;
    (void)out;
  }

  /// Appends non-trainable state tensors (BN running stats) with
  /// grad == nullptr. Used by checkpointing and (optionally) fault targeting.
  virtual void collect_buffers(const std::string& prefix,
                               std::vector<ParamRef>& out) {
    (void)prefix;
    (void)out;
  }

  /// Zeroes all gradient accumulators.
  virtual void zero_grad() {}

  /// Deep copy (parameters and configuration; caches need not be preserved).
  virtual std::unique_ptr<Layer> clone() const = 0;

  /// Number of trainable scalars (0 for stateless layers).
  std::int64_t num_params();

  /// Installs (or clears, with nullptr) the per-op self-checking context for
  /// the next forward: ABFT checksum config plus this layer's transient
  /// compute-fault flips. Set by Network::forward_from around each layer call;
  /// layers whose forward runs a GEMM (dense, conv, block) honour it, all
  /// others ignore it. Not owned; must outlive the forward.
  void set_compute_context(const tensor::abft::OpContext* ctx) {
    compute_ctx_ = ctx;
  }

 protected:
  const tensor::abft::OpContext* compute_ctx_ = nullptr;
};

}  // namespace bdlfi::nn
