#include "nn/range_guard.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace bdlfi::nn {

RangeGuard::RangeGuard(double margin) : margin_(margin) {
  BDLFI_CHECK(margin >= 0.0);
  lo_ = std::numeric_limits<float>::infinity();
  hi_ = -std::numeric_limits<float>::infinity();
}

Tensor RangeGuard::forward(const Tensor& x, bool /*training*/) {
  if (calibrating_) {
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      const float v = x[i];
      if (std::isfinite(v)) {
        lo_ = std::min(lo_, v);
        hi_ = std::max(hi_, v);
      }
    }
    calibrated_ = lo_ <= hi_;
    return x;
  }
  if (!calibrated_) return x;  // never calibrated: transparent

  const float span = hi_ - lo_;
  const auto widen = static_cast<float>(margin_) * (span > 0.0f ? span : 1.0f);
  const float lo = lo_ - widen;
  const float hi = hi_ + widen;
  const float mid = 0.5f * (lo + hi);
  Tensor y = x;
  std::size_t fired = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    const float v = y[i];
    if (std::isnan(v)) {
      y[i] = mid;
      ++fired;
    } else if (v < lo) {
      y[i] = lo;
      ++fired;
    } else if (v > hi) {
      y[i] = hi;
      ++fired;
    }
  }
  // One relaxed RMW per forward, not per element: this layer may be shared
  // across parallel chain evaluations.
  if (fired > 0) corrections_.fetch_add(fired, std::memory_order_relaxed);
  return y;
}

void RangeGuard::forward_into(const Tensor& in, Tensor& out,
                              Workspace& /*ws*/) {
  BDLFI_CHECK(!calibrating_);  // plan_eval_safe() keeps calibration legacy
  BDLFI_CHECK(in.numel() == out.numel());
  if (!calibrated_) {  // never calibrated: transparent
    if (out.data() != in.data()) {
      std::copy_n(in.data(), static_cast<std::size_t>(in.numel()),
                  out.data());
    }
    return;
  }
  // Same clamp/squash arithmetic and counter semantics as forward().
  const float span = hi_ - lo_;
  const auto widen = static_cast<float>(margin_) * (span > 0.0f ? span : 1.0f);
  const float lo = lo_ - widen;
  const float hi = hi_ + widen;
  const float mid = 0.5f * (lo + hi);
  std::size_t fired = 0;
  for (std::int64_t i = 0; i < in.numel(); ++i) {
    const float v = in[i];
    if (std::isnan(v)) {
      out[i] = mid;
      ++fired;
    } else if (v < lo) {
      out[i] = lo;
      ++fired;
    } else if (v > hi) {
      out[i] = hi;
      ++fired;
    } else {
      out[i] = v;
    }
  }
  if (fired > 0) corrections_.fetch_add(fired, std::memory_order_relaxed);
}

std::unique_ptr<Layer> RangeGuard::clone() const {
  auto copy = std::make_unique<RangeGuard>(margin_);
  copy->calibrating_ = calibrating_;
  copy->calibrated_ = calibrated_;
  copy->lo_ = lo_;
  copy->hi_ = hi_;
  // Deliberately NOT copied: corrections_. A clone is a fresh deployment of
  // the same calibrated guard; per-chain replicas each tally their own
  // firings and campaign totals sum over replicas (see header).
  return copy;
}

Network add_range_guards(const Network& net, const Tensor& calibration_inputs,
                         double margin) {
  std::vector<std::size_t> all(net.num_layers());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return add_range_guards_at(net, all, calibration_inputs, margin);
}

Network add_range_guards_at(const Network& net,
                            const std::vector<std::size_t>& layers,
                            const Tensor& calibration_inputs, double margin) {
  // Fail loudly, before any forward: an empty calibration batch would leave
  // every guard's range frozen at the empty (+inf, -inf) state, tripping the
  // per-guard check below with a far less actionable message.
  BDLFI_CHECK_MSG(
      calibration_inputs.numel() > 0 && calibration_inputs.shape()[0] > 0,
      "add_range_guards: calibration input batch is empty");
  const auto guarded_layer = [&layers](std::size_t i) {
    return std::find(layers.begin(), layers.end(), i) != layers.end();
  };
  Network guarded;
  {
    Network scratch = net.clone();
    for (std::size_t i = 0; i < scratch.num_layers(); ++i) {
      guarded.add(scratch.layer_name(i), scratch.layer(i).clone());
      if (guarded_layer(i)) {
        guarded.add(scratch.layer_name(i) + "_guard",
                    std::make_unique<RangeGuard>(margin));
      }
    }
  }
  if (layers.empty()) return guarded;
  // Calibration pass: guards record, everything else runs eval-mode.
  for (std::size_t i = 0; i < guarded.num_layers(); ++i) {
    if (auto* guard = dynamic_cast<RangeGuard*>(&guarded.layer(i))) {
      guard->set_calibrating(true);
    }
  }
  (void)guarded.forward(calibration_inputs, /*training=*/false);
  for (std::size_t i = 0; i < guarded.num_layers(); ++i) {
    if (auto* guard = dynamic_cast<RangeGuard*>(&guarded.layer(i))) {
      guard->set_calibrating(false);
      BDLFI_CHECK_MSG(guard->is_calibrated(),
                      "calibration pass left a guard uncalibrated");
    }
  }
  return guarded;
}

std::size_t total_guard_corrections(Network& net) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    if (auto* guard = dynamic_cast<RangeGuard*>(&net.layer(i))) {
      total += guard->corrections();
    }
  }
  return total;
}

}  // namespace bdlfi::nn
