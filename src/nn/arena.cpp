#include "nn/arena.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace bdlfi::nn {

namespace {
std::atomic<std::size_t> g_arena_allocations{0};
}  // namespace

Arena::~Arena() { std::free(data_); }

void Arena::reserve(std::size_t floats) {
  if (floats <= size_) return;
  std::free(data_);
  // Round the byte size up to the 64-byte alignment quantum (aligned_alloc
  // requires it) and zero-fill: GEMM steps overwrite their slots with
  // beta == 0 semantics, but a deterministic first read beats inheriting
  // whatever bit patterns the allocator hands back.
  const std::size_t bytes = ((floats * sizeof(float) + 63) / 64) * 64;
  data_ = static_cast<float*>(std::aligned_alloc(64, bytes));
  BDLFI_CHECK_MSG(data_ != nullptr, "arena allocation failed");
  std::memset(data_, 0, bytes);
  size_ = floats;
  g_arena_allocations.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Arena::total_allocations() {
  return g_arena_allocations.load(std::memory_order_relaxed);
}

}  // namespace bdlfi::nn
