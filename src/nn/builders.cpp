#include "nn/builders.h"

#include <algorithm>
#include <cmath>

#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/dropout.h"
#include "nn/layers.h"
#include "nn/resblock.h"
#include "util/check.h"

namespace bdlfi::nn {

Network make_mlp(const std::vector<std::int64_t>& sizes, util::Rng& rng) {
  BDLFI_CHECK_MSG(sizes.size() >= 2, "MLP needs at least input and output");
  Network net;
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    auto dense = std::make_unique<Dense>(sizes[i], sizes[i + 1]);
    dense->init_he(rng);
    net.add("fc" + std::to_string(i + 1), std::move(dense));
    if (i + 2 < sizes.size()) {
      net.add("relu" + std::to_string(i + 1), std::make_unique<ReLU>());
    }
  }
  return net;
}

Network make_mlp_dropout(const std::vector<std::int64_t>& sizes,
                         double dropout_rate, util::Rng& rng) {
  BDLFI_CHECK_MSG(sizes.size() >= 2, "MLP needs at least input and output");
  Network net;
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    auto dense = std::make_unique<Dense>(sizes[i], sizes[i + 1]);
    dense->init_he(rng);
    net.add("fc" + std::to_string(i + 1), std::move(dense));
    if (i + 2 < sizes.size()) {
      net.add("relu" + std::to_string(i + 1), std::make_unique<ReLU>());
      net.add("drop" + std::to_string(i + 1),
              std::make_unique<Dropout>(dropout_rate, rng()));
    }
  }
  return net;
}

namespace {
std::int64_t scaled(std::int64_t base, double mult) {
  return std::max<std::int64_t>(
      4, static_cast<std::int64_t>(std::lround(base * mult)));
}
}  // namespace

Network make_resnet18(const ResNetConfig& config, util::Rng& rng) {
  BDLFI_CHECK(config.num_classes > 0 && config.in_channels > 0);
  const std::int64_t w1 = scaled(64, config.width_multiplier);
  const std::int64_t w2 = scaled(128, config.width_multiplier);
  const std::int64_t w3 = scaled(256, config.width_multiplier);
  const std::int64_t w4 = scaled(512, config.width_multiplier);

  Network net;
  auto stem = std::make_unique<Conv2d>(config.in_channels, w1, 3, 1);
  stem->init_he(rng);
  net.add("stem_conv", std::move(stem));
  net.add("stem_bn", std::make_unique<BatchNorm2d>(w1));
  net.add("stem_relu", std::make_unique<ReLU>());

  struct StageSpec {
    std::int64_t channels;
    std::int64_t stride;
  };
  const StageSpec stages[] = {{w1, 1}, {w2, 2}, {w3, 2}, {w4, 2}};
  std::int64_t in_ch = w1;
  int block_id = 0;
  for (const auto& stage : stages) {
    for (int b = 0; b < 2; ++b) {
      const std::int64_t stride = (b == 0) ? stage.stride : 1;
      auto block = std::make_unique<BasicBlock>(in_ch, stage.channels, stride);
      block->init_he(rng);
      net.add("block" + std::to_string(block_id++), std::move(block));
      in_ch = stage.channels;
    }
  }
  net.add("avgpool", std::make_unique<GlobalAvgPool>());
  auto head = std::make_unique<Dense>(in_ch, config.num_classes);
  head->init_he(rng);
  net.add("fc", std::move(head));
  return net;
}

Network make_vgg11(const VggConfig& config, util::Rng& rng) {
  BDLFI_CHECK(config.num_classes > 0 && config.in_channels > 0);
  BDLFI_CHECK_MSG(config.image_size % 32 == 0,
                  "VGG-11 pools 5x; image size must be divisible by 32");
  // Configuration A: 'M' marks a 2x2 max pool.
  struct Step {
    std::int64_t channels;  // 0 = pool
  };
  const Step plan[] = {{64}, {0}, {128}, {0}, {256}, {256}, {0},
                       {512}, {512}, {0}, {512}, {512}, {0}};
  Network net;
  std::int64_t in_ch = config.in_channels;
  int conv_id = 0, pool_id = 0;
  for (const Step& step : plan) {
    if (step.channels == 0) {
      net.add("pool" + std::to_string(pool_id++),
              std::make_unique<MaxPool2d>(2));
      continue;
    }
    const std::int64_t out_ch = scaled(step.channels,
                                       config.width_multiplier);
    auto conv = std::make_unique<Conv2d>(in_ch, out_ch, 3, 1);
    conv->init_he(rng);
    const std::string id = std::to_string(conv_id++);
    net.add("conv" + id, std::move(conv));
    net.add("bn" + id, std::make_unique<BatchNorm2d>(out_ch));
    net.add("relu" + id, std::make_unique<ReLU>());
    in_ch = out_ch;
  }
  net.add("flatten", std::make_unique<Flatten>());
  const std::int64_t spatial = config.image_size / 32;  // after 5 pools
  auto head = std::make_unique<Dense>(in_ch * spatial * spatial,
                                      config.num_classes);
  head->init_he(rng);
  net.add("fc", std::move(head));
  return net;
}

}  // namespace bdlfi::nn
