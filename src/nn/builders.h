// Network factories for the paper's two subject models:
//   * the multi-layer perceptron of Fig. 1, and
//   * ResNet-18 (CIFAR-style stem), Fig. 3.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.h"

namespace bdlfi::nn {

/// Fully connected ReLU classifier. `sizes` = {in, hidden..., out}; produces
/// Dense/ReLU pairs ending in a Dense producing logits (softmax is applied by
/// the loss / the injector's error statistic, as in the paper's Fig. 1).
Network make_mlp(const std::vector<std::int64_t>& sizes, util::Rng& rng);

/// MLP with a Dropout layer after every hidden ReLU — the Gal-style
/// approximate-BDL variant used by the MC-Dropout uncertainty comparison.
Network make_mlp_dropout(const std::vector<std::int64_t>& sizes,
                         double dropout_rate, util::Rng& rng);

struct ResNetConfig {
  std::int64_t num_classes = 10;
  std::int64_t in_channels = 3;
  /// Channel width multiplier; 1.0 reproduces the canonical ResNet-18 widths
  /// {64,128,256,512}. Benches default to a smaller value so a full MCMC
  /// campaign runs on CPU in minutes (documented in DESIGN.md).
  double width_multiplier = 1.0;
};

/// ResNet-18: 3×3 stem conv + BN + ReLU, four stages of two BasicBlocks
/// (strides 1,2,2,2), global average pooling, final dense classifier.
Network make_resnet18(const ResNetConfig& config, util::Rng& rng);

struct VggConfig {
  std::int64_t num_classes = 10;
  std::int64_t in_channels = 3;
  std::int64_t image_size = 32;  // needed to size the classifier head
  double width_multiplier = 1.0;
};

/// VGG-11 (configuration A, BN variant, CIFAR-style head): five conv stages
/// {64, 128, 256×2, 512×2, 512×2} separated by 2×2 max pools, then a single
/// dense classifier. A second, plain-convolutional subject network for
/// cross-architecture fault studies.
Network make_vgg11(const VggConfig& config, util::Rng& rng);

}  // namespace bdlfi::nn
