#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace bdlfi::nn {

const char* param_role_name(ParamRole role) {
  switch (role) {
    case ParamRole::kWeight: return "weight";
    case ParamRole::kBias: return "bias";
    case ParamRole::kBnGamma: return "gamma";
    case ParamRole::kBnBeta: return "beta";
    case ParamRole::kBnRunningMean: return "running_mean";
    case ParamRole::kBnRunningVar: return "running_var";
  }
  return "?";
}

std::int64_t Layer::num_params() {
  std::vector<ParamRef> refs;
  collect_params("", refs);
  std::int64_t n = 0;
  for (const auto& r : refs) n += r.value->numel();
  return n;
}

void Layer::forward_into(const Tensor& in, Tensor& out, Workspace& /*ws*/) {
  // Compatibility shim: layers without a slot-aware override still run under
  // a plan, paying one allocation per step. Shapes may legitimately differ
  // (flatten-style layers); element counts must not.
  const Tensor result = forward(in, /*training=*/false);
  BDLFI_CHECK_MSG(result.numel() == out.numel(),
                  "forward_into shim: output size mismatch");
  std::copy_n(result.data(), static_cast<std::size_t>(result.numel()),
              out.data());
}

// --- Dense -------------------------------------------------------------------

Dense::Dense(std::int64_t in_features, std::int64_t out_features, bool bias)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      weight_(Shape{out_features, in_features}),
      bias_(bias ? Tensor{Shape{out_features}} : Tensor{}),
      grad_weight_(Shape{out_features, in_features}),
      grad_bias_(bias ? Tensor{Shape{out_features}} : Tensor{}) {
  BDLFI_CHECK(in_features > 0 && out_features > 0);
}

void Dense::init_he(util::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_));
  weight_ = Tensor::randn(weight_.shape(), rng, 0.0f, stddev);
  if (has_bias_) bias_.fill(0.0f);
}

Tensor Dense::forward(const Tensor& x, bool training) {
  BDLFI_CHECK(x.shape().rank() == 2 && x.shape()[1] == in_);
  if (training) cached_input_ = x;
  const std::int64_t n = x.shape()[0];
  Tensor y{Shape{n, out_}};
  // y = x [n,in] * W^T [in,out]. Under a compute context the GEMM is checked
  // pre-bias: compute faults strike the raw MAC results, and the checksum
  // invariant only covers the multiply itself.
  if (compute_ctx_ != nullptr) {
    tensor::abft::gemm_checked(false, true, n, out_, in_, 1.0f, x.data(), in_,
                               weight_.data(), in_, y.data(), out_,
                               *compute_ctx_, /*elem_base=*/0);
  } else {
    tensor::gemm(false, true, n, out_, in_, 1.0f, x.data(), in_,
                 weight_.data(), in_, 0.0f, y.data(), out_);
  }
  if (has_bias_) tensor::bias_add_rows(y, bias_);
  return y;
}

void Dense::forward_into(const Tensor& in, Tensor& out, Workspace& /*ws*/) {
  BDLFI_CHECK(in.shape().rank() == 2 && in.shape()[1] == in_);
  const std::int64_t n = in.shape()[0];
  BDLFI_CHECK(out.shape() == Shape({n, out_}));
  BDLFI_CHECK(out.data() != in.data());
  // Same GEMM + bias sequence as forward(): beta = 0 overwrites whatever the
  // arena slot held, so stale activations from the previous eval are inert.
  if (compute_ctx_ != nullptr) {
    tensor::abft::gemm_checked(false, true, n, out_, in_, 1.0f, in.data(), in_,
                               weight_.data(), in_, out.data(), out_,
                               *compute_ctx_, /*elem_base=*/0);
  } else {
    tensor::gemm(false, true, n, out_, in_, 1.0f, in.data(), in_,
                 weight_.data(), in_, 0.0f, out.data(), out_);
  }
  if (has_bias_) tensor::bias_add_rows(out, bias_);
}

Tensor Dense::backward(const Tensor& grad_output) {
  BDLFI_CHECK_MSG(!cached_input_.empty(),
                  "Dense::backward without training forward");
  const std::int64_t n = cached_input_.shape()[0];
  BDLFI_CHECK(grad_output.shape() == Shape({n, out_}));
  // dW += dY^T [out,n] * X [n,in]
  tensor::gemm(true, false, out_, in_, n, 1.0f, grad_output.data(), out_,
               cached_input_.data(), in_, 1.0f, grad_weight_.data(), in_);
  if (has_bias_) {
    for (std::int64_t r = 0; r < n; ++r) {
      const float* row = grad_output.data() + r * out_;
      for (std::int64_t c = 0; c < out_; ++c) grad_bias_[c] += row[c];
    }
  }
  // dX = dY [n,out] * W [out,in]
  Tensor grad_in{Shape{n, in_}};
  tensor::gemm(false, false, n, in_, out_, 1.0f, grad_output.data(), out_,
               weight_.data(), in_, 0.0f, grad_in.data(), in_);
  return grad_in;
}

void Dense::collect_params(const std::string& prefix,
                           std::vector<ParamRef>& out) {
  out.push_back({prefix + "weight", ParamRole::kWeight, &weight_,
                 &grad_weight_});
  if (has_bias_) {
    out.push_back({prefix + "bias", ParamRole::kBias, &bias_, &grad_bias_});
  }
}

void Dense::zero_grad() {
  grad_weight_.fill(0.0f);
  if (has_bias_) grad_bias_.fill(0.0f);
}

std::unique_ptr<Layer> Dense::clone() const {
  auto copy = std::make_unique<Dense>(in_, out_, has_bias_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  return copy;
}

// --- ReLU --------------------------------------------------------------------

Tensor ReLU::forward(const Tensor& x, bool training) {
  if (training) cached_pre_ = x;
  Tensor y = x;
  tensor::relu_inplace(y);
  return y;
}

void ReLU::forward_into(const Tensor& in, Tensor& out, Workspace& /*ws*/) {
  BDLFI_CHECK(in.numel() == out.numel());
  if (out.data() != in.data()) {
    std::copy_n(in.data(), static_cast<std::size_t>(in.numel()), out.data());
  }
  tensor::relu_inplace(out);
}

Tensor ReLU::backward(const Tensor& grad_output) {
  BDLFI_CHECK_MSG(!cached_pre_.empty(),
                  "ReLU::backward without training forward");
  Tensor g = grad_output;
  tensor::relu_backward_inplace(g, cached_pre_);
  return g;
}

// --- Flatten -----------------------------------------------------------------

Tensor Flatten::forward(const Tensor& x, bool training) {
  BDLFI_CHECK(x.shape().rank() >= 2);
  if (training) cached_shape_ = x.shape();
  const std::int64_t n = x.shape()[0];
  return x.reshaped(Shape{n, x.numel() / n});
}

void Flatten::forward_into(const Tensor& in, Tensor& out, Workspace& /*ws*/) {
  BDLFI_CHECK(in.numel() == out.numel());
  // Pure reshape: when the plan aliases the slots this is a no-op; a copy
  // only happens when the input arrives externally (truncated replay).
  if (out.data() != in.data()) {
    std::copy_n(in.data(), static_cast<std::size_t>(in.numel()), out.data());
  }
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

// --- MaxPool2d ---------------------------------------------------------------

Tensor MaxPool2d::forward(const Tensor& x, bool training) {
  if (training) cached_shape_ = x.shape();
  return tensor::maxpool2d_forward(x, kernel_, argmax_);
}

void MaxPool2d::forward_into(const Tensor& in, Tensor& out,
                             Workspace& /*ws*/) {
  // Eval-only path: the argmax record exists for backward, which planned
  // execution never runs.
  tensor::maxpool2d_forward_into(in, kernel_, out, nullptr);
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  return tensor::maxpool2d_backward(grad_output, cached_shape_, argmax_);
}

// --- GlobalAvgPool -----------------------------------------------------------

Tensor GlobalAvgPool::forward(const Tensor& x, bool training) {
  if (training) cached_shape_ = x.shape();
  return tensor::global_avgpool_forward(x);
}

void GlobalAvgPool::forward_into(const Tensor& in, Tensor& out,
                                 Workspace& /*ws*/) {
  tensor::global_avgpool_forward_into(in, out);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  return tensor::global_avgpool_backward(grad_output, cached_shape_);
}

}  // namespace bdlfi::nn
