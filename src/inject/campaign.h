// Campaign orchestration: the experiment-level API the benches and examples
// drive. A campaign binds a trained golden network + evaluation set to a
// fault model and produces the series the paper plots.
#pragma once

#include <string>
#include <vector>

#include "bayes/fault_network.h"
#include "mcmc/runner.h"

namespace bdlfi::inject {

using bayes::AvfProfile;
using bayes::BayesianFaultNetwork;
using bayes::TargetSpec;

/// Mixing/eval statistics shared by every campaign point kind. Extracted
/// from the previously duplicated SweepPoint/LayerPoint fields so the fig
/// printers and check_json see one schema.
struct PointStats {
  /// Mean MH acceptance rate across the point's chains — the mixing health
  /// the paper's completeness argument rests on.
  double acceptance_rate = 0.0;
  double rhat = 0.0;
  double ess = 0.0;
  std::size_t samples = 0;
  std::size_t network_evals = 0;
  // Truncated-replay observability: evals resumed from the activation cache
  // vs full forwards, and the % of layer executions that cache skipped.
  std::size_t full_evals = 0;
  std::size_t truncated_evals = 0;
  double layers_saved_pct = 0.0;
  // Fault-outcome taxonomy pooled over the point's retained samples
  // (see bayes::FaultOutcome): how often the fault was masked, silently
  // corrupted the output, was flagged as an unrecoverable DUE, or was
  // repaired by ABFT recovery — plus the two derived headline rates.
  std::size_t outcome_masked = 0;
  std::size_t outcome_sdc = 0;
  std::size_t outcome_detected = 0;
  std::size_t outcome_corrected = 0;
  double detection_coverage = 0.0;
  double sdc_rate = 0.0;
  /// Graceful degradation: chains the supervisor quarantined at this point;
  /// the point's statistics cover the survivors only.
  std::size_t chains_quarantined = 0;
  bool degraded = false;

  /// Fills every field from the pooled campaign result.
  void from_campaign(const mcmc::CampaignResult& result);
};

/// One point of a Fig. 2 / Fig. 4 style sweep.
struct SweepPoint {
  double p = 0.0;
  double mean_error = 0.0;    // %
  double stddev_error = 0.0;
  double q05 = 0.0, q50 = 0.0, q95 = 0.0;
  double mean_deviation = 0.0;
  double mean_flips = 0.0;
  PointStats stats;
};

struct SweepResult {
  double golden_error = 0.0;  // the figure's "Golden Run" reference line
  std::vector<SweepPoint> points;
  /// An interrupt stopped the sweep: `points` is a valid prefix of the grid.
  bool interrupted = false;
};

/// Log-spaced grid of `count` probabilities in [lo, hi]. Degenerate requests
/// get graceful answers instead of NaN grid points: count == 0 -> empty,
/// count == 1 or lo == hi -> {lo}. Non-positive or inverted bounds are a
/// programming error and still fail hard.
std::vector<double> log_space(double lo, double hi, std::size_t count);

/// BDLFI sweep over flip probabilities using prior-target MCMC chains.
SweepResult run_bdlfi_sweep(const BayesianFaultNetwork& golden,
                            const std::vector<double>& ps,
                            const mcmc::RunnerConfig& runner);

/// One entry of a Fig. 3 style layer-sensitivity campaign.
struct LayerPoint {
  std::size_t layer_index = 0;
  std::string layer_name;
  std::string layer_kind;
  std::int64_t layer_params = 0;
  double mean_error = 0.0;
  double q05 = 0.0, q95 = 0.0;
  double mean_deviation = 0.0;
  /// Shared mixing/eval statistics; layers_saved_pct here is ≈ the depth
  /// fraction above the injected layer that truncated replay skipped.
  PointStats stats;
  /// Equivalent full-network evaluations saved by the activation cache.
  double evals_saved = 0.0;
};

/// Injects faults into exactly one layer's parameters at a time and measures
/// the output error — the paper's depth-vs-error experiment (Fig. 3).
/// Layers with no parameters are skipped.
///
/// Two fault-dosage modes:
///  * expected_flips <= 0 — fixed per-bit rate: every layer's bits flip at
///    rate p, so large layers receive proportionally more faults (the raw
///    memory-fault model of §II).
///  * expected_flips > 0 — fixed dose: each layer's p is rescaled so the
///    expected number of flipped bits per injection equals expected_flips
///    regardless of layer size. expected_flips = 1 reproduces the
///    single-bit-flip protocol of the traditional per-layer FI studies
///    (Li et al. [1], TensorFI [4]) whose depth claim Fig. 3 challenges.
std::vector<LayerPoint> run_layer_campaign(
    const nn::Network& golden, const tensor::Tensor& eval_inputs,
    const std::vector<std::int64_t>& eval_labels, const AvfProfile& profile,
    double p, const mcmc::RunnerConfig& runner, double expected_flips = 0.0);

}  // namespace bdlfi::inject
