#include "inject/campaign.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/log.h"

namespace bdlfi::inject {

void PointStats::from_campaign(const mcmc::CampaignResult& result) {
  acceptance_rate = result.mean_acceptance;
  rhat = result.diagnostics.rhat;
  ess = result.diagnostics.ess;
  samples = result.total_samples;
  network_evals = result.total_network_evals;
  full_evals = result.total_full_evals;
  truncated_evals = result.total_truncated_evals;
  layers_saved_pct = result.layers_saved_pct();
  outcome_masked = result.total_outcome_masked;
  outcome_sdc = result.total_outcome_sdc;
  outcome_detected = result.total_outcome_detected;
  outcome_corrected = result.total_outcome_corrected;
  detection_coverage = result.detection_coverage();
  sdc_rate = result.sdc_rate();
  chains_quarantined = result.chains_quarantined;
  degraded = result.degraded;
}

std::vector<double> log_space(double lo, double hi, std::size_t count) {
  BDLFI_CHECK_MSG(lo > 0.0 && hi >= lo,
                  "log_space requires 0 < lo <= hi");
  if (count == 0) return {};
  // A single point (or a collapsed range) has no spacing to compute; the
  // old count-1 division would emit NaN grid points here.
  if (count == 1 || lo == hi) return std::vector<double>(count, lo);
  std::vector<double> out;
  out.reserve(count);
  const double llo = std::log10(lo), lhi = std::log10(hi);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(count - 1);
    out.push_back(std::pow(10.0, llo + t * (lhi - llo)));
  }
  return out;
}

SweepResult run_bdlfi_sweep(const BayesianFaultNetwork& golden,
                            const std::vector<double>& ps,
                            const mcmc::RunnerConfig& runner) {
  SweepResult result;
  result.golden_error = golden.golden_error();
  for (double p : ps) {
    mcmc::TargetFactory factory = [p](BayesianFaultNetwork& net) {
      return std::make_unique<bayes::PriorTarget>(net, p);
    };
    const mcmc::CampaignResult campaign =
        mcmc::run_chains(golden, factory, p, runner);
    SweepPoint point;
    point.p = p;
    point.mean_error = campaign.mean_error;
    point.stddev_error = campaign.stddev_error;
    point.q05 = campaign.q05;
    point.q50 = campaign.q50;
    point.q95 = campaign.q95;
    point.mean_deviation = campaign.mean_deviation;
    point.mean_flips = campaign.mean_flips;
    point.stats.from_campaign(campaign);
    result.points.push_back(point);
    if (campaign.degraded) {
      BDLFI_LOG_WARN("sweep p=%.2e degraded: %zu chain(s) quarantined", p,
                     campaign.chains_quarantined);
    }
    if (campaign.interrupted) {
      // Stop at a clean prefix rather than sampling the remaining grid
      // points with a doomed budget.
      result.interrupted = true;
      break;
    }
    BDLFI_LOG_DEBUG("sweep p=%.2e: error=%.2f%% (golden %.2f%%), rhat=%.3f",
                    p, point.mean_error, result.golden_error,
                    point.stats.rhat);
  }
  return result;
}

std::vector<LayerPoint> run_layer_campaign(
    const nn::Network& golden, const tensor::Tensor& eval_inputs,
    const std::vector<std::int64_t>& eval_labels, const AvfProfile& profile,
    double p, const mcmc::RunnerConfig& runner, double expected_flips) {
  // A mutable copy to enumerate parameterized layers; the per-layer
  // BayesianFaultNetwork instances clone again internally.
  nn::Network net = golden.clone();
  std::vector<LayerPoint> points;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    std::vector<nn::ParamRef> refs;
    net.layer(i).collect_params(net.layer_name(i) + ".", refs);
    if (refs.empty()) continue;  // relu/pool/flatten: nothing to corrupt

    std::int64_t layer_params = 0;
    for (const auto& r : refs) layer_params += r.value->numel();

    // Fixed-dose mode: rescale p so E[#flips] is layer-size independent
    // (expected flips per word × #words = expected_flips).
    double layer_p = p;
    if (expected_flips > 0.0) {
      const double bits_factor =
          profile.expected_flips_per_word(1.0) * static_cast<double>(layer_params);
      layer_p = std::min(0.4, expected_flips / std::max(1.0, bits_factor));
    }

    BayesianFaultNetwork bfn(net, TargetSpec::single_layer(net.layer_name(i)),
                             profile, eval_inputs, eval_labels);
    mcmc::TargetFactory factory = [layer_p](BayesianFaultNetwork& chain_net) {
      return std::make_unique<bayes::PriorTarget>(chain_net, layer_p);
    };
    const mcmc::CampaignResult campaign =
        mcmc::run_chains(bfn, factory, layer_p, runner);

    LayerPoint point;
    point.layer_index = i;
    point.layer_name = net.layer_name(i);
    point.layer_kind = net.layer_kind(i);
    point.layer_params = layer_params;
    point.mean_error = campaign.mean_error;
    point.q05 = campaign.q05;
    point.q95 = campaign.q95;
    point.mean_deviation = campaign.mean_deviation;
    point.stats.from_campaign(campaign);
    // Layer executions skipped, expressed in whole-network forward passes:
    // the currency the Fig. 3 benches budget in.
    const double depth = static_cast<double>(net.num_layers());
    point.evals_saved =
        depth == 0.0
            ? 0.0
            : static_cast<double>(campaign.total_layers_total -
                                  campaign.total_layers_run) /
                  depth;
    points.push_back(point);
    if (campaign.degraded) {
      BDLFI_LOG_WARN("layer %zu (%s) degraded: %zu chain(s) quarantined", i,
                     point.layer_name.c_str(), campaign.chains_quarantined);
    }
    if (campaign.interrupted) break;
    BDLFI_LOG_DEBUG("layer %zu (%s): error=%.2f%%", i,
                    point.layer_name.c_str(), point.mean_error);
    BDLFI_LOG_INFO(
        "layer %zu (%s) stats: %zu evals (%zu truncated, %zu full), "
        "%.1f%% layer executions skipped, ~%.1f network evals saved",
        i, point.layer_name.c_str(), point.stats.network_evals,
        point.stats.truncated_evals, point.stats.full_evals,
        point.stats.layers_saved_pct, point.evals_saved);
  }
  return points;
}

}  // namespace bdlfi::inject
