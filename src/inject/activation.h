// Activation-fault campaigns.
//
// §II's fault model covers "memory units for storing NN parameters, inputs,
// intermediate activations and outputs". Parameter faults persist across an
// inference; activation faults are transient values corrupted in flight.
// This campaign injects Bernoulli bit flips into the output activation of one
// layer at a time during the forward pass — via Network's activation hook, no
// ptrace-style system support required (§I challenge 2) — and measures the
// effect at the network output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/avf.h"
#include "fault/space.h"
#include "nn/network.h"

namespace bdlfi::inject {

struct ActivationCampaignConfig {
  fault::AvfProfile profile = fault::AvfProfile::uniform();
  /// Per-bit flip probability applied to the targeted activation tensor.
  double p = 1e-4;
  /// Concrete injections (forward passes) per layer.
  std::size_t injections = 100;
  std::uint64_t seed = 1;
  /// Also corrupt the network *input* tensor as pseudo-layer -1.
  bool include_input = true;
};

struct ActivationLayerPoint {
  /// -1 denotes the network input; otherwise the index of the layer whose
  /// output activation was corrupted.
  std::int64_t layer_index = 0;
  std::string layer_name;
  std::string layer_kind;
  std::int64_t activation_numel = 0;  // per forward pass (batch included)
  double mean_error = 0.0;            // %
  double mean_deviation = 0.0;        // % vs golden predictions
  double mean_detected = 0.0;         // % NaN/Inf at the output
  double mean_flips = 0.0;            // flipped bits per injection
};

/// Runs the per-layer activation campaign on a clone of `golden`.
std::vector<ActivationLayerPoint> run_activation_campaign(
    const nn::Network& golden, const tensor::Tensor& eval_inputs,
    const std::vector<std::int64_t>& eval_labels,
    const ActivationCampaignConfig& config);

}  // namespace bdlfi::inject
