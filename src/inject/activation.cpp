#include "inject/activation.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace bdlfi::inject {

namespace {

struct InjectionTally {
  std::size_t miss = 0, dev = 0, detected = 0;
  std::size_t flips = 0;
};

InjectionTally measure(nn::Network& net, const tensor::Tensor& inputs,
                       const std::vector<std::int64_t>& labels,
                       const std::vector<std::int64_t>& golden_preds,
                       const nn::Network::ActivationHook& hook,
                       std::size_t flips) {
  const tensor::Tensor logits = net.forward(inputs, false, hook);
  const auto preds = tensor::argmax_rows(logits);
  const std::int64_t classes = logits.shape()[1];
  InjectionTally tally;
  tally.flips = flips;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const float* row = logits.data() + static_cast<std::int64_t>(i) * classes;
    bool finite = true;
    for (std::int64_t c = 0; c < classes; ++c) {
      if (!std::isfinite(row[c])) {
        finite = false;
        break;
      }
    }
    if (!finite) ++tally.detected;
    if (preds[i] != labels[i]) ++tally.miss;
    if (preds[i] != golden_preds[i]) ++tally.dev;
  }
  return tally;
}

}  // namespace

std::vector<ActivationLayerPoint> run_activation_campaign(
    const nn::Network& golden, const tensor::Tensor& eval_inputs,
    const std::vector<std::int64_t>& eval_labels,
    const ActivationCampaignConfig& config) {
  BDLFI_CHECK(config.injections > 0);
  nn::Network net = golden.clone();
  const auto golden_preds = net.predict(eval_inputs);
  const auto n = static_cast<double>(eval_labels.size());
  util::Rng rng{config.seed};

  std::vector<ActivationLayerPoint> points;
  auto summarize = [&](ActivationLayerPoint point,
                       const std::vector<InjectionTally>& tallies) {
    for (const auto& t : tallies) {
      point.mean_error += static_cast<double>(t.miss);
      point.mean_deviation += static_cast<double>(t.dev);
      point.mean_detected += static_cast<double>(t.detected);
      point.mean_flips += static_cast<double>(t.flips);
    }
    const auto m = static_cast<double>(tallies.size());
    point.mean_error = 100.0 * point.mean_error / (m * n);
    point.mean_deviation = 100.0 * point.mean_deviation / (m * n);
    point.mean_detected = 100.0 * point.mean_detected / (m * n);
    point.mean_flips /= m;
    points.push_back(std::move(point));
  };

  if (config.include_input) {
    ActivationLayerPoint point;
    point.layer_index = -1;
    point.layer_name = "(input)";
    point.layer_kind = "input";
    point.activation_numel = eval_inputs.numel();
    std::vector<InjectionTally> tallies;
    for (std::size_t i = 0; i < config.injections; ++i) {
      tensor::Tensor corrupted = eval_inputs;
      const std::size_t flips =
          fault::corrupt_tensor(corrupted, config.profile, config.p, rng);
      tallies.push_back(measure(net, corrupted, eval_labels, golden_preds,
                                nullptr, flips));
    }
    summarize(std::move(point), tallies);
  }

  for (std::size_t layer = 0; layer < net.num_layers(); ++layer) {
    ActivationLayerPoint point;
    point.layer_index = static_cast<std::int64_t>(layer);
    point.layer_name = net.layer_name(layer);
    point.layer_kind = net.layer_kind(layer);
    std::vector<InjectionTally> tallies;
    for (std::size_t i = 0; i < config.injections; ++i) {
      std::size_t flips = 0;
      nn::Network::ActivationHook hook =
          [&](std::size_t idx, tensor::Tensor& act) {
            if (idx != layer) return;
            point.activation_numel = act.numel();
            flips = fault::corrupt_tensor(act, config.profile, config.p, rng);
          };
      // `flips` is only known once the hook fires inside the forward pass,
      // so it is patched into the tally afterwards.
      tallies.push_back(measure(net, eval_inputs, eval_labels, golden_preds,
                                hook, 0));
      tallies.back().flips = flips;
    }
    summarize(std::move(point), tallies);
  }
  return points;
}

}  // namespace bdlfi::inject
