#include "inject/random_fi.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace bdlfi::inject {

RandomFiResult run_random_fi(const bayes::BayesianFaultNetwork& golden,
                             const fault::MaskSampler& sampler,
                             const RandomFiConfig& config) {
  BDLFI_CHECK(config.injections > 0);
  std::size_t workers = config.workers;
  if (workers == 0) workers = util::ThreadPool::global().size();
  workers = std::min(workers, config.injections);

  struct WorkerOut {
    std::vector<double> errors, deviations, flips, detected, sdc;
    std::size_t outcome_masked = 0, outcome_sdc = 0, outcome_detected = 0,
                outcome_corrected = 0;
  };
  std::vector<WorkerOut> out(workers);

  util::Rng seeder{config.seed};
  std::vector<std::uint64_t> seeds(workers);
  for (auto& s : seeds) s = seeder();

  util::parallel_for_chunked(
      0, config.injections, workers,
      [&](std::size_t worker, std::size_t lo, std::size_t hi) {
        auto replica = golden.replicate();
        auto local_sampler = sampler.clone();
        util::Rng rng{seeds[worker]};
        // Sample a chunk of masks ahead, then evaluate them in one batched
        // multi-mask pass. Sampling never reads the evaluation results, so
        // hoisting the draws above the forwards leaves the RNG stream — and
        // therefore every mask and outcome — identical to the one-at-a-time
        // loop.
        const std::size_t chunk = std::max<std::size_t>(1, config.mask_batch);
        std::vector<fault::FaultMask> masks;
        masks.reserve(chunk);
        for (std::size_t i = lo; i < hi; i += chunk) {
          const std::size_t end = std::min(hi, i + chunk);
          masks.clear();
          for (std::size_t j = i; j < end; ++j) {
            masks.push_back(local_sampler->sample(replica->space(), rng));
          }
          const bayes::EvalOutcome batch = replica->evaluate({masks, chunk});
          for (const bayes::MaskOutcome& outcome : batch.outcomes) {
            out[worker].errors.push_back(outcome.classification_error);
            out[worker].deviations.push_back(outcome.deviation);
            out[worker].flips.push_back(
                static_cast<double>(outcome.flipped_bits));
            out[worker].detected.push_back(outcome.detected);
            out[worker].sdc.push_back(outcome.sdc);
            switch (outcome.outcome) {
              case bayes::FaultOutcome::kMasked:
                ++out[worker].outcome_masked;
                break;
              case bayes::FaultOutcome::kSdc:
                ++out[worker].outcome_sdc;
                break;
              case bayes::FaultOutcome::kDetected:
                ++out[worker].outcome_detected;
                break;
              case bayes::FaultOutcome::kCorrected:
                ++out[worker].outcome_corrected;
                break;
            }
          }
        }
      });

  RandomFiResult result;
  util::SampleSet err_set;
  util::RunningStats dev, fl, det, sdc;
  for (std::size_t w = 0; w < workers; ++w) {
    for (double e : out[w].errors) {
      err_set.add(e);
      result.error_samples.push_back(e);
    }
    for (double d : out[w].deviations) dev.add(d);
    for (double f : out[w].flips) fl.add(f);
    for (double d : out[w].detected) det.add(d);
    for (double s : out[w].sdc) sdc.add(s);
    result.outcome_masked += out[w].outcome_masked;
    result.outcome_sdc += out[w].outcome_sdc;
    result.outcome_detected += out[w].outcome_detected;
    result.outcome_corrected += out[w].outcome_corrected;
  }
  result.injections = err_set.count();
  result.mean_error = err_set.mean();
  result.stddev_error = err_set.stddev();
  result.q05 = err_set.quantile(0.05);
  result.q50 = err_set.quantile(0.50);
  result.q95 = err_set.quantile(0.95);
  result.mean_deviation = dev.mean();
  result.mean_flips = fl.mean();
  result.mean_detected = det.mean();
  result.mean_sdc = sdc.mean();
  const std::size_t caught = result.outcome_detected + result.outcome_corrected;
  const std::size_t mattered = caught + result.outcome_sdc;
  result.detection_coverage =
      mattered == 0 ? 0.0
                    : static_cast<double>(caught) / static_cast<double>(mattered);
  result.sdc_rate = result.injections == 0
                        ? 0.0
                        : static_cast<double>(result.outcome_sdc) /
                              static_cast<double>(result.injections);
  result.ci95_halfwidth =
      1.96 * result.stddev_error /
      std::sqrt(static_cast<double>(std::max<std::size_t>(1, result.injections)));
  return result;
}

RandomFiResult run_random_fi(const bayes::BayesianFaultNetwork& golden,
                             double p, const RandomFiConfig& config) {
  const fault::BernoulliSampler sampler(golden.profile(), p);
  return run_random_fi(golden, sampler, config);
}

}  // namespace bdlfi::inject
