// Decision-boundary error-probability maps (the paper's Fig. 1-③).
//
// For a 2-D classifier, estimates per grid cell the probability that memory
// faults at rate p change the model's prediction at that point. The paper's
// headline qualitative result — faults hurt most near the decision boundary —
// falls out as high-probability ridges along the boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "bayes/fault_network.h"

namespace bdlfi::inject {

struct GridSpec {
  double x_min = -2.0, x_max = 3.0;
  double y_min = -1.5, y_max = 2.0;
  std::size_t nx = 64, ny = 32;
};

struct BoundaryMap {
  GridSpec grid;
  /// Row-major [ny][nx]: P(prediction deviates from golden | faults at p).
  std::vector<double> deviation_probability;
  /// log10 of the same, floored at log10(1/(masks+1)) for plotting.
  std::vector<double> log10_probability;
  /// Golden prediction per cell (for drawing the boundary itself).
  std::vector<std::int64_t> golden_prediction;
  std::size_t masks_used = 0;
};

struct BoundaryConfig {
  GridSpec grid;
  double p = 1e-3;
  /// Number of fault patterns marginalized per cell.
  std::size_t masks = 200;
  std::uint64_t seed = 1;
  std::size_t workers = 0;  // 0 = hardware threads
};

/// `golden_2d` must take [N, 2] inputs. Faults target the network per the
/// space `golden_2d` was constructed with; each sampled mask is evaluated on
/// the full grid at once (one corrupted forward per mask, not per cell).
BoundaryMap compute_boundary_map(const bayes::BayesianFaultNetwork& golden_2d,
                                 const BoundaryConfig& config);

}  // namespace bdlfi::inject
