#include "inject/importance.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace bdlfi::inject {

ImportanceFiResult run_importance_fi(const bayes::BayesianFaultNetwork& golden,
                                     double p,
                                     const ImportanceFiConfig& config) {
  BDLFI_CHECK(config.injections > 0);
  BDLFI_CHECK(config.beta >= 1.0);
  const double q_rate = config.beta * p;
  BDLFI_CHECK_MSG(q_rate < 1.0, "beta * p must stay below 1");

  auto replica = golden.replicate();
  const fault::AvfProfile& profile = replica->profile();
  const fault::InjectionSpace& space = replica->space();
  util::Rng rng{config.seed};

  // Per-bit-position log weight contribution of one flipped bit:
  //   log[p_b/(1-p_b)] − log[q_b/(1-q_b)].
  // The all-clean constant is shared by every mask and cancels under
  // self-normalization.
  std::array<double, fault::kBitsPerWord> flip_log_weight{};
  for (int b = 0; b < fault::kBitsPerWord; ++b) {
    const double pb = profile.bit_prob(b, p);
    const double qb = profile.bit_prob(b, q_rate);
    if (pb <= 0.0 || qb <= 0.0) {
      flip_log_weight[static_cast<std::size_t>(b)] = 0.0;  // never sampled
      continue;
    }
    flip_log_weight[static_cast<std::size_t>(b)] =
        (std::log(pb) - std::log1p(-pb)) - (std::log(qb) - std::log1p(-qb));
  }

  std::vector<double> log_weights, errors, deviations;
  log_weights.reserve(config.injections);
  std::size_t hits = 0;
  // Sample (and weight) a chunk of masks ahead, then evaluate them in one
  // batched multi-mask pass; evaluation never touches the RNG, so the draws
  // — and therefore the weights and outcomes — match the one-at-a-time loop.
  const std::size_t chunk = std::max<std::size_t>(1, config.mask_batch);
  std::vector<fault::FaultMask> masks;
  masks.reserve(chunk);
  for (std::size_t i = 0; i < config.injections; i += chunk) {
    const std::size_t end = std::min(config.injections, i + chunk);
    masks.clear();
    for (std::size_t j = i; j < end; ++j) {
      masks.push_back(replica->sample_prior_mask(q_rate, rng));
      double lw = 0.0;
      for (std::int64_t flat : masks.back().bits()) {
        lw += flip_log_weight[static_cast<std::size_t>(flat %
                                                       fault::kBitsPerWord)];
      }
      log_weights.push_back(lw);
    }
    const bayes::EvalOutcome batch = replica->evaluate({masks, chunk});
    for (const bayes::MaskOutcome& outcome : batch.outcomes) {
      errors.push_back(outcome.classification_error);
      deviations.push_back(outcome.deviation);
      if (outcome.deviation > 0.0) ++hits;
    }
  }

  // Self-normalized estimate with max-shifted exponentials for stability.
  const double max_lw =
      *std::max_element(log_weights.begin(), log_weights.end());
  double sum_w = 0.0, sum_w2 = 0.0, sum_we = 0.0, sum_wd = 0.0;
  for (std::size_t i = 0; i < log_weights.size(); ++i) {
    const double w = std::exp(log_weights[i] - max_lw);
    sum_w += w;
    sum_w2 += w * w;
    sum_we += w * errors[i];
    sum_wd += w * deviations[i];
  }

  ImportanceFiResult result;
  result.injections = config.injections;
  result.mean_error = sum_we / sum_w;
  result.mean_deviation = sum_wd / sum_w;
  result.weight_ess = sum_w * sum_w / std::max(1e-300, sum_w2);
  result.hit_rate =
      static_cast<double>(hits) / static_cast<double>(config.injections);
  return result;
}

}  // namespace bdlfi::inject
