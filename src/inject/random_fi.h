// Traditional random fault injection — the TensorFI / Ares-style baseline
// BDLFI is compared against (§I and refs [3], [4] of the paper).
//
// Each injection draws one concrete fault pattern from the Bernoulli model,
// applies it, runs the workload, and reverts — an i.i.d. Monte Carlo
// estimate of the error distribution with no notion of campaign completeness
// beyond the injections performed. run_random_fi optionally records the
// running-estimate trace so sample-efficiency can be compared against BDLFI.
#pragma once

#include <cstdint>
#include <vector>

#include "bayes/fault_network.h"
#include "fault/models.h"

namespace bdlfi::inject {

struct RandomFiConfig {
  std::size_t injections = 500;
  std::uint64_t seed = 1;
  /// Parallel workers (0 = one replica per hardware thread).
  std::size_t workers = 0;
  /// Each worker samples up to this many masks ahead, then evaluates them in
  /// one batched multi-mask pass (BayesianFaultNetwork::evaluate_masks).
  /// Bit-identical to one-at-a-time evaluation: sampling never reads the
  /// evaluation results, so reordering sample/evaluate leaves the RNG stream
  /// and every outcome unchanged. 1 disables batching.
  std::size_t mask_batch = 8;
};

struct RandomFiResult {
  double mean_error = 0.0;
  double stddev_error = 0.0;
  double q05 = 0.0, q50 = 0.0, q95 = 0.0;
  double mean_deviation = 0.0;
  double mean_flips = 0.0;
  double mean_detected = 0.0;  // % outputs with NaN/Inf (detectable faults)
  double mean_sdc = 0.0;       // % silently corrupted predictions
  std::size_t injections = 0;
  /// Fault-outcome taxonomy over the injections (see bayes::FaultOutcome):
  /// one whole-evaluation class per injection; the four counters sum to
  /// `injections`.
  std::size_t outcome_masked = 0;
  std::size_t outcome_sdc = 0;
  std::size_t outcome_detected = 0;
  std::size_t outcome_corrected = 0;
  /// (detected+corrected) / (detected+corrected+sdc); 0 when nothing
  /// mattered. The headline protection-efficacy number of tab_protection.
  double detection_coverage = 0.0;
  /// outcome_sdc / injections.
  double sdc_rate = 0.0;
  /// 95% normal-approximation confidence half-width of mean_error.
  double ci95_halfwidth = 0.0;
  /// error_samples[i] = classification error of injection i (chronological
  /// within workers, concatenated across workers).
  std::vector<double> error_samples;
};

/// Bernoulli bit-flip campaign at base rate p (the paper's fault model).
RandomFiResult run_random_fi(const bayes::BayesianFaultNetwork& golden,
                             double p, const RandomFiConfig& config);

/// Campaign under an arbitrary fault model (burst, stuck-at, word faults, …).
RandomFiResult run_random_fi(const bayes::BayesianFaultNetwork& golden,
                             const fault::MaskSampler& sampler,
                             const RandomFiConfig& config);

}  // namespace bdlfi::inject
