// Importance-sampled fault injection — §I advantage 2 ("the ability to use
// algorithmic acceleration techniques") made concrete.
//
// At realistic flip rates almost every sampled fault pattern is benign, so a
// plain Monte Carlo estimate of the mean fault-induced error wastes nearly
// all of its forward passes confirming "nothing happened". BDLFI's analytic
// prior permits a better estimator: draw masks from a *tilted* Bernoulli
// proposal q (flip rate boosted by a factor beta, optionally weighted per
// site by a sensitivity score) and reweight each outcome by the exact density
// ratio prior(e)/q(e), which is computable in closed form per flipped bit.
// The estimate stays unbiased (self-normalized IS) while each forward pass is
// far more likely to exercise an error path — variance drops by orders of
// magnitude in the rare-error regime.
#pragma once

#include <cstdint>
#include <vector>

#include "bayes/fault_network.h"

namespace bdlfi::inject {

struct ImportanceFiConfig {
  /// Proposal flip rate = beta × p (uniform tilt). beta = 1 reduces to plain
  /// Monte Carlo. Choose beta so that beta × p × total_bits stays O(1)–O(10):
  /// past that the importance weights degenerate (each extra flip multiplies
  /// the weight by ~p/q) and `weight_ess` collapses — always check it.
  double beta = 10.0;
  std::size_t injections = 500;
  std::uint64_t seed = 1;
  /// Masks are sampled (and weighted) this many ahead, then evaluated in one
  /// batched multi-mask pass — bit-identical to one-at-a-time evaluation
  /// (evaluation never touches the RNG). 1 disables batching.
  std::size_t mask_batch = 8;
};

struct ImportanceFiResult {
  /// Self-normalized IS estimate of the mean classification error (%).
  double mean_error = 0.0;
  /// Same estimator for the deviation-from-golden rate (%).
  double mean_deviation = 0.0;
  /// Effective sample size of the weight set (Kong's estimator); small ESS
  /// warns that the tilt is too aggressive.
  double weight_ess = 0.0;
  std::size_t injections = 0;
  /// Fraction of proposals that produced a non-zero deviation — the "hit
  /// rate" plain MC would have needed 1/hit_rate more samples to match.
  double hit_rate = 0.0;
};

/// Runs the tilted campaign at base rate p against `golden`'s profile.
/// Requires beta × p < 1 for every bit.
ImportanceFiResult run_importance_fi(const bayes::BayesianFaultNetwork& golden,
                                     double p,
                                     const ImportanceFiConfig& config);

}  // namespace bdlfi::inject
