#include "inject/boundary.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace bdlfi::inject {

namespace {

tensor::Tensor make_grid_inputs(const GridSpec& grid) {
  const auto n = static_cast<std::int64_t>(grid.nx * grid.ny);
  tensor::Tensor inputs{tensor::Shape{n, 2}};
  std::int64_t i = 0;
  for (std::size_t row = 0; row < grid.ny; ++row) {
    // Row 0 is the top of the rendered map (max y).
    const double ty =
        grid.ny == 1 ? 0.0
                     : static_cast<double>(row) / static_cast<double>(grid.ny - 1);
    const double y = grid.y_max - ty * (grid.y_max - grid.y_min);
    for (std::size_t col = 0; col < grid.nx; ++col, ++i) {
      const double tx =
          grid.nx == 1
              ? 0.0
              : static_cast<double>(col) / static_cast<double>(grid.nx - 1);
      const double x = grid.x_min + tx * (grid.x_max - grid.x_min);
      inputs[i * 2 + 0] = static_cast<float>(x);
      inputs[i * 2 + 1] = static_cast<float>(y);
    }
  }
  return inputs;
}

}  // namespace

BoundaryMap compute_boundary_map(const bayes::BayesianFaultNetwork& golden_2d,
                                 const BoundaryConfig& config) {
  BDLFI_CHECK(config.masks > 0);
  const tensor::Tensor grid_inputs = make_grid_inputs(config.grid);
  const std::size_t cells = config.grid.nx * config.grid.ny;

  std::size_t workers = config.workers;
  if (workers == 0) workers = util::ThreadPool::global().size();
  workers = std::min(workers, config.masks);

  // Golden predictions over the grid (clean network).
  auto probe = golden_2d.replicate();
  const auto golden_preds = probe->predict_current(grid_inputs);
  BDLFI_CHECK(golden_preds.size() == cells);

  util::Rng seeder{config.seed};
  std::vector<std::uint64_t> seeds(workers);
  for (auto& s : seeds) s = seeder();

  std::vector<std::vector<std::uint32_t>> counts(
      workers, std::vector<std::uint32_t>(cells, 0));

  util::parallel_for_chunked(
      0, config.masks, workers,
      [&](std::size_t worker, std::size_t lo, std::size_t hi) {
        auto replica = golden_2d.replicate();
        util::Rng rng{seeds[worker]};
        auto& local = counts[worker];
        for (std::size_t m = lo; m < hi; ++m) {
          const fault::FaultMask mask =
              replica->sample_prior_mask(config.p, rng);
          replica->space().apply(mask);
          const auto preds = replica->predict_current(grid_inputs);
          replica->space().apply(mask);  // revert
          for (std::size_t i = 0; i < cells; ++i) {
            if (preds[i] != golden_preds[i]) ++local[i];
          }
        }
      });

  BoundaryMap map;
  map.grid = config.grid;
  map.masks_used = config.masks;
  map.deviation_probability.resize(cells);
  map.log10_probability.resize(cells);
  map.golden_prediction = golden_preds;
  const double floor_prob = 1.0 / static_cast<double>(config.masks + 1);
  for (std::size_t i = 0; i < cells; ++i) {
    std::uint32_t total = 0;
    for (std::size_t w = 0; w < workers; ++w) total += counts[w][i];
    const double prob =
        static_cast<double>(total) / static_cast<double>(config.masks);
    map.deviation_probability[i] = prob;
    map.log10_probability[i] = std::log10(std::max(prob, floor_prob));
  }
  return map;
}

}  // namespace bdlfi::inject
