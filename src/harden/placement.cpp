#include "harden/placement.h"

#include <algorithm>
#include <set>

#include "nn/range_guard.h"
#include "util/check.h"

namespace bdlfi::harden {

const char* protection_name(Protection p) {
  switch (p) {
    case Protection::kRangeGuard:
      return "range_guard";
    case Protection::kAbft:
      return "abft";
  }
  return "unknown";
}

namespace {

bool gemm_bearing(const std::string& kind) {
  // The layers whose forward runs through the checksum-checkable GEMM path.
  return kind == "dense" || kind == "conv" || kind == "qdense" ||
         kind == "qconv";
}

}  // namespace

std::vector<PlacementCandidate> placement_candidates(
    const bayes::PosteriorProfile& profile, const nn::Network& net,
    const PlacementConfig& config) {
  BDLFI_CHECK_MSG(profile.finalized(),
                  "placement needs a finalized posterior profile");
  std::vector<PlacementCandidate> out;
  for (const auto& layer : profile.layers()) {
    if (layer.layer < 0 ||
        static_cast<std::size_t>(layer.layer) >= net.num_layers()) {
      continue;  // input/activation pseudo-layers have no in-network site
    }
    if (layer.mass <= 0.0) continue;
    const auto index = static_cast<std::size_t>(layer.layer);
    const std::string kind = net.layer_kind(index);
    if (config.use_guards) {
      PlacementCandidate c;
      c.layer = index;
      c.name = net.layer_name(index);
      c.kind = Protection::kRangeGuard;
      c.benefit = layer.mass;
      c.overhead = config.guard_overhead;
      out.push_back(std::move(c));
    }
    if (config.use_abft && gemm_bearing(kind)) {
      PlacementCandidate c;
      c.layer = index;
      c.name = net.layer_name(index);
      c.kind = Protection::kAbft;
      c.benefit = layer.mass;
      c.overhead = config.abft_overhead;
      out.push_back(std::move(c));
    }
  }
  // Benefit-per-overhead, descending; stable tie-break keeps (layer, guard
  // before abft) order deterministic across platforms.
  std::stable_sort(out.begin(), out.end(),
                   [](const PlacementCandidate& a, const PlacementCandidate& b) {
                     const double ra = a.benefit / a.overhead;
                     const double rb = b.benefit / b.overhead;
                     if (ra != rb) return ra > rb;
                     if (a.layer != b.layer) return a.layer < b.layer;
                     return a.kind == Protection::kRangeGuard &&
                            b.kind == Protection::kAbft;
                   });
  return out;
}

PlacementPlan place_protection(const bayes::PosteriorProfile& profile,
                               const nn::Network& net, double budget,
                               const PlacementConfig& config) {
  BDLFI_CHECK(budget >= 0.0);
  const auto candidates = placement_candidates(profile, net, config);
  PlacementPlan plan;
  plan.budget = budget;
  std::set<std::size_t> covered;
  for (const auto& c : candidates) {
    // Prefix rule: stop at the first candidate that does not fit. A skip-and-
    // continue greedy packs tighter but loses the superset property across
    // budgets, and the frontier's monotonicity is the contract here.
    if (plan.overhead + c.overhead > budget + 1e-12) break;
    plan.overhead += c.overhead;
    if (covered.insert(c.layer).second) plan.coverage += c.benefit;
    if (c.kind == Protection::kRangeGuard) {
      plan.guard_layers.push_back(c.layer);
    } else {
      plan.abft_layers.push_back(c.layer);
    }
    plan.selected.push_back(c);
  }
  std::sort(plan.guard_layers.begin(), plan.guard_layers.end());
  std::sort(plan.abft_layers.begin(), plan.abft_layers.end());
  return plan;
}

std::vector<PlacementPlan> coverage_frontier(
    const bayes::PosteriorProfile& profile, const nn::Network& net,
    std::span<const double> budgets, const PlacementConfig& config) {
  std::vector<PlacementPlan> plans;
  plans.reserve(budgets.size());
  for (const double budget : budgets) {
    plans.push_back(place_protection(profile, net, budget, config));
  }
  return plans;
}

nn::Network apply_plan(const nn::Network& net, const PlacementPlan& plan,
                       const tensor::Tensor& calibration_inputs,
                       const tensor::abft::Config& abft, double guard_margin) {
  nn::Network hardened =
      plan.guard_layers.empty()
          ? net.clone()
          : nn::add_range_guards_at(net, plan.guard_layers,
                                    calibration_inputs, guard_margin);
  if (!plan.abft_layers.empty() && abft.mode != tensor::abft::Mode::kOff) {
    std::vector<std::size_t> remapped;
    remapped.reserve(plan.abft_layers.size());
    for (const std::size_t orig : plan.abft_layers) {
      // Each guard inserted after an earlier layer shifts this one up by one.
      const auto shift = static_cast<std::size_t>(
          std::count_if(plan.guard_layers.begin(), plan.guard_layers.end(),
                        [orig](std::size_t g) { return g < orig; }));
      remapped.push_back(orig + shift);
    }
    hardened.set_abft(abft);
    hardened.set_abft_layers(std::move(remapped));
  }
  return hardened;
}

}  // namespace bdlfi::harden
