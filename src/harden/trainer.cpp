#include "harden/trainer.h"

#include <cmath>

#include "util/check.h"

namespace bdlfi::harden {

bool FaultAwareTrainer::clip_gradients() {
  double sq = 0.0;
  auto params = net_.params();
  for (const auto& p : params) {
    if (p.grad == nullptr) continue;
    for (std::int64_t i = 0; i < p.grad->numel(); ++i) {
      const double g = (*p.grad)[i];
      sq += g * g;
    }
  }
  const double norm = std::sqrt(sq);
  if (!(norm > config_.clip_norm)) return false;  // also skips NaN norms
  const auto scale = static_cast<float>(config_.clip_norm / norm);
  for (const auto& p : params) {
    if (p.grad == nullptr) continue;
    for (std::int64_t i = 0; i < p.grad->numel(); ++i) {
      (*p.grad)[i] *= scale;
    }
  }
  return true;
}

FaultAwareTrainer::FaultAwareTrainer(nn::Network& net,
                                     const bayes::PosteriorProfile& profile,
                                     FaultAwareConfig config)
    : net_(net),
      config_(config),
      space_(net, fault::TargetSpec::all_parameters()),
      sampler_(profile.make_sampler(config.min_flips, config.max_flips,
                                    config.smoothing)),
      rng_(config.inject_seed) {
  BDLFI_CHECK_MSG(profile.finalized(),
                  "FaultAwareTrainer needs a finalized profile");
  BDLFI_CHECK(config.inject_prob >= 0.0 && config.inject_prob <= 1.0);
}

FaultAwareResult FaultAwareTrainer::run(const data::Dataset& train_set,
                                        const data::Dataset& test_set) {
  FaultAwareResult result;
  fault::FaultMask active;
  bool applied = false;
  train::TrainHooks hooks;
  hooks.before_forward = [&](std::size_t /*step*/) {
    BDLFI_CHECK_MSG(!applied, "injection mask leaked across a mini-batch");
    if (config_.inject_prob <= 0.0 || !rng_.bernoulli(config_.inject_prob)) {
      return;
    }
    active = sampler_->sample(space_, rng_);
    if (active.num_flips() == 0) return;
    space_.apply(active);
    applied = true;
    ++result.batches_injected;
    result.flips_injected += active.num_flips();
  };
  hooks.before_step = [&](std::size_t /*step*/, double loss) {
    // XOR is self-inverse: re-applying the mask restores the clean weights,
    // which the optimizer then updates with the faulty-point gradients.
    const bool was_injected = applied;
    if (applied) {
      space_.apply(active);
      applied = false;
    }
    if (config_.skip_nonfinite && !std::isfinite(loss)) {
      ++result.updates_skipped;
      return false;
    }
    if (config_.max_loss > 0.0 && was_injected && loss > config_.max_loss) {
      ++result.updates_skipped;
      return false;
    }
    if (config_.clip_norm > 0.0 && was_injected && clip_gradients()) {
      ++result.updates_clipped;
    }
    return true;
  };
  result.train = train::fit(net_, train_set, test_set, config_.base, hooks);
  // An interrupt between the hooks cannot leak a mask (fit breaks only at
  // batch boundaries), but guard against future loop changes all the same.
  if (applied) {
    space_.apply(active);
    applied = false;
  }
  return result;
}

}  // namespace bdlfi::harden
