// Budgeted selective protection: spend a limited overhead budget where the
// posterior says faults hurt most.
//
// Full protection (a guard after every layer, ABFT on every GEMM) costs
// forward-pass overhead a deployment may not afford. Given the campaign's
// posterior criticality profile, this module ranks candidate protections by
// posterior-mass-per-overhead and fills the budget greedily, emitting the
// coverage-vs-overhead frontier a deployment engineer actually decides on.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bayes/posterior_profile.h"
#include "nn/network.h"
#include "tensor/abft.h"
#include "tensor/tensor.h"

namespace bdlfi::harden {

enum class Protection { kRangeGuard, kAbft };
const char* protection_name(Protection p);

struct PlacementCandidate {
  std::size_t layer = 0;  // original (pre-guard-insertion) layer index
  std::string name;       // network layer name
  Protection kind = Protection::kRangeGuard;
  double benefit = 0.0;   // posterior mass of the layer
  double overhead = 0.0;  // estimated fractional forward-cost increase
};

struct PlacementConfig {
  /// Estimated fractional forward overhead per protected layer. ABFT pays a
  /// checksum pass per checked GEMM; a range guard is one elementwise clamp.
  double abft_overhead = 0.09;
  double guard_overhead = 0.02;
  bool use_abft = true;
  bool use_guards = true;
};

struct PlacementPlan {
  double budget = 0.0;  // the overhead budget this plan was built for
  std::vector<PlacementCandidate> selected;
  double coverage = 0.0;  // posterior mass of layers with >= 1 protection
  double overhead = 0.0;  // sum of selected overhead estimates
  // The selection split by mechanism, in original layer indices (sorted).
  std::vector<std::size_t> guard_layers;
  std::vector<std::size_t> abft_layers;
};

/// All protections the optimizer may place on `net`: a range guard after any
/// layer with posterior mass, ABFT on any GEMM-bearing (dense/conv) layer.
/// Sorted by benefit/overhead descending (stable tie-break by layer, guards
/// first) — the greedy order.
std::vector<PlacementCandidate> placement_candidates(
    const bayes::PosteriorProfile& profile, const nn::Network& net,
    const PlacementConfig& config = {});

/// Greedy prefix placement: walk the ranked candidates and take the longest
/// prefix whose total overhead fits `budget`. Prefix construction makes the
/// frontier monotone by design — a larger budget's selection is a superset
/// of a smaller one's, so coverage can only grow with budget.
PlacementPlan place_protection(const bayes::PosteriorProfile& profile,
                               const nn::Network& net, double budget,
                               const PlacementConfig& config = {});

/// One plan per budget (any order); the returned plans are in the same order
/// as `budgets`.
std::vector<PlacementPlan> coverage_frontier(
    const bayes::PosteriorProfile& profile, const nn::Network& net,
    std::span<const double> budgets, const PlacementConfig& config = {});

/// Materializes a plan on a clone of `net`: inserts calibrated range guards
/// after the selected layers (nn::add_range_guards_at) and restricts ABFT
/// checking to the selected GEMMs — with indices remapped past the inserted
/// guards, since each guard shifts every later layer up by one. `abft` is
/// applied only when the plan selects at least one ABFT layer.
nn::Network apply_plan(const nn::Network& net, const PlacementPlan& plan,
                       const tensor::Tensor& calibration_inputs,
                       const tensor::abft::Config& abft,
                       double guard_margin = 0.1);

}  // namespace bdlfi::harden
