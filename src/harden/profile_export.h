// Campaign → posterior profile bridge.
//
// The MCMC campaign explores the fault posterior; hardening needs that
// exploration condensed into a per-layer/per-bit importance distribution
// (bayes::PosteriorProfile). This lives in harden (not bayes) because it
// depends on mcmc::CampaignResult, which sits above bayes in the layering.
#pragma once

#include "bayes/posterior_profile.h"
#include "fault/space.h"
#include "mcmc/runner.h"

namespace bdlfi::harden {

/// Tallies the retained masks of a campaign into a finalized posterior
/// profile. Requires the campaign to have run with MhConfig/GibbsConfig::
/// record_masks = true — chains without recorded masks contribute nothing
/// (check profile.samples() afterwards). Quarantined chains are skipped:
/// their sample streams were rejected by the supervisor and are not draws
/// from the posterior. Each mask is weighted by its paired deviation sample,
/// so sites that actually corrupt the output dominate the profile.
bayes::PosteriorProfile summarize_campaign(const mcmc::CampaignResult& result,
                                           const fault::InjectionSpace& space);

}  // namespace bdlfi::harden
