#include "harden/profile_export.h"

#include "mcmc/supervisor.h"

namespace bdlfi::harden {

bayes::PosteriorProfile summarize_campaign(const mcmc::CampaignResult& result,
                                           const fault::InjectionSpace& space) {
  bayes::PosteriorProfile profile(space);
  for (std::size_t c = 0; c < result.chains.size(); ++c) {
    if (c < result.health.size() &&
        result.health[c].status == mcmc::ChainStatus::quarantined) {
      continue;
    }
    const auto& chain = result.chains[c];
    for (std::size_t j = 0; j < chain.mask_samples.size(); ++j) {
      const double deviation =
          j < chain.deviation_samples.size() ? chain.deviation_samples[j] : 0.0;
      profile.add_sample(chain.mask_samples[j], deviation);
    }
  }
  profile.finalize();
  return profile;
}

}  // namespace bdlfi::harden
