// Fault-aware fine-tuning: train under posterior-guided bit flips.
//
// The hardening half of the paper's assessment→mitigation loop: given the
// posterior criticality profile of a campaign, fine-tune the network while
// injecting bit flips drawn from that profile into each mini-batch's forward
// pass. The network thereby sees (an importance-weighted sample of) its own
// most-damaging faults during training and learns weights whose loss surface
// is flat around them — the same mechanism as adversarial training, with the
// perturbation set picked by the Bayesian assessment instead of a gradient.
//
// Mechanics: flips are applied by persistent XOR (fault::InjectionSpace)
// *before* the forward and reverted *after* the backward but *before* the
// optimizer step — gradients are computed at the faulty point, the update is
// applied to the clean weights. A bit flip in a float32 exponent can make the
// loss non-finite; those batches skip the update (configurable) so a single
// unlucky flip cannot destroy the network.
#pragma once

#include <cstdint>
#include <memory>

#include "bayes/posterior_profile.h"
#include "data/dataset.h"
#include "fault/models.h"
#include "fault/space.h"
#include "nn/network.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::harden {

struct FaultAwareConfig {
  /// Underlying fine-tune schedule (epochs, lr, seed for batch shuffling...).
  train::TrainConfig base;
  /// Probability a given mini-batch trains under injection (the rest train
  /// clean, anchoring clean accuracy).
  double inject_prob = 0.75;
  /// Flips per injected mask, uniform in [min_flips, max_flips].
  std::size_t min_flips = 1;
  std::size_t max_flips = 2;
  /// Smoothing toward uniform for the posterior sampler (see
  /// bayes::PosteriorProfile::layer_weights).
  double smoothing = 0.05;
  /// Seed of the *dedicated* injection RNG stream. Deliberately decoupled
  /// from base.seed and from every campaign RNG: hardening consumes no
  /// randomness from streams that campaign checkpoints depend on, so a
  /// campaign resumed after a harden run is bit-exact (tested).
  std::uint64_t inject_seed = 0x51CE5EEDULL;
  /// Skip the optimizer update when injection made the loss non-finite.
  bool skip_nonfinite = true;
  /// Skip the update when the (injected) loss exceeds this — an exponent
  /// flip can leave the loss finite but astronomically large, and one such
  /// gradient through SGD momentum destroys the network. 0 disables.
  double max_loss = 20.0;
  /// Global-norm gradient clip applied to updates taken at a faulty point
  /// (injected batches only — clean batches step unclipped, like plain
  /// training). 0 disables.
  double clip_norm = 1.0;
};

struct FaultAwareResult {
  train::TrainResult train;
  std::size_t batches_injected = 0;  // mini-batches that ran under a mask
  std::size_t flips_injected = 0;    // total bits flipped across them
  std::size_t updates_skipped = 0;   // non-finite/exploded-loss updates dropped
  std::size_t updates_clipped = 0;   // faulty-point gradients norm-clipped
};

class FaultAwareTrainer {
 public:
  /// `net` is fine-tuned in place. The trainer builds an InjectionSpace over
  /// net's parameters, so net must outlive the trainer and must not be
  /// structurally modified while it lives. `profile` must be finalized.
  FaultAwareTrainer(nn::Network& net, const bayes::PosteriorProfile& profile,
                    FaultAwareConfig config);

  FaultAwareResult run(const data::Dataset& train_set,
                       const data::Dataset& test_set);

 private:
  /// Scales all parameter gradients to global norm clip_norm when exceeded;
  /// returns whether clipping fired.
  bool clip_gradients();

  nn::Network& net_;
  FaultAwareConfig config_;
  fault::InjectionSpace space_;
  std::unique_ptr<fault::MaskSampler> sampler_;
  util::Rng rng_;
};

}  // namespace bdlfi::harden
