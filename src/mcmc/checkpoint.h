// On-disk campaign checkpoints for crash-safe run_until_complete.
//
// After every pooled round the runner serializes the complete campaign state
// — per-chain retained samples and counters, each chain's continuation
// cursor (RNG engine state + current mask), the supervisor's health table,
// the round trajectory, and a fingerprint of the sampling configuration —
// to a single versioned JSON document, written atomically (temp file +
// fsync + rename). Restoring it reproduces the exact state the campaign
// would have had at that round, so a resumed run emits bit-identical samples
// to an uninterrupted one. A fingerprint mismatch (different seed, chain
// count, sampler parameters, flip probability, or subject network) rejects
// the resume instead of silently mixing incompatible streams.
//
// Doubles are serialized with JsonWriter::number_exact (%.17g, round-trip
// exact); u64 words (RNG state, fingerprint) travel as hex strings because
// the JSON number path goes through a double and would corrupt them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mcmc/runner.h"

namespace bdlfi::mcmc {

inline constexpr const char* kCheckpointSchema = "bdlfi_campaign_checkpoint";
/// v2 adds the per-chain fault-outcome taxonomy counters (masked/SDC/
/// detected/corrected) and folds the deployment's ABFT mode into the
/// fingerprint. The loader still accepts v1 documents (their counters
/// restore as zero — the taxonomy simply starts tallying from the resume
/// point), but a v1 checkpoint can never fingerprint-match an ABFT-enabled
/// campaign, so streams with different checking semantics cannot mix.
inline constexpr std::uint64_t kCheckpointVersion = 2;
inline constexpr std::uint64_t kCheckpointMinVersion = 1;

/// Continuation cursor of one chain: everything needed to extend its walk
/// bit-exactly. Invalid before the chain's first completed round and after a
/// supervised restart.
struct ChainCursor {
  bool valid = false;
  std::vector<std::uint64_t> rng_state;
  FaultMask mask;
};

/// Full campaign state after `rounds_completed` pooled rounds.
struct CampaignCheckpoint {
  std::uint64_t fingerprint = 0;
  /// Kernel backend the campaign ran on. Resume refuses to continue under a
  /// different backend: bit-exactness of the restored walk only holds on the
  /// arithmetic that produced it (FMA contraction changes gemm rounding).
  /// Checkpoints written before this field default to "scalar".
  std::string backend = "scalar";
  double p = 0.0;
  std::size_t rounds_completed = 0;
  bool converged = false;
  /// Stability-check state of the completeness loop.
  double prev_mean = 0.0;
  std::size_t prev_evals = 0;
  std::vector<CompletenessResult::RoundStats> trajectory;
  /// Cumulative per-chain streams/counters (index = chain).
  std::vector<ChainResult> chains;
  std::vector<ChainCursor> cursors;
  std::vector<ChainHealth> health;
};

/// FNV-1a hash of the canonical sampling configuration: seed, chain count,
/// sampler parameters, flip probability, and subject-network identity
/// (injection-space size, eval-set size, golden error bits). Deliberately
/// excludes stopping knobs (CompletenessCriterion) and supervision policy —
/// resuming with a larger round budget or different retry policy is legal
/// and extends the same campaign.
std::uint64_t campaign_fingerprint(const bayes::BayesianFaultNetwork& golden,
                                   const RunnerConfig& config, double p);

/// Canonical checkpoint file location inside a checkpoint directory.
std::string checkpoint_path(const std::string& dir);

/// Atomically writes `ck` to `path` (parent directories created). False on
/// any I/O failure; the previous checkpoint, if any, is left intact.
bool save_checkpoint(const std::string& path, const CampaignCheckpoint& ck);

/// Parses and validates a checkpoint. nullopt with a message in `error` on
/// missing file, malformed JSON, or schema/version mismatch.
std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path,
                                                  std::string* error = nullptr);

/// Canonical lock-file location inside a checkpoint directory.
std::string checkpoint_lock_path(const std::string& dir);

/// Exclusive ownership of a checkpoint directory, held for the duration of a
/// campaign that checkpoints into it. Two processes resuming the same
/// directory concurrently would interleave atomic checkpoint writes from two
/// diverging walks — each file individually valid, the lineage silently
/// corrupted — so run_until_complete refuses to start without the lock.
///
/// Implementation: a pidfile created O_CREAT|O_EXCL (atomic on POSIX). An
/// existing lock whose recorded pid no longer exists (the owner crashed or
/// was SIGKILLed) is stale and is broken automatically — that is what lets a
/// fleet supervisor restart a killed worker on the same checkpoint dir. An
/// unparseable lock file is treated as stale too (a torn write can only come
/// from a dead owner). The file is removed on destruction.
class CheckpointDirLock {
 public:
  CheckpointDirLock() = default;
  CheckpointDirLock(CheckpointDirLock&& other) noexcept;
  CheckpointDirLock& operator=(CheckpointDirLock&& other) noexcept;
  CheckpointDirLock(const CheckpointDirLock&) = delete;
  CheckpointDirLock& operator=(const CheckpointDirLock&) = delete;
  ~CheckpointDirLock();

  /// Acquires the lock for `dir` (created if missing). On failure returns an
  /// un-held lock with the owner's pid in `error` — the caller must not
  /// proceed to checkpoint into the directory.
  static CheckpointDirLock acquire(const std::string& dir,
                                   std::string* error = nullptr);

  bool held() const { return !path_.empty(); }

  /// Removes the lock file early (idempotent).
  void release();

 private:
  std::string path_;
};

}  // namespace bdlfi::mcmc
