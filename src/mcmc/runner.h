// Multi-chain campaign runner with convergence diagnostics.
//
// Runs m independent chains (each on its own replica of the Bayesian fault
// network) in parallel, pools their retained samples, and computes the
// Gelman–Rubin R-hat / effective-sample-size diagnostics from which the
// paper's "completeness of an injection campaign" criterion is derived: the
// campaign is complete when the chains agree (R-hat below threshold) and the
// running estimate has stabilized (further injections do not change the
// measured hypothesis).
#pragma once

#include <functional>
#include <memory>

#include "bayes/targets.h"
#include "mcmc/gibbs.h"
#include "mcmc/mh.h"
#include "mcmc/supervisor.h"
#include "obs/reporter.h"
#include "util/stats.h"

namespace bdlfi::mcmc {

/// Builds the per-chain target distribution bound to that chain's replica.
using TargetFactory = std::function<std::unique_ptr<bayes::MaskTarget>(
    bayes::BayesianFaultNetwork&)>;

/// Chain-aware variant: also receives the chain index. Enables per-chain
/// target variation (tempering ladders, supervision fault-injection tests).
using ChainTargetFactory = std::function<std::unique_ptr<bayes::MaskTarget>(
    bayes::BayesianFaultNetwork&, std::size_t chain)>;

struct RunnerConfig {
  std::size_t num_chains = 4;
  MhConfig mh;  // per-chain sampler configuration (seed is re-derived)
  std::uint64_t seed = 1;
  bool use_gibbs = false;
  GibbsConfig gibbs;
  /// Invoked after every pooled round with the campaign health of that round
  /// (live observability). Wire an obs::CampaignReporter via reporter.hook(),
  /// or any custom subscriber. Called from the orchestrating thread.
  obs::RoundCallback round_hook;
  /// Chain supervision policy (watchdog/retry/quarantine). The divergence
  /// detector is always armed; everything else is opt-in, so the default
  /// config costs nothing on the hot path.
  SupervisorConfig supervisor;
  /// Directory receiving the atomic per-round campaign checkpoint ("" = off).
  /// Created if missing. Only run_until_complete checkpoints; single-round
  /// run_chains campaigns are cheap enough to re-run.
  std::string checkpoint_dir;
  /// Restore from checkpoint_dir's checkpoint before running. A missing file
  /// is a fresh start; a config/seed fingerprint mismatch rejects the run.
  bool resume = false;
  /// Invoked on every supervision incident (retry, quarantine). Called from
  /// the orchestrating thread between rounds.
  obs::ChainHealthCallback health_hook;
  /// Invoked after each successful checkpoint write with (round, path).
  std::function<void(std::size_t, const std::string&)> checkpoint_hook;
};

struct CampaignDiagnostics {
  double rhat = 0.0;
  double ess = 0.0;       // pooled effective sample size
  double geweke_max = 0.0;  // worst |z| across chains
};

struct CampaignResult {
  std::vector<ChainResult> chains;
  // Pooled statistics of the classification-error samples.
  double mean_error = 0.0;
  double stddev_error = 0.0;
  double q05 = 0.0, q50 = 0.0, q95 = 0.0;
  double mean_deviation = 0.0;
  double mean_flips = 0.0;
  /// Mean MH acceptance rate across chains (latest round's rate per chain).
  double mean_acceptance = 0.0;
  CampaignDiagnostics diagnostics;
  std::size_t total_samples = 0;
  std::size_t total_network_evals = 0;
  // Fault-outcome taxonomy pooled over surviving chains' retained samples.
  std::size_t total_outcome_masked = 0;
  std::size_t total_outcome_sdc = 0;
  std::size_t total_outcome_detected = 0;
  std::size_t total_outcome_corrected = 0;
  /// Detection coverage: of the samples where the fault mattered (detected,
  /// corrected, or silently corrupting), the fraction the deployment caught.
  /// 0 when no sample mattered (nothing to cover).
  double detection_coverage() const {
    const std::size_t caught = total_outcome_detected + total_outcome_corrected;
    const std::size_t mattered = caught + total_outcome_sdc;
    return mattered == 0
               ? 0.0
               : static_cast<double>(caught) / static_cast<double>(mattered);
  }
  /// Fraction of all retained samples that ended in silent data corruption.
  double sdc_rate() const {
    const std::size_t total = total_outcome_masked + total_outcome_sdc +
                              total_outcome_detected + total_outcome_corrected;
    return total == 0 ? 0.0
                      : static_cast<double>(total_outcome_sdc) /
                            static_cast<double>(total);
  }
  // Truncated-replay observability pooled across chains.
  std::size_t total_full_evals = 0;
  std::size_t total_truncated_evals = 0;
  std::size_t total_layers_run = 0;
  std::size_t total_layers_total = 0;
  /// % of layer executions skipped thanks to the golden activation cache —
  /// i.e. equivalent full-network evaluations saved, as a fraction of the
  /// work a cache-less campaign would have spent.
  double layers_saved_pct() const {
    return total_layers_total == 0
               ? 0.0
               : 100.0 *
                     static_cast<double>(total_layers_total -
                                         total_layers_run) /
                     static_cast<double>(total_layers_total);
  }
  // Graceful-degradation surface. Pooled statistics and diagnostics above
  // cover surviving chains only; quarantined chains keep their (partial)
  // entries in `chains` for post-mortem but contribute nothing.
  std::size_t chains_quarantined = 0;
  bool degraded = false;  // chains_quarantined > 0
  /// Fewer than two chains survived a multi-chain campaign: cross-chain
  /// diagnostics are meaningless and the result must not be trusted.
  bool failed = false;
  std::string fail_reason;
  /// The global interrupt flag fired mid-campaign (partial round discarded).
  bool interrupted = false;
  std::vector<ChainHealth> health;  // one record per chain
};

/// Runs `config.num_chains` chains at flip probability `p` against targets
/// made by `make_target`. `golden` itself is never mutated.
CampaignResult run_chains(const bayes::BayesianFaultNetwork& golden,
                          const TargetFactory& make_target, double p,
                          const RunnerConfig& config);
CampaignResult run_chains(const bayes::BayesianFaultNetwork& golden,
                          const ChainTargetFactory& make_target, double p,
                          const RunnerConfig& config);

/// The paper's completeness criterion (§I advantage 1).
struct CompletenessCriterion {
  double rhat_threshold = 1.05;
  /// Relative change of the pooled mean between consecutive rounds below
  /// which the estimate counts as stable.
  double mean_rel_tol = 0.05;
  std::size_t max_rounds = 8;
};

struct CompletenessResult {
  CampaignResult final_result;
  std::size_t rounds = 0;
  bool converged = false;
  /// Estimate trajectory after each round (mean error, rhat, samples).
  struct RoundStats {
    std::size_t cumulative_samples;
    double mean_error;
    double rhat;
    double ess;
  };
  std::vector<RoundStats> trajectory;
  /// SIGINT/SIGTERM observed: stopped after the last complete round, whose
  /// checkpoint (if enabled) supports a bit-exact --resume.
  bool interrupted = false;
  /// RunnerConfig::resume found a checkpoint whose fingerprint does not match
  /// this campaign's config/seed/network; nothing was run.
  bool resume_rejected = false;
  /// The rejection was specifically a kernel-backend mismatch (the checkpoint
  /// was produced under different arithmetic). Subset of resume_rejected;
  /// callers can map it to a distinct exit code.
  bool backend_mismatch = false;
  /// Another live process holds the checkpoint directory's lock; nothing was
  /// run. Concurrent campaigns on one directory would silently corrupt the
  /// checkpoint lineage, so the second process refuses to start.
  bool lock_rejected = false;
  /// Rounds restored from the checkpoint (0 for a fresh start).
  std::size_t resumed_from_round = 0;
};

/// Repeatedly extends the campaign in rounds of `config.mh.samples` per chain
/// until the completeness criterion is met (mixing achieved and the running
/// hypothesis stable) or `criterion.max_rounds` is exhausted. Rounds after
/// the first continue each chain's walk from its saved cursor (RNG engine
/// state + current mask) — no re-burn-in — which is also what makes
/// checkpoint resume bit-exact.
CompletenessResult run_until_complete(
    const bayes::BayesianFaultNetwork& golden,
    const TargetFactory& make_target, double p, const RunnerConfig& config,
    const CompletenessCriterion& criterion);
CompletenessResult run_until_complete(
    const bayes::BayesianFaultNetwork& golden,
    const ChainTargetFactory& make_target, double p, const RunnerConfig& config,
    const CompletenessCriterion& criterion);

}  // namespace bdlfi::mcmc
