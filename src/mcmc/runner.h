// Multi-chain campaign runner with convergence diagnostics.
//
// Runs m independent chains (each on its own replica of the Bayesian fault
// network) in parallel, pools their retained samples, and computes the
// Gelman–Rubin R-hat / effective-sample-size diagnostics from which the
// paper's "completeness of an injection campaign" criterion is derived: the
// campaign is complete when the chains agree (R-hat below threshold) and the
// running estimate has stabilized (further injections do not change the
// measured hypothesis).
#pragma once

#include <functional>
#include <memory>

#include "bayes/targets.h"
#include "mcmc/gibbs.h"
#include "mcmc/mh.h"
#include "obs/reporter.h"
#include "util/stats.h"

namespace bdlfi::mcmc {

/// Builds the per-chain target distribution bound to that chain's replica.
using TargetFactory = std::function<std::unique_ptr<bayes::MaskTarget>(
    bayes::BayesianFaultNetwork&)>;

struct RunnerConfig {
  std::size_t num_chains = 4;
  MhConfig mh;  // per-chain sampler configuration (seed is re-derived)
  std::uint64_t seed = 1;
  bool use_gibbs = false;
  GibbsConfig gibbs;
  /// Invoked after every pooled round with the campaign health of that round
  /// (live observability). Wire an obs::CampaignReporter via reporter.hook(),
  /// or any custom subscriber. Called from the orchestrating thread.
  obs::RoundCallback round_hook;
};

struct CampaignDiagnostics {
  double rhat = 0.0;
  double ess = 0.0;       // pooled effective sample size
  double geweke_max = 0.0;  // worst |z| across chains
};

struct CampaignResult {
  std::vector<ChainResult> chains;
  // Pooled statistics of the classification-error samples.
  double mean_error = 0.0;
  double stddev_error = 0.0;
  double q05 = 0.0, q50 = 0.0, q95 = 0.0;
  double mean_deviation = 0.0;
  double mean_flips = 0.0;
  /// Mean MH acceptance rate across chains (latest round's rate per chain).
  double mean_acceptance = 0.0;
  CampaignDiagnostics diagnostics;
  std::size_t total_samples = 0;
  std::size_t total_network_evals = 0;
  // Truncated-replay observability pooled across chains.
  std::size_t total_full_evals = 0;
  std::size_t total_truncated_evals = 0;
  std::size_t total_layers_run = 0;
  std::size_t total_layers_total = 0;
  /// % of layer executions skipped thanks to the golden activation cache —
  /// i.e. equivalent full-network evaluations saved, as a fraction of the
  /// work a cache-less campaign would have spent.
  double layers_saved_pct() const {
    return total_layers_total == 0
               ? 0.0
               : 100.0 *
                     static_cast<double>(total_layers_total -
                                         total_layers_run) /
                     static_cast<double>(total_layers_total);
  }
};

/// Runs `config.num_chains` chains at flip probability `p` against targets
/// made by `make_target`. `golden` itself is never mutated.
CampaignResult run_chains(const bayes::BayesianFaultNetwork& golden,
                          const TargetFactory& make_target, double p,
                          const RunnerConfig& config);

/// The paper's completeness criterion (§I advantage 1).
struct CompletenessCriterion {
  double rhat_threshold = 1.05;
  /// Relative change of the pooled mean between consecutive rounds below
  /// which the estimate counts as stable.
  double mean_rel_tol = 0.05;
  std::size_t max_rounds = 8;
};

struct CompletenessResult {
  CampaignResult final_result;
  std::size_t rounds = 0;
  bool converged = false;
  /// Estimate trajectory after each round (mean error, rhat, samples).
  struct RoundStats {
    std::size_t cumulative_samples;
    double mean_error;
    double rhat;
    double ess;
  };
  std::vector<RoundStats> trajectory;
};

/// Repeatedly extends the campaign in rounds of `config.mh.samples` per chain
/// until the completeness criterion is met (mixing achieved and the running
/// hypothesis stable) or `criterion.max_rounds` is exhausted.
CompletenessResult run_until_complete(
    const bayes::BayesianFaultNetwork& golden,
    const TargetFactory& make_target, double p, const RunnerConfig& config,
    const CompletenessCriterion& criterion);

}  // namespace bdlfi::mcmc
