#include "mcmc/proposals.h"

#include <cmath>

#include "util/check.h"

namespace bdlfi::mcmc {

Proposal SingleToggleKernel::propose(const FaultMask& current,
                                     BayesianFaultNetwork& net, double /*p*/,
                                     util::Rng& rng) {
  const std::int64_t total_bits = net.space().total_bits();
  const auto bit = static_cast<std::int64_t>(
      rng.below(static_cast<std::uint64_t>(total_bits)));
  Proposal proposal;
  proposal.next = current;
  proposal.next.toggle(bit);
  proposal.log_q_ratio = 0.0;  // symmetric
  return proposal;
}

Proposal BlockResampleKernel::propose(const FaultMask& current,
                                      BayesianFaultNetwork& net, double p,
                                      util::Rng& rng) {
  const std::int64_t total_bits = net.space().total_bits();
  Proposal proposal;
  proposal.next = current;
  double log_q_fwd = 0.0, log_q_rev = 0.0;
  for (std::size_t i = 0; i < block_size_; ++i) {
    const auto flat = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(total_bits)));
    const int bit = static_cast<int>(flat % fault::kBitsPerWord);
    const double pb = net.profile().bit_prob(bit, p);
    const bool was_set = proposal.next.contains(flat);
    const bool now_set = rng.bernoulli(pb);
    if (now_set != was_set) proposal.next.toggle(flat);
    // Bernoulli proposal densities for this coordinate (guard p∈{0,1}).
    auto log_bern = [&](bool state) {
      const double q = state ? pb : 1.0 - pb;
      return q > 0.0 ? std::log(q) : -1e300;
    };
    log_q_fwd += log_bern(now_set);
    log_q_rev += log_bern(was_set);
  }
  proposal.log_q_ratio = log_q_rev - log_q_fwd;
  return proposal;
}

Proposal IndependenceKernel::propose(const FaultMask& current,
                                     BayesianFaultNetwork& net, double p,
                                     util::Rng& rng) {
  Proposal proposal;
  proposal.next = net.sample_prior_mask(p, rng);
  // q(x) = prior(x): the correction is prior(cur) − prior(next).
  proposal.log_q_ratio =
      net.log_prior(current, p) - net.log_prior(proposal.next, p);
  return proposal;
}

}  // namespace bdlfi::mcmc
