// Systematic-scan Gibbs sampler over fault-mask bits.
//
// Each sweep resamples a random subset of bit coordinates from their full
// conditional. Under the prior the conditionals are independent
// Bernoulli(p_b) and the sweep is exact; under a network-tempered target
// each coordinate needs the density at both states (one extra forward pass),
// so sweeps visit a bounded number of coordinates per retained sample.
#pragma once

#include "bayes/targets.h"
#include "mcmc/mh.h"
#include "util/stopwatch.h"

namespace bdlfi::mcmc {

struct GibbsConfig {
  std::size_t samples = 200;
  std::size_t burn_in = 10;
  /// Bit coordinates resampled per sweep.
  std::size_t coordinates_per_sweep = 64;
  /// Retained-sample evals flushed through the batched multi-mask path; same
  /// semantics (and bit-exactness argument) as MhConfig::mask_batch.
  std::size_t mask_batch = 8;
  std::uint64_t seed = 1;
  /// Same semantics as the MhConfig fields of the same names.
  double round_timeout_ms = 0.0;
  bool resume = false;
  std::vector<std::uint64_t> resume_rng;
  FaultMask resume_mask;
  bool record_masks = false;
};

class GibbsSampler {
 public:
  GibbsSampler(bayes::BayesianFaultNetwork& net, bayes::MaskTarget& target,
               double p, const GibbsConfig& config);

  ChainResult run();

 private:
  void sweep(FaultMask& current, double& current_logd, util::Rng& rng);

  bayes::BayesianFaultNetwork& net_;
  bayes::MaskTarget& target_;
  double p_;
  GibbsConfig config_;
  std::size_t network_evals_ = 0;
  bool diverged_ = false;
  bool timed_out_ = false;
  util::Stopwatch watch_;
};

}  // namespace bdlfi::mcmc
