// Metropolis–Hastings sampler over fault masks (one chain).
//
// The chain state is a FaultMask; retained samples record the classification
// error / golden-deviation of the corrupted network under the current mask —
// the statistic whose distribution the paper's Fig. 1-③ histogram shows and
// whose mean the Fig. 2/4 sweeps plot.
#pragma once

#include <memory>
#include <vector>

#include "bayes/targets.h"
#include "mcmc/proposals.h"

namespace bdlfi::mcmc {

struct MhConfig {
  std::size_t samples = 200;     // retained samples
  std::size_t burn_in = 50;      // discarded leading steps
  std::size_t thin = 1;          // steps between retained samples
  /// Relative selection weights of the three kernels.
  double w_single_toggle = 0.5;
  double w_block_resample = 0.3;
  double w_independence = 0.2;
  std::size_t block_size = 8;
  /// Retained-sample evaluations are deferred and flushed through the batched
  /// multi-mask path (BayesianFaultNetwork::evaluate_masks) in groups of this
  /// size. Results are bit-identical to evaluating each retained sample
  /// inline — the outcome of a retained eval never feeds back into the chain
  /// (the network returns to golden state and the RNG is untouched), so
  /// deferral only changes when the forwards run, not what they compute.
  /// 1 disables batching.
  std::size_t mask_batch = 8;
  std::uint64_t seed = 1;
  /// Cooperative wall-clock watchdog: when > 0, the run abandons (result
  /// flagged timed_out) once this many milliseconds elapse. Checked between
  /// steps; a single wedged forward pass cannot be preempted.
  double round_timeout_ms = 0.0;
  /// Cross-round continuation (set by the campaign runner / checkpoint
  /// resume): restore the RNG engine from `resume_rng` and continue from
  /// `resume_mask` instead of seeding fresh and drawing from the prior.
  /// Burn-in is skipped — the restored state is already warmed up.
  bool resume = false;
  std::vector<std::uint64_t> resume_rng;
  FaultMask resume_mask;
  /// Record every retained mask into ChainResult::mask_samples (same order as
  /// the sample vectors) — the input of bayes::PosteriorProfile. Off by
  /// default: masks are heavier than the scalar samples, and checkpoints do
  /// not persist them (a profile-bound campaign runs within one process;
  /// cross-round accumulation in-process works normally).
  bool record_masks = false;
};

struct ChainResult {
  std::vector<double> error_samples;      // classification error, %
  std::vector<double> deviation_samples;  // deviation from golden, %
  std::vector<double> flips_samples;      // #flipped bits per retained sample
  double acceptance_rate = 0.0;
  std::size_t network_evals = 0;  // forward passes spent
  // Fault-outcome taxonomy tallies over the retained samples (masked / SDC /
  // detected-DUE / corrected; see bayes::FaultOutcome). The four counters sum
  // to error_samples.size().
  std::size_t outcome_masked = 0;
  std::size_t outcome_sdc = 0;
  std::size_t outcome_detected = 0;
  std::size_t outcome_corrected = 0;
  // Truncated-replay observability (from the replica's EvalStats): how many
  // of the network evals resumed from the golden activation cache, and the
  // layer executions actually run vs what a full-forward policy would cost.
  std::size_t full_evals = 0;
  std::size_t truncated_evals = 0;
  std::size_t layers_run = 0;
  std::size_t layers_total = 0;
  // Supervision verdicts, inspected by mcmc::ChainSupervisor.
  bool timed_out = false;     // watchdog fired; samples are partial
  bool diverged = false;      // NaN/+Inf posterior density observed
  bool interrupted = false;   // global interrupt flag seen; samples partial
  // Continuation cursor: engine state and chain position after the last
  // retained sample, so the next round resumes the same stream.
  std::vector<std::uint64_t> rng_state;
  FaultMask final_mask;
  /// Retained masks, parallel to the sample vectors; populated only when
  /// MhConfig/GibbsConfig::record_masks is set. Not checkpointed.
  std::vector<FaultMask> mask_samples;
};

class MhSampler {
 public:
  /// `net` is mutated during sampling (masks applied/reverted) but is
  /// restored to golden state when run() returns.
  MhSampler(bayes::BayesianFaultNetwork& net, bayes::MaskTarget& target,
            double p, const MhConfig& config);

  ChainResult run();

 private:
  bool step(FaultMask& current, double& current_logd, util::Rng& rng);
  ProposalKernel& pick_kernel(util::Rng& rng);

  bayes::BayesianFaultNetwork& net_;
  bayes::MaskTarget& target_;
  double p_;
  MhConfig config_;
  SingleToggleKernel single_;
  BlockResampleKernel block_;
  IndependenceKernel indep_;
  std::size_t accepted_ = 0;
  std::size_t proposed_ = 0;
  std::size_t network_evals_ = 0;
  bool diverged_ = false;
};

}  // namespace bdlfi::mcmc
