// Metropolis–Hastings proposal kernels over fault masks.
//
// Three kernels with complementary mixing behaviour:
//  * SingleToggle — flip the membership of one uniformly chosen bit. Local,
//    symmetric (zero Hastings correction), high acceptance at small p.
//  * BlockResample — redraw the membership of k random bits from the prior.
//    Its Hastings correction exactly cancels the prior ratio, so acceptance
//    depends only on the likelihood term — for prior-only targets every move
//    accepts, giving near-i.i.d. exploration of a k-bit neighbourhood.
//  * Independence — redraw the whole mask from the prior; the global version
//    of BlockResample. Mixes instantly under the prior, and under tempered
//    targets acts as a restart proposal that escapes local modes.
#pragma once

#include <memory>

#include "bayes/fault_network.h"
#include "bayes/targets.h"

namespace bdlfi::mcmc {

using bayes::BayesianFaultNetwork;
using fault::FaultMask;

struct Proposal {
  FaultMask next;
  /// log q(current | next) − log q(next | current); added to the density
  /// delta inside the acceptance test.
  double log_q_ratio = 0.0;
};

class ProposalKernel {
 public:
  virtual ~ProposalKernel() = default;
  virtual Proposal propose(const FaultMask& current,
                           BayesianFaultNetwork& net, double p,
                           util::Rng& rng) = 0;
  virtual const char* name() const = 0;
};

class SingleToggleKernel : public ProposalKernel {
 public:
  Proposal propose(const FaultMask& current, BayesianFaultNetwork& net,
                   double p, util::Rng& rng) override;
  const char* name() const override { return "single_toggle"; }
};

class BlockResampleKernel : public ProposalKernel {
 public:
  explicit BlockResampleKernel(std::size_t block_size)
      : block_size_(block_size) {}
  Proposal propose(const FaultMask& current, BayesianFaultNetwork& net,
                   double p, util::Rng& rng) override;
  const char* name() const override { return "block_resample"; }

 private:
  std::size_t block_size_;
};

class IndependenceKernel : public ProposalKernel {
 public:
  Proposal propose(const FaultMask& current, BayesianFaultNetwork& net,
                   double p, util::Rng& rng) override;
  const char* name() const override { return "independence"; }
};

}  // namespace bdlfi::mcmc
