#include "mcmc/gibbs.h"

#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"

namespace bdlfi::mcmc {

namespace {

struct GibbsMetrics {
  obs::Counter& sweeps =
      obs::MetricsRegistry::global().counter("mcmc.gibbs_sweeps");
  obs::Counter& toggles =
      obs::MetricsRegistry::global().counter("mcmc.gibbs_toggles");
  static GibbsMetrics& get() {
    static GibbsMetrics m;
    return m;
  }
};

}  // namespace

GibbsSampler::GibbsSampler(bayes::BayesianFaultNetwork& net,
                           bayes::MaskTarget& target, double p,
                           const GibbsConfig& config)
    : net_(net), target_(target), p_(p), config_(config) {
  BDLFI_CHECK(p > 0.0 && p < 1.0);
  BDLFI_CHECK(config.samples > 0 && config.coordinates_per_sweep > 0);
}

void GibbsSampler::sweep(FaultMask& current, double& current_logd,
                         util::Rng& rng) {
  const std::int64_t total_bits = net_.space().total_bits();
  for (std::size_t i = 0; i < config_.coordinates_per_sweep; ++i) {
    const auto flat = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(total_bits)));
    const auto analytic = target_.analytic_toggle_delta(current, flat);
    double toggle_delta;
    if (analytic.has_value()) {
      toggle_delta = *analytic;
    } else {
      FaultMask toggled = current;
      toggled.toggle(flat);
      const double other = target_.log_density(toggled);
      ++network_evals_;
      toggle_delta = other - current_logd;
    }
    // Conditional probability of the *toggled* state:
    //   P(toggled) = exp(Δ) / (1 + exp(Δ)) — a logistic draw.
    const double prob_toggle = 1.0 / (1.0 + std::exp(-toggle_delta));
    if (rng.bernoulli(prob_toggle)) {
      current.toggle(flat);
      current_logd += toggle_delta;
      if (obs::enabled()) GibbsMetrics::get().toggles.add();
    }
  }
  if (obs::enabled()) GibbsMetrics::get().sweeps.add();
}

ChainResult GibbsSampler::run() {
  const bayes::EvalStats stats_base = net_.eval_stats();
  util::Rng rng{config_.seed};
  FaultMask current = net_.sample_prior_mask(p_, rng);
  double current_logd = target_.log_density(current);
  if (target_.requires_network_eval()) ++network_evals_;

  ChainResult result;
  for (std::size_t i = 0; i < config_.burn_in; ++i) {
    sweep(current, current_logd, rng);
  }
  for (std::size_t s = 0; s < config_.samples; ++s) {
    sweep(current, current_logd, rng);
    const bayes::MaskOutcome outcome = net_.evaluate_mask(current);
    ++network_evals_;
    result.error_samples.push_back(outcome.classification_error);
    result.deviation_samples.push_back(outcome.deviation);
    result.flips_samples.push_back(static_cast<double>(outcome.flipped_bits));
  }
  result.acceptance_rate = 1.0;  // Gibbs always moves per-coordinate
  result.network_evals = network_evals_;
  const bayes::EvalStats& stats = net_.eval_stats();
  result.full_evals = stats.full_evals - stats_base.full_evals;
  result.truncated_evals = stats.truncated_evals - stats_base.truncated_evals;
  result.layers_run = stats.layers_run - stats_base.layers_run;
  result.layers_total = stats.layers_total - stats_base.layers_total;
  return result;
}

}  // namespace bdlfi::mcmc
