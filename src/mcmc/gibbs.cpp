#include "mcmc/gibbs.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/interrupt.h"

namespace bdlfi::mcmc {

namespace {

struct GibbsMetrics {
  obs::Counter& sweeps =
      obs::MetricsRegistry::global().counter("mcmc.gibbs_sweeps");
  obs::Counter& toggles =
      obs::MetricsRegistry::global().counter("mcmc.gibbs_toggles");
  static GibbsMetrics& get() {
    static GibbsMetrics m;
    return m;
  }
};

}  // namespace

GibbsSampler::GibbsSampler(bayes::BayesianFaultNetwork& net,
                           bayes::MaskTarget& target, double p,
                           const GibbsConfig& config)
    : net_(net), target_(target), p_(p), config_(config) {
  BDLFI_CHECK(p > 0.0 && p < 1.0);
  BDLFI_CHECK(config.samples > 0 && config.coordinates_per_sweep > 0);
}

void GibbsSampler::sweep(FaultMask& current, double& current_logd,
                         util::Rng& rng) {
  const std::int64_t total_bits = net_.space().total_bits();
  const bool watchdog = config_.round_timeout_ms > 0.0;
  for (std::size_t i = 0; i < config_.coordinates_per_sweep; ++i) {
    if (watchdog && watch_.millis() > config_.round_timeout_ms) {
      timed_out_ = true;
      return;
    }
    const auto flat = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(total_bits)));
    const auto analytic = target_.analytic_toggle_delta(current, flat);
    double toggle_delta;
    if (analytic.has_value()) {
      toggle_delta = *analytic;
    } else {
      FaultMask toggled = current;
      toggled.toggle(flat);
      const double other = target_.log_density(toggled);
      ++network_evals_;
      toggle_delta = other - current_logd;
    }
    if (std::isnan(toggle_delta)) diverged_ = true;
    // Conditional probability of the *toggled* state:
    //   P(toggled) = exp(Δ) / (1 + exp(Δ)) — a logistic draw.
    const double prob_toggle = 1.0 / (1.0 + std::exp(-toggle_delta));
    if (rng.bernoulli(prob_toggle)) {
      current.toggle(flat);
      current_logd += toggle_delta;
      if (obs::enabled()) GibbsMetrics::get().toggles.add();
    }
  }
  if (obs::enabled()) GibbsMetrics::get().sweeps.add();
}

ChainResult GibbsSampler::run() {
  const bayes::EvalStats stats_base = net_.eval_stats();
  watch_.reset();
  util::Rng rng{config_.seed};
  FaultMask current;
  if (config_.resume) {
    BDLFI_CHECK_MSG(rng.state_load(config_.resume_rng),
                    "invalid resume RNG state");
    current = config_.resume_mask;
  } else {
    current = net_.sample_prior_mask(p_, rng);
  }
  double current_logd = target_.log_density(current);
  if (target_.requires_network_eval()) ++network_evals_;
  if (std::isnan(current_logd) ||
      (std::isinf(current_logd) && current_logd > 0.0)) {
    diverged_ = true;
  }

  ChainResult result;
  // Deferred retained-sample evals, flushed through the batched multi-mask
  // path in retained order; bit-identical to inline evaluation (the outcome
  // never feeds back into the sweep — see MhConfig::mask_batch).
  const std::size_t mask_batch = std::max<std::size_t>(1, config_.mask_batch);
  std::vector<FaultMask> pending;
  pending.reserve(std::min(mask_batch, config_.samples));
  const auto flush = [&]() {
    if (pending.empty()) return;
    const bayes::EvalOutcome batch = net_.evaluate({pending, mask_batch});
    network_evals_ += pending.size();
    for (const bayes::MaskOutcome& outcome : batch.outcomes) {
      result.error_samples.push_back(outcome.classification_error);
      result.deviation_samples.push_back(outcome.deviation);
      result.flips_samples.push_back(static_cast<double>(outcome.flipped_bits));
      switch (outcome.outcome) {
        case bayes::FaultOutcome::kMasked: ++result.outcome_masked; break;
        case bayes::FaultOutcome::kSdc: ++result.outcome_sdc; break;
        case bayes::FaultOutcome::kDetected: ++result.outcome_detected; break;
        case bayes::FaultOutcome::kCorrected: ++result.outcome_corrected; break;
      }
    }
    pending.clear();
  };
  if (!config_.resume) {
    for (std::size_t i = 0; !timed_out_ && i < config_.burn_in; ++i) {
      sweep(current, current_logd, rng);
    }
  }
  for (std::size_t s = 0; !timed_out_ && s < config_.samples; ++s) {
    if (util::interrupt_requested()) {
      result.interrupted = true;
      break;
    }
    sweep(current, current_logd, rng);
    if (timed_out_) break;
    pending.push_back(current);
    if (config_.record_masks) result.mask_samples.push_back(current);
    if (pending.size() >= mask_batch) flush();
  }
  flush();  // drain the tail (normal end, timeout, or interrupt)
  result.acceptance_rate = 1.0;  // Gibbs always moves per-coordinate
  result.network_evals = network_evals_;
  result.timed_out = timed_out_;
  result.diverged = diverged_;
  result.rng_state = rng.state_save();
  result.final_mask = current;
  const bayes::EvalStats& stats = net_.eval_stats();
  result.full_evals = stats.full_evals - stats_base.full_evals;
  result.truncated_evals = stats.truncated_evals - stats_base.truncated_evals;
  result.layers_run = stats.layers_run - stats_base.layers_run;
  result.layers_total = stats.layers_total - stats_base.layers_total;
  return result;
}

}  // namespace bdlfi::mcmc
