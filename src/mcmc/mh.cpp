#include "mcmc/mh.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/interrupt.h"
#include "util/stopwatch.h"

namespace bdlfi::mcmc {

namespace {

// -Inf log density is a legitimate hard rejection (zero-probability state);
// NaN and +Inf can only come from a pathological target and poison the walk.
inline bool pathological_logd(double logd) {
  return std::isnan(logd) || (std::isinf(logd) && logd > 0.0);
}

// Sampler-level counters shared by all chains; registered once.
struct MhMetrics {
  obs::Counter& proposals =
      obs::MetricsRegistry::global().counter("mcmc.proposals");
  obs::Counter& accepts = obs::MetricsRegistry::global().counter("mcmc.accepts");
  obs::Counter& samples = obs::MetricsRegistry::global().counter("mcmc.samples");
  obs::Counter& evals =
      obs::MetricsRegistry::global().counter("mcmc.network_evals");
  static MhMetrics& get() {
    static MhMetrics m;
    return m;
  }
};

}  // namespace

MhSampler::MhSampler(bayes::BayesianFaultNetwork& net,
                     bayes::MaskTarget& target, double p,
                     const MhConfig& config)
    : net_(net),
      target_(target),
      p_(p),
      config_(config),
      block_(config.block_size) {
  BDLFI_CHECK(p > 0.0 && p < 1.0);
  BDLFI_CHECK(config.samples > 0 && config.thin > 0);
}

ProposalKernel& MhSampler::pick_kernel(util::Rng& rng) {
  const double total = config_.w_single_toggle + config_.w_block_resample +
                       config_.w_independence;
  double u = rng.uniform() * total;
  if ((u -= config_.w_single_toggle) < 0.0) return single_;
  if ((u -= config_.w_block_resample) < 0.0) return block_;
  return indep_;
}

bool MhSampler::step(FaultMask& current, double& current_logd,
                     util::Rng& rng) {
  ProposalKernel& kernel = pick_kernel(rng);
  Proposal proposal = kernel.propose(current, net_, p_, rng);
  ++proposed_;

  // Fast path: a single-bit move with an analytic density delta needs no
  // density evaluation at all.
  double log_alpha;
  double next_logd;
  const auto delta_bits =
      FaultMask::symmetric_difference(current, proposal.next);
  if (delta_bits.empty()) {
    ++accepted_;  // proposal == current: trivially accepted, nothing to do
    if (obs::enabled()) {
      MhMetrics& m = MhMetrics::get();
      m.proposals.add();
      m.accepts.add();
    }
    return true;
  }
  std::optional<double> analytic;
  if (delta_bits.size() == 1) {
    analytic = target_.analytic_toggle_delta(current, delta_bits[0]);
  }
  if (analytic.has_value()) {
    log_alpha = *analytic + proposal.log_q_ratio;
    next_logd = current_logd + *analytic;
  } else if (!target_.requires_network_eval()) {
    next_logd = target_.log_density(proposal.next);
    log_alpha = next_logd - current_logd + proposal.log_q_ratio;
  } else {
    next_logd = target_.log_density(proposal.next);
    ++network_evals_;
    log_alpha = next_logd - current_logd + proposal.log_q_ratio;
  }

  if (pathological_logd(next_logd)) diverged_ = true;

  const bool accepted =
      log_alpha >= 0.0 || std::log(rng.uniform() + 1e-300) < log_alpha;
  if (accepted) {
    current = std::move(proposal.next);
    current_logd = next_logd;
    ++accepted_;
  }
  if (obs::enabled()) {
    MhMetrics& m = MhMetrics::get();
    m.proposals.add();
    if (accepted) m.accepts.add();
  }
  return accepted;
}

ChainResult MhSampler::run() {
  const bayes::EvalStats stats_base = net_.eval_stats();
  util::Rng rng{config_.seed};

  ChainResult result;
  FaultMask current;
  if (config_.resume) {
    BDLFI_CHECK_MSG(rng.state_load(config_.resume_rng),
                    "invalid resume RNG state");
    current = config_.resume_mask;
  } else {
    current = net_.sample_prior_mask(p_, rng);
  }
  double current_logd = target_.log_density(current);
  if (target_.requires_network_eval()) ++network_evals_;
  if (pathological_logd(current_logd)) diverged_ = true;

  result.error_samples.reserve(config_.samples);
  result.deviation_samples.reserve(config_.samples);
  result.flips_samples.reserve(config_.samples);

  // Retained-sample evaluations are accumulated and flushed through the
  // batched multi-mask path; outcomes land in the result vectors in retained
  // order, bit-identical to inline evaluation (see MhConfig::mask_batch).
  const std::size_t mask_batch = std::max<std::size_t>(1, config_.mask_batch);
  std::vector<FaultMask> pending;
  pending.reserve(std::min(mask_batch, config_.samples));
  const auto flush = [&]() {
    if (pending.empty()) return;
    const bayes::EvalOutcome batch = net_.evaluate({pending, mask_batch});
    network_evals_ += pending.size();
    for (const bayes::MaskOutcome& outcome : batch.outcomes) {
      result.error_samples.push_back(outcome.classification_error);
      result.deviation_samples.push_back(outcome.deviation);
      result.flips_samples.push_back(static_cast<double>(outcome.flipped_bits));
      switch (outcome.outcome) {
        case bayes::FaultOutcome::kMasked: ++result.outcome_masked; break;
        case bayes::FaultOutcome::kSdc: ++result.outcome_sdc; break;
        case bayes::FaultOutcome::kDetected: ++result.outcome_detected; break;
        case bayes::FaultOutcome::kCorrected: ++result.outcome_corrected; break;
      }
    }
    pending.clear();
  };

  // Clock reads only happen when the watchdog is armed, so the default
  // configuration costs nothing on the hot path.
  const bool watchdog = config_.round_timeout_ms > 0.0;
  util::Stopwatch watch;
  bool aborted = false;
  if (!config_.resume) {
    for (std::size_t i = 0; i < config_.burn_in; ++i) {
      step(current, current_logd, rng);
      if (watchdog && watch.millis() > config_.round_timeout_ms) {
        result.timed_out = true;
        aborted = true;
        break;
      }
    }
  }
  for (std::size_t s = 0; !aborted && s < config_.samples; ++s) {
    if (util::interrupt_requested()) {
      result.interrupted = true;
      break;
    }
    for (std::size_t t = 0; t < config_.thin; ++t) {
      step(current, current_logd, rng);
      if (watchdog && watch.millis() > config_.round_timeout_ms) {
        result.timed_out = true;
        aborted = true;
        break;
      }
    }
    if (aborted) break;
    pending.push_back(current);
    if (config_.record_masks) result.mask_samples.push_back(current);
    if (pending.size() >= mask_batch) flush();
  }
  flush();  // drain the tail (normal end, timeout, or interrupt)
  if (obs::enabled()) {
    MhMetrics& m = MhMetrics::get();
    m.samples.add(result.error_samples.size());
    m.evals.add(network_evals_);
  }
  result.acceptance_rate =
      proposed_ ? static_cast<double>(accepted_) / static_cast<double>(proposed_)
                : 0.0;
  result.network_evals = network_evals_;
  result.diverged = diverged_;
  result.rng_state = rng.state_save();
  result.final_mask = current;
  const bayes::EvalStats& stats = net_.eval_stats();
  result.full_evals = stats.full_evals - stats_base.full_evals;
  result.truncated_evals = stats.truncated_evals - stats_base.truncated_evals;
  result.layers_run = stats.layers_run - stats_base.layers_run;
  result.layers_total = stats.layers_total - stats_base.layers_total;
  return result;
}

}  // namespace bdlfi::mcmc
