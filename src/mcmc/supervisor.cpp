#include "mcmc/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/check.h"

namespace bdlfi::mcmc {

const char* to_string(ChainStatus status) {
  return status == ChainStatus::quarantined ? "quarantined" : "healthy";
}

bool chain_status_from_string(const std::string& text, ChainStatus* out) {
  if (text == "healthy") {
    *out = ChainStatus::healthy;
    return true;
  }
  if (text == "quarantined") {
    *out = ChainStatus::quarantined;
    return true;
  }
  return false;
}

ChainSupervisor::ChainSupervisor(const SupervisorConfig& config,
                                 std::size_t num_chains)
    : config_(config), health_(num_chains) {
  for (std::size_t c = 0; c < num_chains; ++c) health_[c].chain = c;
}

bool ChainSupervisor::quarantined(std::size_t chain) const {
  return health_[chain].status == ChainStatus::quarantined;
}

std::size_t ChainSupervisor::num_quarantined() const {
  std::size_t n = 0;
  for (const ChainHealth& h : health_) {
    if (h.status == ChainStatus::quarantined) ++n;
  }
  return n;
}

std::size_t ChainSupervisor::num_surviving() const {
  return health_.size() - num_quarantined();
}

std::string ChainSupervisor::inspect(const ChainResult& result) const {
  if (result.diverged) return "nan_divergence";
  if (result.timed_out) return "timeout";
  // The samplers flag density pathologies; outcome statistics get a direct
  // scan so a NaN that slipped through the network eval is caught too.
  for (const double v : result.error_samples) {
    if (!std::isfinite(v)) return "nan_divergence";
  }
  for (const double v : result.deviation_samples) {
    if (!std::isfinite(v)) return "nan_divergence";
  }
  if (config_.min_acceptance > 0.0 &&
      result.acceptance_rate < config_.min_acceptance) {
    return "acceptance_collapse";
  }
  if (config_.max_evals_per_round > 0 &&
      result.network_evals > config_.max_evals_per_round) {
    return "eval_budget";
  }
  return "";
}

bool ChainSupervisor::record_failure(std::size_t chain, std::size_t round,
                                     const std::string& reason,
                                     std::size_t attempt) {
  BDLFI_CHECK(chain < health_.size());
  ChainHealth& h = health_[chain];
  ++h.retries;
  h.last_failure = reason;
  if (attempt >= config_.max_retries) {
    h.status = ChainStatus::quarantined;
    h.quarantined_round = round + 1;
    return false;
  }
  return true;
}

double ChainSupervisor::backoff_ms(std::size_t attempt) const {
  if (config_.backoff_base_ms <= 0.0) return 0.0;
  return std::min(
      config_.backoff_base_ms * std::pow(2.0, static_cast<double>(attempt)),
      config_.backoff_cap_ms);
}

void ChainSupervisor::backoff(std::size_t attempt) const {
  const double ms = backoff_ms(attempt);
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(ms * 1000.0)));
}

void ChainSupervisor::restore(std::vector<ChainHealth> health) {
  BDLFI_CHECK(health.size() == health_.size());
  health_ = std::move(health);
}

}  // namespace bdlfi::mcmc
