#include "mcmc/checkpoint.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include <cerrno>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

#include "obs/json.h"
#include "tensor/backend/backend.h"
#include "util/log.h"

namespace bdlfi::mcmc {

namespace {

namespace fs = std::filesystem;

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex64(const std::string& text, std::uint64_t* out) {
  if (text.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char h : text) {
    v <<= 4;
    if (h >= '0' && h <= '9') v |= static_cast<std::uint64_t>(h - '0');
    else if (h >= 'a' && h <= 'f') v |= static_cast<std::uint64_t>(h - 'a' + 10);
    else return false;
  }
  *out = v;
  return true;
}

/// u64 words as ':'-joined 16-digit hex (see header: numbers would go
/// through a double in the parser and lose bits).
std::string words_to_string(const std::vector<std::uint64_t>& words) {
  std::string out;
  out.reserve(words.size() * 17);
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (i != 0) out.push_back(':');
    out += hex64(words[i]);
  }
  return out;
}

bool words_from_string(const std::string& text,
                       std::vector<std::uint64_t>* out) {
  out->clear();
  if (text.empty()) return true;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t sep = text.find(':', pos);
    if (sep == std::string::npos) sep = text.size();
    std::uint64_t word = 0;
    if (!parse_hex64(text.substr(pos, sep - pos), &word)) return false;
    out->push_back(word);
    if (sep == text.size()) break;
    pos = sep + 1;
  }
  return true;
}

void fnv1a_mix(std::uint64_t& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
}

void write_double_array(obs::JsonWriter& w, const std::string& key,
                        const std::vector<double>& values) {
  w.key(key).begin_array();
  for (const double v : values) w.number_exact(v);
  w.end_array();
}

bool read_double_array(const obs::JsonValue& obj, const std::string& key,
                       std::vector<double>* out) {
  const obs::JsonValue* arr = obj.find(key);
  if (arr == nullptr || !arr->is_array()) return false;
  out->clear();
  out->reserve(arr->as_array().size());
  for (const auto& v : arr->as_array()) {
    if (v.is_null()) {
      // number_exact serializes non-finite as null; restore as NaN so the
      // supervisor's divergence scan still sees the pathology after resume.
      out->push_back(std::numeric_limits<double>::quiet_NaN());
    } else if (v.is_number()) {
      out->push_back(v.as_number());
    } else {
      return false;
    }
  }
  return true;
}

bool read_size(const obs::JsonValue& obj, const std::string& key,
               std::size_t* out) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = static_cast<std::size_t>(v->as_number());
  return true;
}

bool read_double(const obs::JsonValue& obj, const std::string& key,
                 double* out) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) return false;
  if (v->is_null()) {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (!v->is_number()) return false;
  *out = v->as_number();
  return true;
}

}  // namespace

std::uint64_t campaign_fingerprint(const bayes::BayesianFaultNetwork& golden,
                                   const RunnerConfig& config, double p) {
  // Canonical config string; %.17g keeps double identity exact. Field order
  // is part of the format — extend by appending only.
  char buf[512];
  // |abft=<mode> appended in v2: ABFT changes what the retained samples mean
  // (detected/corrected outcomes exist only under checking), so streams from
  // different checking modes must never be mixed by a resume.
  std::snprintf(
      buf, sizeof(buf),
      "v1|seed=%llu|chains=%zu|gibbs=%d|"
      "mh=%zu,%zu,%zu,%.17g,%.17g,%.17g,%zu|"
      "gb=%zu,%zu,%zu|p=%.17g|net=%lld,%zu,%s|backend=%s|abft=%d",
      static_cast<unsigned long long>(config.seed), config.num_chains,
      config.use_gibbs ? 1 : 0, config.mh.samples, config.mh.burn_in,
      config.mh.thin, config.mh.w_single_toggle, config.mh.w_block_resample,
      config.mh.w_independence, config.mh.block_size, config.gibbs.samples,
      config.gibbs.burn_in, config.gibbs.coordinates_per_sweep, p,
      static_cast<long long>(golden.space().total_bits()), golden.eval_size(),
      hex64(std::bit_cast<std::uint64_t>(golden.golden_error())).c_str(),
      tensor::backend::active_name(),
      static_cast<int>(golden.network().abft().mode));
  std::string canonical(buf);
  // |abft_layers=... appended only when a selective-placement restriction is
  // active (Network::set_abft_layers): restricted and unrestricted deployments
  // produce different retained streams, but every pre-existing fingerprint
  // stays byte-identical.
  if (const auto& restricted = golden.network().abft_layers();
      !restricted.empty()) {
    canonical += "|abft_layers=";
    for (std::size_t i = 0; i < restricted.size(); ++i) {
      if (i > 0) canonical += ',';
      canonical += std::to_string(restricted[i]);
    }
  }
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  fnv1a_mix(h, canonical);
  return h;
}

std::string checkpoint_path(const std::string& dir) {
  return (fs::path(dir) / "campaign.ckpt.json").string();
}

std::string checkpoint_lock_path(const std::string& dir) {
  return (fs::path(dir) / "campaign.lock").string();
}

namespace {

/// True when the pid recorded in an existing lock file no longer names a live
/// process (or the file is unreadable/garbled — only a dead owner leaves a
/// torn pidfile behind, the O_EXCL create + single write is otherwise whole).
bool lock_is_stale(const std::string& path, long* owner_pid) {
  *owner_pid = 0;
  std::ifstream in(path);
  if (!in) return true;
  long pid = 0;
  if (!(in >> pid) || pid <= 0) return true;
  *owner_pid = pid;
#if defined(__unix__) || defined(__APPLE__)
  if (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) return true;
#endif
  return false;
}

}  // namespace

CheckpointDirLock::CheckpointDirLock(CheckpointDirLock&& other) noexcept
    : path_(std::move(other.path_)) {
  other.path_.clear();
}

CheckpointDirLock& CheckpointDirLock::operator=(
    CheckpointDirLock&& other) noexcept {
  if (this != &other) {
    release();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

CheckpointDirLock::~CheckpointDirLock() { release(); }

void CheckpointDirLock::release() {
  if (path_.empty()) return;
  std::remove(path_.c_str());
  path_.clear();
}

CheckpointDirLock CheckpointDirLock::acquire(const std::string& dir,
                                             std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return CheckpointDirLock{};
  };
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = checkpoint_lock_path(dir);
#if defined(__unix__) || defined(__APPLE__)
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd >= 0) {
      char buf[32];
      const int n = std::snprintf(buf, sizeof(buf), "%ld\n",
                                  static_cast<long>(::getpid()));
      const bool wrote = ::write(fd, buf, static_cast<std::size_t>(n)) == n;
      ::close(fd);
      if (!wrote) {
        std::remove(path.c_str());
        return fail("cannot write lock file " + path);
      }
      CheckpointDirLock lock;
      lock.path_ = path;
      return lock;
    }
    if (errno != EEXIST) {
      return fail("cannot create lock file " + path);
    }
    long owner = 0;
    if (!lock_is_stale(path, &owner)) {
      return fail("checkpoint dir " + dir + " is locked by pid " +
                  std::to_string(owner) +
                  " (another campaign is live there; a second resume would "
                  "corrupt the checkpoint lineage)");
    }
    // Stale lock from a dead owner: break it and retry the exclusive create
    // once. A concurrent breaker losing the O_EXCL race lands in the live
    // branch above on the next iteration.
    BDLFI_LOG_WARN("checkpoint: breaking stale lock %s (owner pid %ld gone)",
                   path.c_str(), owner);
    std::remove(path.c_str());
  }
  return fail("lock contention on " + path);
#else
  // No pid liveness probe on this platform: fall back to plain exclusive
  // create without stale detection.
  std::ofstream out(path, std::ios::app);
  if (!out) return fail("cannot create lock file " + path);
  CheckpointDirLock lock;
  lock.path_ = path;
  return lock;
#endif
}

bool save_checkpoint(const std::string& path, const CampaignCheckpoint& ck) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", kCheckpointSchema);
  w.field("version", kCheckpointVersion);
  w.field("fingerprint", hex64(ck.fingerprint));
  w.field("backend", ck.backend);
  w.field_exact("p", ck.p);
  w.field("rounds_completed", static_cast<std::uint64_t>(ck.rounds_completed));
  w.field("converged", ck.converged);
  w.field_exact("prev_mean", ck.prev_mean);
  w.field("prev_evals", static_cast<std::uint64_t>(ck.prev_evals));
  w.key("trajectory").begin_array();
  for (const auto& r : ck.trajectory) {
    w.begin_object();
    w.field("samples", static_cast<std::uint64_t>(r.cumulative_samples));
    w.field_exact("mean_error", r.mean_error);
    w.field_exact("rhat", r.rhat);
    w.field_exact("ess", r.ess);
    w.end_object();
  }
  w.end_array();
  w.key("chains").begin_array();
  for (std::size_t c = 0; c < ck.chains.size(); ++c) {
    const ChainResult& chain = ck.chains[c];
    const ChainHealth& health =
        c < ck.health.size() ? ck.health[c] : ChainHealth{};
    w.begin_object();
    w.field("chain", static_cast<std::uint64_t>(c));
    w.field("status", to_string(health.status));
    w.field("retries", static_cast<std::uint64_t>(health.retries));
    w.field("last_failure", health.last_failure);
    w.field("quarantined_round",
            static_cast<std::uint64_t>(health.quarantined_round));
    if (c < ck.cursors.size() && ck.cursors[c].valid) {
      w.key("cursor").begin_object();
      w.field("rng", words_to_string(ck.cursors[c].rng_state));
      w.key("mask").begin_array();
      for (const std::int64_t bit : ck.cursors[c].mask.bits()) {
        w.number(bit);
      }
      w.end_array();
      w.end_object();
    } else {
      w.key("cursor").null();
    }
    w.field_exact("acceptance_rate", chain.acceptance_rate);
    w.field("network_evals", static_cast<std::uint64_t>(chain.network_evals));
    w.field("outcome_masked", static_cast<std::uint64_t>(chain.outcome_masked));
    w.field("outcome_sdc", static_cast<std::uint64_t>(chain.outcome_sdc));
    w.field("outcome_detected",
            static_cast<std::uint64_t>(chain.outcome_detected));
    w.field("outcome_corrected",
            static_cast<std::uint64_t>(chain.outcome_corrected));
    w.field("full_evals", static_cast<std::uint64_t>(chain.full_evals));
    w.field("truncated_evals",
            static_cast<std::uint64_t>(chain.truncated_evals));
    w.field("layers_run", static_cast<std::uint64_t>(chain.layers_run));
    w.field("layers_total", static_cast<std::uint64_t>(chain.layers_total));
    write_double_array(w, "error_samples", chain.error_samples);
    write_double_array(w, "deviation_samples", chain.deviation_samples);
    write_double_array(w, "flips_samples", chain.flips_samples);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::error_code ec;
  const fs::path target(path);
  if (target.has_parent_path()) fs::create_directories(target.parent_path(), ec);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    BDLFI_LOG_WARN("checkpoint: cannot open %s for writing", tmp.c_str());
    return false;
  }
  const std::string& doc = w.str();
  const bool wrote =
      std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
      std::fputc('\n', f) != EOF && std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  if (wrote) ::fsync(fileno(f));
#endif
  std::fclose(f);
  if (!wrote) {
    std::remove(tmp.c_str());
    BDLFI_LOG_WARN("checkpoint: short write to %s", tmp.c_str());
    return false;
  }
  // rename() is atomic within a filesystem: readers see either the previous
  // complete checkpoint or this one, never a torn file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    BDLFI_LOG_WARN("checkpoint: rename to %s failed", path.c_str());
    return false;
  }
  return true;
}

std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path,
                                                  std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  const auto doc = obs::json_parse(buffer.str(), &parse_error);
  if (!doc.has_value() || !doc->is_object()) {
    return fail("malformed checkpoint: " + parse_error);
  }
  const obs::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kCheckpointSchema) {
    return fail("not a campaign checkpoint");
  }
  const obs::JsonValue* version = doc->find("version");
  if (version == nullptr || !version->is_number()) {
    return fail("unsupported checkpoint version");
  }
  const auto ver = static_cast<std::uint64_t>(version->as_number());
  if (ver < kCheckpointMinVersion || ver > kCheckpointVersion) {
    return fail("unsupported checkpoint version");
  }

  CampaignCheckpoint ck;
  const obs::JsonValue* fp = doc->find("fingerprint");
  if (fp == nullptr || !fp->is_string() ||
      !parse_hex64(fp->as_string(), &ck.fingerprint)) {
    return fail("missing/invalid fingerprint");
  }
  // Optional for back-compat: pre-backend checkpoints were always scalar.
  const obs::JsonValue* backend = doc->find("backend");
  if (backend != nullptr) {
    if (!backend->is_string()) return fail("invalid backend field");
    ck.backend = backend->as_string();
  }
  if (!read_double(*doc, "p", &ck.p) ||
      !read_size(*doc, "rounds_completed", &ck.rounds_completed) ||
      !read_double(*doc, "prev_mean", &ck.prev_mean) ||
      !read_size(*doc, "prev_evals", &ck.prev_evals)) {
    return fail("missing/invalid scalar fields");
  }
  const obs::JsonValue* converged = doc->find("converged");
  if (converged == nullptr || !converged->is_bool()) {
    return fail("missing/invalid converged flag");
  }
  ck.converged = converged->as_bool();

  const obs::JsonValue* trajectory = doc->find("trajectory");
  if (trajectory == nullptr || !trajectory->is_array()) {
    return fail("missing trajectory");
  }
  for (const auto& entry : trajectory->as_array()) {
    CompletenessResult::RoundStats stats{};
    if (!entry.is_object() ||
        !read_size(entry, "samples", &stats.cumulative_samples) ||
        !read_double(entry, "mean_error", &stats.mean_error) ||
        !read_double(entry, "rhat", &stats.rhat) ||
        !read_double(entry, "ess", &stats.ess)) {
      return fail("malformed trajectory entry");
    }
    ck.trajectory.push_back(stats);
  }

  const obs::JsonValue* chains = doc->find("chains");
  if (chains == nullptr || !chains->is_array()) return fail("missing chains");
  for (const auto& entry : chains->as_array()) {
    if (!entry.is_object()) return fail("malformed chain entry");
    ChainResult chain;
    ChainHealth health;
    ChainCursor cursor;
    if (!read_size(entry, "chain", &health.chain) ||
        !read_size(entry, "retries", &health.retries) ||
        !read_size(entry, "quarantined_round", &health.quarantined_round) ||
        !read_double(entry, "acceptance_rate", &chain.acceptance_rate) ||
        !read_size(entry, "network_evals", &chain.network_evals) ||
        !read_size(entry, "full_evals", &chain.full_evals) ||
        // v2 taxonomy counters: required at v2, absent at v1 (stay zero —
        // the taxonomy starts tallying from the resume point).
        (ver >= 2 &&
         (!read_size(entry, "outcome_masked", &chain.outcome_masked) ||
          !read_size(entry, "outcome_sdc", &chain.outcome_sdc) ||
          !read_size(entry, "outcome_detected", &chain.outcome_detected) ||
          !read_size(entry, "outcome_corrected",
                     &chain.outcome_corrected))) ||
        !read_size(entry, "truncated_evals", &chain.truncated_evals) ||
        !read_size(entry, "layers_run", &chain.layers_run) ||
        !read_size(entry, "layers_total", &chain.layers_total) ||
        !read_double_array(entry, "error_samples", &chain.error_samples) ||
        !read_double_array(entry, "deviation_samples",
                           &chain.deviation_samples) ||
        !read_double_array(entry, "flips_samples", &chain.flips_samples)) {
      return fail("malformed chain entry");
    }
    const obs::JsonValue* status = entry.find("status");
    if (status == nullptr || !status->is_string() ||
        !chain_status_from_string(status->as_string(), &health.status)) {
      return fail("invalid chain status");
    }
    const obs::JsonValue* last_failure = entry.find("last_failure");
    if (last_failure != nullptr && last_failure->is_string()) {
      health.last_failure = last_failure->as_string();
    }
    const obs::JsonValue* cur = entry.find("cursor");
    if (cur == nullptr) return fail("missing cursor");
    if (cur->is_object()) {
      const obs::JsonValue* rng = cur->find("rng");
      const obs::JsonValue* mask = cur->find("mask");
      if (rng == nullptr || !rng->is_string() ||
          !words_from_string(rng->as_string(), &cursor.rng_state) ||
          mask == nullptr || !mask->is_array()) {
        return fail("malformed cursor");
      }
      std::vector<std::int64_t> bits;
      bits.reserve(mask->as_array().size());
      for (const auto& bit : mask->as_array()) {
        if (!bit.is_number()) return fail("malformed cursor mask");
        bits.push_back(static_cast<std::int64_t>(bit.as_number()));
      }
      cursor.mask = FaultMask(std::move(bits));
      cursor.valid = true;
    } else if (!cur->is_null()) {
      return fail("malformed cursor");
    }
    ck.chains.push_back(std::move(chain));
    ck.cursors.push_back(std::move(cursor));
    ck.health.push_back(std::move(health));
  }
  return ck;
}

}  // namespace bdlfi::mcmc
