#include "mcmc/runner.h"

#include <cmath>
#include <filesystem>
#include <limits>

#include "mcmc/checkpoint.h"
#include "obs/trace.h"
#include "tensor/backend/backend.h"
#include "util/check.h"
#include "util/interrupt.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace bdlfi::mcmc {

namespace {

std::uint64_t chain_seed(std::uint64_t base, std::uint64_t round,
                         std::uint64_t chain, std::uint64_t attempt = 0) {
  std::uint64_t s = base ^ (0x9e3779b97f4a7c15ULL * (round * 8191 + chain + 1));
  // Retries re-derive a fresh stream; attempt 0 matches the historical
  // derivation exactly so default campaigns stay bit-identical.
  if (attempt != 0) s ^= 0xda3e39cb94b95bdbULL * attempt;
  return util::splitmix64(s);
}

ChainTargetFactory adapt(const TargetFactory& make_target) {
  return [&make_target](bayes::BayesianFaultNetwork& net, std::size_t) {
    return make_target(net);
  };
}

CampaignResult pool_chains(const std::vector<ChainResult>& chains,
                           const std::vector<ChainHealth>& health) {
  CampaignResult result;
  util::SampleSet errors;
  util::RunningStats dev, flips;
  std::vector<std::vector<double>> error_streams;
  double acceptance = 0.0;
  std::size_t surviving = 0;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    if (i < health.size() && health[i].status == ChainStatus::quarantined) {
      ++result.chains_quarantined;
      continue;  // quarantined: no contribution to pooled statistics
    }
    const ChainResult& c = chains[i];
    ++surviving;
    for (double e : c.error_samples) errors.add(e);
    for (double d : c.deviation_samples) dev.add(d);
    for (double f : c.flips_samples) flips.add(f);
    acceptance += c.acceptance_rate;
    result.total_network_evals += c.network_evals;
    result.total_outcome_masked += c.outcome_masked;
    result.total_outcome_sdc += c.outcome_sdc;
    result.total_outcome_detected += c.outcome_detected;
    result.total_outcome_corrected += c.outcome_corrected;
    result.total_full_evals += c.full_evals;
    result.total_truncated_evals += c.truncated_evals;
    result.total_layers_run += c.layers_run;
    result.total_layers_total += c.layers_total;
    error_streams.push_back(c.error_samples);
  }
  result.total_samples = errors.count();
  if (errors.count() > 0) {
    result.mean_error = errors.mean();
    result.stddev_error = errors.stddev();
    result.q05 = errors.quantile(0.05);
    result.q50 = errors.quantile(0.50);
    result.q95 = errors.quantile(0.95);
  }
  result.mean_deviation = dev.mean();
  result.mean_flips = flips.mean();
  result.mean_acceptance =
      surviving == 0 ? 0.0 : acceptance / static_cast<double>(surviving);

  if (error_streams.size() >= 2 && error_streams[0].size() >= 2) {
    result.diagnostics.rhat = util::gelman_rubin(error_streams);
  } else {
    result.diagnostics.rhat = 1.0;
  }
  double ess = 0.0, geweke = 0.0;
  for (const auto& stream : error_streams) {
    ess += util::effective_sample_size(stream);
    geweke = std::max(geweke, std::abs(util::geweke_z(stream)));
  }
  result.diagnostics.ess = ess;
  result.diagnostics.geweke_max = geweke;
  result.degraded = result.chains_quarantined > 0;
  // A single-chain campaign is a legitimate (if diagnostics-poor) request;
  // losing chains until fewer than two survive is not.
  if (result.degraded && surviving < 2) {
    result.failed = true;
    result.fail_reason =
        std::to_string(result.chains_quarantined) +
        " chain(s) quarantined, fewer than 2 survivors: pooled diagnostics "
        "are not trustworthy";
  }
  result.health = health;
  result.chains = chains;
  return result;
}

/// Runs one round of every non-quarantined chain under supervision. On a
/// clean finish the chain's cursor is advanced; on a detected failure the
/// chain restarts fresh (re-derived seed, prior draw + burn-in) up to the
/// retry budget, then is quarantined. Cursors/health entries are per-chain,
/// so the parallel workers never touch shared state.
std::vector<ChainResult> run_round(const bayes::BayesianFaultNetwork& golden,
                                   const ChainTargetFactory& make_target,
                                   double p, const RunnerConfig& config,
                                   std::uint64_t round, ChainSupervisor& sup,
                                   std::vector<ChainCursor>& cursors) {
  BDLFI_CHECK(config.num_chains >= 1);
  obs::TraceSpan round_span("mcmc.round");
  std::vector<ChainResult> chains(config.num_chains);
  util::parallel_for(0, config.num_chains, [&](std::size_t c) {
    if (sup.quarantined(c)) return;
    obs::TraceSpan chain_span("mcmc.chain");
    for (std::size_t attempt = 0;; ++attempt) {
      if (util::interrupt_requested()) {
        chains[c].interrupted = true;
        return;
      }
      auto replica = golden.replicate();
      auto target = make_target(*replica, c);
      ChainResult r;
      const bool continue_cursor = attempt == 0 && cursors[c].valid;
      if (config.use_gibbs) {
        GibbsConfig gc = config.gibbs;
        gc.seed = chain_seed(config.seed, round, c, attempt);
        gc.round_timeout_ms = config.supervisor.round_timeout_ms;
        if (continue_cursor) {
          gc.resume = true;
          gc.resume_rng = cursors[c].rng_state;
          gc.resume_mask = cursors[c].mask;
        }
        GibbsSampler sampler(*replica, *target, p, gc);
        r = sampler.run();
      } else {
        MhConfig mc = config.mh;
        mc.seed = chain_seed(config.seed, round, c, attempt);
        mc.round_timeout_ms = config.supervisor.round_timeout_ms;
        if (continue_cursor) {
          mc.resume = true;
          mc.resume_rng = cursors[c].rng_state;
          mc.resume_mask = cursors[c].mask;
        }
        MhSampler sampler(*replica, *target, p, mc);
        r = sampler.run();
      }
      if (r.interrupted) {
        chains[c] = std::move(r);
        return;
      }
      const std::string reason = sup.inspect(r);
      if (reason.empty()) {
        cursors[c].valid = true;
        cursors[c].rng_state = r.rng_state;
        cursors[c].mask = r.final_mask;
        chains[c] = std::move(r);
        return;
      }
      // Failed attempt: the cursor is poisoned — any retry (and, if the
      // chain is quarantined, any later inspection) starts from scratch.
      cursors[c].valid = false;
      if (!sup.record_failure(c, round, reason, attempt)) {
        chains[c] = std::move(r);  // keep the failed partial for post-mortem
        return;
      }
      sup.backoff(attempt);
    }
  });
  return chains;
}

/// Campaign health of the round just pooled, for the runner's round hook.
/// `round_acceptance` is this round's per-chain mean, `round_evals` /
/// `round_seconds` this round's work; everything else is cumulative.
obs::RoundEvent make_round_event(const CampaignResult& pooled,
                                 std::size_t round, double p,
                                 double round_acceptance,
                                 std::size_t round_evals,
                                 double round_seconds) {
  obs::RoundEvent event;
  event.round = round;
  event.p = p;
  event.cumulative_samples = pooled.total_samples;
  event.mean_error = pooled.mean_error;
  event.rhat = pooled.diagnostics.rhat;
  event.ess = pooled.diagnostics.ess;
  event.acceptance_rate = round_acceptance;
  event.network_evals = pooled.total_network_evals;
  event.evals_per_sec = round_seconds > 0.0
                            ? static_cast<double>(round_evals) / round_seconds
                            : 0.0;
  const std::size_t cached = pooled.total_truncated_evals;
  const std::size_t total_evals = cached + pooled.total_full_evals;
  event.cache_hit_rate =
      total_evals == 0
          ? 0.0
          : static_cast<double>(cached) / static_cast<double>(total_evals);
  event.round_seconds = round_seconds;
  event.detection_coverage = pooled.detection_coverage();
  event.sdc_rate = pooled.sdc_rate();
  event.outcome_masked = pooled.total_outcome_masked;
  event.outcome_sdc = pooled.total_outcome_sdc;
  event.outcome_detected = pooled.total_outcome_detected;
  event.outcome_corrected = pooled.total_outcome_corrected;
  event.chains_quarantined = pooled.chains_quarantined;
  event.degraded = pooled.degraded;
  return event;
}

/// Fires the health hook for chains quarantined since the last call.
void report_new_quarantines(const RunnerConfig& config,
                            const ChainSupervisor& sup,
                            std::vector<bool>& reported, std::size_t round) {
  if (!config.health_hook) return;
  for (const ChainHealth& h : sup.health()) {
    if (h.status != ChainStatus::quarantined || reported[h.chain]) continue;
    reported[h.chain] = true;
    obs::ChainHealthEvent event;
    event.round = round + 1;
    event.chain = h.chain;
    event.status = "quarantined";
    event.reason = h.last_failure;
    event.retries = h.retries;
    config.health_hook(event);
  }
}

CampaignResult run_chains_impl(const bayes::BayesianFaultNetwork& golden,
                               const ChainTargetFactory& make_target, double p,
                               const RunnerConfig& config) {
  util::Stopwatch timer;
  ChainSupervisor sup(config.supervisor, config.num_chains);
  std::vector<ChainCursor> cursors(config.num_chains);
  std::vector<ChainResult> chains =
      run_round(golden, make_target, p, config, 0, sup, cursors);
  CampaignResult pooled = pool_chains(chains, sup.health());
  for (const ChainResult& c : chains) pooled.interrupted |= c.interrupted;
  std::vector<bool> reported(config.num_chains, false);
  report_new_quarantines(config, sup, reported, 0);
  if (pooled.failed) {
    BDLFI_LOG_ERROR("campaign failed: %s", pooled.fail_reason.c_str());
  }
  if (config.round_hook) {
    config.round_hook(make_round_event(pooled, 1, p, pooled.mean_acceptance,
                                       pooled.total_network_evals,
                                       timer.seconds()));
  }
  return pooled;
}

CompletenessResult run_until_complete_impl(
    const bayes::BayesianFaultNetwork& golden,
    const ChainTargetFactory& make_target, double p,
    const RunnerConfig& config, const CompletenessCriterion& criterion) {
  CompletenessResult result;
  ChainSupervisor sup(config.supervisor, config.num_chains);
  std::vector<ChainCursor> cursors(config.num_chains);
  // Cumulative per-chain sample streams. Each round continues the chain's
  // walk from its cursor (same RNG stream, same mask), so the streams are
  // single long chains and the pooled diagnostics sharpen monotonically.
  std::vector<ChainResult> cumulative(config.num_chains);

  double prev_mean = std::numeric_limits<double>::quiet_NaN();
  std::size_t prev_evals = 0;
  std::size_t start_round = 0;

  const std::uint64_t fingerprint = campaign_fingerprint(golden, config, p);
  const std::string ckpt_path = config.checkpoint_dir.empty()
                                    ? std::string{}
                                    : checkpoint_path(config.checkpoint_dir);

  // Exclusive ownership of the checkpoint dir for the whole campaign: two
  // processes checkpointing into one directory would interleave writes from
  // diverging walks. Held by RAII until the campaign returns.
  CheckpointDirLock dir_lock;
  if (!ckpt_path.empty()) {
    std::string lock_error;
    dir_lock = CheckpointDirLock::acquire(config.checkpoint_dir, &lock_error);
    if (!dir_lock.held()) {
      result.lock_rejected = true;
      result.final_result.failed = true;
      result.final_result.fail_reason = lock_error;
      BDLFI_LOG_ERROR("campaign rejected: %s", lock_error.c_str());
      return result;
    }
  }

  bool restored_converged = false;
  if (config.resume && !ckpt_path.empty() &&
      std::filesystem::exists(ckpt_path)) {
    std::string error;
    auto ck = load_checkpoint(ckpt_path, &error);
    if (!ck.has_value()) {
      // An existing but unreadable checkpoint is rejected rather than
      // silently restarted over: the operator asked to continue that run.
      result.resume_rejected = true;
      result.final_result.failed = true;
      result.final_result.fail_reason = "checkpoint unreadable: " + error;
      BDLFI_LOG_ERROR("resume rejected: %s", error.c_str());
      return result;
    }
    // Backend first: it is the one mismatch with an actionable fix (rerun
    // with --backend=<checkpoint's>), so it gets its own flag and message
    // rather than drowning in the generic fingerprint rejection.
    const std::string active_backend = tensor::backend::active_name();
    if (ck->backend != active_backend) {
      result.resume_rejected = true;
      result.backend_mismatch = true;
      result.final_result.failed = true;
      result.final_result.fail_reason =
          "checkpoint backend mismatch: checkpoint was produced with '" +
          ck->backend + "', this run uses '" + active_backend +
          "' (rerun with --backend=" + ck->backend +
          " to continue bit-exactly)";
      BDLFI_LOG_ERROR("resume rejected: backend mismatch (%s vs %s)",
                      ck->backend.c_str(), active_backend.c_str());
      return result;
    }
    if (ck->fingerprint != fingerprint ||
        ck->chains.size() != config.num_chains) {
      result.resume_rejected = true;
      result.final_result.failed = true;
      result.final_result.fail_reason =
          "checkpoint fingerprint mismatch: different config/seed/network";
      BDLFI_LOG_ERROR("resume rejected: fingerprint mismatch (%s)",
                      ckpt_path.c_str());
      return result;
    }
    cumulative = std::move(ck->chains);
    cursors = std::move(ck->cursors);
    sup.restore(std::move(ck->health));
    prev_mean = ck->prev_mean;
    prev_evals = ck->prev_evals;
    result.trajectory = std::move(ck->trajectory);
    start_round = ck->rounds_completed;
    result.rounds = start_round;
    result.resumed_from_round = start_round;
    restored_converged = ck->converged;
    result.final_result = pool_chains(cumulative, sup.health());
    BDLFI_LOG_INFO("resumed campaign from %s (%zu round(s) done)",
                   ckpt_path.c_str(), start_round);
  }
  if (restored_converged) {
    result.converged = true;
    return result;
  }

  std::vector<bool> reported(config.num_chains, false);
  for (const ChainHealth& h : sup.health()) {
    if (h.status == ChainStatus::quarantined) reported[h.chain] = true;
  }

  const auto save = [&](std::size_t rounds_done, bool converged) {
    if (ckpt_path.empty()) return;
    CampaignCheckpoint ck;
    ck.fingerprint = fingerprint;
    ck.backend = tensor::backend::active_name();
    ck.p = p;
    ck.rounds_completed = rounds_done;
    ck.converged = converged;
    ck.prev_mean = prev_mean;
    ck.prev_evals = prev_evals;
    ck.trajectory = result.trajectory;
    ck.chains = cumulative;
    ck.cursors = cursors;
    ck.health = sup.health();
    if (save_checkpoint(ckpt_path, ck)) {
      if (config.checkpoint_hook) config.checkpoint_hook(rounds_done, ckpt_path);
    }
  };

  for (std::size_t round = start_round; round < criterion.max_rounds; ++round) {
    if (util::interrupt_requested()) {
      result.interrupted = true;
      result.final_result.interrupted = true;
      break;
    }
    util::Stopwatch round_timer;
    auto fresh = run_round(golden, make_target, p, config, round, sup, cursors);
    bool interrupted = util::interrupt_requested();
    for (const auto& c : fresh) interrupted |= c.interrupted;
    if (interrupted) {
      // The partial round is discarded; the previous round's checkpoint is
      // the resume point, which keeps resumed streams bit-exact.
      result.interrupted = true;
      result.final_result.interrupted = true;
      break;
    }

    double round_acceptance = 0.0;
    std::size_t healthy = 0;
    for (std::size_t c = 0; c < config.num_chains; ++c) {
      if (sup.quarantined(c)) continue;
      auto& dst = cumulative[c];
      const auto& src = fresh[c];
      dst.error_samples.insert(dst.error_samples.end(),
                               src.error_samples.begin(),
                               src.error_samples.end());
      dst.deviation_samples.insert(dst.deviation_samples.end(),
                                   src.deviation_samples.begin(),
                                   src.deviation_samples.end());
      dst.flips_samples.insert(dst.flips_samples.end(),
                               src.flips_samples.begin(),
                               src.flips_samples.end());
      dst.mask_samples.insert(dst.mask_samples.end(),
                              src.mask_samples.begin(),
                              src.mask_samples.end());
      dst.network_evals += src.network_evals;
      dst.outcome_masked += src.outcome_masked;
      dst.outcome_sdc += src.outcome_sdc;
      dst.outcome_detected += src.outcome_detected;
      dst.outcome_corrected += src.outcome_corrected;
      dst.full_evals += src.full_evals;
      dst.truncated_evals += src.truncated_evals;
      dst.layers_run += src.layers_run;
      dst.layers_total += src.layers_total;
      dst.acceptance_rate = src.acceptance_rate;  // latest round's rate
      round_acceptance += src.acceptance_rate;
      ++healthy;
    }
    round_acceptance /=
        healthy > 0 ? static_cast<double>(healthy) : 1.0;

    CampaignResult pooled = pool_chains(cumulative, sup.health());
    report_new_quarantines(config, sup, reported, round);
    result.rounds = round + 1;
    result.trajectory.push_back({pooled.total_samples, pooled.mean_error,
                                 pooled.diagnostics.rhat,
                                 pooled.diagnostics.ess});
    if (config.round_hook) {
      obs::RoundEvent event = make_round_event(
          pooled, round + 1, p, round_acceptance,
          pooled.total_network_evals - prev_evals, round_timer.seconds());
      event.rounds_budget = criterion.max_rounds;
      config.round_hook(event);
    }
    prev_evals = pooled.total_network_evals;

    const bool mixed = pooled.diagnostics.rhat <= criterion.rhat_threshold;
    bool stable = false;
    if (!std::isnan(prev_mean)) {
      const double scale = std::max(1.0, std::abs(pooled.mean_error));
      stable = std::abs(pooled.mean_error - prev_mean) / scale <=
               criterion.mean_rel_tol;
    }
    prev_mean = pooled.mean_error;
    const bool converged_now = mixed && stable && !pooled.failed;
    const bool failed_now = pooled.failed;
    const std::string fail_reason = pooled.fail_reason;
    result.final_result = std::move(pooled);
    save(round + 1, converged_now);
    if (converged_now) {
      result.converged = true;
      break;
    }
    if (failed_now) {
      BDLFI_LOG_ERROR("campaign failed at round %zu: %s", round + 1,
                      fail_reason.c_str());
      break;
    }
  }
  return result;
}

}  // namespace

CampaignResult run_chains(const bayes::BayesianFaultNetwork& golden,
                          const TargetFactory& make_target, double p,
                          const RunnerConfig& config) {
  return run_chains_impl(golden, adapt(make_target), p, config);
}

CampaignResult run_chains(const bayes::BayesianFaultNetwork& golden,
                          const ChainTargetFactory& make_target, double p,
                          const RunnerConfig& config) {
  return run_chains_impl(golden, make_target, p, config);
}

CompletenessResult run_until_complete(
    const bayes::BayesianFaultNetwork& golden,
    const TargetFactory& make_target, double p, const RunnerConfig& config,
    const CompletenessCriterion& criterion) {
  return run_until_complete_impl(golden, adapt(make_target), p, config,
                                 criterion);
}

CompletenessResult run_until_complete(
    const bayes::BayesianFaultNetwork& golden,
    const ChainTargetFactory& make_target, double p, const RunnerConfig& config,
    const CompletenessCriterion& criterion) {
  return run_until_complete_impl(golden, make_target, p, config, criterion);
}

}  // namespace bdlfi::mcmc
