#include "mcmc/runner.h"

#include <cmath>
#include <limits>

#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace bdlfi::mcmc {

namespace {

std::uint64_t chain_seed(std::uint64_t base, std::uint64_t round,
                         std::uint64_t chain) {
  std::uint64_t s = base ^ (0x9e3779b97f4a7c15ULL * (round * 8191 + chain + 1));
  return util::splitmix64(s);
}

CampaignResult pool_chains(std::vector<ChainResult> chains) {
  CampaignResult result;
  util::SampleSet errors;
  util::RunningStats dev, flips;
  std::vector<std::vector<double>> error_streams;
  double acceptance = 0.0;
  for (auto& c : chains) {
    for (double e : c.error_samples) errors.add(e);
    for (double d : c.deviation_samples) dev.add(d);
    for (double f : c.flips_samples) flips.add(f);
    acceptance += c.acceptance_rate;
    result.total_network_evals += c.network_evals;
    result.total_full_evals += c.full_evals;
    result.total_truncated_evals += c.truncated_evals;
    result.total_layers_run += c.layers_run;
    result.total_layers_total += c.layers_total;
    error_streams.push_back(c.error_samples);
  }
  result.total_samples = errors.count();
  if (errors.count() > 0) {
    result.mean_error = errors.mean();
    result.stddev_error = errors.stddev();
    result.q05 = errors.quantile(0.05);
    result.q50 = errors.quantile(0.50);
    result.q95 = errors.quantile(0.95);
  }
  result.mean_deviation = dev.mean();
  result.mean_flips = flips.mean();
  result.mean_acceptance =
      chains.empty() ? 0.0 : acceptance / static_cast<double>(chains.size());

  if (error_streams.size() >= 2 && error_streams[0].size() >= 2) {
    result.diagnostics.rhat = util::gelman_rubin(error_streams);
  } else {
    result.diagnostics.rhat = 1.0;
  }
  double ess = 0.0, geweke = 0.0;
  for (const auto& stream : error_streams) {
    ess += util::effective_sample_size(stream);
    geweke = std::max(geweke, std::abs(util::geweke_z(stream)));
  }
  result.diagnostics.ess = ess;
  result.diagnostics.geweke_max = geweke;
  result.chains = std::move(chains);
  return result;
}

std::vector<ChainResult> run_round(const bayes::BayesianFaultNetwork& golden,
                                   const TargetFactory& make_target, double p,
                                   const RunnerConfig& config,
                                   std::uint64_t round) {
  BDLFI_CHECK(config.num_chains >= 1);
  obs::TraceSpan round_span("mcmc.round");
  std::vector<ChainResult> chains(config.num_chains);
  util::parallel_for(0, config.num_chains, [&](std::size_t c) {
    obs::TraceSpan chain_span("mcmc.chain");
    auto replica = golden.replicate();
    auto target = make_target(*replica);
    if (config.use_gibbs) {
      GibbsConfig gc = config.gibbs;
      gc.seed = chain_seed(config.seed, round, c);
      GibbsSampler sampler(*replica, *target, p, gc);
      chains[c] = sampler.run();
    } else {
      MhConfig mc = config.mh;
      mc.seed = chain_seed(config.seed, round, c);
      MhSampler sampler(*replica, *target, p, mc);
      chains[c] = sampler.run();
    }
  });
  return chains;
}

/// Campaign health of the round just pooled, for the runner's round hook.
/// `round_acceptance` is this round's per-chain mean, `round_evals` /
/// `round_seconds` this round's work; everything else is cumulative.
obs::RoundEvent make_round_event(const CampaignResult& pooled,
                                 std::size_t round, double p,
                                 double round_acceptance,
                                 std::size_t round_evals,
                                 double round_seconds) {
  obs::RoundEvent event;
  event.round = round;
  event.p = p;
  event.cumulative_samples = pooled.total_samples;
  event.mean_error = pooled.mean_error;
  event.rhat = pooled.diagnostics.rhat;
  event.ess = pooled.diagnostics.ess;
  event.acceptance_rate = round_acceptance;
  event.network_evals = pooled.total_network_evals;
  event.evals_per_sec = round_seconds > 0.0
                            ? static_cast<double>(round_evals) / round_seconds
                            : 0.0;
  const std::size_t cached = pooled.total_truncated_evals;
  const std::size_t total_evals = cached + pooled.total_full_evals;
  event.cache_hit_rate =
      total_evals == 0
          ? 0.0
          : static_cast<double>(cached) / static_cast<double>(total_evals);
  event.round_seconds = round_seconds;
  return event;
}

}  // namespace

CampaignResult run_chains(const bayes::BayesianFaultNetwork& golden,
                          const TargetFactory& make_target, double p,
                          const RunnerConfig& config) {
  util::Stopwatch timer;
  CampaignResult pooled = pool_chains(run_round(golden, make_target, p,
                                                config, 0));
  if (config.round_hook) {
    config.round_hook(make_round_event(pooled, 1, p, pooled.mean_acceptance,
                                       pooled.total_network_evals,
                                       timer.seconds()));
  }
  return pooled;
}

CompletenessResult run_until_complete(
    const bayes::BayesianFaultNetwork& golden,
    const TargetFactory& make_target, double p, const RunnerConfig& config,
    const CompletenessCriterion& criterion) {
  CompletenessResult result;
  // Cumulative per-chain sample streams; each round appends an independent
  // continuation (fresh seed), so the streams remain valid draws from the
  // same target and the pooled diagnostics sharpen monotonically.
  std::vector<ChainResult> cumulative(config.num_chains);

  double prev_mean = std::numeric_limits<double>::quiet_NaN();
  std::size_t prev_evals = 0;
  for (std::size_t round = 0; round < criterion.max_rounds; ++round) {
    util::Stopwatch round_timer;
    auto fresh = run_round(golden, make_target, p, config, round);
    double round_acceptance = 0.0;
    for (const auto& c : fresh) round_acceptance += c.acceptance_rate;
    round_acceptance /= static_cast<double>(config.num_chains);
    for (std::size_t c = 0; c < config.num_chains; ++c) {
      auto& dst = cumulative[c];
      const auto& src = fresh[c];
      dst.error_samples.insert(dst.error_samples.end(),
                               src.error_samples.begin(),
                               src.error_samples.end());
      dst.deviation_samples.insert(dst.deviation_samples.end(),
                                   src.deviation_samples.begin(),
                                   src.deviation_samples.end());
      dst.flips_samples.insert(dst.flips_samples.end(),
                               src.flips_samples.begin(),
                               src.flips_samples.end());
      dst.network_evals += src.network_evals;
      dst.full_evals += src.full_evals;
      dst.truncated_evals += src.truncated_evals;
      dst.layers_run += src.layers_run;
      dst.layers_total += src.layers_total;
      dst.acceptance_rate = src.acceptance_rate;  // latest round's rate
    }
    CampaignResult pooled = pool_chains(cumulative);
    result.rounds = round + 1;
    result.trajectory.push_back({pooled.total_samples, pooled.mean_error,
                                 pooled.diagnostics.rhat,
                                 pooled.diagnostics.ess});
    if (config.round_hook) {
      config.round_hook(make_round_event(
          pooled, round + 1, p, round_acceptance,
          pooled.total_network_evals - prev_evals, round_timer.seconds()));
    }
    prev_evals = pooled.total_network_evals;

    const bool mixed = pooled.diagnostics.rhat <= criterion.rhat_threshold;
    bool stable = false;
    if (!std::isnan(prev_mean)) {
      const double scale = std::max(1.0, std::abs(pooled.mean_error));
      stable = std::abs(pooled.mean_error - prev_mean) / scale <=
               criterion.mean_rel_tol;
    }
    prev_mean = pooled.mean_error;
    result.final_result = std::move(pooled);
    if (mixed && stable) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace bdlfi::mcmc
