// ChainSupervisor: per-chain health tracking and the retry/quarantine policy.
//
// A pathological chain (NaN-poisoned posterior, wedged forward pass,
// collapsed acceptance) used to take the whole campaign with it. The
// supervisor inspects every finished per-chain round, retries failures with a
// re-derived seed and bounded exponential backoff, and quarantines a chain
// that keeps failing. Quarantined chains are excluded from pooling so R-hat /
// ESS stay honest over the survivors; the campaign only fails outright when
// fewer than two survivors remain out of a multi-chain run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mcmc/mh.h"

namespace bdlfi::mcmc {

enum class ChainStatus { healthy, quarantined };

const char* to_string(ChainStatus status);
bool chain_status_from_string(const std::string& text, ChainStatus* out);

/// Health record of one chain across the campaign.
struct ChainHealth {
  std::size_t chain = 0;
  ChainStatus status = ChainStatus::healthy;
  /// Failed attempts across the whole campaign (retries + the final failure).
  std::size_t retries = 0;
  /// Reason of the most recent failure; empty for a chain that never failed.
  std::string last_failure;
  /// 1-based round at which the chain was quarantined; 0 = never.
  std::size_t quarantined_round = 0;
};

struct SupervisorConfig {
  /// Cooperative per-round wall-clock watchdog, milliseconds (0 = off).
  double round_timeout_ms = 0.0;
  /// Failed attempts tolerated per round before quarantine; the chain runs
  /// 1 + max_retries times at most.
  std::size_t max_retries = 2;
  /// MH acceptance-collapse floor (0 = off). Gibbs chains report 1.0 and are
  /// never caught by this detector.
  double min_acceptance = 0.0;
  /// Per-round forward-pass budget (0 = off).
  std::size_t max_evals_per_round = 0;
  /// Exponential backoff before a retry: base * 2^attempt, capped. 0 = none.
  double backoff_base_ms = 0.0;
  double backoff_cap_ms = 2000.0;
};

/// Thread-safety contract: each chain's health entry is touched only by the
/// worker currently running that chain (the runner's parallel_for assigns
/// disjoint indices); whole-fleet reads (counts, health()) happen between
/// rounds on the orchestrating thread.
class ChainSupervisor {
 public:
  ChainSupervisor(const SupervisorConfig& config, std::size_t num_chains);

  bool quarantined(std::size_t chain) const;
  std::size_t num_quarantined() const;
  std::size_t num_surviving() const;

  /// Post-round verdict for a finished chain: empty string = healthy,
  /// otherwise the failure reason ("nan_divergence", "timeout",
  /// "acceptance_collapse", "eval_budget"). NaN divergence is always
  /// checked; the other detectors arm only when their config knob is set.
  std::string inspect(const ChainResult& result) const;

  /// Records a failed attempt (0-based `attempt` within the current round).
  /// Returns true when the chain may retry, false when it has just been
  /// quarantined.
  bool record_failure(std::size_t chain, std::size_t round,
                      const std::string& reason, std::size_t attempt);

  /// Exponential backoff for `attempt` in milliseconds: base * 2^attempt,
  /// capped (0 when disabled). The fleet supervisor reuses this policy one
  /// level up, scheduling worker restarts from the delay instead of sleeping.
  double backoff_ms(std::size_t attempt) const;

  /// Sleeps backoff_ms(attempt); no-op when disabled.
  void backoff(std::size_t attempt) const;

  const std::vector<ChainHealth>& health() const { return health_; }

  /// Checkpoint restore: replaces the health table (size must match).
  void restore(std::vector<ChainHealth> health);

  const SupervisorConfig& config() const { return config_; }

 private:
  SupervisorConfig config_;
  std::vector<ChainHealth> health_;
};

}  // namespace bdlfi::mcmc
