#include "data/toy2d.h"

#include <cmath>

#include "util/check.h"

namespace bdlfi::data {

Dataset make_two_moons(std::size_t n, double noise, util::Rng& rng) {
  BDLFI_CHECK(n >= 2);
  Dataset ds;
  ds.inputs = Tensor{Shape{static_cast<std::int64_t>(n), 2}};
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool upper = (i % 2 == 0);
    const double t = rng.uniform(0.0, M_PI);
    double x, y;
    if (upper) {
      x = std::cos(t);
      y = std::sin(t);
    } else {
      x = 1.0 - std::cos(t);
      y = 0.5 - std::sin(t);
    }
    x += rng.normal(0.0, noise);
    y += rng.normal(0.0, noise);
    ds.inputs[static_cast<std::int64_t>(i) * 2 + 0] = static_cast<float>(x);
    ds.inputs[static_cast<std::int64_t>(i) * 2 + 1] = static_cast<float>(y);
    ds.labels[i] = upper ? 0 : 1;
  }
  return ds;
}

Dataset make_rings(std::size_t n, double noise, util::Rng& rng) {
  BDLFI_CHECK(n >= 2);
  Dataset ds;
  ds.inputs = Tensor{Shape{static_cast<std::int64_t>(n), 2}};
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool inner = (i % 2 == 0);
    const double r = inner ? 0.4 : 1.0;
    const double theta = rng.uniform(0.0, 2.0 * M_PI);
    const double x = r * std::cos(theta) + rng.normal(0.0, noise);
    const double y = r * std::sin(theta) + rng.normal(0.0, noise);
    ds.inputs[static_cast<std::int64_t>(i) * 2 + 0] = static_cast<float>(x);
    ds.inputs[static_cast<std::int64_t>(i) * 2 + 1] = static_cast<float>(y);
    ds.labels[i] = inner ? 0 : 1;
  }
  return ds;
}

Dataset make_blobs(std::size_t n, int k, double spread, double noise,
                   util::Rng& rng) {
  BDLFI_CHECK(n >= static_cast<std::size_t>(k) && k >= 2);
  Dataset ds;
  ds.inputs = Tensor{Shape{static_cast<std::int64_t>(n), 2}};
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(i % static_cast<std::size_t>(k));
    const double angle = 2.0 * M_PI * c / k;
    const double cx = spread * std::cos(angle);
    const double cy = spread * std::sin(angle);
    ds.inputs[static_cast<std::int64_t>(i) * 2 + 0] =
        static_cast<float>(cx + rng.normal(0.0, noise));
    ds.inputs[static_cast<std::int64_t>(i) * 2 + 1] =
        static_cast<float>(cy + rng.normal(0.0, noise));
    ds.labels[i] = c;
  }
  return ds;
}

Dataset make_waveforms(std::size_t n, std::int64_t length, double noise,
                       util::Rng& rng) {
  BDLFI_CHECK(n >= 3 && length >= 8);
  Dataset ds;
  ds.inputs = Tensor{Shape{static_cast<std::int64_t>(n), 1, 1, length}};
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 3);
    ds.labels[i] = cls;
    // Frequency in cycles over the window; keep a couple of periods visible.
    const double freq = rng.uniform(2.0, 5.0);
    const double phase = rng.uniform(0.0, 2.0 * M_PI);
    const double amp = rng.uniform(0.7, 1.3);
    float* wave = ds.inputs.data() + static_cast<std::int64_t>(i) * length;
    for (std::int64_t t = 0; t < length; ++t) {
      const double theta =
          2.0 * M_PI * freq * static_cast<double>(t) /
              static_cast<double>(length) +
          phase;
      double v = 0.0;
      switch (cls) {
        case 0: v = std::sin(theta); break;
        case 1: v = std::sin(theta) >= 0.0 ? 1.0 : -1.0; break;  // square
        case 2: {  // sawtooth in [-1, 1)
          const double frac = theta / (2.0 * M_PI);
          v = 2.0 * (frac - std::floor(frac)) - 1.0;
          break;
        }
        default: break;
      }
      wave[t] = static_cast<float>(amp * v + rng.normal(0.0, noise));
    }
  }
  return ds;
}

}  // namespace bdlfi::data
