// In-memory labeled dataset and batching utilities.
//
// Samples live in one contiguous tensor whose first axis is the sample index
// ([N, D] for vector data, [N, C, H, W] for images); labels are class ids.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace bdlfi::data {

using tensor::Shape;
using tensor::Tensor;

struct Dataset {
  Tensor inputs;                     // [N, ...]
  std::vector<std::int64_t> labels;  // size N

  std::size_t size() const { return labels.size(); }
  std::int64_t sample_numel() const {
    return size() == 0 ? 0 : inputs.numel() / static_cast<std::int64_t>(size());
  }

  /// Copies the rows at `indices` into a contiguous batch (same rank).
  Dataset gather(const std::vector<std::size_t>& indices) const;

  /// Contiguous range [begin, end) as a batch.
  Dataset slice(std::size_t begin, std::size_t end) const;

  /// Validates invariants (matching sizes, labels within [0, num_classes)).
  void check_valid(std::int64_t num_classes) const;
};

/// Deterministic (seeded) train/test split.
struct Split {
  Dataset train;
  Dataset test;
};
Split split_dataset(const Dataset& all, double train_fraction, util::Rng& rng);

/// Iterates a dataset in shuffled mini-batches; reshuffles every epoch.
class BatchIterator {
 public:
  BatchIterator(const Dataset& dataset, std::size_t batch_size,
                util::Rng& rng);

  /// Fills `batch` with the next mini-batch; returns false at epoch end
  /// (call start_epoch() to begin the next one).
  bool next(Dataset& batch);
  void start_epoch();
  std::size_t batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  std::size_t batch_size_;
  util::Rng& rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

/// Normalizes inputs to zero mean / unit variance per feature, computed on
/// this dataset (applied in place). Returns the (mean, stddev) tensors so the
/// same transform can be applied to other splits.
std::pair<Tensor, Tensor> fit_normalizer(Dataset& dataset);
void apply_normalizer(Dataset& dataset, const Tensor& mean,
                      const Tensor& stddev);

}  // namespace bdlfi::data
