#include "data/cifar_like.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bdlfi::data {

namespace {

struct ClassStyle {
  float base_r, base_g, base_b;       // palette
  double tex_freq, tex_angle;         // sinusoidal texture
  int glyph;                          // 0 disk, 1 ring, 2 bar, 3 checker
  double glyph_radius;
};

ClassStyle style_for(int c) {
  // Hand-laid-out styles: adjacent class ids differ in more than one cue so
  // no single pixel statistic separates them.
  const double golden = 2.399963;  // golden angle, spreads orientations
  ClassStyle s;
  s.base_r = 0.25f + 0.07f * static_cast<float>((c * 3) % 10);
  s.base_g = 0.25f + 0.07f * static_cast<float>((c * 7 + 2) % 10);
  s.base_b = 0.25f + 0.07f * static_cast<float>((c * 5 + 5) % 10);
  s.tex_freq = 0.25 + 0.09 * (c % 5);
  s.tex_angle = golden * c;
  s.glyph = c % 4;
  s.glyph_radius = 5.0 + 1.2 * (c % 3);
  return s;
}

}  // namespace

Dataset make_cifar_like(const CifarLikeConfig& config, util::Rng& rng) {
  BDLFI_CHECK(config.num_classes >= 2 && config.num_classes <= 10);
  BDLFI_CHECK(config.samples_per_class >= 1);
  const std::int64_t s = config.image_size;
  const auto n = static_cast<std::int64_t>(config.samples_per_class) *
                 config.num_classes;

  Dataset ds;
  ds.inputs = Tensor{Shape{n, 3, s, s}};
  ds.labels.resize(static_cast<std::size_t>(n));

  std::int64_t sample = 0;
  for (int c = 0; c < config.num_classes; ++c) {
    const ClassStyle style = style_for(c);
    for (std::size_t k = 0; k < config.samples_per_class; ++k, ++sample) {
      ds.labels[static_cast<std::size_t>(sample)] = c;
      const double phase = rng.uniform(0.0, 2.0 * M_PI);
      const double cx = s / 2.0 + rng.normal(0.0, config.jitter);
      const double cy = s / 2.0 + rng.normal(0.0, config.jitter);
      const double ca = std::cos(style.tex_angle);
      const double sa = std::sin(style.tex_angle);
      float* img = ds.inputs.data() + sample * 3 * s * s;
      for (std::int64_t y = 0; y < s; ++y) {
        for (std::int64_t x = 0; x < s; ++x) {
          const double u = ca * x + sa * y;
          const double tex =
              0.5 + 0.35 * std::sin(style.tex_freq * u + phase);
          // Glyph membership.
          const double dx = x - cx, dy = y - cy;
          const double r = std::sqrt(dx * dx + dy * dy);
          double glyph = 0.0;
          switch (style.glyph) {
            case 0: glyph = r < style.glyph_radius ? 1.0 : 0.0; break;
            case 1:
              glyph = (r > style.glyph_radius * 0.6 &&
                       r < style.glyph_radius * 1.2)
                          ? 1.0 : 0.0;
              break;
            case 2: glyph = std::abs(dx) < 2.5 ? 1.0 : 0.0; break;
            case 3:
              glyph = ((static_cast<int>(x / 4) + static_cast<int>(y / 4)) %
                       2) == 0
                          ? 0.6 : 0.0;
              break;
            default: break;
          }
          const double lum = 0.55 * tex + 0.45 * glyph;
          const std::int64_t idx = y * s + x;
          auto noisy = [&](float base) {
            const double v = base * lum + rng.normal(0.0, config.pixel_noise);
            return static_cast<float>(std::clamp(v, 0.0, 1.0));
          };
          img[0 * s * s + idx] = noisy(style.base_r * 2.0f);
          img[1 * s * s + idx] = noisy(style.base_g * 2.0f);
          img[2 * s * s + idx] = noisy(style.base_b * 2.0f);
        }
      }
    }
  }
  return ds;
}

}  // namespace bdlfi::data
