#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "util/check.h"

namespace bdlfi::data {

namespace {

Shape batch_shape(const Shape& full, std::int64_t n) {
  switch (full.rank()) {
    case 2: return Shape{n, full[1]};
    case 3: return Shape{n, full[1], full[2]};
    case 4: return Shape{n, full[1], full[2], full[3]};
    default:
      BDLFI_CHECK_MSG(false, "unsupported dataset rank");
      return Shape{};
  }
}

}  // namespace

Dataset Dataset::gather(const std::vector<std::size_t>& indices) const {
  const std::int64_t row = sample_numel();
  Dataset out;
  out.inputs = Tensor{batch_shape(inputs.shape(),
                                  static_cast<std::int64_t>(indices.size()))};
  out.labels.reserve(indices.size());
  float* dst = out.inputs.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src_idx = indices[i];
    BDLFI_DCHECK(src_idx < size());
    std::memcpy(dst + static_cast<std::int64_t>(i) * row,
                inputs.data() + static_cast<std::int64_t>(src_idx) * row,
                static_cast<std::size_t>(row) * sizeof(float));
    out.labels.push_back(labels[src_idx]);
  }
  return out;
}

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  BDLFI_CHECK(begin <= end && end <= size());
  std::vector<std::size_t> idx(end - begin);
  std::iota(idx.begin(), idx.end(), begin);
  return gather(idx);
}

void Dataset::check_valid(std::int64_t num_classes) const {
  BDLFI_CHECK(static_cast<std::int64_t>(size()) ==
              (inputs.shape().rank() > 0 ? inputs.shape()[0] : 0));
  for (std::int64_t label : labels) {
    BDLFI_CHECK_MSG(label >= 0 && label < num_classes,
                    "label out of range");
  }
}

Split split_dataset(const Dataset& all, double train_fraction,
                    util::Rng& rng) {
  BDLFI_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  std::vector<std::size_t> order(all.size());
  std::iota(order.begin(), order.end(), 0);
  // Fisher–Yates with our deterministic RNG.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  const auto n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(all.size()));
  std::vector<std::size_t> train_idx(order.begin(),
                                     order.begin() +
                                         static_cast<std::ptrdiff_t>(n_train));
  std::vector<std::size_t> test_idx(
      order.begin() + static_cast<std::ptrdiff_t>(n_train), order.end());
  return {all.gather(train_idx), all.gather(test_idx)};
}

BatchIterator::BatchIterator(const Dataset& dataset, std::size_t batch_size,
                             util::Rng& rng)
    : dataset_(dataset), batch_size_(batch_size), rng_(rng),
      order_(dataset.size()) {
  BDLFI_CHECK(batch_size > 0);
  std::iota(order_.begin(), order_.end(), 0);
  start_epoch();
}

void BatchIterator::start_epoch() {
  for (std::size_t i = order_.size(); i > 1; --i) {
    std::swap(order_[i - 1], order_[rng_.below(i)]);
  }
  cursor_ = 0;
}

std::size_t BatchIterator::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

bool BatchIterator::next(Dataset& batch) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t end = std::min(cursor_ + batch_size_, order_.size());
  std::vector<std::size_t> idx(order_.begin() +
                                   static_cast<std::ptrdiff_t>(cursor_),
                               order_.begin() +
                                   static_cast<std::ptrdiff_t>(end));
  batch = dataset_.gather(idx);
  cursor_ = end;
  return true;
}

std::pair<Tensor, Tensor> fit_normalizer(Dataset& dataset) {
  const std::int64_t n = static_cast<std::int64_t>(dataset.size());
  const std::int64_t d = dataset.sample_numel();
  BDLFI_CHECK(n > 1);
  Tensor mean{Shape{d}}, stddev{Shape{d}};
  for (std::int64_t j = 0; j < d; ++j) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const double v = dataset.inputs[i * d + j];
      sum += v;
      sq += v * v;
    }
    const double mu = sum / static_cast<double>(n);
    const double var = std::max(1e-12, sq / static_cast<double>(n) - mu * mu);
    mean[j] = static_cast<float>(mu);
    stddev[j] = static_cast<float>(std::sqrt(var));
  }
  apply_normalizer(dataset, mean, stddev);
  return {mean, stddev};
}

void apply_normalizer(Dataset& dataset, const Tensor& mean,
                      const Tensor& stddev) {
  const std::int64_t n = static_cast<std::int64_t>(dataset.size());
  const std::int64_t d = dataset.sample_numel();
  BDLFI_CHECK(mean.numel() == d && stddev.numel() == d);
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = dataset.inputs.data() + i * d;
    for (std::int64_t j = 0; j < d; ++j) {
      row[j] = (row[j] - mean[j]) / stddev[j];
    }
  }
}

}  // namespace bdlfi::data
