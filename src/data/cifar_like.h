// Procedural CIFAR-10 substitute.
//
// The paper trains ResNet-18 on CIFAR-10; no dataset files exist in this
// offline environment, so we synthesize a 10-class 32×32×3 image distribution
// with the properties the experiments rely on:
//   * classes are separable but not trivially so (a trained ResNet reaches
//     high accuracy, an untrained one is at chance),
//   * class evidence is spatially distributed (textures + shapes + color),
//     so convolutional features at every depth carry signal — required for
//     the layer-sensitivity experiment (Fig. 3) to be meaningful,
//   * per-sample nuisance variation (phase, position, noise) creates samples
//     near the decision boundary — required for the boundary-effect claim.
//
// Each class c combines: a class-specific color palette, an oriented
// sinusoidal texture (frequency/orientation keyed to c), and one of several
// geometric glyphs (disk / ring / bar / checker) placed with jitter.
#pragma once

#include "data/dataset.h"

namespace bdlfi::data {

struct CifarLikeConfig {
  std::size_t samples_per_class = 200;
  int num_classes = 10;       // 2..10
  double pixel_noise = 0.08;  // Gaussian stddev added per channel
  double jitter = 3.0;        // glyph center jitter (pixels)
  std::int64_t image_size = 32;
};

/// Deterministic for a given (config, rng-state). Inputs [N, 3, S, S] in
/// roughly [0, 1] before normalization; labels 0..num_classes-1, balanced.
Dataset make_cifar_like(const CifarLikeConfig& config, util::Rng& rng);

}  // namespace bdlfi::data
