// 2-D synthetic classification datasets for the MLP experiments.
//
// The paper's Fig. 1-③ draws a decision boundary and the log error
// probability over a 2-D input plane; these generators provide input spaces
// with non-trivial, curved boundaries where "points near the boundary" is a
// meaningful, visualizable notion.
#pragma once

#include "data/dataset.h"

namespace bdlfi::data {

/// Two interleaving half-moons (binary). `noise` is the Gaussian jitter
/// stddev. Inputs are [N, 2] roughly within [-1.5, 2.5] × [-1, 1.5].
Dataset make_two_moons(std::size_t n, double noise, util::Rng& rng);

/// Concentric rings (binary): class 0 inside radius r0, class 1 an annulus.
Dataset make_rings(std::size_t n, double noise, util::Rng& rng);

/// `k` Gaussian blobs (k-way). Centers on a circle of radius `spread`.
Dataset make_blobs(std::size_t n, int k, double spread, double noise,
                   util::Rng& rng);

/// Synthetic waveform classification (3 classes: sine / square / sawtooth,
/// random frequency, phase and amplitude jitter, additive noise). Inputs are
/// [N, 1, 1, length] so 1-D convolutions run through the 2-D conv stack —
/// the subject for the "differentiable programs beyond neural networks"
/// demonstration (a trainable FIR filterbank is a differentiable DSP
/// program, not an image classifier).
Dataset make_waveforms(std::size_t n, std::int64_t length, double noise,
                       util::Rng& rng);

}  // namespace bdlfi::data
