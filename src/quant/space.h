// Fault injection into int8 weight codes.
//
// The quantized counterpart of fault::InjectionSpace / bayes::
// BayesianFaultNetwork: fault sites are (int8 word, bit 0..7) addresses over
// every quantized weight buffer of a network. A flipped bit moves a weight by
// at most 128 quantization steps — the mechanism behind the well-known
// robustness of integer formats that bench/tab_quantized quantifies against
// the float32 results of Figs. 2/4.
#pragma once

#include <memory>

#include "bayes/fault_network.h"  // reuses MaskOutcome taxonomy
#include "fault/mask.h"
#include "quant/convert.h"
#include "util/rng.h"

namespace bdlfi::quant {

inline constexpr int kBitsPerCode = 8;

class QuantInjectionSpace {
 public:
  /// Enumerates the int8 buffers of `net` (which must outlive the space).
  explicit QuantInjectionSpace(nn::Network& net);

  std::int64_t total_elements() const { return total_elements_; }
  std::int64_t total_bits() const { return total_elements_ * kBitsPerCode; }
  const std::vector<QuantBufferRef>& buffers() const { return buffers_; }

  std::int8_t* element_ptr(std::int64_t element) const;

  /// XOR-applies a mask (flat bit index = element * 8 + bit). Self-inverse.
  void apply(const fault::FaultMask& mask) const;

  /// Independent Bernoulli(p) per int8 bit; O(#flips) via geometric skipping.
  fault::FaultMask sample_mask(double p, util::Rng& rng) const;

 private:
  struct Entry {
    QuantBufferRef ref;
    std::int64_t offset;
  };
  std::vector<QuantBufferRef> buffers_;
  std::vector<Entry> entries_;
  std::int64_t total_elements_ = 0;
};

/// Quantized analogue of BayesianFaultNetwork: owns a deep copy of the
/// quantized golden network, measures mask outcomes with the same taxonomy.
class QuantFaultNetwork {
 public:
  QuantFaultNetwork(const nn::Network& quantized_golden,
                    tensor::Tensor eval_inputs,
                    std::vector<std::int64_t> eval_labels);

  QuantFaultNetwork(const QuantFaultNetwork&) = delete;
  QuantFaultNetwork& operator=(const QuantFaultNetwork&) = delete;

  std::unique_ptr<QuantFaultNetwork> replicate() const;

  const QuantInjectionSpace& space() const { return *space_; }
  double golden_error() const { return golden_error_; }

  bayes::MaskOutcome evaluate_mask(const fault::FaultMask& mask);

  fault::FaultMask sample_prior_mask(double p, util::Rng& rng) const {
    return space_->sample_mask(p, rng);
  }

 private:
  nn::Network net_;
  std::unique_ptr<QuantInjectionSpace> space_;
  tensor::Tensor eval_inputs_;
  std::vector<std::int64_t> eval_labels_;
  std::vector<std::int64_t> golden_preds_;
  double golden_error_ = 0.0;
};

/// Random-FI campaign over the quantized fault space (parallel workers,
/// deterministic for a given seed).
struct QuantFiResult {
  double mean_error = 0.0;
  double q05 = 0.0, q95 = 0.0;
  double mean_deviation = 0.0;
  double mean_detected = 0.0;
  double mean_flips = 0.0;
  std::size_t injections = 0;
};
QuantFiResult run_quant_random_fi(const QuantFaultNetwork& golden, double p,
                                  std::size_t injections, std::uint64_t seed);

}  // namespace bdlfi::quant
