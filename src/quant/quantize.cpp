#include "quant/quantize.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace bdlfi::quant {

QuantParams calibrate_symmetric(std::span<const float> values) {
  BDLFI_CHECK_MSG(!values.empty(), "calibrating empty buffer");
  float max_abs = 0.0f;
  for (float v : values) max_abs = std::max(max_abs, std::abs(v));
  QuantParams params;
  // All-zero tensors quantize with any positive scale; 1.0 keeps math finite.
  params.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  return params;
}

std::vector<std::int8_t> quantize_buffer(std::span<const float> values,
                                         const QuantParams& params) {
  std::vector<std::int8_t> codes(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    codes[i] = quantize_value(values[i], params);
  }
  return codes;
}

void dequantize_buffer(std::span<const std::int8_t> codes,
                       const QuantParams& params, std::span<float> out) {
  BDLFI_CHECK(codes.size() == out.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[i] = dequantize_value(codes[i], params);
  }
}

}  // namespace bdlfi::quant
