#include "quant/layers.h"

#include "util/check.h"

namespace bdlfi::quant {

namespace {

// Quantizes `rows` channel-blocks of `block` values each; one scale per
// block in per-channel mode, one global scale otherwise.
void quantize_blocks(std::span<const float> values, std::int64_t rows,
                     std::int64_t block, bool per_channel,
                     std::vector<std::int8_t>& codes,
                     std::vector<QuantParams>& params) {
  codes.resize(values.size());
  if (!per_channel) {
    params = {calibrate_symmetric(values)};
    for (std::size_t i = 0; i < values.size(); ++i) {
      codes[i] = quantize_value(values[i], params[0]);
    }
    return;
  }
  params.resize(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::span<const float> row = values.subspan(
        static_cast<std::size_t>(r * block), static_cast<std::size_t>(block));
    auto& p = params[static_cast<std::size_t>(r)];
    p = calibrate_symmetric(row);
    for (std::int64_t i = 0; i < block; ++i) {
      codes[static_cast<std::size_t>(r * block + i)] =
          quantize_value(row[static_cast<std::size_t>(i)], p);
    }
  }
}

void dequantize_blocks(std::span<const std::int8_t> codes, std::int64_t rows,
                       std::int64_t block, bool per_channel,
                       const std::vector<QuantParams>& params,
                       std::span<float> out) {
  if (!per_channel) {
    dequantize_buffer(codes, params[0], out);
    return;
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    const auto& p = params[static_cast<std::size_t>(r)];
    for (std::int64_t i = 0; i < block; ++i) {
      const auto idx = static_cast<std::size_t>(r * block + i);
      out[idx] = dequantize_value(codes[idx], p);
    }
  }
}

}  // namespace

// --- QuantDense ----------------------------------------------------------------

QuantDense::QuantDense(const Tensor& weight, const Tensor& bias,
                       bool per_channel)
    : in_(weight.shape()[1]),
      out_(weight.shape()[0]),
      per_channel_(per_channel),
      bias_(bias) {
  BDLFI_CHECK(weight.shape().rank() == 2);
  quantize_blocks(weight.flat(), out_, in_, per_channel_, weight_codes_,
                  channel_params_);
}

Tensor QuantDense::dequantized_weight() const {
  Tensor w{Shape{out_, in_}};
  dequantize_blocks(weight_codes_, out_, in_, per_channel_, channel_params_,
                    w.flat());
  return w;
}

Tensor QuantDense::forward(const Tensor& x, bool /*training*/) {
  BDLFI_CHECK(x.shape().rank() == 2 && x.shape()[1] == in_);
  const Tensor w = dequantized_weight();
  const std::int64_t n = x.shape()[0];
  Tensor y{Shape{n, out_}};
  tensor::gemm(false, true, n, out_, in_, 1.0f, x.data(), in_, w.data(), in_,
               0.0f, y.data(), out_);
  if (!bias_.empty()) tensor::bias_add_rows(y, bias_);
  return y;
}

Tensor QuantDense::backward(const Tensor& /*grad_output*/) {
  BDLFI_CHECK_MSG(false, "quantized layers are inference-only");
  return {};
}

std::unique_ptr<Layer> QuantDense::clone() const {
  auto copy =
      std::make_unique<QuantDense>(dequantized_weight(), bias_, per_channel_);
  // Copy codes verbatim so corrupted replicas stay bit-identical.
  copy->weight_codes_ = weight_codes_;
  copy->channel_params_ = channel_params_;
  return copy;
}

void QuantDense::collect_quant_buffers(const std::string& prefix,
                                       std::vector<QuantBufferRef>& out) {
  out.push_back({prefix + "weight_q", &weight_codes_, channel_params_[0]});
}

// --- QuantConv2d ----------------------------------------------------------------

QuantConv2d::QuantConv2d(const Tensor& weight, const Tensor& bias,
                         const tensor::Conv2dSpec& spec, bool per_channel)
    : weight_shape_(weight.shape()),
      spec_(spec),
      per_channel_(per_channel),
      bias_(bias) {
  BDLFI_CHECK(weight.shape().rank() == 4);
  const std::int64_t out_ch = weight_shape_[0];
  const std::int64_t block = weight.numel() / out_ch;
  quantize_blocks(weight.flat(), out_ch, block, per_channel_, weight_codes_,
                  channel_params_);
}

Tensor QuantConv2d::dequantized_weight() const {
  Tensor w{weight_shape_};
  const std::int64_t out_ch = weight_shape_[0];
  dequantize_blocks(weight_codes_, out_ch, w.numel() / out_ch, per_channel_,
                    channel_params_, w.flat());
  return w;
}

Tensor QuantConv2d::forward(const Tensor& x, bool /*training*/) {
  return tensor::conv2d_forward(x, dequantized_weight(), bias_, spec_);
}

Tensor QuantConv2d::backward(const Tensor& /*grad_output*/) {
  BDLFI_CHECK_MSG(false, "quantized layers are inference-only");
  return {};
}

std::unique_ptr<Layer> QuantConv2d::clone() const {
  auto copy = std::make_unique<QuantConv2d>(dequantized_weight(), bias_,
                                            spec_, per_channel_);
  copy->weight_codes_ = weight_codes_;
  copy->channel_params_ = channel_params_;
  return copy;
}

void QuantConv2d::collect_quant_buffers(const std::string& prefix,
                                        std::vector<QuantBufferRef>& out) {
  out.push_back({prefix + "weight_q", &weight_codes_, channel_params_[0]});
}

// --- QuantBasicBlock -------------------------------------------------------------

QuantBasicBlock::QuantBasicBlock(std::unique_ptr<QuantConv2d> conv1,
                                 std::unique_ptr<Layer> bn1,
                                 std::unique_ptr<QuantConv2d> conv2,
                                 std::unique_ptr<Layer> bn2,
                                 std::unique_ptr<QuantConv2d> proj_conv,
                                 std::unique_ptr<Layer> proj_bn)
    : conv1_(std::move(conv1)),
      conv2_(std::move(conv2)),
      proj_conv_(std::move(proj_conv)),
      bn1_(std::move(bn1)),
      bn2_(std::move(bn2)),
      proj_bn_(std::move(proj_bn)) {
  BDLFI_CHECK(conv1_ && bn1_ && conv2_ && bn2_);
  BDLFI_CHECK((proj_conv_ == nullptr) == (proj_bn_ == nullptr));
}

Tensor QuantBasicBlock::forward(const Tensor& x, bool training) {
  BDLFI_CHECK_MSG(!training, "quantized layers are inference-only");
  Tensor mid = bn1_->forward(conv1_->forward(x, false), false);
  tensor::relu_inplace(mid);
  Tensor out = bn2_->forward(conv2_->forward(mid, false), false);
  Tensor shortcut =
      proj_conv_ ? proj_bn_->forward(proj_conv_->forward(x, false), false)
                 : x;
  tensor::add_inplace(out, shortcut);
  tensor::relu_inplace(out);
  return out;
}

Tensor QuantBasicBlock::backward(const Tensor& /*grad_output*/) {
  BDLFI_CHECK_MSG(false, "quantized layers are inference-only");
  return {};
}

std::unique_ptr<Layer> QuantBasicBlock::clone() const {
  auto clone_qconv = [](const QuantConv2d* conv) {
    return conv ? std::unique_ptr<QuantConv2d>(
                      static_cast<QuantConv2d*>(conv->clone().release()))
                : nullptr;
  };
  return std::make_unique<QuantBasicBlock>(
      clone_qconv(conv1_.get()), bn1_->clone(), clone_qconv(conv2_.get()),
      bn2_->clone(), clone_qconv(proj_conv_.get()),
      proj_bn_ ? proj_bn_->clone() : nullptr);
}

void QuantBasicBlock::collect_quant_buffers(const std::string& prefix,
                                            std::vector<QuantBufferRef>& out) {
  conv1_->collect_quant_buffers(prefix + "conv1.", out);
  conv2_->collect_quant_buffers(prefix + "conv2.", out);
  if (proj_conv_) proj_conv_->collect_quant_buffers(prefix + "proj.", out);
}

}  // namespace bdlfi::quant
