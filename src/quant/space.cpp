#include "quant/space.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace bdlfi::quant {

QuantInjectionSpace::QuantInjectionSpace(nn::Network& net) {
  buffers_ = collect_quant_buffers(net);
  BDLFI_CHECK_MSG(!buffers_.empty(),
                  "network has no quantized buffers (did you call "
                  "quantize_network?)");
  for (const auto& ref : buffers_) {
    entries_.push_back({ref, total_elements_});
    total_elements_ += static_cast<std::int64_t>(ref.codes->size());
  }
}

std::int8_t* QuantInjectionSpace::element_ptr(std::int64_t element) const {
  BDLFI_DCHECK(element >= 0 && element < total_elements_);
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), element,
      [](std::int64_t e, const Entry& entry) { return e < entry.offset; });
  const Entry& entry = *(it - 1);
  return entry.ref.codes->data() + (element - entry.offset);
}

void QuantInjectionSpace::apply(const fault::FaultMask& mask) const {
  for (std::int64_t flat : mask.bits()) {
    const std::int64_t element = flat / kBitsPerCode;
    const int bit = static_cast<int>(flat % kBitsPerCode);
    std::int8_t* code = element_ptr(element);
    *code = static_cast<std::int8_t>(
        static_cast<std::uint8_t>(*code) ^ (std::uint8_t{1} << bit));
  }
}

fault::FaultMask QuantInjectionSpace::sample_mask(double p,
                                                  util::Rng& rng) const {
  BDLFI_CHECK(p > 0.0 && p < 1.0);
  std::vector<std::int64_t> flips;
  const std::int64_t total = total_bits();
  std::int64_t bit = static_cast<std::int64_t>(rng.geometric(p));
  while (bit < total) {
    flips.push_back(bit);
    bit += 1 + static_cast<std::int64_t>(rng.geometric(p));
  }
  return fault::FaultMask{std::move(flips)};
}

QuantFaultNetwork::QuantFaultNetwork(const nn::Network& quantized_golden,
                                     tensor::Tensor eval_inputs,
                                     std::vector<std::int64_t> eval_labels)
    : net_(quantized_golden.clone()),
      eval_inputs_(std::move(eval_inputs)),
      eval_labels_(std::move(eval_labels)) {
  BDLFI_CHECK(!eval_labels_.empty());
  space_ = std::make_unique<QuantInjectionSpace>(net_);
  golden_preds_ = net_.predict(eval_inputs_);
  std::size_t miss = 0;
  for (std::size_t i = 0; i < eval_labels_.size(); ++i) {
    if (golden_preds_[i] != eval_labels_[i]) ++miss;
  }
  golden_error_ = 100.0 * static_cast<double>(miss) /
                  static_cast<double>(eval_labels_.size());
}

std::unique_ptr<QuantFaultNetwork> QuantFaultNetwork::replicate() const {
  return std::make_unique<QuantFaultNetwork>(net_, eval_inputs_,
                                             eval_labels_);
}

bayes::MaskOutcome QuantFaultNetwork::evaluate_mask(
    const fault::FaultMask& mask) {
  space_->apply(mask);
  const tensor::Tensor logits = net_.forward(eval_inputs_);
  space_->apply(mask);
  const auto preds = tensor::argmax_rows(logits);

  bayes::MaskOutcome outcome;
  outcome.flipped_bits = mask.num_flips();
  const std::int64_t classes = logits.shape()[1];
  std::size_t miss = 0, dev = 0, detected = 0, sdc = 0;
  for (std::size_t i = 0; i < eval_labels_.size(); ++i) {
    const float* row = logits.data() + static_cast<std::int64_t>(i) * classes;
    bool finite = true;
    for (std::int64_t c = 0; c < classes; ++c) {
      if (!std::isfinite(row[c])) {
        finite = false;
        break;
      }
    }
    const bool deviated = preds[i] != golden_preds_[i];
    if (preds[i] != eval_labels_[i]) ++miss;
    if (deviated) ++dev;
    if (!finite) {
      ++detected;
    } else if (deviated) {
      ++sdc;
    }
  }
  const auto n = static_cast<double>(eval_labels_.size());
  outcome.classification_error = 100.0 * static_cast<double>(miss) / n;
  outcome.deviation = 100.0 * static_cast<double>(dev) / n;
  outcome.detected = 100.0 * static_cast<double>(detected) / n;
  outcome.sdc = 100.0 * static_cast<double>(sdc) / n;
  return outcome;
}

QuantFiResult run_quant_random_fi(const QuantFaultNetwork& golden, double p,
                                  std::size_t injections,
                                  std::uint64_t seed) {
  BDLFI_CHECK(injections > 0);
  std::size_t workers =
      std::min(injections, util::ThreadPool::global().size());
  std::vector<std::vector<bayes::MaskOutcome>> outcomes(workers);
  util::Rng seeder{seed};
  std::vector<std::uint64_t> seeds(workers);
  for (auto& s : seeds) s = seeder();

  util::parallel_for_chunked(
      0, injections, workers,
      [&](std::size_t worker, std::size_t lo, std::size_t hi) {
        auto replica = golden.replicate();
        util::Rng rng{seeds[worker]};
        for (std::size_t i = lo; i < hi; ++i) {
          const fault::FaultMask mask = replica->sample_prior_mask(p, rng);
          outcomes[worker].push_back(replica->evaluate_mask(mask));
        }
      });

  QuantFiResult result;
  util::SampleSet errors;
  util::RunningStats dev, det, flips;
  for (const auto& chunk : outcomes) {
    for (const auto& o : chunk) {
      errors.add(o.classification_error);
      dev.add(o.deviation);
      det.add(o.detected);
      flips.add(static_cast<double>(o.flipped_bits));
    }
  }
  result.injections = errors.count();
  result.mean_error = errors.mean();
  result.q05 = errors.quantile(0.05);
  result.q95 = errors.quantile(0.95);
  result.mean_deviation = dev.mean();
  result.mean_detected = det.mean();
  result.mean_flips = flips.mean();
  return result;
}

}  // namespace bdlfi::quant
