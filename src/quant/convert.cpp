#include "quant/convert.h"

#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/dropout.h"
#include "nn/layers.h"
#include "nn/resblock.h"
#include "util/check.h"

namespace bdlfi::quant {

namespace {

std::unique_ptr<QuantConv2d> quantize_conv(nn::Conv2d& conv,
                                           const QuantizeOptions& options) {
  return std::make_unique<QuantConv2d>(conv.weight(), conv.bias(),
                                       conv.spec(), options.per_channel);
}

std::unique_ptr<Layer> quantize_layer(Layer& layer,
                                      const QuantizeOptions& options) {
  if (auto* dense = dynamic_cast<nn::Dense*>(&layer)) {
    return std::make_unique<QuantDense>(dense->weight(), dense->bias(),
                                        options.per_channel);
  }
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
    return quantize_conv(*conv, options);
  }
  if (auto* block = dynamic_cast<nn::BasicBlock*>(&layer)) {
    std::unique_ptr<QuantConv2d> proj;
    std::unique_ptr<Layer> proj_bn;
    if (block->has_projection()) {
      proj = quantize_conv(*block->proj_conv(), options);
      proj_bn = block->proj_bn()->clone();
    }
    return std::make_unique<QuantBasicBlock>(
        quantize_conv(block->conv1(), options), block->bn1().clone(),
        quantize_conv(block->conv2(), options), block->bn2().clone(),
        std::move(proj), std::move(proj_bn));
  }
  // Stateless / normalization layers carry over unchanged. Restrict to the
  // kinds we know are weight-free so silent mishandling is impossible.
  const std::string kind = layer.kind();
  const bool passthrough = kind == "relu" || kind == "flatten" ||
                           kind == "maxpool" || kind == "avgpool" ||
                           kind == "bn" || kind == "dropout";
  BDLFI_CHECK_MSG(passthrough, "quantize_network: unsupported layer kind");
  return layer.clone();
}

}  // namespace

nn::Network quantize_network(const nn::Network& golden,
                             const QuantizeOptions& options) {
  // Clone first: quantize_layer reads weights through non-const accessors.
  nn::Network scratch = golden.clone();
  nn::Network out;
  for (std::size_t i = 0; i < scratch.num_layers(); ++i) {
    out.add(scratch.layer_name(i),
            quantize_layer(scratch.layer(i), options));
  }
  return out;
}

std::vector<QuantBufferRef> collect_quant_buffers(nn::Network& net) {
  std::vector<QuantBufferRef> refs;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const std::string prefix = net.layer_name(i) + ".";
    if (auto* dense = dynamic_cast<QuantDense*>(&net.layer(i))) {
      dense->collect_quant_buffers(prefix, refs);
    } else if (auto* conv = dynamic_cast<QuantConv2d*>(&net.layer(i))) {
      conv->collect_quant_buffers(prefix, refs);
    } else if (auto* block = dynamic_cast<QuantBasicBlock*>(&net.layer(i))) {
      block->collect_quant_buffers(prefix, refs);
    }
  }
  return refs;
}

}  // namespace bdlfi::quant
