// Post-training affine quantization to int8.
//
// The paper targets "embedded accelerator platforms" (§I); deployed DNNs on
// such platforms usually hold weights as int8, and the fault surface is the
// 8-bit word — no exponent field, so a flipped bit moves a weight by at most
// 2^7 quantization steps instead of 2^96 in magnitude. The quant library lets
// BDLFI campaigns quantify exactly how much resilience that representation
// buys (bench/tab_quantized).
//
// Scheme: per-tensor symmetric affine, q = clamp(round(x / scale), -127, 127)
// with zero_point fixed at 0 (symmetric keeps the XOR-mask fault semantics
// simple and matches common accelerator weight formats).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bdlfi::quant {

struct QuantParams {
  float scale = 1.0f;  // dequantized = scale * q

  friend bool operator==(const QuantParams&, const QuantParams&) = default;
};

/// Chooses the symmetric scale covering max |x| of the data (127 steps).
QuantParams calibrate_symmetric(std::span<const float> values);

inline std::int8_t quantize_value(float x, const QuantParams& params) {
  const float q = x / params.scale;
  const float rounded = q >= 0.0f ? q + 0.5f : q - 0.5f;
  const auto clamped =
      rounded > 127.0f ? 127.0f : (rounded < -127.0f ? -127.0f : rounded);
  return static_cast<std::int8_t>(clamped);
}

inline float dequantize_value(std::int8_t q, const QuantParams& params) {
  return params.scale * static_cast<float>(q);
}

/// Quantizes a whole buffer; returns the int8 codes.
std::vector<std::int8_t> quantize_buffer(std::span<const float> values,
                                         const QuantParams& params);

/// Dequantizes into `out` (must be the same length).
void dequantize_buffer(std::span<const std::int8_t> codes,
                       const QuantParams& params, std::span<float> out);

/// Max absolute round-trip error of symmetric quantization = scale / 2.
inline float max_roundtrip_error(const QuantParams& params) {
  return params.scale * 0.5f;
}

}  // namespace bdlfi::quant
