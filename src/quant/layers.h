// Quantized layers: drop-in nn::Layer implementations whose weights live as
// int8 codes (the accelerator's fault surface) and are dequantized on the fly
// for the float compute path. Biases stay float (they typically live in
// wider accumulator registers on real accelerators).
//
// Because these are ordinary nn::Layer subclasses, the whole existing stack —
// Network, cloning, checkpoints of float params, activation hooks, campaign
// plumbing — works unchanged; only the fault space differs (see
// quant/space.h, which addresses the int8 words).
#pragma once

#include "nn/layer.h"
#include "quant/quantize.h"
#include "tensor/ops.h"

namespace bdlfi::quant {

using nn::Layer;
using nn::ParamRef;
using tensor::Shape;
using tensor::Tensor;

/// Reference to one int8 weight buffer of a quantized layer, used by the
/// quantized injection space.
struct QuantBufferRef {
  std::string name;
  std::vector<std::int8_t>* codes = nullptr;
  QuantParams params;
};

/// Dense layer with int8 weights: y = x · dequant(Wq)^T + b.
class QuantDense : public Layer {
 public:
  /// Quantizes the given float weights. Per-tensor symmetric calibration by
  /// default; per_channel = true calibrates one scale per output row, which
  /// markedly tightens the round-trip error when rows differ in magnitude.
  QuantDense(const Tensor& weight, const Tensor& bias,
             bool per_channel = false);

  std::string kind() const override { return "qdense"; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;

  void collect_quant_buffers(const std::string& prefix,
                             std::vector<QuantBufferRef>& out);

  /// Scale of output channel `c` (channel 0 in per-tensor mode).
  const QuantParams& weight_params(std::int64_t c = 0) const {
    return channel_params_.at(
        static_cast<std::size_t>(per_channel_ ? c : 0));
  }
  bool per_channel() const { return per_channel_; }
  /// Current (possibly fault-corrupted) dequantized weights.
  Tensor dequantized_weight() const;

 private:
  std::int64_t in_, out_;
  bool per_channel_;
  std::vector<std::int8_t> weight_codes_;  // [out, in] row-major
  std::vector<QuantParams> channel_params_;  // 1 entry per-tensor mode
  Tensor bias_;  // float, may be empty
};

/// Conv2d with int8 weights (OIHW codes); per_channel scales per output
/// channel (the OIHW 'O' axis).
class QuantConv2d : public Layer {
 public:
  QuantConv2d(const Tensor& weight, const Tensor& bias,
              const tensor::Conv2dSpec& spec, bool per_channel = false);

  std::string kind() const override { return "qconv"; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;

  void collect_quant_buffers(const std::string& prefix,
                             std::vector<QuantBufferRef>& out);

  const QuantParams& weight_params(std::int64_t c = 0) const {
    return channel_params_.at(
        static_cast<std::size_t>(per_channel_ ? c : 0));
  }
  bool per_channel() const { return per_channel_; }
  Tensor dequantized_weight() const;

 private:
  Shape weight_shape_;
  tensor::Conv2dSpec spec_;
  bool per_channel_;
  std::vector<std::int8_t> weight_codes_;
  std::vector<QuantParams> channel_params_;
  Tensor bias_;
};

/// Inference-only quantized ResNet basic block: the float BasicBlock's
/// topology with QuantConv2d convolutions and cloned (float) BatchNorms.
class QuantBasicBlock : public Layer {
 public:
  QuantBasicBlock(std::unique_ptr<QuantConv2d> conv1,
                  std::unique_ptr<Layer> bn1,
                  std::unique_ptr<QuantConv2d> conv2,
                  std::unique_ptr<Layer> bn2,
                  std::unique_ptr<QuantConv2d> proj_conv,  // nullable
                  std::unique_ptr<Layer> proj_bn);         // nullable

  std::string kind() const override { return "qblock"; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;

  void collect_quant_buffers(const std::string& prefix,
                             std::vector<QuantBufferRef>& out);

 private:
  std::unique_ptr<QuantConv2d> conv1_, conv2_, proj_conv_;
  std::unique_ptr<Layer> bn1_, bn2_, proj_bn_;
};

}  // namespace bdlfi::quant
