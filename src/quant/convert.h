// Post-training quantization of a trained float network.
//
// Walks a trained nn::Network and produces an inference-only twin where every
// Dense / Conv2d / BasicBlock carries int8 weight codes (per-tensor symmetric
// calibration over the trained values); BatchNorm, activations and pooling
// are cloned as-is. The twin preserves layer names, so campaign tooling and
// per-layer reports line up with the float original.
#pragma once

#include "nn/network.h"
#include "quant/layers.h"

namespace bdlfi::quant {

struct QuantizeOptions {
  /// One scale per output channel (tighter round-trip error) instead of one
  /// per tensor.
  bool per_channel = false;
};

/// Converts `golden` (a trained float network) into its int8-weight twin.
/// Aborts on layers the converter does not recognize.
nn::Network quantize_network(const nn::Network& golden,
                             const QuantizeOptions& options = {});

/// Enumerates every int8 weight buffer of a quantized network, in a stable
/// order (layer order, then intra-layer order). Pointers are valid while the
/// network lives and is not structurally modified.
std::vector<QuantBufferRef> collect_quant_buffers(nn::Network& net);

}  // namespace bdlfi::quant
