#include "obs/reporter.h"

#include <algorithm>
#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/json.h"
#include "obs/metrics.h"

namespace bdlfi::obs {

namespace {

std::uint64_t wall_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t process_id() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

/// Round wall-clock histogram backing the dashboard's latency panel; bounds
/// cover sub-100ms smoke rounds through multi-minute full-scale rounds.
Histogram& round_seconds_histogram() {
  static Histogram& h = MetricsRegistry::global().histogram(
      "campaign.round_seconds",
      {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0});
  return h;
}

/// "mm:ss" / "h:mm:ss" for the progress line's ETA column.
std::string format_eta(double seconds) {
  if (seconds < 0.0) return "--:--";
  const auto total = static_cast<std::uint64_t>(seconds + 0.5);
  char buf[32];
  if (total >= 3600) {
    std::snprintf(buf, sizeof(buf), "%llu:%02llu:%02llu",
                  static_cast<unsigned long long>(total / 3600),
                  static_cast<unsigned long long>((total / 60) % 60),
                  static_cast<unsigned long long>(total % 60));
  } else {
    std::snprintf(buf, sizeof(buf), "%02llu:%02llu",
                  static_cast<unsigned long long>(total / 60),
                  static_cast<unsigned long long>(total % 60));
  }
  return buf;
}

}  // namespace

CampaignReporter::CampaignReporter(Options options)
    : options_(std::move(options)) {
  if (!options_.metrics_path.empty()) {
    sink_ = std::fopen(options_.metrics_path.c_str(), "w");
    if (sink_ == nullptr) {
      std::fprintf(stderr, "[obs] cannot open %s for writing; JSONL disabled\n",
                   options_.metrics_path.c_str());
    }
  }
}

CampaignReporter::~CampaignReporter() {
  if (sink_ != nullptr) std::fclose(sink_);
}

void CampaignReporter::on_round(RoundCallback cb) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_.push_back(std::move(cb));
}

void CampaignReporter::set_backend(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.backend = backend;
}

void CampaignReporter::set_campaign_id(const std::string& campaign_id) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.campaign_id = campaign_id;
}

std::string CampaignReporter::campaign_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.campaign_id;
}

void CampaignReporter::write_line(const std::string& json) {
  if (sink_ == nullptr) return;
  // One fwrite for line + terminator: a crash between separate writes must
  // not leave a newline-less (and thus unparseable) tail in the JSONL file.
  std::string line;
  line.reserve(json.size() + 1);
  line = json;
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), sink_);
  std::fflush(sink_);  // live consumers tail the file
#if defined(__unix__) || defined(__APPLE__)
  if (options_.fsync) ::fsync(fileno(sink_));
#endif
}

void CampaignReporter::stamp_common(JsonWriter& w, const char* event_name) {
  if (options_.campaign_id.empty()) {
    // No config fingerprint was provided: derive a per-stream id stable for
    // the life of this reporter. pid + wall-clock keeps two processes (or
    // two sequential runs) writing the same label/backend distinct.
    const std::string seed = options_.label + '|' + options_.backend + '|' +
                             std::to_string(process_id()) + '|' +
                             std::to_string(wall_ms());
    options_.campaign_id = hex64(fnv1a64(seed));
  }
  w.field("event", event_name);
  w.field("label", options_.label);
  w.field("campaign_id", options_.campaign_id);
  w.field("seq", ++seq_);
}

void CampaignReporter::begin(double p, std::size_t chains,
                             std::size_t samples_per_round,
                             std::size_t max_rounds) {
  std::lock_guard<std::mutex> lock(mu_);
  rounds_budget_ = max_rounds;
  JsonWriter w;
  w.begin_object();
  stamp_common(w, "campaign_begin");
  if (!options_.backend.empty()) w.field("backend", options_.backend);
  if (!options_.subject.empty()) w.field("subject", options_.subject);
  w.field("p", p);
  w.field("chains", chains);
  w.field("samples_per_round", samples_per_round);
  w.field("max_rounds", max_rounds);
  w.field("ts_ms", wall_ms());
  w.end_object();
  write_line(w.str());
  if (options_.progress) {
    std::fprintf(stderr, "[%s] campaign begin: p=%.3g, %zu chains x %zu "
                 "samples/round\n",
                 options_.label.c_str(), p, chains, samples_per_round);
  }
}

void CampaignReporter::round(const RoundEvent& event) {
  std::vector<RoundCallback> subscribers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
    if (event.rounds_budget != 0) rounds_budget_ = event.rounds_budget;
    // Smooth throughput/duration with the aggregator's filter so the live
    // line and any dashboard built over the JSONL agree.
    const double evals_ewma = evals_ewma_.update(event.evals_per_sec);
    if (event.round_seconds > 0.0) {
      round_secs_ewma_.update(event.round_seconds);
      round_seconds_histogram().observe(event.round_seconds);
    }
    double eta_s = -1.0;  // unknown: no budget or no timing yet
    if (rounds_budget_ > 0 && round_secs_ewma_.seeded()) {
      const std::size_t remaining =
          rounds_budget_ > event.round ? rounds_budget_ - event.round : 0;
      eta_s = static_cast<double>(remaining) * round_secs_ewma_.value();
    }
    JsonWriter w;
    w.begin_object();
    stamp_common(w, "round");
    w.field("round", event.round);
    w.field("rounds_budget", rounds_budget_);
    w.field("p", event.p);
    w.field("samples", event.cumulative_samples);
    w.field("mean_error", event.mean_error);
    w.field("rhat", event.rhat);
    w.field("ess", event.ess);
    w.field("acceptance_rate", event.acceptance_rate);
    w.field("network_evals", event.network_evals);
    w.field("evals_per_sec", event.evals_per_sec);
    w.field("evals_per_sec_ewma", evals_ewma);
    w.field("eta_s", eta_s);
    w.field("cache_hit_rate", event.cache_hit_rate);
    w.field("detection_coverage", event.detection_coverage);
    w.field("sdc_rate", event.sdc_rate);
    w.field("outcome_masked", event.outcome_masked);
    w.field("outcome_sdc", event.outcome_sdc);
    w.field("outcome_detected", event.outcome_detected);
    w.field("outcome_corrected", event.outcome_corrected);
    w.field("seconds", event.round_seconds);
    w.field("chains_quarantined", event.chains_quarantined);
    w.field("degraded", event.degraded);
    w.field("ts_ms", wall_ms());
    w.end_object();
    write_line(w.str());
    if (options_.progress) {
      char degraded_tail[48] = "";
      if (event.degraded) {
        std::snprintf(degraded_tail, sizeof(degraded_tail), " quarantined=%zu",
                      event.chains_quarantined);
      }
      std::fprintf(stderr,
                   "[%s] round %zu: p=%.3g samples=%zu mean=%.3f%% "
                   "rhat=%.4f ess=%.0f accept=%.2f evals/s=%.0f "
                   "eta=%s cache-hit=%.0f%% det-cov=%.0f%% sdc=%.0f%%%s\n",
                   options_.label.c_str(), event.round, event.p,
                   event.cumulative_samples, event.mean_error, event.rhat,
                   event.ess, event.acceptance_rate, evals_ewma,
                   format_eta(eta_s).c_str(), 100.0 * event.cache_hit_rate,
                   100.0 * event.detection_coverage, 100.0 * event.sdc_rate,
                   degraded_tail);
    }
    subscribers = subscribers_;
  }
  // Subscribers run outside the lock: they may re-enter the reporter.
  for (const auto& cb : subscribers) cb(event);
}

void CampaignReporter::end(bool converged, std::size_t rounds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    JsonWriter w;
    w.begin_object();
    stamp_common(w, "campaign_end");
    w.field("converged", converged);
    w.field("rounds", rounds);
    w.field("ts_ms", wall_ms());
    w.end_object();
    write_line(w.str());
    if (options_.progress) {
      std::fprintf(stderr, "[%s] campaign %s after %zu rounds\n",
                   options_.label.c_str(),
                   converged ? "COMPLETE" : "NOT CONVERGED", rounds);
    }
  }
  metrics_event();
}

void CampaignReporter::metrics_event() {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  stamp_common(w, "metrics");
  if (!options_.backend.empty()) w.field("backend", options_.backend);
  w.key("registry");
  // Splice the registry's own JSON object in as the value.
  std::string line = w.str();
  line += MetricsRegistry::global().to_json();
  line += ",\"ts_ms\":" + std::to_string(wall_ms()) + "}";
  write_line(line);
}

void CampaignReporter::chain_health(const ChainHealthEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  stamp_common(w, "chain_health");
  w.field("round", event.round);
  w.field("chain", event.chain);
  w.field("status", event.status);
  w.field("reason", event.reason);
  w.field("retries", event.retries);
  w.field("ts_ms", wall_ms());
  w.end_object();
  write_line(w.str());
  if (options_.progress) {
    std::fprintf(stderr, "[%s] chain %zu %s at round %zu (%s, %zu retries)\n",
                 options_.label.c_str(), event.chain, event.status.c_str(),
                 event.round, event.reason.c_str(), event.retries);
  }
}

void CampaignReporter::checkpoint_saved(std::size_t round,
                                        const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  stamp_common(w, "checkpoint");
  w.field("round", round);
  w.field("path", path);
  w.field("ts_ms", wall_ms());
  w.end_object();
  write_line(w.str());
  if (options_.progress) {
    std::fprintf(stderr, "[%s] checkpoint saved: %s (round %zu)\n",
                 options_.label.c_str(), path.c_str(), round);
  }
}

RoundCallback CampaignReporter::hook() {
  return [this](const RoundEvent& event) { round(event); };
}

ChainHealthCallback CampaignReporter::health_hook() {
  return [this](const ChainHealthEvent& event) { chain_health(event); };
}

}  // namespace bdlfi::obs
