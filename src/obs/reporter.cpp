#include "obs/reporter.h"

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/json.h"
#include "obs/metrics.h"

namespace bdlfi::obs {

namespace {

std::uint64_t wall_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

CampaignReporter::CampaignReporter(Options options)
    : options_(std::move(options)) {
  if (!options_.metrics_path.empty()) {
    sink_ = std::fopen(options_.metrics_path.c_str(), "w");
    if (sink_ == nullptr) {
      std::fprintf(stderr, "[obs] cannot open %s for writing; JSONL disabled\n",
                   options_.metrics_path.c_str());
    }
  }
}

CampaignReporter::~CampaignReporter() {
  if (sink_ != nullptr) std::fclose(sink_);
}

void CampaignReporter::on_round(RoundCallback cb) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_.push_back(std::move(cb));
}

void CampaignReporter::set_backend(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.backend = backend;
}

void CampaignReporter::write_line(const std::string& json) {
  if (sink_ == nullptr) return;
  // One fwrite for line + terminator: a crash between separate writes must
  // not leave a newline-less (and thus unparseable) tail in the JSONL file.
  std::string line;
  line.reserve(json.size() + 1);
  line = json;
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), sink_);
  std::fflush(sink_);  // live consumers tail the file
#if defined(__unix__) || defined(__APPLE__)
  if (options_.fsync) ::fsync(fileno(sink_));
#endif
}

void CampaignReporter::begin(double p, std::size_t chains,
                             std::size_t samples_per_round) {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.field("event", "campaign_begin");
  w.field("label", options_.label);
  if (!options_.backend.empty()) w.field("backend", options_.backend);
  w.field("p", p);
  w.field("chains", chains);
  w.field("samples_per_round", samples_per_round);
  w.field("ts_ms", wall_ms());
  w.end_object();
  write_line(w.str());
  if (options_.progress) {
    std::fprintf(stderr, "[%s] campaign begin: p=%.3g, %zu chains x %zu "
                 "samples/round\n",
                 options_.label.c_str(), p, chains, samples_per_round);
  }
}

void CampaignReporter::round(const RoundEvent& event) {
  std::vector<RoundCallback> subscribers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
    JsonWriter w;
    w.begin_object();
    w.field("event", "round");
    w.field("label", options_.label);
    w.field("round", event.round);
    w.field("p", event.p);
    w.field("samples", event.cumulative_samples);
    w.field("mean_error", event.mean_error);
    w.field("rhat", event.rhat);
    w.field("ess", event.ess);
    w.field("acceptance_rate", event.acceptance_rate);
    w.field("network_evals", event.network_evals);
    w.field("evals_per_sec", event.evals_per_sec);
    w.field("cache_hit_rate", event.cache_hit_rate);
    w.field("detection_coverage", event.detection_coverage);
    w.field("sdc_rate", event.sdc_rate);
    w.field("seconds", event.round_seconds);
    w.field("chains_quarantined", event.chains_quarantined);
    w.field("degraded", event.degraded);
    w.field("ts_ms", wall_ms());
    w.end_object();
    write_line(w.str());
    if (options_.progress) {
      char degraded_tail[48] = "";
      if (event.degraded) {
        std::snprintf(degraded_tail, sizeof(degraded_tail), " quarantined=%zu",
                      event.chains_quarantined);
      }
      std::fprintf(stderr,
                   "[%s] round %zu: p=%.3g samples=%zu mean=%.3f%% "
                   "rhat=%.4f ess=%.0f accept=%.2f evals/s=%.0f "
                   "cache-hit=%.0f%% det-cov=%.0f%% sdc=%.0f%%%s\n",
                   options_.label.c_str(), event.round, event.p,
                   event.cumulative_samples, event.mean_error, event.rhat,
                   event.ess, event.acceptance_rate, event.evals_per_sec,
                   100.0 * event.cache_hit_rate,
                   100.0 * event.detection_coverage, 100.0 * event.sdc_rate,
                   degraded_tail);
    }
    subscribers = subscribers_;
  }
  // Subscribers run outside the lock: they may re-enter the reporter.
  for (const auto& cb : subscribers) cb(event);
}

void CampaignReporter::end(bool converged, std::size_t rounds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    JsonWriter w;
    w.begin_object();
    w.field("event", "campaign_end");
    w.field("label", options_.label);
    w.field("converged", converged);
    w.field("rounds", rounds);
    w.field("ts_ms", wall_ms());
    w.end_object();
    write_line(w.str());
    if (options_.progress) {
      std::fprintf(stderr, "[%s] campaign %s after %zu rounds\n",
                   options_.label.c_str(),
                   converged ? "COMPLETE" : "NOT CONVERGED", rounds);
    }
  }
  metrics_event();
}

void CampaignReporter::metrics_event() {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.field("event", "metrics");
  w.field("label", options_.label);
  if (!options_.backend.empty()) w.field("backend", options_.backend);
  w.key("registry");
  // Splice the registry's own JSON object in as the value.
  std::string line = w.str();
  line += MetricsRegistry::global().to_json();
  line += ",\"ts_ms\":" + std::to_string(wall_ms()) + "}";
  write_line(line);
}

void CampaignReporter::chain_health(const ChainHealthEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.field("event", "chain_health");
  w.field("label", options_.label);
  w.field("round", event.round);
  w.field("chain", event.chain);
  w.field("status", event.status);
  w.field("reason", event.reason);
  w.field("retries", event.retries);
  w.field("ts_ms", wall_ms());
  w.end_object();
  write_line(w.str());
  if (options_.progress) {
    std::fprintf(stderr, "[%s] chain %zu %s at round %zu (%s, %zu retries)\n",
                 options_.label.c_str(), event.chain, event.status.c_str(),
                 event.round, event.reason.c_str(), event.retries);
  }
}

void CampaignReporter::checkpoint_saved(std::size_t round,
                                        const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.field("event", "checkpoint");
  w.field("label", options_.label);
  w.field("round", round);
  w.field("path", path);
  w.field("ts_ms", wall_ms());
  w.end_object();
  write_line(w.str());
  if (options_.progress) {
    std::fprintf(stderr, "[%s] checkpoint saved: %s (round %zu)\n",
                 options_.label.c_str(), path.c_str(), round);
  }
}

RoundCallback CampaignReporter::hook() {
  return [this](const RoundEvent& event) { round(event); };
}

ChainHealthCallback CampaignReporter::health_hook() {
  return [this](const ChainHealthEvent& event) { chain_health(event); };
}

}  // namespace bdlfi::obs
