#include "obs/trace.h"

#include <cstdio>

#include "obs/json.h"

namespace bdlfi::obs {

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();  // leaky: spans may
  return *recorder;  // still fire from static destructors
}

std::uint64_t TraceRecorder::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  // The shared_ptr keeps the buffer alive in buffers_ after thread exit.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto b = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    b->tid = next_tid_++;
    buffers_.push_back(b);
    return b;
  }();
  return *buffer;
}

void TraceRecorder::record(std::string name, std::uint64_t ts_us,
                           std::uint64_t dur_us) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back({std::move(name), ts_us, dur_us});
}

std::string TraceRecorder::to_chrome_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    for (const TraceEvent& e : buf->events) {
      w.begin_object();
      w.field("name", e.name);
      w.field("cat", "bdlfi");
      w.field("ph", "X");
      w.field("ts", e.ts_us);
      w.field("dur", e.dur_us);
      w.field("pid", std::uint64_t{1});
      w.field("tid", static_cast<std::uint64_t>(buf->tid));
      w.end_object();
    }
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

bool TraceRecorder::write(const std::string& path) const {
  const std::string doc = to_chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool write_ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool close_ok = std::fclose(f) == 0;
  return write_ok && close_ok;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

}  // namespace bdlfi::obs
