#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace bdlfi::obs {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : s_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    auto v = value();
    if (!v.has_value()) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& msg) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = msg + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value() {
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': {
        auto str = string_body();
        if (!str.has_value()) return std::nullopt;
        return JsonValue(std::move(*str));
      }
      case 't':
        if (s_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return JsonValue(true);
        }
        break;
      case 'f':
        if (s_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return JsonValue(false);
        }
        break;
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return JsonValue(nullptr);
        }
        break;
      default:
        return number();
    }
    fail("invalid literal");
    return std::nullopt;
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      fail("invalid number");
      return std::nullopt;
    }
    // JSON forbids leading zeros: "0" is fine, "01" is not.
    const bool leading_zero = s_[pos_] == '0';
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (leading_zero && pos_ - start > (s_[start] == '-' ? 2u : 1u)) {
      fail("leading zero in number");
      return std::nullopt;
    }
    if (consume('.')) {
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("digits required after decimal point");
        return std::nullopt;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("digits required in exponent");
        return std::nullopt;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    return JsonValue(std::atof(s_.substr(start, pos_ - start).c_str()));
  }

  std::optional<std::string> string_body() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("invalid hex digit in \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode (surrogate pairs are passed through individually —
          // good enough for validation; our writers never emit them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape character");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> array() {
    consume('[');
    JsonValue::Array items;
    skip_ws();
    if (consume(']')) return JsonValue(std::move(items));
    for (;;) {
      skip_ws();
      auto v = value();
      if (!v.has_value()) return std::nullopt;
      items.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return JsonValue(std::move(items));
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> object() {
    consume('{');
    JsonValue::Object members;
    skip_ws();
    if (consume('}')) return JsonValue(std::move(members));
    for (;;) {
      skip_ws();
      auto k = string_body();
      if (!k.has_value()) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      skip_ws();
      auto v = value();
      if (!v.has_value()) return std::nullopt;
      members.emplace(std::move(*k), std::move(*v));
      skip_ws();
      if (consume('}')) return JsonValue(std::move(members));
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

std::optional<JsonValue> json_parse(const std::string& text,
                                    std::string* error) {
  return Parser(text, error).run();
}

bool jsonl_valid(const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string err;
    if (!json_parse(line, &err).has_value()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": " + err;
      }
      return false;
    }
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!counts_.empty() && counts_.back() > 0) out_.push_back(',');
  if (!counts_.empty()) ++counts_.back();
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  counts_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  counts_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_.push_back('"');
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::string(const std::string& s) {
  comma();
  out_.push_back('"');
  out_ += json_escape(s);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::number(double d) {
  comma();
  if (!std::isfinite(d)) {
    // JSON has no NaN/Inf; null keeps the document valid and the gap visible.
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::number_exact(double d) {
  comma();
  if (!std::isfinite(d)) {
    out_ += "null";
    return *this;
  }
  // 17 significant digits round-trip any finite double; glibc's strtod is
  // correctly rounded, so parse(print(d)) == d bit-for-bit.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::number(std::uint64_t u) {
  comma();
  out_ += std::to_string(u);
  return *this;
}

JsonWriter& JsonWriter::number(std::int64_t i) {
  comma();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::boolean(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

}  // namespace bdlfi::obs
