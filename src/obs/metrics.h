// Thread-safe metrics registry: named counters, gauges, and fixed-bucket
// histograms shared by every subsystem. Designed for hot loops:
//
//  * registration (name lookup) takes a mutex and is done once, at
//    construction time of the instrumented object — never per increment;
//  * updates are single relaxed atomic RMWs, safe from any thread;
//  * everything is compiled in unconditionally, but call sites guard on
//    obs::enabled() (one relaxed load + branch) so an un-instrumented run
//    pays effectively nothing.
//
// Metric objects live for the process lifetime: reset() zeroes values but
// never invalidates pointers handed out by the registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bdlfi::obs {

/// Master switch for the whole observability layer (metrics + reporter).
/// Default off; CLI/bench front ends flip it when a sink is requested.
bool enabled();
void set_enabled(bool on);

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Relaxed-atomic add (CAS loop); used for occupancy-style +1/-1 updates.
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-boundary histogram: bucket i counts observations <= bounds[i], the
/// last (implicit) bucket counts the overflow. Boundaries are immutable after
/// registration, so observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the q-th observation. The first bucket interpolates from
  /// min(0, bound) and the overflow bucket clamps to the last bound — the
  /// Prometheus histogram_quantile convention. 0 on an empty histogram.
  double quantile(double q) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::deque<std::atomic<std::uint64_t>> buckets_;  // deque: atomics can't move
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time view of one metric, for export.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;  // counter/gauge value; histogram sum
  std::uint64_t count = 0;  // histogram observation count
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  // Interpolated quantile estimates (histograms only; see
  // Histogram::quantile). Exported into the `metrics` JSONL event so latency
  // panels need no bucket math downstream.
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

class MetricsRegistry {
 public:
  /// Process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& global();

  /// Get-or-create by name. A name registered as one kind cannot be re-used
  /// as another (checked). Returned references stay valid forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Sorted-by-name snapshot of every registered metric.
  std::vector<MetricSnapshot> snapshot() const;

  /// One JSON object: {"metric.name": value, ..., "hist.name": {...}}.
  std::string to_json() const;

  /// Zero every metric (registrations survive — pointers stay valid).
  void reset();

 private:
  mutable std::mutex mu_;
  // deques give pointer stability under growth.
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
};

}  // namespace bdlfi::obs
