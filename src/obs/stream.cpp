#include "obs/stream.h"

#include <cstdio>

namespace bdlfi::obs {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::size_t JsonlTailReader::poll(std::vector<JsonValue>* out) {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return 0;  // not created yet (or deleted): nothing new
  std::size_t appended = 0;
  do {
    if (std::fseek(f, 0, SEEK_END) != 0) break;
    const long end = std::ftell(f);
    if (end < 0) break;
    const auto size = static_cast<std::uint64_t>(end);
    if (size < offset_) {
      // The file shrank: a new writer truncated and restarted it. The old
      // offset points into bytes that no longer exist, so start over.
      offset_ = 0;
      ++truncations_;
    }
    if (size == offset_) break;
    if (std::fseek(f, static_cast<long>(offset_), SEEK_SET) != 0) break;
    std::string buf(static_cast<std::size_t>(size - offset_), '\0');
    buf.resize(std::fread(buf.data(), 1, buf.size(), f));

    std::size_t pos = 0;
    std::size_t consumed = 0;
    while (true) {
      const std::size_t nl = buf.find('\n', pos);
      if (nl == std::string::npos) break;  // torn tail: leave for next poll
      std::string line = buf.substr(pos, nl - pos);
      pos = nl + 1;
      consumed = pos;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      ++lines_read_;
      auto doc = json_parse(line);
      if (!doc.has_value()) {
        ++parse_errors_;
        continue;
      }
      if (out != nullptr) out->push_back(std::move(*doc));
      ++appended;
    }
    offset_ += consumed;
  } while (false);
  std::fclose(f);
  return appended;
}

}  // namespace bdlfi::obs
