// Incremental JSONL stream consumption for campaign observability.
//
// A CampaignReporter appends whole JSONL lines (one fwrite + flush each) to
// its metrics file; this module is the read side: JsonlTailReader follows
// such a file like `tail -f`, tolerating everything a crashed or still-running
// writer can leave behind — a torn (newline-less) trailing line, a file that
// does not exist yet, a file truncated and restarted by a new writer. Each
// complete line is parsed with the strict obs parser; a reader never throws
// and never yields a partial event.
//
// Ewma lives here because the reporter's --progress line and the
// EventAggregator (obs/aggregate.h) must smooth evals/sec and round seconds
// with the *same* filter, or the live line and the dashboard disagree.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace bdlfi::obs {

/// Exponentially weighted moving average. The first update seeds the value;
/// later updates blend with kDefaultAlpha (or a custom alpha in (0, 1]).
class Ewma {
 public:
  /// Smoothing factor shared by the reporter's progress line and the
  /// aggregator: heavy enough to damp per-round jitter, light enough that a
  /// throughput change shows within ~3 rounds.
  static constexpr double kDefaultAlpha = 0.3;

  Ewma() = default;
  explicit Ewma(double alpha) : alpha_(alpha) {}

  double update(double x) {
    value_ = seeded_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    seeded_ = true;
    return value_;
  }
  double value() const { return value_; }
  bool seeded() const { return seeded_; }
  void reset() { seeded_ = false; value_ = 0.0; }

 private:
  double alpha_ = kDefaultAlpha;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// FNV-1a over bytes; the observability layer's standard cheap fingerprint
/// (campaign ids, bench config fingerprints).
std::uint64_t fnv1a64(std::string_view bytes);

/// 16 lowercase hex digits, the on-the-wire form of every u64 fingerprint.
std::string hex64(std::uint64_t v);

/// Tail-follows one JSONL file by byte offset.
///
/// poll() reads everything appended since the previous poll, splits it on
/// '\n', and parses each complete line. A trailing fragment without a
/// terminator is *not* consumed: the offset stays at the fragment's first
/// byte, so once the writer finishes the line (or a recovered writer rewrites
/// it) the next poll picks it up whole. The file is opened per poll and never
/// kept open, so the reader survives writer crashes, rotation, and deletion.
class JsonlTailReader {
 public:
  explicit JsonlTailReader(std::string path) : path_(std::move(path)) {}

  /// Appends every newly completed event to `out`; returns how many were
  /// appended. Malformed complete lines are counted and skipped, blank lines
  /// are skipped silently. Never throws.
  std::size_t poll(std::vector<JsonValue>* out);

  /// Next unread byte. Points at the start of any pending torn line.
  std::uint64_t offset() const { return offset_; }
  /// Non-blank complete lines seen (parsed or malformed).
  std::size_t lines_read() const { return lines_read_; }
  /// Complete lines the strict parser rejected.
  std::size_t parse_errors() const { return parse_errors_; }
  /// Times the file shrank below the read offset (writer restarted): the
  /// reader resets to byte 0 and re-reads the new content.
  std::size_t truncations() const { return truncations_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;
  std::size_t lines_read_ = 0;
  std::size_t parse_errors_ = 0;
  std::size_t truncations_ = 0;
};

}  // namespace bdlfi::obs
