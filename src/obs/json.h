// Minimal JSON support for the observability layer: a writer that produces
// the metric/trace/event documents, and a strict recursive-descent parser
// used to validate them (tools/check_json, obs tests). Deliberately tiny —
// no external dependency, no DOM mutation API, just build-and-serialize and
// parse-and-inspect.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace bdlfi::obs {

/// Parsed JSON document node.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  // std::map keeps member iteration deterministic (sorted), which the tests
  // rely on when re-serializing.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(Array a) : v_(std::move(a)) {}
  JsonValue(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Strict parse of a complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error). Returns nullopt with a human-readable
/// message in `error` (if given) on malformed input.
std::optional<JsonValue> json_parse(const std::string& text,
                                    std::string* error = nullptr);

/// True when every non-empty line of `text` parses as a JSON document — the
/// JSONL contract of the metrics event stream.
bool jsonl_valid(const std::string& text, std::string* error = nullptr);

/// JSON string escaping (quotes not included).
std::string json_escape(const std::string& s);

/// Streaming writer for objects/arrays; keys are emitted in call order.
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("p").number(1e-3);
///   w.key("layers").begin_array(); ... w.end_array();
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& string(const std::string& s);
  JsonWriter& number(double d);
  /// Round-trip-exact double (%.17g): a strict re-parse returns the identical
  /// bit pattern. Checkpoints need this; number(double) keeps the compact
  /// %.12g for human-facing streams. Non-finite still serializes as null.
  JsonWriter& number_exact(double d);
  JsonWriter& number(std::uint64_t u);
  JsonWriter& number(std::int64_t i);
  JsonWriter& boolean(bool b);
  JsonWriter& null();
  /// Shorthand: key(k) followed by the value.
  JsonWriter& field(const std::string& k, const std::string& v) {
    return key(k).string(v);
  }
  JsonWriter& field(const std::string& k, const char* v) {
    return key(k).string(v);
  }
  JsonWriter& field(const std::string& k, double v) { return key(k).number(v); }
  JsonWriter& field_exact(const std::string& k, double v) {
    return key(k).number_exact(v);
  }
  JsonWriter& field(const std::string& k, bool v) { return key(k).boolean(v); }
  JsonWriter& field(const std::string& k, std::uint64_t v) {
    return key(k).number(v);
  }
  JsonWriter& field(const std::string& k, std::int64_t v) {
    return key(k).number(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma();
  std::string out_;
  // One entry per open container: count of values already emitted in it.
  std::vector<std::size_t> counts_{0};
  bool after_key_ = false;
};

}  // namespace bdlfi::obs
