// CampaignReporter: live MCMC campaign health. The runner invokes a round
// hook after every pooled round; the reporter turns those into
//
//  * an optional human progress line per round on stderr
//    (acceptance, R-hat, ESS, evals/sec, cache hit rate), and
//  * an optional JSONL event stream (one JSON object per line) with the
//    schema documented in DESIGN.md §6: campaign_begin / round /
//    campaign_end / metrics events.
//
// The reporter is deliberately decoupled from the mcmc types: the runner
// fills a plain RoundEvent, so obs stays at the bottom of the dependency
// stack and anything (benches, examples, future shard workers) can publish.
#pragma once

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace bdlfi::obs {

/// Health of one campaign round (cumulative unless noted).
struct RoundEvent {
  std::size_t round = 0;  // 1-based
  double p = 0.0;         // flip probability of the campaign
  std::size_t cumulative_samples = 0;
  double mean_error = 0.0;  // pooled running estimate, %
  double rhat = 0.0;
  double ess = 0.0;
  double acceptance_rate = 0.0;  // mean over chains, this round
  std::size_t network_evals = 0;  // cumulative forward passes
  double evals_per_sec = 0.0;     // this round's throughput
  /// truncated / (truncated + full) over the campaign so far.
  double cache_hit_rate = 0.0;
  double round_seconds = 0.0;
  /// Fault-outcome taxonomy over the campaign so far: of the retained samples
  /// where the fault mattered, the fraction a detector caught (ABFT checksum
  /// or non-finite logits), and the fraction of all samples ending in silent
  /// data corruption.
  double detection_coverage = 0.0;
  double sdc_rate = 0.0;
  /// Chains excluded from pooling by the supervisor so far.
  std::size_t chains_quarantined = 0;
  /// True once any chain has been quarantined: pooled diagnostics cover the
  /// survivors only.
  bool degraded = false;
};

using RoundCallback = std::function<void(const RoundEvent&)>;

/// A chain-supervision incident: a retry or a quarantine decision.
struct ChainHealthEvent {
  std::size_t round = 0;  // 1-based round during which it happened
  std::size_t chain = 0;
  std::string status;     // "retrying" | "quarantined"
  std::string reason;     // "nan_divergence" | "timeout" | ...
  std::size_t retries = 0;  // failed attempts by this chain so far
};

using ChainHealthCallback = std::function<void(const ChainHealthEvent&)>;

class CampaignReporter {
 public:
  struct Options {
    /// Print a per-round progress line to stderr.
    bool progress = false;
    /// Append JSONL events to this file ("" disables). The file is opened on
    /// the first event and truncated.
    std::string metrics_path;
    /// Tag carried in every event ("sweep", "complete", a bench name, ...).
    std::string label = "campaign";
    /// fsync the JSONL sink after every event. Events are already written as
    /// one atomic fwrite + fflush so a killed run leaves whole lines; fsync
    /// additionally survives power loss, at fdatasync cost per event.
    bool fsync = false;
    /// Active kernel backend name ("" omits the field). obs sits below
    /// tensor in the dependency stack, so callers pass the name in rather
    /// than the reporter querying the backend registry.
    std::string backend;
  };

  explicit CampaignReporter(Options options);
  ~CampaignReporter();

  CampaignReporter(const CampaignReporter&) = delete;
  CampaignReporter& operator=(const CampaignReporter&) = delete;

  /// Additional subscriber invoked on every round event (after the built-in
  /// progress/JSONL handling). Used by examples and tests.
  void on_round(RoundCallback cb);

  /// Records the kernel backend name stamped into campaign_begin / metrics
  /// events. Call before begin(); flag parsing resolves the backend after
  /// the reporter is constructed, hence a setter rather than an Option only.
  void set_backend(const std::string& backend);

  /// Emits a campaign_begin event.
  void begin(double p, std::size_t chains, std::size_t samples_per_round);

  /// Emits a round event (invoke from the runner's round hook).
  void round(const RoundEvent& event);

  /// Emits a chain_health event (retry / quarantine incident).
  void chain_health(const ChainHealthEvent& event);

  /// Emits a checkpoint event after a successful checkpoint write.
  void checkpoint_saved(std::size_t round, const std::string& path);

  /// Emits a campaign_end event plus a final metrics-registry snapshot.
  void end(bool converged, std::size_t rounds);

  /// Emits just a metrics-registry snapshot event (benches call this once at
  /// the end; end() includes it automatically).
  void metrics_event();

  /// Adapter for mcmc::RunnerConfig::round_hook.
  RoundCallback hook();

  /// Adapter for mcmc::RunnerConfig::health_hook.
  ChainHealthCallback health_hook();

  /// Round events seen so far (test/monitoring hook).
  const std::vector<RoundEvent>& events() const { return events_; }

 private:
  void write_line(const std::string& json);

  Options options_;
  std::FILE* sink_ = nullptr;
  std::mutex mu_;
  std::vector<RoundEvent> events_;
  std::vector<RoundCallback> subscribers_;
};

}  // namespace bdlfi::obs
