// CampaignReporter: live MCMC campaign health. The runner invokes a round
// hook after every pooled round; the reporter turns those into
//
//  * an optional human progress line per round on stderr
//    (acceptance, R-hat, ESS, evals/sec, cache hit rate), and
//  * an optional JSONL event stream (one JSON object per line) with the
//    schema documented in DESIGN.md §6: campaign_begin / round /
//    campaign_end / metrics events.
//
// The reporter is deliberately decoupled from the mcmc types: the runner
// fills a plain RoundEvent, so obs stays at the bottom of the dependency
// stack and anything (benches, examples, future shard workers) can publish.
#pragma once

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/stream.h"

namespace bdlfi::obs {

/// Health of one campaign round (cumulative unless noted).
struct RoundEvent {
  std::size_t round = 0;  // 1-based
  double p = 0.0;         // flip probability of the campaign
  std::size_t cumulative_samples = 0;
  double mean_error = 0.0;  // pooled running estimate, %
  double rhat = 0.0;
  double ess = 0.0;
  double acceptance_rate = 0.0;  // mean over chains, this round
  std::size_t network_evals = 0;  // cumulative forward passes
  double evals_per_sec = 0.0;     // this round's throughput
  /// truncated / (truncated + full) over the campaign so far.
  double cache_hit_rate = 0.0;
  double round_seconds = 0.0;
  /// Fault-outcome taxonomy over the campaign so far: of the retained samples
  /// where the fault mattered, the fraction a detector caught (ABFT checksum
  /// or non-finite logits), and the fraction of all samples ending in silent
  /// data corruption.
  double detection_coverage = 0.0;
  double sdc_rate = 0.0;
  /// Chains excluded from pooling by the supervisor so far.
  std::size_t chains_quarantined = 0;
  /// True once any chain has been quarantined: pooled diagnostics cover the
  /// survivors only.
  bool degraded = false;
  /// Cumulative fault-outcome counters over retained samples (the numerators
  /// behind detection_coverage/sdc_rate — the aggregator wants the raw
  /// counts so merged views can re-derive rates).
  std::size_t outcome_masked = 0;
  std::size_t outcome_sdc = 0;
  std::size_t outcome_detected = 0;
  std::size_t outcome_corrected = 0;
  /// The campaign's round budget (completeness criterion max_rounds); 0 for
  /// single-round campaigns, where an ETA is meaningless.
  std::size_t rounds_budget = 0;
};

using RoundCallback = std::function<void(const RoundEvent&)>;

/// A chain-supervision incident: a retry or a quarantine decision.
struct ChainHealthEvent {
  std::size_t round = 0;  // 1-based round during which it happened
  std::size_t chain = 0;
  std::string status;     // "retrying" | "quarantined"
  std::string reason;     // "nan_divergence" | "timeout" | ...
  std::size_t retries = 0;  // failed attempts by this chain so far
};

using ChainHealthCallback = std::function<void(const ChainHealthEvent&)>;

class CampaignReporter {
 public:
  struct Options {
    /// Print a per-round progress line to stderr.
    bool progress = false;
    /// Append JSONL events to this file ("" disables). The file is opened on
    /// the first event and truncated.
    std::string metrics_path;
    /// Tag carried in every event ("sweep", "complete", a bench name, ...).
    std::string label = "campaign";
    /// fsync the JSONL sink after every event. Events are already written as
    /// one atomic fwrite + fflush so a killed run leaves whole lines; fsync
    /// additionally survives power loss, at fdatasync cost per event.
    bool fsync = false;
    /// Active kernel backend name ("" omits the field). obs sits below
    /// tensor in the dependency stack, so callers pass the name in rather
    /// than the reporter querying the backend registry.
    std::string backend;
    /// Stable id stamped into every event — 16 hex digits, derived from the
    /// campaign's config fingerprint by callers that have one (bdlfi
    /// complete). When empty, the reporter derives a per-stream id from
    /// label/backend/pid/time at the first event, so concurrent streams
    /// still merge unambiguously in the aggregator.
    std::string campaign_id;
    /// Subject qualifier carried in campaign_begin (e.g. a --layer name);
    /// "" for whole-network campaigns.
    std::string subject;
  };

  explicit CampaignReporter(Options options);
  ~CampaignReporter();

  CampaignReporter(const CampaignReporter&) = delete;
  CampaignReporter& operator=(const CampaignReporter&) = delete;

  /// Additional subscriber invoked on every round event (after the built-in
  /// progress/JSONL handling). Used by examples and tests.
  void on_round(RoundCallback cb);

  /// Records the kernel backend name stamped into campaign_begin / metrics
  /// events. Call before begin(); flag parsing resolves the backend after
  /// the reporter is constructed, hence a setter rather than an Option only.
  void set_backend(const std::string& backend);

  /// Overrides the auto-derived campaign id with a config-fingerprint-derived
  /// one (16 hex digits). Call before the first event.
  void set_campaign_id(const std::string& campaign_id);

  /// The id stamped into events so far ("" until the first event when no
  /// explicit id was set).
  std::string campaign_id() const;

  /// Emits a campaign_begin event. `max_rounds` is the completeness
  /// criterion's round budget (0 = unknown/single-round), which the progress
  /// line and dashboard turn into completeness % and a worst-case ETA.
  void begin(double p, std::size_t chains, std::size_t samples_per_round,
             std::size_t max_rounds = 0);

  /// Emits a round event (invoke from the runner's round hook).
  void round(const RoundEvent& event);

  /// Emits a chain_health event (retry / quarantine incident).
  void chain_health(const ChainHealthEvent& event);

  /// Emits a checkpoint event after a successful checkpoint write.
  void checkpoint_saved(std::size_t round, const std::string& path);

  /// Emits a campaign_end event plus a final metrics-registry snapshot.
  void end(bool converged, std::size_t rounds);

  /// Emits just a metrics-registry snapshot event (benches call this once at
  /// the end; end() includes it automatically).
  void metrics_event();

  /// Adapter for mcmc::RunnerConfig::round_hook.
  RoundCallback hook();

  /// Adapter for mcmc::RunnerConfig::health_hook.
  ChainHealthCallback health_hook();

  /// Round events seen so far (test/monitoring hook).
  const std::vector<RoundEvent>& events() const { return events_; }

 private:
  void write_line(const std::string& json);
  /// Emits the leading fields shared by every event ("event", "label",
  /// "campaign_id", "seq") and advances the per-stream sequence number.
  /// Caller must hold mu_.
  void stamp_common(JsonWriter& w, const char* event_name);

  Options options_;
  std::FILE* sink_ = nullptr;
  mutable std::mutex mu_;
  std::uint64_t seq_ = 0;  // monotonic per stream, first event gets 1
  std::vector<RoundEvent> events_;
  std::vector<RoundCallback> subscribers_;
  // Smoothed throughput/duration for the progress line and the round event's
  // ewma/eta fields — same Ewma filter the aggregator applies, so the live
  // line and a dashboard over the JSONL agree.
  Ewma evals_ewma_;
  Ewma round_secs_ewma_;
  std::size_t rounds_budget_ = 0;  // from begin(); round events may override
};

}  // namespace bdlfi::obs
