// RAII trace spans feeding per-thread buffers, serialized to the Chrome
// trace-event format (load the output in chrome://tracing or Perfetto).
//
// When tracing is disabled (the default), constructing a TraceSpan is one
// relaxed atomic load and a branch. When enabled, span end appends one event
// to a buffer owned by the recording thread; the only lock taken is that
// buffer's own mutex (uncontended except while a serializer is draining).
// Buffers are kept alive by shared ownership, so threads may exit before the
// trace is written.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bdlfi::obs {

struct TraceEvent {
  std::string name;
  std::uint64_t ts_us = 0;   // since recorder epoch
  std::uint64_t dur_us = 0;  // complete ("ph":"X") event duration
};

class TraceRecorder {
 public:
  /// Process-wide recorder used by TraceSpan.
  static TraceRecorder& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Microseconds since the recorder epoch (process start of use).
  std::uint64_t now_us() const;

  /// Appends a completed span to the calling thread's buffer.
  void record(std::string name, std::uint64_t ts_us, std::uint64_t dur_us);

  /// Chrome trace-event JSON ({"traceEvents": [...]}) over every thread's
  /// events, in arbitrary cross-thread order (the viewer sorts by ts).
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`; false on I/O failure.
  bool write(const std::string& path) const;

  /// Drops all recorded events (buffers stay registered).
  void clear();

  /// Total events currently buffered (test hook).
  std::size_t event_count() const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  TraceRecorder();
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  // guards buffers_ registration/iteration
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 1;
};

/// Times a scope and records it on destruction. `name` must outlive the span
/// (string literals in practice).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    TraceRecorder& rec = TraceRecorder::global();
    if (rec.enabled()) {
      name_ = name;
      start_us_ = rec.now_us();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      TraceRecorder& rec = TraceRecorder::global();
      const std::uint64_t end = rec.now_us();
      rec.record(name_, start_us_, end - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr = tracing was off at entry
  std::uint64_t start_us_ = 0;
};

}  // namespace bdlfi::obs
