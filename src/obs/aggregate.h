// EventAggregator: merges N concurrent campaign JSONL event streams into
// per-campaign live state — the model behind `bdlfi_dash` and the future
// fleet runner's completeness view.
//
// Events are keyed by the `campaign_id` every CampaignReporter stamps
// (config-fingerprint-derived, so two workers extending the same campaign
// merge into one row while unrelated campaigns stay separate). Streams are
// identified by the file they came from; the per-stream monotonic `seq`
// lets the aggregator count dropped or reordered events instead of silently
// mis-merging. Unknown event types are ignored, so old consumers survive new
// producers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/stream.h"

namespace bdlfi::obs {

/// One point of a campaign's convergence trajectory (from a `round` event).
struct TrendPoint {
  std::size_t round = 0;
  double rhat = 0.0;
  double ess = 0.0;
  double mean_error = 0.0;
  double sdc_rate = 0.0;
  std::size_t samples = 0;
};

/// One `checkpoint` event: the campaign's recovery lineage.
struct CheckpointRecord {
  std::size_t round = 0;
  std::string path;
  std::uint64_t ts_ms = 0;
};

/// Latency quantiles of one histogram from the latest `metrics` event.
struct LatencyQuantiles {
  bool present = false;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  std::uint64_t count = 0;
};

/// Merged live state of one campaign.
struct CampaignState {
  std::string campaign_id;  // 16 hex digits (or "label:<label>" fallback)
  std::string label;
  std::string backend;
  std::string subject;  // e.g. a --layer name ("" when whole-network)

  // From campaign_begin (zero until one is seen).
  double p = 0.0;
  std::size_t chains = 0;
  std::size_t samples_per_round = 0;

  // Latest round event.
  std::size_t rounds_seen = 0;
  std::size_t rounds_budget = 0;  // criterion max_rounds (0 = unknown)
  double rhat = 0.0;
  double ess = 0.0;
  double mean_error = 0.0;
  double acceptance_rate = 0.0;
  double cache_hit_rate = 0.0;
  std::size_t samples = 0;
  std::size_t network_evals = 0;
  double detection_coverage = 0.0;
  double sdc_rate = 0.0;
  std::size_t outcome_masked = 0, outcome_sdc = 0;
  std::size_t outcome_detected = 0, outcome_corrected = 0;
  std::size_t chains_quarantined = 0;
  bool degraded = false;

  // Lifecycle.
  bool begun = false;
  bool ended = false;
  bool converged = false;
  std::uint64_t first_ts_ms = 0;
  std::uint64_t last_ts_ms = 0;

  // Health incidents (chain_health events).
  std::size_t retries = 0;
  std::size_t quarantine_events = 0;

  // Smoothed throughput (same filter as the reporter's --progress line).
  Ewma evals_per_sec;
  Ewma round_seconds;

  std::vector<TrendPoint> trend;  // capped at Options::max_trend_points
  std::vector<CheckpointRecord> checkpoints;
  LatencyQuantiles round_latency;  // campaign.round_seconds histogram

  /// Fraction of all retained samples in each outcome class.
  double outcome_total() const {
    return static_cast<double>(outcome_masked + outcome_sdc +
                               outcome_detected + outcome_corrected);
  }

  /// Campaign completeness in [0, 1]: 1 once campaign_end arrived, else the
  /// round budget consumed (an upper bound on remaining work — convergence
  /// usually stops a campaign before its budget), else 0 when the budget is
  /// unknown.
  double completeness() const;

  /// Worst-case seconds to finish: remaining budgeted rounds at the smoothed
  /// round duration. Negative when unknown (no budget / no timing yet).
  double eta_seconds() const;

  /// Least-squares slope of R-hat per round over the sliding trend window
  /// (negative = converging). 0 with fewer than two points.
  double rhat_trend(std::size_t window = 16) const;
};

class EventAggregator {
 public:
  struct Options {
    /// Trajectory points kept per campaign; older points are dropped from
    /// the front (the scalars above always reflect the latest event).
    std::size_t max_trend_points = 1024;
  };

  EventAggregator() = default;
  explicit EventAggregator(Options options) : options_(options) {}

  /// Merges one parsed event. `stream` names the source (file path); seq
  /// continuity is tracked per stream. Non-object or unknown events count as
  /// ignored, never as errors.
  void ingest(const JsonValue& event, const std::string& stream = "");

  /// Convenience: ingest a batch from one stream.
  void ingest_all(const std::vector<JsonValue>& events,
                  const std::string& stream = "");

  /// Campaigns in first-seen order. Pointers stay valid until the next
  /// ingest of a previously unseen campaign id.
  std::vector<const CampaignState*> campaigns() const;
  const CampaignState* find(const std::string& campaign_id) const;

  std::size_t events_seen() const { return events_seen_; }
  std::size_t events_ignored() const { return events_ignored_; }
  /// Per-stream seq discontinuities (lost, duplicated, or reordered events).
  std::size_t seq_gaps() const { return seq_gaps_; }

 private:
  CampaignState& state_for(const JsonValue& event);

  Options options_;
  std::map<std::string, CampaignState> states_;
  std::vector<std::string> order_;  // first-seen campaign ids
  struct StreamCursor {
    bool seen = false;
    std::uint64_t seq = 0;
  };
  std::map<std::string, StreamCursor> streams_;
  std::size_t events_seen_ = 0;
  std::size_t events_ignored_ = 0;
  std::size_t seq_gaps_ = 0;
};

}  // namespace bdlfi::obs
