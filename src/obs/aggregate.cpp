#include "obs/aggregate.h"

#include <algorithm>
#include <cmath>

namespace bdlfi::obs {

namespace {

double num_or(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::size_t count_or(const JsonValue& obj, const char* key,
                     std::size_t fallback) {
  const double d = num_or(obj, key, static_cast<double>(fallback));
  return d < 0.0 ? fallback : static_cast<std::size_t>(d);
}

std::string str_or(const JsonValue& obj, const char* key,
                   const std::string& fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

bool bool_or(const JsonValue& obj, const char* key, bool fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

}  // namespace

double CampaignState::completeness() const {
  if (ended) return 1.0;
  if (rounds_budget == 0) return 0.0;
  return std::min(1.0, static_cast<double>(rounds_seen) /
                           static_cast<double>(rounds_budget));
}

double CampaignState::eta_seconds() const {
  if (ended) return 0.0;
  if (rounds_budget == 0 || !round_seconds.seeded()) return -1.0;
  const std::size_t remaining =
      rounds_budget > rounds_seen ? rounds_budget - rounds_seen : 0;
  return static_cast<double>(remaining) * round_seconds.value();
}

double CampaignState::rhat_trend(std::size_t window) const {
  const std::size_t n = std::min(window, trend.size());
  if (n < 2) return 0.0;
  // Least squares of rhat against round over the last n points.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = trend.size() - n; i < trend.size(); ++i) {
    const double x = static_cast<double>(trend[i].round);
    const double y = trend[i].rhat;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (dn * sxy - sx * sy) / denom;
}

CampaignState& EventAggregator::state_for(const JsonValue& event) {
  // campaign_id is the merge key; pre-campaign_id streams fall back to the
  // label so they still render (as one row per label).
  std::string key = str_or(event, "campaign_id", "");
  if (key.empty()) key = "label:" + str_or(event, "label", "unknown");
  auto [it, inserted] = states_.try_emplace(key);
  if (inserted) {
    it->second.campaign_id = key;
    order_.push_back(key);
  }
  return it->second;
}

void EventAggregator::ingest(const JsonValue& event,
                             const std::string& stream) {
  ++events_seen_;
  if (!event.is_object()) {
    ++events_ignored_;
    return;
  }
  const JsonValue* type = event.find("event");
  if (type == nullptr || !type->is_string()) {
    ++events_ignored_;
    return;
  }

  // Per-stream sequence continuity: the reporter numbers every line it
  // writes, so any hole or repeat here means the stream lost events (or two
  // writers shared one file — equally worth surfacing).
  if (const JsonValue* seq = event.find("seq");
      seq != nullptr && seq->is_number()) {
    StreamCursor& cursor = streams_[stream.empty() ? "<anon>" : stream];
    const auto s = static_cast<std::uint64_t>(seq->as_number());
    if (cursor.seen && s != cursor.seq + 1) ++seq_gaps_;
    cursor.seen = true;
    cursor.seq = s;
  }

  // Fleet lifecycle events (fleet_begin/fleet_end/worker_*) ride the same
  // envelope but describe worker processes, not campaigns: folding them in
  // would fabricate a campaign row keyed by the fleet id that never "ends"
  // (wedging --follow) and inflate --require-campaigns counts.
  if (const std::string& k = type->as_string();
      k == "fleet_begin" || k == "fleet_end" || k == "worker_start" ||
      k == "worker_exit" || k == "worker_restart") {
    ++events_ignored_;
    return;
  }

  CampaignState& st = state_for(event);
  st.label = str_or(event, "label", st.label);
  if (const std::string b = str_or(event, "backend", ""); !b.empty()) {
    st.backend = b;
  }
  const auto ts = static_cast<std::uint64_t>(num_or(event, "ts_ms", 0.0));
  if (ts != 0) {
    if (st.first_ts_ms == 0) st.first_ts_ms = ts;
    st.last_ts_ms = std::max(st.last_ts_ms, ts);
  }

  const std::string& kind = type->as_string();
  if (kind == "campaign_begin") {
    st.begun = true;
    st.p = num_or(event, "p", st.p);
    st.chains = count_or(event, "chains", st.chains);
    st.samples_per_round =
        count_or(event, "samples_per_round", st.samples_per_round);
    st.rounds_budget = count_or(event, "max_rounds", st.rounds_budget);
    st.subject = str_or(event, "subject", st.subject);
  } else if (kind == "round") {
    TrendPoint pt;
    pt.round = count_or(event, "round", 0);
    pt.rhat = num_or(event, "rhat", 0.0);
    pt.ess = num_or(event, "ess", 0.0);
    pt.mean_error = num_or(event, "mean_error", 0.0);
    pt.sdc_rate = num_or(event, "sdc_rate", 0.0);
    pt.samples = count_or(event, "samples", 0);
    st.rounds_seen = std::max(st.rounds_seen, pt.round);
    st.rounds_budget = count_or(event, "rounds_budget", st.rounds_budget);
    st.p = num_or(event, "p", st.p);
    st.rhat = pt.rhat;
    st.ess = pt.ess;
    st.mean_error = pt.mean_error;
    st.sdc_rate = pt.sdc_rate;
    st.samples = pt.samples;
    st.acceptance_rate = num_or(event, "acceptance_rate", st.acceptance_rate);
    st.cache_hit_rate = num_or(event, "cache_hit_rate", st.cache_hit_rate);
    st.network_evals = count_or(event, "network_evals", st.network_evals);
    st.detection_coverage =
        num_or(event, "detection_coverage", st.detection_coverage);
    st.outcome_masked = count_or(event, "outcome_masked", st.outcome_masked);
    st.outcome_sdc = count_or(event, "outcome_sdc", st.outcome_sdc);
    st.outcome_detected =
        count_or(event, "outcome_detected", st.outcome_detected);
    st.outcome_corrected =
        count_or(event, "outcome_corrected", st.outcome_corrected);
    st.chains_quarantined =
        count_or(event, "chains_quarantined", st.chains_quarantined);
    st.degraded = bool_or(event, "degraded", st.degraded);
    st.evals_per_sec.update(num_or(event, "evals_per_sec", 0.0));
    const double seconds = num_or(event, "seconds", 0.0);
    if (seconds > 0.0) st.round_seconds.update(seconds);
    st.trend.push_back(pt);
    if (st.trend.size() > options_.max_trend_points) {
      st.trend.erase(st.trend.begin());
    }
  } else if (kind == "chain_health") {
    if (str_or(event, "status", "") == "quarantined") {
      ++st.quarantine_events;
    } else {
      ++st.retries;
    }
  } else if (kind == "checkpoint") {
    CheckpointRecord rec;
    rec.round = count_or(event, "round", 0);
    rec.path = str_or(event, "path", "");
    rec.ts_ms = ts;
    st.checkpoints.push_back(std::move(rec));
  } else if (kind == "campaign_end") {
    st.ended = true;
    st.converged = bool_or(event, "converged", false);
    st.rounds_seen = std::max(st.rounds_seen, count_or(event, "rounds", 0));
  } else if (kind == "metrics") {
    // The reporter's registry snapshot carries the round-latency histogram
    // with exported quantiles; lift them into the campaign's latency panel.
    const JsonValue* registry = event.find("registry");
    const JsonValue* hist = registry != nullptr
                                ? registry->find("campaign.round_seconds")
                                : nullptr;
    if (hist != nullptr && hist->is_object()) {
      st.round_latency.present = true;
      st.round_latency.p50 = num_or(*hist, "p50", 0.0);
      st.round_latency.p95 = num_or(*hist, "p95", 0.0);
      st.round_latency.p99 = num_or(*hist, "p99", 0.0);
      st.round_latency.count =
          static_cast<std::uint64_t>(num_or(*hist, "count", 0.0));
    }
  } else {
    ++events_ignored_;  // unknown event type: forward compatible
  }
}

void EventAggregator::ingest_all(const std::vector<JsonValue>& events,
                                 const std::string& stream) {
  for (const auto& e : events) ingest(e, stream);
}

std::vector<const CampaignState*> EventAggregator::campaigns() const {
  std::vector<const CampaignState*> out;
  out.reserve(order_.size());
  for (const auto& id : order_) out.push_back(&states_.at(id));
  return out;
}

const CampaignState* EventAggregator::find(
    const std::string& campaign_id) const {
  const auto it = states_.find(campaign_id);
  return it == states_.end() ? nullptr : &it->second;
}

}  // namespace bdlfi::obs
