#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

#include "obs/json.h"

namespace bdlfi::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.resize(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket < rank || in_bucket == 0.0) {
      cumulative += in_bucket;
      continue;
    }
    if (i == bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
    const double upper = bounds_[i];
    const double lower = i == 0 ? std::min(0.0, upper) : bounds_[i - 1];
    const double frac = (rank - cumulative) / in_bucket;
    return lower + (upper - lower) * frac;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaky: never
  return *registry;  // destroyed, so instrumented statics stay valid at exit
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  assert(gauges_.find(name) == gauges_.end() &&
         histograms_.find(name) == histograms_.end());
  counter_storage_.emplace_back();
  counters_.emplace(name, &counter_storage_.back());
  return counter_storage_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  assert(counters_.find(name) == counters_.end() &&
         histograms_.find(name) == histograms_.end());
  gauge_storage_.emplace_back();
  gauges_.emplace(name, &gauge_storage_.back());
  return gauge_storage_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  assert(counters_.find(name) == counters_.end() &&
         gauges_.find(name) == gauges_.end());
  histogram_storage_.emplace_back(std::move(upper_bounds));
  histograms_.emplace(name, &histogram_storage_.back());
  return histogram_storage_.back();
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.value = h->sum();
    s.count = h->count();
    s.bounds = h->bounds();
    s.buckets = h->bucket_counts();
    s.p50 = h->quantile(0.50);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::to_json() const {
  JsonWriter w;
  w.begin_object();
  for (const auto& s : snapshot()) {
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        w.field(s.name, static_cast<std::uint64_t>(s.value));
        break;
      case MetricSnapshot::Kind::kGauge:
        w.field(s.name, s.value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        w.key(s.name).begin_object();
        w.field("count", s.count);
        w.field("sum", s.value);
        w.key("bounds").begin_array();
        for (double b : s.bounds) w.number(b);
        w.end_array();
        w.key("buckets").begin_array();
        for (std::uint64_t b : s.buckets) w.number(b);
        w.end_array();
        w.field("p50", s.p50);
        w.field("p95", s.p95);
        w.field("p99", s.p99);
        w.end_object();
        break;
      }
    }
  }
  w.end_object();
  return w.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace bdlfi::obs
