// Fixed-size thread pool with a blocking `parallel_for`.
//
// BDLFI runs many independent forward passes (MCMC chains, grid cells of the
// decision-boundary map, injections of a baseline campaign); a simple static
// range partitioner is the right tool — work items are uniform and coarse.
// Reproducibility note: callers that need determinism must derive one RNG
// stream per *index range* (not per thread); `parallel_for_chunked` exposes
// the chunk id for exactly that purpose.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bdlfi::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Process-wide default pool (lazily constructed, sized to the machine).
  static ThreadPool& global();

  /// Replaces the global pool with a freshly constructed one. A fork()ed
  /// child MUST call this before its first parallel_for: the pre-fork pool's
  /// worker threads do not exist in the child and its mutex state is
  /// unspecified, so the inherited object is abandoned untouched (leaked
  /// deliberately — destroying it would lock that mutex). `num_threads`
  /// follows the constructor's convention (0 = hardware concurrency); a fleet
  /// worker passes its per-worker core share so N workers collectively pin
  /// all cores without oversubscribing.
  static void reinit_after_fork(std::size_t num_threads = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [begin, end) across the pool; blocks until done.
/// Falls back to the calling thread for tiny ranges.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr);

/// Runs fn(chunk_id, chunk_begin, chunk_end) over a static partition of
/// [begin, end) into `num_chunks` contiguous ranges. chunk_id is stable across
/// runs and thread counts, so per-chunk RNG streams give deterministic output.
void parallel_for_chunked(std::size_t begin, std::size_t end,
                          std::size_t num_chunks,
                          const std::function<void(std::size_t, std::size_t,
                                                   std::size_t)>& fn,
                          ThreadPool* pool = nullptr);

}  // namespace bdlfi::util
