#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/check.h"

namespace bdlfi::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double SampleSet::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
         static_cast<double>(xs_.size());
}

double SampleSet::variance() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs_.size() - 1);
}

double SampleSet::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  BDLFI_CHECK_MSG(!xs_.empty(), "quantile of empty SampleSet");
  BDLFI_CHECK(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (xs_.size() == 1) return xs_[0];
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  BDLFI_CHECK(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  char buf[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / peak;
    std::snprintf(buf, sizeof buf, "%10.4g | ", bin_center(i));
    out << buf << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

double autocorrelation(const std::vector<double>& xs, std::size_t lag) {
  const std::size_t n = xs.size();
  if (lag >= n || n < 2) return 0.0;
  const double m = std::accumulate(xs.begin(), xs.end(), 0.0) /
                   static_cast<double>(n);
  double var = 0.0;
  for (double x : xs) var += (x - m) * (x - m);
  if (var <= 0.0) return lag == 0 ? 1.0 : 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    cov += (xs[i] - m) * (xs[i + lag] - m);
  }
  return cov / var;
}

double effective_sample_size(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  if (n < 4) return static_cast<double>(n);
  // Geyer initial positive sequence: sum consecutive-lag-pair autocorrelations
  // while the pair sums stay positive.
  double rho_sum = 0.0;
  for (std::size_t lag = 1; lag + 1 < n; lag += 2) {
    const double pair = autocorrelation(xs, lag) + autocorrelation(xs, lag + 1);
    if (pair <= 0.0) break;
    rho_sum += pair;
  }
  const double ess = static_cast<double>(n) / (1.0 + 2.0 * rho_sum);
  return std::clamp(ess, 1.0, static_cast<double>(n));
}

double gelman_rubin(const std::vector<std::vector<double>>& chains) {
  const std::size_t m = chains.size();
  BDLFI_CHECK_MSG(m >= 2, "gelman_rubin needs at least two chains");
  std::size_t n = chains[0].size();
  for (const auto& c : chains) n = std::min(n, c.size());
  BDLFI_CHECK_MSG(n >= 2, "gelman_rubin needs chains of length >= 2");

  std::vector<double> means(m), vars(m);
  double grand = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    RunningStats rs;
    for (std::size_t i = 0; i < n; ++i) rs.add(chains[j][i]);
    means[j] = rs.mean();
    vars[j] = rs.variance();
    grand += rs.mean();
  }
  grand /= static_cast<double>(m);

  double b = 0.0;  // between-chain variance * n
  for (double mu : means) b += (mu - grand) * (mu - grand);
  b *= static_cast<double>(n) / static_cast<double>(m - 1);

  double w = 0.0;  // within-chain variance
  for (double v : vars) w += v;
  w /= static_cast<double>(m);

  if (w <= 0.0) {
    // All chains constant: mixed iff they agree.
    return b <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  const double nd = static_cast<double>(n);
  const double var_plus = (nd - 1.0) / nd * w + b / nd;
  return std::sqrt(var_plus / w);
}

namespace {

// Midranks: tied values share the average of the ranks they span.
std::vector<double> midranks(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double mid = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mid;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman_correlation(const std::vector<double>& a,
                            const std::vector<double>& b) {
  BDLFI_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const auto ra = midranks(a);
  const auto rb = midranks(b);
  RunningStats sa, sb;
  for (double r : ra) sa.add(r);
  for (double r : rb) sb.add(r);
  if (sa.variance() <= 0.0 || sb.variance() <= 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    cov += (ra[i] - sa.mean()) * (rb[i] - sb.mean());
  }
  cov /= static_cast<double>(ra.size() - 1);
  return cov / (sa.stddev() * sb.stddev());
}

KsResult ks_two_sample(std::vector<double> a, std::vector<double> b) {
  BDLFI_CHECK(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  KsResult result;
  result.statistic = d;
  // Asymptotic Kolmogorov distribution: Q(λ) = 2 Σ (-1)^{k-1} e^{-2k²λ²}.
  const double en = std::sqrt(na * nb / (na + nb));
  const double lambda = (en + 0.12 + 0.11 / en) * d;
  // The alternating series degenerates as λ → 0 where Q → 1 exactly.
  if (lambda < 1e-3) {
    result.p_value = 1.0;
    return result;
  }
  double q = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    q += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  result.p_value = std::clamp(2.0 * q, 0.0, 1.0);
  return result;
}

double geweke_z(const std::vector<double>& xs, double first_frac,
                double last_frac) {
  const std::size_t n = xs.size();
  if (n < 20) return 0.0;
  const std::size_t na = std::max<std::size_t>(2, static_cast<std::size_t>(
                                                      first_frac * n));
  const std::size_t nb = std::max<std::size_t>(2, static_cast<std::size_t>(
                                                      last_frac * n));
  RunningStats a, b;
  for (std::size_t i = 0; i < na; ++i) a.add(xs[i]);
  for (std::size_t i = n - nb; i < n; ++i) b.add(xs[i]);
  const double denom = std::sqrt(a.variance() / static_cast<double>(na) +
                                 b.variance() / static_cast<double>(nb));
  if (denom <= 0.0) return 0.0;
  return (a.mean() - b.mean()) / denom;
}

}  // namespace bdlfi::util
