#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace bdlfi::util {

namespace {

double transform(double v, bool log_scale) {
  if (!log_scale) return v;
  return std::log10(std::max(v, 1e-300));
}

}  // namespace

std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options) {
  const std::size_t w = std::max<std::size_t>(options.width, 8);
  const std::size_t h = std::max<std::size_t>(options.height, 4);

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (const auto& s : series) {
    BDLFI_CHECK(s.xs.size() == s.ys.size());
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double x = transform(s.xs[i], options.log_x);
      const double y = transform(s.ys[i], options.log_y);
      xmin = std::min(xmin, x); xmax = std::max(xmax, x);
      ymin = std::min(ymin, y); ymax = std::max(ymax, y);
    }
  }
  if (!(xmin < xmax)) { xmin -= 0.5; xmax += 0.5; }
  if (!(ymin < ymax)) { ymin -= 0.5; ymax += 0.5; }

  std::vector<std::string> canvas(h, std::string(w, ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double x = transform(s.xs[i], options.log_x);
      const double y = transform(s.ys[i], options.log_y);
      auto cx = static_cast<std::size_t>(
          std::round((x - xmin) / (xmax - xmin) * static_cast<double>(w - 1)));
      auto cy = static_cast<std::size_t>(
          std::round((y - ymin) / (ymax - ymin) * static_cast<double>(h - 1)));
      canvas[h - 1 - cy][cx] = s.glyph;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  char buf[64];
  for (std::size_t r = 0; r < h; ++r) {
    // Left axis annotation on first, middle and last rows.
    if (r == 0 || r == h - 1 || r == h / 2) {
      const double frac = static_cast<double>(h - 1 - r) /
                          static_cast<double>(h - 1);
      double v = ymin + frac * (ymax - ymin);
      if (options.log_y) v = std::pow(10.0, v);
      std::snprintf(buf, sizeof buf, "%10.3g |", v);
    } else {
      std::snprintf(buf, sizeof buf, "%10s |", "");
    }
    out << buf << canvas[r] << '\n';
  }
  out << std::string(11, ' ') << '+' << std::string(w, '-') << '\n';
  {
    double xl = xmin, xr = xmax;
    if (options.log_x) { xl = std::pow(10.0, xl); xr = std::pow(10.0, xr); }
    std::snprintf(buf, sizeof buf, "%12.3g", xl);
    out << buf << std::string(w > 24 ? w - 24 : 1, ' ');
    std::snprintf(buf, sizeof buf, "%12.3g", xr);
    out << buf << '\n';
  }
  if (!options.x_label.empty() || !options.y_label.empty()) {
    out << "   x: " << options.x_label << (options.log_x ? " (log)" : "")
        << "   y: " << options.y_label << (options.log_y ? " (log)" : "")
        << '\n';
  }
  for (const auto& s : series) {
    out << "   '" << s.glyph << "' = " << s.name << '\n';
  }
  return out.str();
}

std::string render_heatmap(const std::vector<double>& grid, std::size_t rows,
                           std::size_t cols, double lo, double hi,
                           const std::string& title) {
  BDLFI_CHECK(grid.size() == rows * cols);
  static const char ramp[] = " .:-=+*#%@";
  constexpr std::size_t ramp_n = sizeof(ramp) - 2;  // last index
  if (lo == hi) {
    lo = std::numeric_limits<double>::infinity();
    hi = -lo;
    for (double v : grid) { lo = std::min(lo, v); hi = std::max(hi, v); }
    if (!(lo < hi)) { lo -= 0.5; hi += 0.5; }
  }
  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      double t = (grid[r * cols + c] - lo) / (hi - lo);
      t = std::clamp(t, 0.0, 1.0);
      const auto idx = static_cast<std::size_t>(
          std::round(t * static_cast<double>(ramp_n)));
      out << ramp[idx];
    }
    out << '\n';
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, "scale: ' '=%.3g ... '@'=%.3g\n", lo, hi);
  out << buf;
  return out.str();
}

}  // namespace bdlfi::util
