// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in BDLFI takes an explicit `Rng&` (or a seed from
// which it derives one), so campaigns are reproducible bit-for-bit, including
// under multi-threaded execution: each MCMC chain / worker derives its own
// independent stream with `Rng::split`.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through splitmix64
// as its authors recommend. It is not cryptographic; it is fast, has 256 bits
// of state and passes BigCrush, which is what a simulator needs.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bdlfi::util {

/// splitmix64 step; used for seeding and for cheap stateless hashing of
/// (seed, index) pairs into independent stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Raw 64 uniform bits.
  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent generator for a worker/chain identified by `index`.
  /// Streams for distinct indices are decorrelated via splitmix64 hashing of
  /// the parent's next output with the index.
  Rng split(std::uint64_t index) {
    std::uint64_t s = (*this)() ^ (0x9e3779b97f4a7c15ULL * (index + 1));
    return Rng{splitmix64(s)};
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform float in [0, 1).
  float uniform_float() {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, n). Unbiased (Lemire's method).
  std::uint64_t below(std::uint64_t n);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller with value caching.
  double normal();

  /// Normal with given mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Geometric draw: number of failures before first success, success
  /// probability p in (0,1]. Used by the bit-flip sampler to skip over
  /// non-flipped bits in O(#flips) instead of O(#bits).
  std::uint64_t geometric(double p);

  /// Word count of a serialized engine snapshot: the four xoshiro words,
  /// the cached Box–Muller draw (bit pattern) and its validity flag.
  static constexpr std::size_t kStateWords = 6;

  /// Full engine snapshot. `state_load` on the result reproduces the exact
  /// output stream, including the pending second Box–Muller normal.
  std::vector<std::uint64_t> state_save() const;

  /// Restores a snapshot produced by `state_save`. Rejects (returns false,
  /// engine unchanged) inputs with the wrong word count or a validity flag
  /// that is neither 0 nor 1.
  bool state_load(const std::vector<std::uint64_t>& words);

  /// Hex form of `state_save` ("w0:w1:...:w5", 16 lowercase hex digits per
  /// word). u64 values do not survive a double-based JSON round trip, so
  /// checkpoints embed this string instead of a number array.
  std::string state_to_string() const;

  /// Parses the `state_to_string` form; false (engine unchanged) on any
  /// malformed input.
  bool state_from_string(const std::string& text);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace bdlfi::util
