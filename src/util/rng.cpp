#include "util/rng.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace bdlfi::util {

std::uint64_t Rng::below(std::uint64_t n) {
  BDLFI_DCHECK(n > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::geometric(double p) {
  BDLFI_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  // Inverse-CDF: floor(log(U) / log(1-p)).
  double u = 1.0 - uniform();  // in (0,1]
  double g = std::floor(std::log(u) / std::log1p(-p));
  if (g < 0.0) g = 0.0;
  // Saturate rather than overflow for absurdly small p.
  if (g > 9.0e18) return static_cast<std::uint64_t>(9.0e18);
  return static_cast<std::uint64_t>(g);
}

std::vector<std::uint64_t> Rng::state_save() const {
  std::vector<std::uint64_t> words(kStateWords);
  for (std::size_t i = 0; i < state_.size(); ++i) words[i] = state_[i];
  words[4] = std::bit_cast<std::uint64_t>(cached_normal_);
  words[5] = has_cached_normal_ ? 1u : 0u;
  return words;
}

bool Rng::state_load(const std::vector<std::uint64_t>& words) {
  if (words.size() != kStateWords) return false;
  if (words[5] > 1) return false;
  for (std::size_t i = 0; i < state_.size(); ++i) state_[i] = words[i];
  cached_normal_ = std::bit_cast<double>(words[4]);
  has_cached_normal_ = words[5] == 1;
  return true;
}

std::string Rng::state_to_string() const {
  const std::vector<std::uint64_t> words = state_save();
  std::string out;
  out.reserve(kStateWords * 17);
  char buf[24];
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(words[i]));
    if (i != 0) out.push_back(':');
    out += buf;
  }
  return out;
}

bool Rng::state_from_string(const std::string& text) {
  std::vector<std::uint64_t> words;
  words.reserve(kStateWords);
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t sep = text.find(':', pos);
    if (sep == std::string::npos) sep = text.size();
    if (sep - pos != 16) return false;
    std::uint64_t word = 0;
    for (std::size_t i = pos; i < sep; ++i) {
      const char h = text[i];
      word <<= 4;
      if (h >= '0' && h <= '9') word |= static_cast<std::uint64_t>(h - '0');
      else if (h >= 'a' && h <= 'f') word |= static_cast<std::uint64_t>(h - 'a' + 10);
      else return false;
    }
    words.push_back(word);
    pos = sep + 1;
    if (sep == text.size()) break;
  }
  return state_load(words);
}

}  // namespace bdlfi::util
