#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace bdlfi::util {

std::uint64_t Rng::below(std::uint64_t n) {
  BDLFI_DCHECK(n > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::geometric(double p) {
  BDLFI_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  // Inverse-CDF: floor(log(U) / log(1-p)).
  double u = 1.0 - uniform();  // in (0,1]
  double g = std::floor(std::log(u) / std::log1p(-p));
  if (g < 0.0) g = 0.0;
  // Saturate rather than overflow for absurdly small p.
  if (g > 9.0e18) return static_cast<std::uint64_t>(9.0e18);
  return static_cast<std::uint64_t>(g);
}

}  // namespace bdlfi::util
