// Cooperative interruption for long-running campaigns.
//
// A single process-wide flag, set from SIGINT/SIGTERM (async-signal-safe) or
// programmatically, and polled by the MCMC samplers between retained samples
// and by the campaign runner between rounds. Nothing is torn down forcibly:
// on interruption each chain winds down at the next poll point, partial
// rounds are discarded, and the last complete round's checkpoint stands —
// which is what makes `--resume` after Ctrl-C bit-exact.
//
// Multi-process supervisors (bdlfi fleet) additionally register their worker
// pids here: the signal handler then forwards the signal to every registered
// child (kill() is async-signal-safe), so one Ctrl-C on the supervisor
// checkpoints and stops the whole fleet gracefully.
#pragma once

namespace bdlfi::util {

/// Installs SIGINT/SIGTERM handlers that set the interrupt flag. Idempotent;
/// safe to call from multiple entry points.
void install_interrupt_handlers();

/// True once an interrupt was requested (signal or set_interrupt_requested).
bool interrupt_requested();

/// Sets/clears the flag directly — tests and programmatic shutdown.
void set_interrupt_requested(bool value);

/// Signal number that set the flag (0 when the flag was set programmatically
/// or never). Cleared by set_interrupt_requested(false).
int interrupt_signal();

/// Registers a child pid with the signal handler: the next SIGINT/SIGTERM is
/// re-sent to it verbatim. No-op when the (fixed-size) registry is full —
/// the supervisor's cooperative forwarding loop remains as backup.
void interrupt_forward_add(long pid);

/// Drops one pid from the forwarding registry (call after reaping the child).
void interrupt_forward_remove(long pid);

/// Drops every registration. A forked child MUST call this before doing
/// anything else: the registry is inherited across fork() and the child's
/// handler would otherwise re-forward signals to its own siblings.
void interrupt_forward_clear();

}  // namespace bdlfi::util
