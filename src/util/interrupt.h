// Cooperative interruption for long-running campaigns.
//
// A single process-wide flag, set from SIGINT/SIGTERM (async-signal-safe) or
// programmatically, and polled by the MCMC samplers between retained samples
// and by the campaign runner between rounds. Nothing is torn down forcibly:
// on interruption each chain winds down at the next poll point, partial
// rounds are discarded, and the last complete round's checkpoint stands —
// which is what makes `--resume` after Ctrl-C bit-exact.
#pragma once

namespace bdlfi::util {

/// Installs SIGINT/SIGTERM handlers that set the interrupt flag. Idempotent;
/// safe to call from multiple entry points.
void install_interrupt_handlers();

/// True once an interrupt was requested (signal or set_interrupt_requested).
bool interrupt_requested();

/// Sets/clears the flag directly — tests and programmatic shutdown.
void set_interrupt_requested(bool value);

}  // namespace bdlfi::util
