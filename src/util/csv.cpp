#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/log.h"

namespace bdlfi::util {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  BDLFI_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  BDLFI_CHECK_MSG(cells.size() == headers_.size(),
                  "row width != header width");
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::col(const std::string& s) {
  cells_.push_back(s);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::col(double v) {
  cells_.push_back(format_double(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::col(std::size_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::col(int v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c]
          << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out << ',';
    out << csv_escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  }
  return out.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    BDLFI_LOG_ERROR("cannot open %s for writing", path.c_str());
    return false;
  }
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace bdlfi::util
