// Contract-check macros (Core Guidelines I.6/I.8 style: expects/ensures).
//
// BDLFI_CHECK is always on (campaign correctness beats the tiny branch cost);
// BDLFI_DCHECK compiles out in NDEBUG builds and is meant for hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace bdlfi::util {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace bdlfi::util

#define BDLFI_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) ::bdlfi::util::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define BDLFI_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) ::bdlfi::util::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define BDLFI_DCHECK(cond) ((void)0)
#else
#define BDLFI_DCHECK(cond) BDLFI_CHECK(cond)
#endif
