// Terminal-resolution plots for bench output: the paper's figures are line
// charts (error vs flip probability, error vs layer) and one 2-D heat map
// (decision boundary). These renderers let a bench show the *shape* of each
// reproduced figure directly in its stdout.
#pragma once

#include <string>
#include <vector>

namespace bdlfi::util {

struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
  char glyph = '*';
};

struct PlotOptions {
  std::size_t width = 72;
  std::size_t height = 20;
  bool log_x = false;
  bool log_y = false;
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Scatter/line chart of one or more series on a shared grid.
std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options);

/// Heat map of a row-major grid (rows × cols) using a density glyph ramp.
/// `lo`/`hi` clamp the color scale; pass lo==hi to auto-scale.
std::string render_heatmap(const std::vector<double>& grid, std::size_t rows,
                           std::size_t cols, double lo = 0.0, double hi = 0.0,
                           const std::string& title = "");

}  // namespace bdlfi::util
