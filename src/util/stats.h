// Streaming and batch statistics used throughout campaign aggregation and
// MCMC diagnostics: Welford running moments, exact quantiles over retained
// samples, fixed-bin histograms, and autocorrelation estimation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bdlfi::util {

/// Numerically stable running mean/variance (Welford). O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Standard error of the mean; 0 for n < 2.
  double sem() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains all samples; exact quantiles via nearest-rank with interpolation.
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { xs_.reserve(n); }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double variance() const;
  double stddev() const;
  /// Linear-interpolated quantile, q in [0, 1]. Requires at least one sample.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& samples() const { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi]; out-of-range values clamp to the
/// boundary bins (fault-error distributions have hard [0,100] supports).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_center(std::size_t i) const;
  /// Render as a compact multi-line ASCII bar chart (for bench output).
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Biased (normalized by n) autocovariance-based autocorrelation at given lag.
double autocorrelation(const std::vector<double>& xs, std::size_t lag);

/// Effective sample size via Geyer's initial positive sequence estimator.
/// Returns n when the chain looks i.i.d.; far less when it mixes slowly.
double effective_sample_size(const std::vector<double>& xs);

/// Gelman–Rubin potential scale reduction factor (split-R-hat, rank-free
/// classic form) over m chains of equal length. Values near 1 indicate the
/// chains have mixed; the paper's "completeness" criterion thresholds this.
double gelman_rubin(const std::vector<std::vector<double>>& chains);

/// Spearman rank correlation with midranks for ties (Pearson correlation of
/// the rank vectors). Returns 0 for degenerate (constant) inputs.
double spearman_correlation(const std::vector<double>& a,
                            const std::vector<double>& b);

/// Two-sample Kolmogorov–Smirnov test: are `a` and `b` draws from the same
/// distribution? Used to check that BDLFI's sampled error distribution is
/// the same object traditional random FI measures — a stronger statement
/// than mean agreement.
struct KsResult {
  double statistic = 0.0;  // sup |F_a - F_b|
  /// Asymptotic p-value (Kolmogorov distribution; accurate for n ≳ 35).
  double p_value = 1.0;
};
KsResult ks_two_sample(std::vector<double> a, std::vector<double> b);

/// Geweke convergence z-score: compares the mean of the first `first_frac`
/// of a chain against the last `last_frac` using spectral-density-free
/// (batch-mean) variance estimates. |z| >~ 2 suggests non-convergence.
double geweke_z(const std::vector<double>& xs, double first_frac = 0.1,
                double last_frac = 0.5);

}  // namespace bdlfi::util
