#include "util/interrupt.h"

#include <atomic>
#include <csignal>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/types.h>
#endif

namespace bdlfi::util {
namespace {

std::atomic<bool> g_interrupt{false};
std::atomic<int> g_signal{0};
std::atomic<bool> g_handlers_installed{false};

// Fixed-size forwarding registry: lock-free atomics are the only structure a
// signal handler may scan. 0 marks a free slot. Plenty for one supervisor's
// worth of workers (bounded by core count, not campaign count).
constexpr std::size_t kMaxForward = 256;
std::atomic<long> g_forward[kMaxForward];

extern "C" void bdlfi_interrupt_handler(int signum) {
  // Only async-signal-safe work here: lock-free atomic stores and kill().
  g_interrupt.store(true, std::memory_order_relaxed);
  g_signal.store(signum, std::memory_order_relaxed);
#if defined(__unix__) || defined(__APPLE__)
  for (std::size_t i = 0; i < kMaxForward; ++i) {
    const long pid = g_forward[i].load(std::memory_order_relaxed);
    if (pid > 0) ::kill(static_cast<pid_t>(pid), signum);
  }
#endif
}

}  // namespace

void install_interrupt_handlers() {
  bool expected = false;
  if (!g_handlers_installed.compare_exchange_strong(expected, true)) return;
  std::signal(SIGINT, bdlfi_interrupt_handler);
  std::signal(SIGTERM, bdlfi_interrupt_handler);
}

bool interrupt_requested() {
  return g_interrupt.load(std::memory_order_relaxed);
}

void set_interrupt_requested(bool value) {
  g_interrupt.store(value, std::memory_order_relaxed);
  if (!value) g_signal.store(0, std::memory_order_relaxed);
}

int interrupt_signal() { return g_signal.load(std::memory_order_relaxed); }

void interrupt_forward_add(long pid) {
  if (pid <= 0) return;
  for (std::size_t i = 0; i < kMaxForward; ++i) {
    long expected = 0;
    if (g_forward[i].compare_exchange_strong(expected, pid,
                                             std::memory_order_relaxed)) {
      return;
    }
  }
}

void interrupt_forward_remove(long pid) {
  for (std::size_t i = 0; i < kMaxForward; ++i) {
    long expected = pid;
    g_forward[i].compare_exchange_strong(expected, 0,
                                         std::memory_order_relaxed);
  }
}

void interrupt_forward_clear() {
  for (std::size_t i = 0; i < kMaxForward; ++i) {
    g_forward[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace bdlfi::util
