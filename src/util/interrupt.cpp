#include "util/interrupt.h"

#include <atomic>
#include <csignal>

namespace bdlfi::util {
namespace {

std::atomic<bool> g_interrupt{false};
std::atomic<bool> g_handlers_installed{false};

extern "C" void bdlfi_interrupt_handler(int /*signum*/) {
  // Only async-signal-safe work here: a lock-free atomic store.
  g_interrupt.store(true, std::memory_order_relaxed);
}

}  // namespace

void install_interrupt_handlers() {
  bool expected = false;
  if (!g_handlers_installed.compare_exchange_strong(expected, true)) return;
  std::signal(SIGINT, bdlfi_interrupt_handler);
  std::signal(SIGTERM, bdlfi_interrupt_handler);
}

bool interrupt_requested() {
  return g_interrupt.load(std::memory_order_relaxed);
}

void set_interrupt_requested(bool value) {
  g_interrupt.store(value, std::memory_order_relaxed);
}

}  // namespace bdlfi::util
