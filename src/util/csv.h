// Tabular result output: aligned text tables for the terminal and CSV files
// for downstream plotting. Every bench emits both so the paper's series are
// both human-readable and machine-consumable.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace bdlfi::util {

/// Column-typed table that can render as aligned text or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  std::size_t num_columns() const { return headers_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  /// Appends a row; must have exactly num_columns() cells.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.6g, keeps strings as-is.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& col(const std::string& s);
    RowBuilder& col(double v);
    RowBuilder& col(std::size_t v);
    RowBuilder& col(int v);
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder{*this}; }

  /// Aligned, boxed text rendering.
  std::string to_text() const;
  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;
  /// Writes CSV to `path`; returns false (and logs) on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// %.6g formatting used consistently in tables.
std::string format_double(double v);

}  // namespace bdlfi::util
