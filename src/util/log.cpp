#include "util/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

namespace bdlfi::util {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("BDLFI_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::kInfo;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "debug" || v == "0") return LogLevel::kDebug;
  if (v == "info" || v == "1") return LogLevel::kInfo;
  if (v == "warn" || v == "warning" || v == "2") return LogLevel::kWarn;
  if (v == "error" || v == "3") return LogLevel::kError;
  if (v == "off" || v == "none" || v == "4") return LogLevel::kOff;
  std::fprintf(stderr,
               "[WARN ] unrecognized BDLFI_LOG_LEVEL=%s "
               "(debug|info|warn|error|off); using info\n",
               env);
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_store() {
  // First touch seeds the level from the environment, once per process.
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

LogLevel log_level() {
  return level_store().load(std::memory_order_relaxed);
}
void set_log_level(LogLevel level) {
  level_store().store(level, std::memory_order_relaxed);
}

void log(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  using clock = std::chrono::system_clock;
  const auto now = clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();

  // Format the whole line into one buffer and emit it with a single write, so
  // concurrent loggers (and anything else on stderr) can never interleave
  // mid-line. stderr is unbuffered, so one fwrite is one write(2).
  char prefix[48];
  const int prefix_len =
      std::snprintf(prefix, sizeof(prefix), "[%s %lld.%03lld] ",
                    level_name(level), static_cast<long long>(ms / 1000),
                    static_cast<long long>(ms % 1000));

  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int body_len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (body_len < 0 || prefix_len < 0) {
    va_end(args_copy);
    return;
  }

  std::vector<char> line(static_cast<std::size_t>(prefix_len) +
                         static_cast<std::size_t>(body_len) + 2);
  std::memcpy(line.data(), prefix, static_cast<std::size_t>(prefix_len));
  std::vsnprintf(line.data() + prefix_len,
                 static_cast<std::size_t>(body_len) + 1, fmt, args_copy);
  va_end(args_copy);
  line[line.size() - 1] = '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace bdlfi::util
