#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace bdlfi::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mu;  // keep multi-threaded lines unscrambled

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  using clock = std::chrono::system_clock;
  const auto now = clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(g_mu);
  std::fprintf(stderr, "[%s %lld.%03lld] ", level_name(level),
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace bdlfi::util
