#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "util/check.h"

namespace bdlfi::util {

namespace {

// Pool gauges, registered once. queue_depth counts submitted-but-unstarted
// tasks; active_workers counts tasks currently executing, so
// active_workers / pool-size is the utilization the reporter surfaces.
struct PoolMetrics {
  obs::Gauge& queue_depth =
      obs::MetricsRegistry::global().gauge("pool.queue_depth");
  obs::Gauge& active_workers =
      obs::MetricsRegistry::global().gauge("pool.active_workers");
  obs::Counter& tasks =
      obs::MetricsRegistry::global().counter("pool.tasks_completed");
  static PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    BDLFI_CHECK_MSG(!stop_, "submit() on a stopped ThreadPool");
    queue_.push(std::move(task));
    ++in_flight_;
    if (obs::enabled()) {
      PoolMetrics::get().queue_depth.set(static_cast<double>(queue_.size()));
    }
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      if (obs::enabled()) {
        PoolMetrics::get().queue_depth.set(static_cast<double>(queue_.size()));
        PoolMetrics::get().active_workers.add(1.0);
      }
    }
    task();
    if (obs::enabled()) {
      PoolMetrics::get().active_workers.add(-1.0);
      PoolMetrics::get().tasks.add();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

namespace {
// Heap-allocated so reinit_after_fork can swap it atomically; never
// destroyed (worker threads may still be parked in it at static-destruction
// time, and the object stays reachable through the pointer, so this is not a
// leak).
std::atomic<ThreadPool*> g_global_pool{nullptr};
std::mutex g_global_pool_mu;
}  // namespace

ThreadPool& ThreadPool::global() {
  ThreadPool* pool = g_global_pool.load(std::memory_order_acquire);
  if (pool != nullptr) return *pool;
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  pool = g_global_pool.load(std::memory_order_relaxed);
  if (pool == nullptr) {
    pool = new ThreadPool();
    g_global_pool.store(pool, std::memory_order_release);
  }
  return *pool;
}

void ThreadPool::reinit_after_fork(std::size_t num_threads) {
  // The pre-fork pool (if any) is abandoned: only this thread exists in the
  // child, so no lock is needed and none may be taken on the old object.
  g_global_pool.store(new ThreadPool(num_threads), std::memory_order_release);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool) {
  if (begin >= end) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t n = end - begin;
  if (n <= 1 || pool->size() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, pool->size() * 4);
  parallel_for_chunked(
      begin, end, chunks,
      [&fn](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      pool);
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end, std::size_t num_chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    ThreadPool* pool) {
  if (begin >= end || num_chunks == 0) return;
  if (pool == nullptr) pool = &ThreadPool::global();
  const std::size_t n = end - begin;
  num_chunks = std::min(num_chunks, n);
  if (num_chunks == 1) {
    fn(0, begin, end);
    return;
  }
  const std::size_t base = n / num_chunks;
  const std::size_t extra = n % num_chunks;
  // A dedicated latch-like barrier: reuse the pool's wait_idle would race with
  // other concurrent users, so count completions locally.
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = num_chunks;
  std::size_t lo = begin;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t hi = lo + len;
    pool->submit([&, c, lo, hi] {
      fn(c, lo, hi);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_all();
    });
    lo = hi;
  }
  BDLFI_CHECK(lo == end);
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
}

}  // namespace bdlfi::util
