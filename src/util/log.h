// Minimal leveled logger. Campaign code logs milestones at Info; hot loops
// never log. A global level gate keeps benches quiet by default.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace bdlfi::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level actually emitted. Seeded once at startup from
/// the BDLFI_LOG_LEVEL environment variable (debug|info|warn|error|off, or
/// 0-4); defaults to Info when unset.
LogLevel log_level();
void set_log_level(LogLevel level);

/// printf-style log to stderr with level prefix and wall-clock timestamp.
/// Thread-safe: the whole line is formatted first and emitted as a single
/// write, so concurrent callers never interleave mid-line.
void log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace bdlfi::util

#define BDLFI_LOG_DEBUG(...) \
  ::bdlfi::util::log(::bdlfi::util::LogLevel::kDebug, __VA_ARGS__)
#define BDLFI_LOG_INFO(...) \
  ::bdlfi::util::log(::bdlfi::util::LogLevel::kInfo, __VA_ARGS__)
#define BDLFI_LOG_WARN(...) \
  ::bdlfi::util::log(::bdlfi::util::LogLevel::kWarn, __VA_ARGS__)
#define BDLFI_LOG_ERROR(...) \
  ::bdlfi::util::log(::bdlfi::util::LogLevel::kError, __VA_ARGS__)
