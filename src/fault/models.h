// Fault-model zoo beyond i.i.d. Bernoulli bit flips.
//
// §II of the paper: "BDLFI can also be extended to other fault models." Every
// model here is expressed as a *mask sampler*: it draws a concrete fault
// pattern as an XOR mask against the golden state, which keeps the central
// apply/revert machinery (XOR self-inverse) and all campaign plumbing intact.
// Models whose physical description is not a flip (stuck-at, word zeroing,
// random word replacement) are converted to the XOR delta against the golden
// bits at sampling time.
//
// The Bernoulli model retains its special role for MCMC (analytic prior);
// the other models plug into the random-FI campaign path and into MCMC via
// independence proposals.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "fault/space.h"

namespace bdlfi::fault {

class MaskSampler {
 public:
  virtual ~MaskSampler() = default;
  /// Draws one concrete fault pattern for the given space. The space's
  /// tensors must currently hold the *golden* bits (needed by value-dependent
  /// models such as stuck-at).
  virtual FaultMask sample(const InjectionSpace& space,
                           util::Rng& rng) const = 0;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<MaskSampler> clone() const = 0;
};

/// The paper's model: independent Bernoulli(p·avf[b]) per bit.
class BernoulliSampler : public MaskSampler {
 public:
  BernoulliSampler(AvfProfile profile, double p)
      : profile_(std::move(profile)), p_(p) {}
  FaultMask sample(const InjectionSpace& space,
                   util::Rng& rng) const override {
    return space.sample_mask(profile_, p_, rng);
  }
  std::string name() const override { return "bernoulli"; }
  std::unique_ptr<MaskSampler> clone() const override {
    return std::make_unique<BernoulliSampler>(profile_, p_);
  }
  double p() const { return p_; }
  const AvfProfile& profile() const { return profile_; }

 private:
  AvfProfile profile_;
  double p_;
};

/// Burst faults: each event corrupts `burst_length` adjacent bits starting at
/// a random site (multi-bit upsets from a single particle strike / DRAM row
/// disturbance). Events arrive per-bit-rate p_event over the word axis.
class BurstSampler : public MaskSampler {
 public:
  BurstSampler(double event_rate, int burst_length)
      : event_rate_(event_rate), burst_length_(burst_length) {}
  FaultMask sample(const InjectionSpace& space,
                   util::Rng& rng) const override;
  std::string name() const override { return "burst"; }
  std::unique_ptr<MaskSampler> clone() const override {
    return std::make_unique<BurstSampler>(event_rate_, burst_length_);
  }

 private:
  double event_rate_;
  int burst_length_;
};

/// Stuck-at faults: selected bits read as a constant 0 or 1 regardless of the
/// stored value. Value-dependent: the XOR delta includes a bit only when the
/// golden value disagrees with the stuck level.
class StuckAtSampler : public MaskSampler {
 public:
  /// `rate` is the per-bit probability of being a stuck cell; `stuck_to_one`
  /// selects stuck-at-1 (true) or stuck-at-0 (false).
  StuckAtSampler(double rate, bool stuck_to_one)
      : rate_(rate), stuck_to_one_(stuck_to_one) {}
  FaultMask sample(const InjectionSpace& space,
                   util::Rng& rng) const override;
  std::string name() const override {
    return stuck_to_one_ ? "stuck_at_1" : "stuck_at_0";
  }
  std::unique_ptr<MaskSampler> clone() const override {
    return std::make_unique<StuckAtSampler>(rate_, stuck_to_one_);
  }

 private:
  double rate_;
  bool stuck_to_one_;
};

/// Whole-word corruption: each 32-bit word is independently hit with
/// probability `word_rate`; a hit word is replaced by uniform random bits
/// (bus/ECC-word granularity errors, TensorFI's "RandVal" mode).
class RandomWordSampler : public MaskSampler {
 public:
  explicit RandomWordSampler(double word_rate) : word_rate_(word_rate) {}
  FaultMask sample(const InjectionSpace& space,
                   util::Rng& rng) const override;
  std::string name() const override { return "random_word"; }
  std::unique_ptr<MaskSampler> clone() const override {
    return std::make_unique<RandomWordSampler>(word_rate_);
  }

 private:
  double word_rate_;
};

/// Whole-word zeroing: hit words read as 0.0f (power-gated or cleared cells,
/// TensorFI's "Zero" mode). Value-dependent like stuck-at.
class ZeroWordSampler : public MaskSampler {
 public:
  explicit ZeroWordSampler(double word_rate) : word_rate_(word_rate) {}
  FaultMask sample(const InjectionSpace& space,
                   util::Rng& rng) const override;
  std::string name() const override { return "zero_word"; }
  std::unique_ptr<MaskSampler> clone() const override {
    return std::make_unique<ZeroWordSampler>(word_rate_);
  }

 private:
  double word_rate_;
};

/// Posterior-weighted flips: each flip picks an owning layer from explicit
/// per-layer weights, an element uniformly within that layer's persistent
/// (kParam) span, and a bit position from explicit per-bit-position weights.
/// This is the sampling form of bayes::PosteriorProfile — the profile supplies
/// the weights via make_sampler() — kept here so it plugs into every
/// MaskSampler consumer (random FI, fault-aware fine-tuning) without an
/// upward dependency on bayes.
class WeightedSiteSampler : public MaskSampler {
 public:
  /// `layer_weights[i]` weights the space's layer index i (see
  /// InjectionSpace::Entry::layer; the input pseudo-layer -1 is never drawn).
  /// Weights need not be normalized; layers with no kParam elements in the
  /// space or non-positive weight are never drawn. Each sampled mask carries
  /// uniform[min_flips, max_flips] flips; protected elements and duplicate
  /// bits are resampled (bounded, so a tiny space cannot wedge the sampler).
  WeightedSiteSampler(std::vector<double> layer_weights,
                      std::array<double, 32> bit_weights,
                      std::size_t min_flips, std::size_t max_flips);
  FaultMask sample(const InjectionSpace& space,
                   util::Rng& rng) const override;
  std::string name() const override { return "posterior_weighted"; }
  std::unique_ptr<MaskSampler> clone() const override {
    return std::make_unique<WeightedSiteSampler>(layer_weights_, bit_weights_,
                                                 min_flips_, max_flips_);
  }

 private:
  std::vector<double> layer_weights_;
  std::array<double, 32> bit_weights_;
  std::size_t min_flips_;
  std::size_t max_flips_;
};

/// Transient compute faults: independent Bernoulli(p) flips over the output
/// bits of every kCompute site in the space (MRFI-style operation-granularity
/// injection — the upset strikes the MAC result during one forward, not any
/// stored tensor). Spaces without compute sites yield empty masks; mixed
/// spaces restrict injection to their compute ranges.
class ComputeFaultSampler : public MaskSampler {
 public:
  explicit ComputeFaultSampler(double p) : p_(p) {}
  FaultMask sample(const InjectionSpace& space,
                   util::Rng& rng) const override;
  std::string name() const override { return "compute"; }
  std::unique_ptr<MaskSampler> clone() const override {
    return std::make_unique<ComputeFaultSampler>(p_);
  }
  double p() const { return p_; }

 private:
  double p_;
};

}  // namespace bdlfi::fault
