// Injection spaces: the addressable set of fault targets of a network.
//
// A TargetSpec selects which state a campaign may corrupt (all parameters,
// one layer, weights only, ...); the InjectionSpace built from it lays those
// tensors out as one flat element axis so fault sites have stable integer
// addresses — the "enormous space of fault locations" of §I made enumerable.
//
// Sampling a Bernoulli mask is O(expected #flips), not O(#bits): for each bit
// position we geometric-skip across elements. At p = 1e-5 over a million
// parameters that is ~320 draws instead of 32 million.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fault/avf.h"
#include "fault/mask.h"
#include "nn/network.h"

namespace bdlfi::fault {

struct TargetSpec {
  /// Layer names to include (exact match on the prefix before the first '.');
  /// empty means every layer. Also filters activation sites by owning layer.
  std::vector<std::string> layer_names;
  /// Roles to include; empty means every trainable role.
  std::vector<nn::ParamRole> roles;
  /// Also expose BN running statistics (non-trainable but memory-resident).
  bool include_buffers = false;
  /// Expose parameter tensors at all (off for pure input/activation spaces).
  bool include_params = true;
  /// Expose the evaluation batch itself — §II's "memory units for storing
  /// ... inputs" — as fault sites of pseudo-layer -1.
  bool include_input = false;
  /// Expose per-layer output activations (in-flight corruption, applied via
  /// the forward hook during evaluation rather than by persistent XOR).
  bool include_activations = false;
  /// Expose transient compute faults — upsets striking the MAC/accumulator
  /// results of GEMM-bearing layers (dense/conv) *during* the multiply,
  /// before any bias/BN/activation. Applied mid-kernel via the network's
  /// ComputeFaultPlan; this is the fault class ABFT checksums can see.
  bool include_compute = false;

  static TargetSpec all_parameters() { return {}; }
  static TargetSpec single_layer(std::string name) {
    TargetSpec spec;
    spec.layer_names.push_back(std::move(name));
    return spec;
  }
  static TargetSpec weights_only() {
    TargetSpec spec;
    spec.roles = {nn::ParamRole::kWeight};
    return spec;
  }
  static TargetSpec input_only() {
    TargetSpec spec;
    spec.include_params = false;
    spec.include_input = true;
    return spec;
  }
  static TargetSpec activations_only() {
    TargetSpec spec;
    spec.include_params = false;
    spec.include_activations = true;
    return spec;
  }
  static TargetSpec compute_only() {
    TargetSpec spec;
    spec.include_params = false;
    spec.include_compute = true;
    return spec;
  }

  bool matches(const std::string& param_name, nn::ParamRole role) const;
  bool matches_layer(const std::string& layer_name) const;
};

/// Element counts of the transient tensors of one evaluation batch — the
/// geometry input/activation fault sites are addressed against. Produced by
/// the golden forward (nn::ActivationCache records it as a side effect).
struct ActivationGeometry {
  std::int64_t input_numel = 0;
  std::vector<std::int64_t> layer_numel;  // output numel per layer
};

class InjectionSpace {
 public:
  /// What kind of memory a fault site lives in. kParam sites are persistent
  /// tensors XOR-able in place; kInput/kActivation sites are transient — the
  /// evaluation pipeline applies them to in-flight tensors instead. kCompute
  /// sites are transient upsets of a layer's raw GEMM output, applied
  /// mid-kernel (between the multiply and the ABFT check) via the network's
  /// ComputeFaultPlan.
  enum class SiteKind { kParam, kInput, kActivation, kCompute };

  struct Entry {
    std::string name;
    nn::ParamRole role;
    tensor::Tensor* value;  // nullptr for kInput/kActivation (virtual) sites
    std::int64_t offset;  // flat element index of this tensor's first element
    SiteKind site = SiteKind::kParam;
    /// Owning layer index: params/activations → their layer; input → -1.
    std::int64_t layer = -1;
    std::int64_t numel = 0;
  };

  /// Pointers into `net` are held; the network must outlive the space and not
  /// be structurally modified. `geometry` is required when `spec` selects
  /// input or activation sites (their sizes depend on the evaluation batch).
  InjectionSpace(nn::Network& net, const TargetSpec& spec = {},
                 const ActivationGeometry* geometry = nullptr);

  std::int64_t total_elements() const { return total_elements_; }
  std::int64_t total_bits() const { return total_elements_ * kBitsPerWord; }
  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t num_layers() const { return num_layers_; }

  /// The tensor entry containing flat element `element`.
  const Entry& entry_of(std::int64_t element) const;
  float* element_ptr(std::int64_t element) const;

  /// Index of the first layer whose *execution* can differ from golden under
  /// `mask`: weight/bias/BN sites → owning layer, input sites → 0, activation
  /// sites of layer L → L+1 (layer L itself still runs golden; only its
  /// stored output is corrupted). Returns num_layers() for an empty mask —
  /// nothing needs re-running and the cached golden logits stand.
  std::int64_t first_replay_layer(const FaultMask& mask) const;

  /// XORs every bit of the mask into the network state. Self-inverse:
  /// applying the same mask twice restores the golden state exactly.
  /// Check-fails on input/activation sites (transient — no state to XOR).
  void apply(const FaultMask& mask) const;
  /// XORs an explicit list of flat bit indices (an MCMC move delta).
  void apply_bits(std::span<const std::int64_t> flat_bits) const;

  /// Draws a mask with independent Bernoulli(profile.bit_prob(b, p)) flips.
  FaultMask sample_mask(const AvfProfile& profile, double p,
                        util::Rng& rng) const;

  /// Log prior probability of a mask under the Bernoulli model (includes the
  /// constant from all clean bits; -inf if the mask uses a zero-prob bit).
  double log_prior(const FaultMask& mask, const AvfProfile& profile,
                   double p) const;

  /// Change in log prior from toggling one bit into the mask: log(p_b/(1-p_b)).
  double log_prior_toggle_delta(std::int64_t flat_bit,
                                const AvfProfile& profile, double p) const;

  // --- Selective protection (hardening) --------------------------------------
  // Marks elements as protected: hardened cells (ECC/duplication) that faults
  // cannot touch. sample_mask never selects them; their bits have zero prior
  // probability. Supports the §III application of the boundary analysis —
  // "set a threshold on the regions ... that need more protection".

  /// Replaces the protected set (flat element indices; deduped internally).
  void protect_elements(std::vector<std::int64_t> elements);
  bool is_protected(std::int64_t element) const;
  std::size_t num_protected() const { return protected_.size(); }
  const std::vector<std::int64_t>& protected_elements() const {
    return protected_;
  }

 private:
  std::vector<Entry> entries_;
  std::int64_t total_elements_ = 0;
  std::size_t num_layers_ = 0;
  std::vector<std::int64_t> protected_;  // sorted, unique
};

/// Corrupts an activation/input tensor in flight with Bernoulli bit flips —
/// the paper's fault model applied to "inputs, intermediate activations and
/// outputs". Returns the number of flipped bits.
std::size_t corrupt_tensor(tensor::Tensor& t, const AvfProfile& profile,
                           double p, util::Rng& rng);

}  // namespace bdlfi::fault
