// Architectural Vulnerability Factor profiles.
//
// The paper sets the per-bit Bernoulli probability "based on AVF". An
// AvfProfile assigns each of the 32 bit positions a relative vulnerability
// weight in [0, 1]; the effective flip probability of bit b at base rate p is
// clamp(p * weight[b]). The default profile is uniform (weight 1 everywhere),
// which is what the paper's sweeps vary; the other factories model memories
// where some fields are protected (e.g. parity on exponents) or where only a
// subfield is resident in vulnerable storage.
#pragma once

#include <array>
#include <string>

#include "fault/bits.h"

namespace bdlfi::fault {

class AvfProfile {
 public:
  /// All 32 bits equally vulnerable (the paper's model).
  static AvfProfile uniform();
  /// Exponent bits `factor`× more vulnerable than mantissa; sign in between.
  static AvfProfile exponent_weighted(double factor = 4.0);
  /// Only mantissa bits flip (exponent/sign protected, e.g. by ECC slice).
  static AvfProfile mantissa_only();
  /// Only sign + exponent flip (high-impact subset).
  static AvfProfile sign_exponent_only();

  /// Effective flip probability of bit `bit` at base rate `p` (clamped [0,1]).
  double bit_prob(int bit, double p) const;
  double weight(int bit) const { return weights_.at(static_cast<std::size_t>(bit)); }

  /// Expected flipped bits per 32-bit word at base rate p.
  double expected_flips_per_word(double p) const;

  const std::string& name() const { return name_; }

 private:
  AvfProfile(std::string name, std::array<double, kBitsPerWord> weights)
      : name_(std::move(name)), weights_(weights) {}

  std::string name_;
  std::array<double, kBitsPerWord> weights_{};
};

}  // namespace bdlfi::fault
