#include "fault/space.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/backend/backend.h"
#include "util/check.h"

namespace bdlfi::fault {

namespace {

std::string layer_of(const std::string& param_name) {
  const auto dot = param_name.find('.');
  return dot == std::string::npos ? param_name : param_name.substr(0, dot);
}

}  // namespace

bool TargetSpec::matches(const std::string& param_name,
                         nn::ParamRole role) const {
  if (!include_params) return false;
  if (!matches_layer(layer_of(param_name))) return false;
  const bool is_buffer = role == nn::ParamRole::kBnRunningMean ||
                         role == nn::ParamRole::kBnRunningVar;
  if (is_buffer) return include_buffers;
  if (!roles.empty()) {
    return std::find(roles.begin(), roles.end(), role) != roles.end();
  }
  return true;
}

bool TargetSpec::matches_layer(const std::string& layer_name) const {
  return layer_names.empty() ||
         std::find(layer_names.begin(), layer_names.end(), layer_name) !=
             layer_names.end();
}

InjectionSpace::InjectionSpace(nn::Network& net, const TargetSpec& spec,
                               const ActivationGeometry* geometry) {
  num_layers_ = net.num_layers();
  // Layer index of each parameter prefix, for first_replay_layer.
  auto layer_index = [&](const std::string& name) -> std::int64_t {
    const std::string layer = layer_of(name);
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
      if (net.layer_name(i) == layer) return static_cast<std::int64_t>(i);
    }
    return 0;  // unknown prefix: conservatively force a full replay
  };
  auto add_refs = [&](const std::vector<nn::ParamRef>& refs) {
    for (const auto& r : refs) {
      if (!spec.matches(r.name, r.role)) continue;
      entries_.push_back({r.name, r.role, r.value, total_elements_,
                          SiteKind::kParam, layer_index(r.name),
                          r.value->numel()});
      total_elements_ += r.value->numel();
    }
  };
  add_refs(net.params());
  if (spec.include_buffers) add_refs(net.buffers());
  if (spec.include_input) {
    BDLFI_CHECK_MSG(geometry != nullptr && geometry->input_numel > 0,
                    "input fault sites need an ActivationGeometry");
    entries_.push_back({"<input>", nn::ParamRole::kWeight, nullptr,
                        total_elements_, SiteKind::kInput, -1,
                        geometry->input_numel});
    total_elements_ += geometry->input_numel;
  }
  if (spec.include_activations) {
    BDLFI_CHECK_MSG(geometry != nullptr &&
                        geometry->layer_numel.size() == net.num_layers(),
                    "activation fault sites need an ActivationGeometry");
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
      if (!spec.matches_layer(net.layer_name(i))) continue;
      const std::int64_t n = geometry->layer_numel[i];
      if (n <= 0) continue;
      entries_.push_back({net.layer_name(i) + ".act",
                          nn::ParamRole::kWeight, nullptr, total_elements_,
                          SiteKind::kActivation, static_cast<std::int64_t>(i),
                          n});
      total_elements_ += n;
    }
  }
  if (spec.include_compute) {
    BDLFI_CHECK_MSG(geometry != nullptr &&
                        geometry->layer_numel.size() == net.num_layers(),
                    "compute fault sites need an ActivationGeometry");
    // One site range per top-level GEMM-bearing layer, addressing its raw
    // MAC output (same geometry as the layer's activation, but struck before
    // bias/BN/activation, mid-kernel). Blocks are excluded: their output is
    // a residual sum, not a GEMM result.
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
      if (!spec.matches_layer(net.layer_name(i))) continue;
      const std::string kind = net.layer_kind(i);
      if (kind != "dense" && kind != "conv") continue;
      const std::int64_t n = geometry->layer_numel[i];
      if (n <= 0) continue;
      entries_.push_back({net.layer_name(i) + ".mac",
                          nn::ParamRole::kWeight, nullptr, total_elements_,
                          SiteKind::kCompute, static_cast<std::int64_t>(i),
                          n});
      total_elements_ += n;
    }
  }
  BDLFI_CHECK_MSG(total_elements_ > 0,
                  "TargetSpec selects no fault targets");
}

std::int64_t InjectionSpace::first_replay_layer(const FaultMask& mask) const {
  auto first = static_cast<std::int64_t>(num_layers_);
  for (std::int64_t flat : mask.bits()) {
    const Entry& e = entry_of(flat / kBitsPerWord);
    std::int64_t layer = 0;
    switch (e.site) {
      case SiteKind::kParam:
        layer = e.layer;
        break;
      case SiteKind::kInput:
        layer = 0;
        break;
      case SiteKind::kActivation:
        layer = e.layer + 1;
        break;
      case SiteKind::kCompute:
        // The fault strikes inside layer e.layer's own GEMM: that layer must
        // re-run (on its golden input, so the cached prefix still applies).
        layer = e.layer;
        break;
    }
    first = std::min(first, layer);
    if (first == 0) break;
  }
  return first;
}

const InjectionSpace::Entry& InjectionSpace::entry_of(
    std::int64_t element) const {
  BDLFI_DCHECK(element >= 0 && element < total_elements_);
  // Binary search over entry offsets: last entry with offset <= element.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), element,
      [](std::int64_t e, const Entry& entry) { return e < entry.offset; });
  BDLFI_DCHECK(it != entries_.begin());
  return *(it - 1);
}

void InjectionSpace::apply(const FaultMask& mask) const {
  apply_bits(mask.bits());
}

void InjectionSpace::apply_bits(
    std::span<const std::int64_t> flat_bits) const {
  // Resolve sites into (pointer, xor-word) batches and hand them to the
  // active kernel backend; the stack buffer keeps typical masks (a handful
  // of flips) allocation-free.
  constexpr std::size_t kBatch = 128;
  float* ptrs[kBatch];
  std::uint32_t words[kBatch];
  std::size_t count = 0;
  const auto& be = tensor::backend::active();
  for (std::int64_t flat : flat_bits) {
    const FaultSite site = FaultSite::from_flat(flat);
    ptrs[count] = element_ptr(site.element);
    words[count] = std::uint32_t{1} << site.bit;
    if (++count == kBatch) {
      be.mask_xor(ptrs, words, count);
      count = 0;
    }
  }
  if (count > 0) be.mask_xor(ptrs, words, count);
}

float* InjectionSpace::element_ptr(std::int64_t element) const {
  const Entry& entry = entry_of(element);
  BDLFI_CHECK_MSG(entry.site == SiteKind::kParam,
                  "input/activation/compute sites are transient: apply them "
                  "via the mask-evaluation pipeline, not by persistent XOR");
  return entry.value->data() + (element - entry.offset);
}

FaultMask InjectionSpace::sample_mask(const AvfProfile& profile, double p,
                                      util::Rng& rng) const {
  std::vector<std::int64_t> flips;
  for (int bit = 0; bit < kBitsPerWord; ++bit) {
    const double pb = profile.bit_prob(bit, p);
    if (pb <= 0.0) continue;
    // Geometric skipping across the element axis for this bit position.
    std::int64_t element = static_cast<std::int64_t>(rng.geometric(pb));
    while (element < total_elements_) {
      if (!is_protected(element)) {
        flips.push_back(element * kBitsPerWord + bit);
      }
      element += 1 + static_cast<std::int64_t>(rng.geometric(pb));
    }
  }
  return FaultMask{std::move(flips)};
}

void InjectionSpace::protect_elements(std::vector<std::int64_t> elements) {
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  for (std::int64_t e : elements) {
    BDLFI_CHECK_MSG(e >= 0 && e < total_elements_,
                    "protected element out of range");
  }
  protected_ = std::move(elements);
}

bool InjectionSpace::is_protected(std::int64_t element) const {
  return std::binary_search(protected_.begin(), protected_.end(), element);
}

double InjectionSpace::log_prior(const FaultMask& mask,
                                 const AvfProfile& profile, double p) const {
  double lp = 0.0;
  // Clean-bit constant: every unprotected bit of every element unflipped.
  // (Protected bits never flip — probability-1 events contribute 0.)
  const auto vulnerable =
      static_cast<double>(total_elements_ -
                          static_cast<std::int64_t>(protected_.size()));
  for (int bit = 0; bit < kBitsPerWord; ++bit) {
    const double pb = profile.bit_prob(bit, p);
    if (pb >= 1.0) {
      // All such bits MUST be flipped; the constant is handled per flip below.
      continue;
    }
    lp += vulnerable * std::log1p(-pb);
  }
  for (std::int64_t flat : mask.bits()) {
    lp += log_prior_toggle_delta(flat, profile, p);
  }
  // Consistency: masks using zero-probability bits have -inf prior; masks
  // missing probability-one bits are not detected here (callers sampling from
  // the prior never produce them).
  return lp;
}

double InjectionSpace::log_prior_toggle_delta(std::int64_t flat_bit,
                                              const AvfProfile& profile,
                                              double p) const {
  if (is_protected(flat_bit / kBitsPerWord)) {
    return -std::numeric_limits<double>::infinity();
  }
  const int bit = static_cast<int>(flat_bit % kBitsPerWord);
  const double pb = profile.bit_prob(bit, p);
  if (pb <= 0.0) return -std::numeric_limits<double>::infinity();
  if (pb >= 1.0) return std::numeric_limits<double>::infinity();
  return std::log(pb) - std::log1p(-pb);
}

std::size_t corrupt_tensor(tensor::Tensor& t, const AvfProfile& profile,
                           double p, util::Rng& rng) {
  std::size_t flips = 0;
  const std::int64_t n = t.numel();
  for (int bit = 0; bit < kBitsPerWord; ++bit) {
    const double pb = profile.bit_prob(bit, p);
    if (pb <= 0.0) continue;
    std::int64_t element = static_cast<std::int64_t>(rng.geometric(pb));
    while (element < n) {
      t[element] = flip_bit(t[element], bit);
      ++flips;
      element += 1 + static_cast<std::int64_t>(rng.geometric(pb));
    }
  }
  return flips;
}

}  // namespace bdlfi::fault
