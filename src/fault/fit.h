// Physical fault-rate units.
//
// Campaign sweeps are parameterized by a dimensionless per-bit flip
// probability p; hardware reliability data comes as FIT rates (failures per
// 10^9 device-hours, usually quoted per megabit of SRAM/DRAM). These helpers
// convert between the two so campaign results can be stated against real
// soft-error environments (e.g. "at sea level, 600 FIT/Mb, a 90-minute
// mission exposes each bit to p ≈ 5e-11").
#pragma once

#include <cstdint>

namespace bdlfi::fault {

inline constexpr double kHoursPerFitInterval = 1e9;
inline constexpr double kBitsPerMegabit = 1'048'576.0;

/// Per-bit upset probability over an exposure window.
/// fit_per_mb: upsets per 1e9 hours per megabit; exposure_hours: mission time.
/// Valid for small rates (linearized Poisson); exact form available below.
constexpr double fit_to_bit_probability(double fit_per_mb,
                                        double exposure_hours) {
  const double upsets_per_bit_hour =
      fit_per_mb / kHoursPerFitInterval / kBitsPerMegabit;
  return upsets_per_bit_hour * exposure_hours;
}

/// Inverse of fit_to_bit_probability.
constexpr double bit_probability_to_fit(double p, double exposure_hours) {
  return p / exposure_hours * kHoursPerFitInterval * kBitsPerMegabit;
}

/// Expected upsets across a whole model over the window.
constexpr double expected_model_upsets(double fit_per_mb,
                                       double exposure_hours,
                                       std::int64_t model_bits) {
  return fit_to_bit_probability(fit_per_mb, exposure_hours) *
         static_cast<double>(model_bits);
}

/// Exposure (hours) after which the model accumulates on average one upset —
/// a natural campaign operating point ("inject what one scrubbing interval
/// accumulates").
constexpr double hours_to_one_upset(double fit_per_mb,
                                    std::int64_t model_bits) {
  const double per_hour = fit_to_bit_probability(fit_per_mb, 1.0) *
                          static_cast<double>(model_bits);
  return per_hour > 0.0 ? 1.0 / per_hour : 0.0;
}

}  // namespace bdlfi::fault
