#include "fault/avf.h"

#include <algorithm>

#include "util/check.h"

namespace bdlfi::fault {

AvfProfile AvfProfile::uniform() {
  std::array<double, kBitsPerWord> w{};
  w.fill(1.0);
  return AvfProfile{"uniform", w};
}

AvfProfile AvfProfile::exponent_weighted(double factor) {
  BDLFI_CHECK(factor > 0.0);
  std::array<double, kBitsPerWord> w{};
  for (int b = 0; b < kBitsPerWord; ++b) {
    if (is_exponent_bit(b)) {
      w[static_cast<std::size_t>(b)] = 1.0;
    } else if (is_sign_bit(b)) {
      w[static_cast<std::size_t>(b)] = 0.5 + 0.5 / factor;
    } else {
      w[static_cast<std::size_t>(b)] = 1.0 / factor;
    }
  }
  return AvfProfile{"exponent_weighted", w};
}

AvfProfile AvfProfile::mantissa_only() {
  std::array<double, kBitsPerWord> w{};
  for (int b = 0; b < kBitsPerWord; ++b) {
    w[static_cast<std::size_t>(b)] = is_mantissa_bit(b) ? 1.0 : 0.0;
  }
  return AvfProfile{"mantissa_only", w};
}

AvfProfile AvfProfile::sign_exponent_only() {
  std::array<double, kBitsPerWord> w{};
  for (int b = 0; b < kBitsPerWord; ++b) {
    w[static_cast<std::size_t>(b)] =
        (is_sign_bit(b) || is_exponent_bit(b)) ? 1.0 : 0.0;
  }
  return AvfProfile{"sign_exponent_only", w};
}

double AvfProfile::bit_prob(int bit, double p) const {
  BDLFI_DCHECK(bit >= 0 && bit < kBitsPerWord);
  return std::clamp(p * weights_[static_cast<std::size_t>(bit)], 0.0, 1.0);
}

double AvfProfile::expected_flips_per_word(double p) const {
  double e = 0.0;
  for (int b = 0; b < kBitsPerWord; ++b) e += bit_prob(b, p);
  return e;
}

}  // namespace bdlfi::fault
