#include "fault/mask.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace bdlfi::fault {

FaultMask::FaultMask(std::vector<std::int64_t> flat_bits)
    : bits_(std::move(flat_bits)) {
  std::sort(bits_.begin(), bits_.end());
  bits_.erase(std::unique(bits_.begin(), bits_.end()), bits_.end());
}

bool FaultMask::contains(std::int64_t flat_bit) const {
  return std::binary_search(bits_.begin(), bits_.end(), flat_bit);
}

bool FaultMask::toggle(std::int64_t flat_bit) {
  auto it = std::lower_bound(bits_.begin(), bits_.end(), flat_bit);
  if (it != bits_.end() && *it == flat_bit) {
    bits_.erase(it);
    return false;
  }
  bits_.insert(it, flat_bit);
  return true;
}

void FaultMask::insert(std::int64_t flat_bit) {
  auto it = std::lower_bound(bits_.begin(), bits_.end(), flat_bit);
  if (it == bits_.end() || *it != flat_bit) bits_.insert(it, flat_bit);
}

void FaultMask::erase(std::int64_t flat_bit) {
  auto it = std::lower_bound(bits_.begin(), bits_.end(), flat_bit);
  if (it != bits_.end() && *it == flat_bit) bits_.erase(it);
}

std::vector<std::int64_t> FaultMask::symmetric_difference(const FaultMask& a,
                                                          const FaultMask& b) {
  std::vector<std::int64_t> out;
  std::set_symmetric_difference(a.bits_.begin(), a.bits_.end(),
                                b.bits_.begin(), b.bits_.end(),
                                std::back_inserter(out));
  return out;
}

std::string FaultMask::to_string(std::size_t max_sites) const {
  std::ostringstream out;
  out << "FaultMask{" << bits_.size() << " flips";
  const std::size_t n = std::min(max_sites, bits_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const FaultSite site = FaultSite::from_flat(bits_[i]);
    out << (i == 0 ? ": " : ", ") << site.element << ':' << site.bit;
  }
  if (bits_.size() > n) out << ", ...";
  out << '}';
  return out.str();
}

}  // namespace bdlfi::fault
