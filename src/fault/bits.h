// IEEE-754 binary32 bit manipulation.
//
// The paper's fault model: "transient faults in the memory units storing NN
// parameters, inputs, intermediate activations and outputs", each bit an
// independent Bernoulli(p), applied by XOR. These helpers implement that XOR
// on float storage without invoking undefined behaviour (bit_cast, not
// pointer punning).
#pragma once

#include <bit>
#include <cstdint>

namespace bdlfi::fault {

inline constexpr int kBitsPerWord = 32;
inline constexpr int kSignBit = 31;
inline constexpr int kExponentLow = 23;   // bits 23..30 are the exponent
inline constexpr int kExponentHigh = 30;

constexpr std::uint32_t float_to_bits(float v) {
  return std::bit_cast<std::uint32_t>(v);
}

constexpr float bits_to_float(std::uint32_t bits) {
  return std::bit_cast<float>(bits);
}

/// Flips one bit of a float's binary32 encoding. Self-inverse.
constexpr float flip_bit(float v, int bit) {
  return bits_to_float(float_to_bits(v) ^ (std::uint32_t{1} << bit));
}

/// Applies a 32-bit XOR error word (the paper's e ⊙ W).
constexpr float xor_bits(float v, std::uint32_t error_word) {
  return bits_to_float(float_to_bits(v) ^ error_word);
}

constexpr bool is_sign_bit(int bit) { return bit == kSignBit; }
constexpr bool is_exponent_bit(int bit) {
  return bit >= kExponentLow && bit <= kExponentHigh;
}
constexpr bool is_mantissa_bit(int bit) { return bit < kExponentLow; }

}  // namespace bdlfi::fault
