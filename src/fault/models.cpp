#include "fault/models.h"

#include <algorithm>

#include "util/check.h"

namespace bdlfi::fault {

FaultMask BurstSampler::sample(const InjectionSpace& space,
                               util::Rng& rng) const {
  BDLFI_CHECK(event_rate_ > 0.0 && event_rate_ < 1.0);
  BDLFI_CHECK(burst_length_ >= 1);
  std::vector<std::int64_t> flips;
  const std::int64_t total_bits = space.total_bits();
  // Events seed at rate event_rate over the flat bit axis; each burst covers
  // the following burst_length bits (clipped at the space end). Bursts may
  // overlap; overlapping coverage XORs back out, which is physically what two
  // disturbances of the same cell do.
  std::int64_t seed = static_cast<std::int64_t>(rng.geometric(event_rate_));
  while (seed < total_bits) {
    const std::int64_t end =
        std::min(total_bits, seed + static_cast<std::int64_t>(burst_length_));
    for (std::int64_t b = seed; b < end; ++b) flips.push_back(b);
    seed += 1 + static_cast<std::int64_t>(rng.geometric(event_rate_));
  }
  // FaultMask's constructor dedups; XOR-semantics for double hits are handled
  // by keeping one instance (flip twice = no flip → drop both). Implement the
  // true XOR fold here.
  std::sort(flips.begin(), flips.end());
  std::vector<std::int64_t> folded;
  for (std::size_t i = 0; i < flips.size();) {
    std::size_t j = i;
    while (j < flips.size() && flips[j] == flips[i]) ++j;
    if ((j - i) % 2 == 1) folded.push_back(flips[i]);
    i = j;
  }
  return FaultMask{std::move(folded)};
}

FaultMask StuckAtSampler::sample(const InjectionSpace& space,
                                 util::Rng& rng) const {
  BDLFI_CHECK(rate_ > 0.0 && rate_ < 1.0);
  std::vector<std::int64_t> flips;
  const std::int64_t total_bits = space.total_bits();
  std::int64_t bit = static_cast<std::int64_t>(rng.geometric(rate_));
  while (bit < total_bits) {
    const FaultSite site = FaultSite::from_flat(bit);
    const std::uint32_t word = float_to_bits(*space.element_ptr(site.element));
    const bool currently_one = (word >> site.bit) & 1u;
    // The cell is stuck; the observable fault is a flip only when the golden
    // bit disagrees with the stuck level.
    if (currently_one != stuck_to_one_) flips.push_back(bit);
    bit += 1 + static_cast<std::int64_t>(rng.geometric(rate_));
  }
  return FaultMask{std::move(flips)};
}

FaultMask RandomWordSampler::sample(const InjectionSpace& space,
                                    util::Rng& rng) const {
  BDLFI_CHECK(word_rate_ > 0.0 && word_rate_ < 1.0);
  std::vector<std::int64_t> flips;
  const std::int64_t total_words = space.total_elements();
  std::int64_t word_idx = static_cast<std::int64_t>(rng.geometric(word_rate_));
  while (word_idx < total_words) {
    const std::uint32_t golden = float_to_bits(*space.element_ptr(word_idx));
    const auto random_bits = static_cast<std::uint32_t>(rng());
    const std::uint32_t delta = golden ^ random_bits;
    for (int b = 0; b < kBitsPerWord; ++b) {
      if ((delta >> b) & 1u) flips.push_back(word_idx * kBitsPerWord + b);
    }
    word_idx += 1 + static_cast<std::int64_t>(rng.geometric(word_rate_));
  }
  return FaultMask{std::move(flips)};
}

FaultMask ComputeFaultSampler::sample(const InjectionSpace& space,
                                      util::Rng& rng) const {
  BDLFI_CHECK(p_ > 0.0 && p_ < 1.0);
  std::vector<std::int64_t> flips;
  // Geometric skipping restricted to the kCompute entry ranges: one pass per
  // entry over its flat bit window. Non-compute entries of a mixed space are
  // untouched — this sampler models upsets in the datapath only.
  for (const InjectionSpace::Entry& e : space.entries()) {
    if (e.site != InjectionSpace::SiteKind::kCompute) continue;
    const std::int64_t bits = e.numel * kBitsPerWord;
    const std::int64_t base = e.offset * kBitsPerWord;
    std::int64_t bit = static_cast<std::int64_t>(rng.geometric(p_));
    while (bit < bits) {
      flips.push_back(base + bit);
      bit += 1 + static_cast<std::int64_t>(rng.geometric(p_));
    }
  }
  return FaultMask{std::move(flips)};
}

FaultMask ZeroWordSampler::sample(const InjectionSpace& space,
                                  util::Rng& rng) const {
  BDLFI_CHECK(word_rate_ > 0.0 && word_rate_ < 1.0);
  std::vector<std::int64_t> flips;
  const std::int64_t total_words = space.total_elements();
  std::int64_t word_idx = static_cast<std::int64_t>(rng.geometric(word_rate_));
  while (word_idx < total_words) {
    const std::uint32_t golden = float_to_bits(*space.element_ptr(word_idx));
    // XOR delta from golden to 0x00000000 is the golden bits themselves.
    for (int b = 0; b < kBitsPerWord; ++b) {
      if ((golden >> b) & 1u) flips.push_back(word_idx * kBitsPerWord + b);
    }
    word_idx += 1 + static_cast<std::int64_t>(rng.geometric(word_rate_));
  }
  return FaultMask{std::move(flips)};
}

WeightedSiteSampler::WeightedSiteSampler(std::vector<double> layer_weights,
                                         std::array<double, 32> bit_weights,
                                         std::size_t min_flips,
                                         std::size_t max_flips)
    : layer_weights_(std::move(layer_weights)),
      bit_weights_(bit_weights),
      min_flips_(min_flips),
      max_flips_(max_flips) {
  BDLFI_CHECK(min_flips_ >= 1 && max_flips_ >= min_flips_);
  double bit_total = 0.0;
  for (const double w : bit_weights_) {
    BDLFI_CHECK(w >= 0.0);
    bit_total += w;
  }
  BDLFI_CHECK_MSG(bit_total > 0.0,
                  "WeightedSiteSampler: all bit weights are zero");
}

FaultMask WeightedSiteSampler::sample(const InjectionSpace& space,
                                      util::Rng& rng) const {
  // Cumulative weight over the space's kParam entries; an entry's share is
  // its layer weight split across the layer's tensors by element count, so
  // (entry, then uniform element) is uniform over the layer's elements. The
  // entry list is tens of tensors — rebuilding per sample is noise next to
  // the network evaluation the mask feeds.
  std::vector<const InjectionSpace::Entry*> entries;
  std::vector<double> cum;
  double total = 0.0;
  for (const InjectionSpace::Entry& e : space.entries()) {
    if (e.site != InjectionSpace::SiteKind::kParam || e.numel <= 0) continue;
    double w = 0.0;
    if (e.layer >= 0 &&
        static_cast<std::size_t>(e.layer) < layer_weights_.size()) {
      w = layer_weights_[static_cast<std::size_t>(e.layer)];
    }
    if (w <= 0.0) continue;
    total += w * static_cast<double>(e.numel);
    entries.push_back(&e);
    cum.push_back(total);
  }
  FaultMask mask;
  if (total <= 0.0) return mask;

  std::array<double, 32> bit_cum{};
  double bit_total = 0.0;
  for (int b = 0; b < kBitsPerWord; ++b) {
    bit_total += bit_weights_[static_cast<std::size_t>(b)];
    bit_cum[static_cast<std::size_t>(b)] = bit_total;
  }

  const std::size_t flips =
      min_flips_ + (max_flips_ > min_flips_
                        ? rng.below(max_flips_ - min_flips_ + 1)
                        : 0);
  for (std::size_t f = 0; f < flips; ++f) {
    // Bounded rejection of protected elements and duplicate bits: a heavily
    // protected or tiny space yields fewer flips instead of spinning.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const double u = rng.uniform() * total;
      const std::size_t idx = static_cast<std::size_t>(
          std::upper_bound(cum.begin(), cum.end(), u) - cum.begin());
      const InjectionSpace::Entry& e = *entries[std::min(idx, cum.size() - 1)];
      const std::int64_t element =
          e.offset + static_cast<std::int64_t>(
                         rng.below(static_cast<std::uint64_t>(e.numel)));
      if (space.is_protected(element)) continue;
      const double ub = rng.uniform() * bit_total;
      const int bit = static_cast<int>(
          std::upper_bound(bit_cum.begin(), bit_cum.end(), ub) -
          bit_cum.begin());
      const std::int64_t flat =
          element * kBitsPerWord + std::min(bit, kBitsPerWord - 1);
      if (mask.contains(flat)) continue;
      mask.insert(flat);
      break;
    }
  }
  return mask;
}

}  // namespace bdlfi::fault
