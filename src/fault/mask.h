// Fault masks: sparse sets of flipped bits.
//
// A FaultMask is the latent variable e of the paper's Bayesian network
// (Fig. 1-②): the set of bits whose XOR with the golden state produces the
// corrupted state W' = e ⊙ W. Masks are sparse — at realistic flip rates the
// overwhelming majority of bits are clean — and addressed by *flat bit index*
// within an InjectionSpace (element-major: bit = flat % 32).
//
// XOR application is self-inverse, so `apply` both injects and reverts; the
// MCMC kernels exploit this to move between mask states touching only the
// bits in the symmetric difference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace bdlfi::fault {

/// One flipped bit, resolved against a specific InjectionSpace.
struct FaultSite {
  std::int64_t element = 0;  // flat element index within the space
  int bit = 0;               // 0..31 within the binary32 word

  std::int64_t flat() const { return element * 32 + bit; }
  static FaultSite from_flat(std::int64_t flat) {
    return {flat / 32, static_cast<int>(flat % 32)};
  }
  friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

class FaultMask {
 public:
  FaultMask() = default;
  explicit FaultMask(std::vector<std::int64_t> flat_bits);

  std::size_t num_flips() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }
  bool contains(std::int64_t flat_bit) const;

  /// Adds the bit if absent, removes it if present. Returns true if the bit
  /// is set after the call.
  bool toggle(std::int64_t flat_bit);
  void insert(std::int64_t flat_bit);
  void erase(std::int64_t flat_bit);
  void clear() { bits_.clear(); }

  /// Sorted ascending flat bit indices.
  const std::vector<std::int64_t>& bits() const { return bits_; }

  /// Flat bits present in exactly one of the two masks (the XOR delta a
  /// sampler must apply to move from `a`'s state to `b`'s).
  static std::vector<std::int64_t> symmetric_difference(const FaultMask& a,
                                                        const FaultMask& b);

  friend bool operator==(const FaultMask&, const FaultMask&) = default;

  std::string to_string(std::size_t max_sites = 8) const;

 private:
  std::vector<std::int64_t> bits_;  // sorted, unique
};

}  // namespace bdlfi::fault
