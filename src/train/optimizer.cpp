#include "train/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace bdlfi::train {

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {}

void Sgd::step(const std::vector<ParamRef>& params) {
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const auto& p : params) velocity_.emplace_back(p.value->shape());
  }
  BDLFI_CHECK_MSG(velocity_.size() == params.size(),
                  "optimizer state / param list mismatch");
  const auto lr = static_cast<float>(lr_);
  const auto mom = static_cast<float>(momentum_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& p = params[i];
    BDLFI_CHECK(p.grad != nullptr);
    float* w = p.value->data();
    const float* g = p.grad->data();
    float* v = velocity_[i].data();
    for (std::int64_t j = 0; j < p.value->numel(); ++j) {
      const float grad = g[j] + wd * w[j];
      v[j] = mom * v[j] + grad;
      w[j] -= lr * v[j];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps,
           double weight_decay)
    : Optimizer(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {}

void Adam::step(const std::vector<ParamRef>& params) {
  if (m_.empty()) {
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (const auto& p : params) {
      m_.emplace_back(p.value->shape());
      v_.emplace_back(p.value->shape());
    }
  }
  BDLFI_CHECK_MSG(m_.size() == params.size(),
                  "optimizer state / param list mismatch");
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const auto lr = static_cast<float>(lr_ * std::sqrt(bias2) / bias1);
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  const auto eps = static_cast<float>(eps_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& p = params[i];
    BDLFI_CHECK(p.grad != nullptr);
    float* w = p.value->data();
    const float* g = p.grad->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::int64_t j = 0; j < p.value->numel(); ++j) {
      const float grad = g[j] + wd * w[j];
      m[j] = b1 * m[j] + (1.0f - b1) * grad;
      v[j] = b2 * v[j] + (1.0f - b2) * grad * grad;
      w[j] -= lr * m[j] / (std::sqrt(v[j]) + eps);
    }
  }
}

double CosineLr::lr_at(std::int64_t step, std::int64_t total_steps,
                       double base_lr) const {
  if (total_steps <= 1) return base_lr;
  const double t = static_cast<double>(step) /
                   static_cast<double>(total_steps - 1);
  const double cos_factor = 0.5 * (1.0 + std::cos(M_PI * std::min(1.0, t)));
  return base_lr * (floor_fraction_ + (1.0 - floor_fraction_) * cos_factor);
}

double StepLr::lr_at(std::int64_t step, std::int64_t /*total_steps*/,
                     double base_lr) const {
  const auto drops = every_ > 0 ? step / every_ : 0;
  return base_lr * std::pow(factor_, static_cast<double>(drops));
}

}  // namespace bdlfi::train
