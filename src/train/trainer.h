// Mini-batch trainer producing the paper's "golden run": a trained network
// whose weights the fault injector subsequently corrupts.
#pragma once

#include <functional>
#include <memory>

#include "data/dataset.h"
#include "nn/network.h"
#include "train/optimizer.h"

namespace bdlfi::train {

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  double lr = 1e-2;
  double momentum = 0.9;
  double weight_decay = 0.0;
  bool use_adam = false;
  bool cosine_schedule = true;
  /// Stop early once test accuracy reaches this (0 disables).
  double target_accuracy = 0.0;
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct EpochStats {
  std::size_t epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double lr = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double final_test_accuracy = 0.0;
};

/// Trains `net` in place on `train`, evaluating on `test` each epoch.
TrainResult fit(nn::Network& net, const data::Dataset& train,
                const data::Dataset& test, const TrainConfig& config);

/// Convenience: accuracy of `net` on a dataset, evaluated in mini-batches so
/// large datasets do not blow up activation memory.
double evaluate_accuracy(nn::Network& net, const data::Dataset& dataset,
                         std::size_t batch_size = 256);

}  // namespace bdlfi::train
