// Mini-batch trainer producing the paper's "golden run": a trained network
// whose weights the fault injector subsequently corrupts.
#pragma once

#include <functional>
#include <memory>

#include "data/dataset.h"
#include "nn/network.h"
#include "train/optimizer.h"

namespace bdlfi::train {

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  double lr = 1e-2;
  double momentum = 0.9;
  double weight_decay = 0.0;
  bool use_adam = false;
  bool cosine_schedule = true;
  /// Stop early once test accuracy reaches this (0 disables).
  double target_accuracy = 0.0;
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct EpochStats {
  std::size_t epoch = 0;
  double train_loss = 0.0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double lr = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double final_test_accuracy = 0.0;
  /// SIGINT/SIGTERM (util::interrupt) observed mid-training: the loop stopped
  /// at a mini-batch boundary, the partial epoch's stats are the last history
  /// entry, and the network holds the weights of the last completed update.
  bool interrupted = false;
};

/// Optional per-mini-batch callbacks threaded through the fit loop — the
/// attachment point for fault-aware fine-tuning (harden::FaultAwareTrainer),
/// which corrupts the forward pass and vetoes updates the corruption ruined.
struct TrainHooks {
  /// Runs after the batch is drawn, before the forward pass. Network state
  /// mutated here (e.g. an applied fault mask) is seen by forward + backward.
  std::function<void(std::size_t step)> before_forward;
  /// Runs after backward, before the optimizer step, with the batch loss.
  /// Restore any state mutated in before_forward here — the optimizer must
  /// step clean weights, or an XOR revert after the update would corrupt
  /// them. Return false to skip this update entirely (e.g. a non-finite loss
  /// from an injected exponent flip).
  std::function<bool(std::size_t step, double loss)> before_step;
};

/// Trains `net` in place on `train`, evaluating on `test` each epoch.
/// Cooperatively interruptible: when util::interrupt_requested() is observed
/// the loop stops at the next mini-batch boundary and returns the partial
/// result with `interrupted` set (matching campaign behavior).
TrainResult fit(nn::Network& net, const data::Dataset& train,
                const data::Dataset& test, const TrainConfig& config);

/// Hooked variant; `hooks` callbacks may be empty.
TrainResult fit(nn::Network& net, const data::Dataset& train,
                const data::Dataset& test, const TrainConfig& config,
                const TrainHooks& hooks);

/// Convenience: accuracy of `net` on a dataset, evaluated in mini-batches so
/// large datasets do not blow up activation memory.
double evaluate_accuracy(nn::Network& net, const data::Dataset& dataset,
                         std::size_t batch_size = 256);

}  // namespace bdlfi::train
