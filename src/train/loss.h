// Softmax cross-entropy loss on logits, fused with its gradient.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace bdlfi::train {

using tensor::Tensor;

struct LossResult {
  double loss = 0.0;            // mean over the batch
  Tensor grad_logits;           // d(mean loss)/d(logits), same shape as logits
};

/// logits: [N, C]; labels: N class ids in [0, C).
LossResult cross_entropy(const Tensor& logits,
                         std::span<const std::int64_t> labels);

}  // namespace bdlfi::train
