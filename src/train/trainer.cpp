#include "train/trainer.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "train/loss.h"
#include "util/check.h"
#include "util/interrupt.h"
#include "util/log.h"

namespace bdlfi::train {

double evaluate_accuracy(nn::Network& net, const data::Dataset& dataset,
                         std::size_t batch_size) {
  if (dataset.size() == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t begin = 0; begin < dataset.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, dataset.size());
    data::Dataset batch = dataset.slice(begin, end);
    const auto preds = net.predict(batch.inputs);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(dataset.size());
}

TrainResult fit(nn::Network& net, const data::Dataset& train,
                const data::Dataset& test, const TrainConfig& config) {
  return fit(net, train, test, config, TrainHooks{});
}

TrainResult fit(nn::Network& net, const data::Dataset& train,
                const data::Dataset& test, const TrainConfig& config,
                const TrainHooks& hooks) {
  BDLFI_CHECK(train.size() > 0);
  util::Rng rng{config.seed};

  std::unique_ptr<Optimizer> opt;
  if (config.use_adam) {
    opt = std::make_unique<Adam>(config.lr, 0.9, 0.999, 1e-8,
                                 config.weight_decay);
  } else {
    opt = std::make_unique<Sgd>(config.lr, config.momentum,
                                config.weight_decay);
  }
  std::unique_ptr<LrSchedule> schedule;
  if (config.cosine_schedule) {
    schedule = std::make_unique<CosineLr>();
  } else {
    schedule = std::make_unique<ConstantLr>();
  }

  data::BatchIterator batches(train, config.batch_size, rng);
  const auto steps_per_epoch =
      static_cast<std::int64_t>(batches.batches_per_epoch());
  const auto total_steps =
      steps_per_epoch * static_cast<std::int64_t>(config.epochs);

  auto params = net.params();
  TrainResult result;
  std::int64_t step = 0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    obs::TraceSpan epoch_span("train.epoch");
    batches.start_epoch();
    double loss_sum = 0.0;
    std::size_t loss_batches = 0;
    std::size_t hits = 0, seen = 0;
    data::Dataset batch;
    while (batches.next(batch)) {
      if (util::interrupt_requested()) {
        result.interrupted = true;
        break;
      }
      opt->set_lr(schedule->lr_at(step, total_steps, config.lr));
      net.zero_grad();
      if (hooks.before_forward) hooks.before_forward(static_cast<std::size_t>(step));
      Tensor logits = net.forward(batch.inputs, /*training=*/true);
      LossResult loss = cross_entropy(
          logits, std::span<const std::int64_t>(batch.labels));
      net.backward(loss.grad_logits);
      const bool take_step =
          !hooks.before_step ||
          hooks.before_step(static_cast<std::size_t>(step), loss.loss);
      if (take_step) opt->step(params);

      loss_sum += loss.loss;
      ++loss_batches;
      const auto preds = tensor::argmax_rows(logits);
      for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == batch.labels[i]) ++hits;
      }
      seen += preds.size();
      ++step;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_batches ? loss_sum / static_cast<double>(loss_batches) : 0.0;
    stats.train_accuracy =
        seen ? static_cast<double>(hits) / static_cast<double>(seen) : 0.0;
    stats.test_accuracy = evaluate_accuracy(net, test);
    stats.lr = opt->lr();
    if (obs::enabled()) {
      auto& reg = obs::MetricsRegistry::global();
      reg.counter("train.epochs").add();
      reg.gauge("train.loss").set(stats.train_loss);
      reg.gauge("train.train_accuracy").set(stats.train_accuracy);
      reg.gauge("train.test_accuracy").set(stats.test_accuracy);
    }
    result.history.push_back(stats);
    if (config.verbose) {
      BDLFI_LOG_INFO(
          "epoch %zu: loss=%.4f train_acc=%.3f test_acc=%.3f lr=%.5f", epoch,
          stats.train_loss, stats.train_accuracy, stats.test_accuracy,
          stats.lr);
    }
    if (result.interrupted) break;
    if (config.target_accuracy > 0.0 &&
        stats.test_accuracy >= config.target_accuracy) {
      break;
    }
  }
  result.final_test_accuracy =
      result.history.empty() ? 0.0 : result.history.back().test_accuracy;
  return result;
}

}  // namespace bdlfi::train
