#include "train/loss.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace bdlfi::train {

LossResult cross_entropy(const Tensor& logits,
                         std::span<const std::int64_t> labels) {
  BDLFI_CHECK(logits.shape().rank() == 2);
  const std::int64_t n = logits.shape()[0], c = logits.shape()[1];
  BDLFI_CHECK(static_cast<std::int64_t>(labels.size()) == n);

  // loss = -mean_i log_softmax(logits_i)[label_i]
  // grad  = (softmax - onehot) / n
  Tensor log_probs = tensor::log_softmax_rows(logits);
  LossResult result;
  result.grad_logits = Tensor{logits.shape()};
  const float inv_n = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    BDLFI_DCHECK(y >= 0 && y < c);
    const float* lp = log_probs.data() + i * c;
    float* g = result.grad_logits.data() + i * c;
    loss -= lp[y];
    for (std::int64_t j = 0; j < c; ++j) {
      g[j] = std::exp(lp[j]) * inv_n;
    }
    g[y] -= inv_n;
  }
  result.loss = loss / static_cast<double>(n);
  return result;
}

}  // namespace bdlfi::train
