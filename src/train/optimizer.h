// First-order optimizers over a network's ParamRef list.
//
// Optimizer state (momentum / Adam moments) is keyed by position in the
// parameter list, which Network::params() guarantees to be stable.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace bdlfi::train {

using nn::ParamRef;
using tensor::Tensor;

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using the gradients currently accumulated in `params`.
  virtual void step(const std::vector<ParamRef>& params) = 0;
  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

/// SGD with classical momentum and optional decoupled weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.9, double weight_decay = 0.0);
  void step(const std::vector<ParamRef>& params) override;

 private:
  double momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double weight_decay = 0.0);
  void step(const std::vector<ParamRef>& params) override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

/// Learning-rate schedules (multiplicative on the optimizer's base LR).
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual double lr_at(std::int64_t step, std::int64_t total_steps,
                       double base_lr) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  double lr_at(std::int64_t, std::int64_t, double base_lr) const override {
    return base_lr;
  }
};

/// Cosine decay from base_lr to base_lr * floor_fraction.
class CosineLr : public LrSchedule {
 public:
  explicit CosineLr(double floor_fraction = 0.01)
      : floor_fraction_(floor_fraction) {}
  double lr_at(std::int64_t step, std::int64_t total_steps,
               double base_lr) const override;

 private:
  double floor_fraction_;
};

/// Step decay: multiply by `factor` every `every` steps.
class StepLr : public LrSchedule {
 public:
  StepLr(std::int64_t every, double factor) : every_(every), factor_(factor) {}
  double lr_at(std::int64_t step, std::int64_t total_steps,
               double base_lr) const override;

 private:
  std::int64_t every_;
  double factor_;
};

}  // namespace bdlfi::train
