#include "bayes/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "train/loss.h"
#include "util/check.h"

namespace bdlfi::bayes {

std::vector<std::int64_t> SensitivityReport::top_fraction(
    double fraction) const {
  BDLFI_CHECK(fraction > 0.0 && fraction <= 1.0);
  const auto k = static_cast<std::size_t>(
      fraction * static_cast<double>(ranking.size()));
  return {ranking.begin(),
          ranking.begin() + static_cast<std::ptrdiff_t>(
                                std::max<std::size_t>(1, k))};
}

SensitivityReport compute_sensitivity(const nn::Network& golden,
                                      const fault::TargetSpec& spec,
                                      const tensor::Tensor& inputs,
                                      std::span<const std::int64_t> labels,
                                      SensitivityScore score) {
  nn::Network net = golden.clone();
  net.zero_grad();
  const tensor::Tensor logits = net.forward(inputs, /*training=*/true);
  const train::LossResult loss = train::cross_entropy(logits, labels);
  net.backward(loss.grad_logits);

  // Walk the parameters in InjectionSpace order (params() order filtered by
  // the spec) so element_scores align with the space's flat element axis.
  SensitivityReport report;
  for (const auto& ref : net.params()) {
    if (!spec.matches(ref.name, ref.role)) continue;
    BDLFI_CHECK_MSG(ref.grad != nullptr, "parameter without gradient");
    for (std::int64_t i = 0; i < ref.value->numel(); ++i) {
      const double w = (*ref.value)[i];
      const double g = (*ref.grad)[i];
      double s = 0.0;
      switch (score) {
        case SensitivityScore::kGradTimesWeight: s = std::abs(g * w); break;
        case SensitivityScore::kGradOnly: s = std::abs(g); break;
        case SensitivityScore::kWeightOnly: s = std::abs(w); break;
      }
      report.element_scores.push_back(s);
    }
  }
  BDLFI_CHECK_MSG(!report.element_scores.empty(),
                  "spec selects no parameters");

  report.ranking.resize(report.element_scores.size());
  for (std::size_t i = 0; i < report.ranking.size(); ++i) {
    report.ranking[i] = static_cast<std::int64_t>(i);
  }
  std::stable_sort(report.ranking.begin(), report.ranking.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return report.element_scores[static_cast<std::size_t>(a)] >
                            report.element_scores[static_cast<std::size_t>(b)];
                   });
  return report;
}

}  // namespace bdlfi::bayes
