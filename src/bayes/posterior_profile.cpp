#include "bayes/posterior_profile.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "fault/bits.h"
#include "obs/json.h"
#include "util/check.h"

namespace bdlfi::bayes {

namespace {

// Layer name of a kParam entry: the prefix before the first '.' of its
// parameter name ("fc1.weight" -> "fc1"), matching TargetSpec addressing.
std::string layer_name_of(const std::string& param_name) {
  const auto dot = param_name.find('.');
  return dot == std::string::npos ? param_name : param_name.substr(0, dot);
}

}  // namespace

PosteriorProfile::PosteriorProfile(const fault::InjectionSpace& space) {
  from_space_ = true;
  std::int64_t max_layer = -1;
  for (const auto& e : space.entries()) {
    if (e.site != fault::InjectionSpace::SiteKind::kParam) continue;
    max_layer = std::max(max_layer, e.layer);
  }
  layers_.resize(static_cast<std::size_t>(max_layer + 1));
  layer_tally_.assign(layers_.size(), 0.0);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].layer = static_cast<std::int64_t>(i);
  }
  for (const auto& e : space.entries()) {
    if (e.site != fault::InjectionSpace::SiteKind::kParam || e.layer < 0) {
      continue;
    }
    auto& layer = layers_[static_cast<std::size_t>(e.layer)];
    if (layer.name.empty()) layer.name = layer_name_of(e.name);
    layer.elements += e.numel;
    spans_.push_back({e.offset, e.offset + e.numel, e.layer});
  }
  std::sort(spans_.begin(), spans_.end(),
            [](const Span& a, const Span& b) { return a.begin < b.begin; });
}

void PosteriorProfile::add_sample(const fault::FaultMask& mask,
                                  double deviation) {
  BDLFI_CHECK_MSG(from_space_,
                  "add_sample on a profile not built from an InjectionSpace");
  BDLFI_CHECK(!finalized_);
  const double weight = 1.0 + std::max(0.0, deviation);
  for (const std::int64_t flat : mask.bits()) {
    const std::int64_t element = flat / fault::kBitsPerWord;
    const int bit = static_cast<int>(flat % fault::kBitsPerWord);
    // Span containing `element`, if any (non-param sites are skipped —
    // activation/input flips have no layer to protect persistently).
    const auto it = std::upper_bound(
        spans_.begin(), spans_.end(), element,
        [](std::int64_t e, const Span& s) { return e < s.begin; });
    if (it == spans_.begin()) continue;
    const Span& span = *(it - 1);
    if (element >= span.end || span.layer < 0) continue;
    layer_tally_[static_cast<std::size_t>(span.layer)] += weight;
    bit_tally_[static_cast<std::size_t>(bit)] += weight;
    ++layers_[static_cast<std::size_t>(span.layer)].flips;
    ++total_flips_;
  }
  ++samples_;
}

void PosteriorProfile::finalize() {
  if (finalized_) return;
  double layer_total = 0.0;
  for (const double t : layer_tally_) layer_total += t;
  if (layer_total > 0.0) {
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      layers_[i].mass = layer_tally_[i] / layer_total;
    }
  } else {
    // No flips observed: uniform over layers that expose elements.
    std::size_t populated = 0;
    for (const auto& l : layers_) populated += l.elements > 0 ? 1 : 0;
    for (auto& l : layers_) {
      l.mass = (populated > 0 && l.elements > 0)
                   ? 1.0 / static_cast<double>(populated)
                   : 0.0;
    }
  }
  double bit_total = 0.0;
  for (const double t : bit_tally_) bit_total += t;
  for (std::size_t b = 0; b < bit_mass_.size(); ++b) {
    bit_mass_[b] = bit_total > 0.0 ? bit_tally_[b] / bit_total : 1.0 / 32.0;
  }
  finalized_ = true;
}

double PosteriorProfile::layer_mass(std::int64_t layer) const {
  if (layer < 0 || static_cast<std::size_t>(layer) >= layers_.size()) {
    return 0.0;
  }
  return layers_[static_cast<std::size_t>(layer)].mass;
}

std::vector<double> PosteriorProfile::layer_weights(double smoothing) const {
  BDLFI_CHECK(finalized_);
  BDLFI_CHECK(smoothing >= 0.0 && smoothing <= 1.0);
  std::size_t populated = 0;
  for (const auto& l : layers_) populated += l.elements > 0 || l.mass > 0.0;
  const double floor =
      populated > 0 ? smoothing / static_cast<double>(populated) : 0.0;
  std::vector<double> w(layers_.size(), 0.0);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].elements > 0 || layers_[i].mass > 0.0) {
      w[i] = (1.0 - smoothing) * layers_[i].mass + floor;
    }
  }
  return w;
}

std::array<double, 32> PosteriorProfile::bit_weights(double smoothing) const {
  BDLFI_CHECK(finalized_);
  std::array<double, 32> w{};
  for (std::size_t b = 0; b < w.size(); ++b) {
    w[b] = (1.0 - smoothing) * bit_mass_[b] + smoothing / 32.0;
  }
  return w;
}

std::unique_ptr<fault::MaskSampler> PosteriorProfile::make_sampler(
    std::size_t min_flips, std::size_t max_flips, double smoothing) const {
  return std::make_unique<fault::WeightedSiteSampler>(
      layer_weights(smoothing), bit_weights(smoothing), min_flips, max_flips);
}

std::string PosteriorProfile::to_json() const {
  BDLFI_CHECK(finalized_);
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "bdlfi_posterior_profile");
  w.field("version", std::int64_t{1});
  w.field("samples", static_cast<std::uint64_t>(samples_));
  w.field("total_flips", static_cast<std::uint64_t>(total_flips_));
  w.key("layers").begin_array();
  for (const auto& l : layers_) {
    w.begin_object();
    w.field("layer", l.layer);
    w.field("name", l.name);
    w.field("elements", l.elements);
    w.field_exact("mass", l.mass);
    w.field("flips", static_cast<std::uint64_t>(l.flips));
    w.end_object();
  }
  w.end_array();
  w.key("bit_mass").begin_array();
  for (const double m : bit_mass_) w.number_exact(m);
  w.end_array();
  w.end_object();
  return w.str();
}

std::optional<PosteriorProfile> PosteriorProfile::from_json(
    const std::string& text, std::string* error) {
  const auto doc = obs::json_parse(text, error);
  if (!doc.has_value()) return std::nullopt;
  const auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  if (!doc->is_object()) return fail("profile root is not an object");
  const obs::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "bdlfi_posterior_profile") {
    return fail("missing/unknown schema tag");
  }
  const obs::JsonValue* version = doc->find("version");
  if (version == nullptr || !version->is_number() ||
      version->as_number() != 1.0) {
    return fail("unsupported profile version");
  }
  const obs::JsonValue* layers = doc->find("layers");
  const obs::JsonValue* bits = doc->find("bit_mass");
  if (layers == nullptr || !layers->is_array()) {
    return fail("missing layers array");
  }
  if (bits == nullptr || !bits->is_array() || bits->as_array().size() != 32) {
    return fail("bit_mass must be an array of 32 numbers");
  }
  PosteriorProfile profile;
  if (const obs::JsonValue* v = doc->find("samples");
      v != nullptr && v->is_number()) {
    profile.samples_ = static_cast<std::size_t>(v->as_number());
  }
  if (const obs::JsonValue* v = doc->find("total_flips");
      v != nullptr && v->is_number()) {
    profile.total_flips_ = static_cast<std::size_t>(v->as_number());
  }
  for (const auto& entry : layers->as_array()) {
    ProfileLayer l;
    const obs::JsonValue* layer = entry.find("layer");
    const obs::JsonValue* mass = entry.find("mass");
    if (layer == nullptr || !layer->is_number() || mass == nullptr ||
        !mass->is_number()) {
      return fail("layers[]: bad or missing layer/mass");
    }
    l.layer = static_cast<std::int64_t>(layer->as_number());
    l.mass = mass->as_number();
    if (const obs::JsonValue* v = entry.find("name");
        v != nullptr && v->is_string()) {
      l.name = v->as_string();
    }
    if (const obs::JsonValue* v = entry.find("elements");
        v != nullptr && v->is_number()) {
      l.elements = static_cast<std::int64_t>(v->as_number());
    }
    if (const obs::JsonValue* v = entry.find("flips");
        v != nullptr && v->is_number()) {
      l.flips = static_cast<std::size_t>(v->as_number());
    }
    if (l.layer < 0 ||
        static_cast<std::size_t>(l.layer) != profile.layers_.size()) {
      return fail("layers[] must be dense and in layer order");
    }
    profile.layers_.push_back(std::move(l));
  }
  std::size_t b = 0;
  for (const auto& m : bits->as_array()) {
    if (!m.is_number()) return fail("bit_mass[]: non-numeric entry");
    profile.bit_mass_[b++] = m.as_number();
  }
  profile.layer_tally_.assign(profile.layers_.size(), 0.0);
  profile.finalized_ = true;
  return profile;
}

bool PosteriorProfile::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_json() << "\n";
  return static_cast<bool>(out);
}

std::optional<PosteriorProfile> PosteriorProfile::load(const std::string& path,
                                                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_json(ss.str(), error);
}

}  // namespace bdlfi::bayes
