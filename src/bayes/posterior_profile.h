// Posterior criticality profile: the campaign-to-hardening bridge.
//
// An MCMC campaign over fault masks visits the bit patterns the posterior
// ranks most damaging. This summarizer tallies the retained masks
// (MhConfig/GibbsConfig::record_masks) into a per-layer / per-bit-position
// importance distribution — each flip weighted by the deviation its mask
// caused — that downstream hardening consumes two ways:
//   * fault-aware fine-tuning samples training-time bit flips from it
//     (fault::WeightedSiteSampler via make_sampler()), so the network learns
//     to tolerate its own most-critical faults;
//   * budgeted protection placement (harden::place_protection) ranks layers
//     by its mass when assigning range guards / per-layer ABFT.
// The profile serializes to JSON (schema "bdlfi_posterior_profile") so a
// campaign run and a hardening run can live in different processes.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/models.h"
#include "fault/space.h"

namespace bdlfi::bayes {

struct ProfileLayer {
  std::int64_t layer = -1;    // InjectionSpace layer index
  std::string name;           // network layer name
  std::int64_t elements = 0;  // kParam elements the space exposes for it
  double mass = 0.0;          // normalized deviation-weighted flip share
  std::size_t flips = 0;      // raw flip tally
};

class PosteriorProfile {
 public:
  /// A default-constructed profile only makes sense as a from_json target.
  PosteriorProfile() = default;

  /// Captures the space's layer geometry (element spans, names) so samples
  /// can be attributed; the space must outlive the add_sample phase only.
  explicit PosteriorProfile(const fault::InjectionSpace& space);

  /// Tallies one retained sample: every flipped bit's owning layer and bit
  /// position gain weight 1 + `deviation` (deviation from golden, %), so
  /// harmless flips still register but critical ones dominate. Only valid on
  /// a profile built from a space (not one loaded from JSON).
  void add_sample(const fault::FaultMask& mask, double deviation);

  /// Normalizes the tallies into mass distributions. A profile with no flips
  /// falls back to uniform mass (over layers with elements, and over bits) —
  /// hardening then degrades to uninformed but never divides by zero.
  void finalize();
  bool finalized() const { return finalized_; }

  std::size_t samples() const { return samples_; }
  std::size_t total_flips() const { return total_flips_; }
  /// Indexed by space layer index; mass sums to 1 after finalize().
  const std::vector<ProfileLayer>& layers() const { return layers_; }
  const std::array<double, 32>& bit_mass() const { return bit_mass_; }
  double layer_mass(std::int64_t layer) const;

  /// Sampler weights: (1 - smoothing) * mass + smoothing * uniform, so every
  /// layer/bit keeps a floor probability and hardening never tunnel-visions
  /// on the (finite) sample the campaign happened to visit.
  std::vector<double> layer_weights(double smoothing) const;
  std::array<double, 32> bit_weights(double smoothing) const;

  /// The profile as a fault model: posterior-weighted bit flips with
  /// uniform[min_flips, max_flips] flips per mask.
  std::unique_ptr<fault::MaskSampler> make_sampler(
      std::size_t min_flips = 1, std::size_t max_flips = 2,
      double smoothing = 0.05) const;

  std::string to_json() const;
  static std::optional<PosteriorProfile> from_json(const std::string& text,
                                                   std::string* error);
  bool save(const std::string& path) const;
  static std::optional<PosteriorProfile> load(const std::string& path,
                                              std::string* error);

 private:
  struct Span {
    std::int64_t begin = 0;  // flat element range [begin, end)
    std::int64_t end = 0;
    std::int64_t layer = -1;
  };

  std::vector<ProfileLayer> layers_;  // indexed by layer index
  std::array<double, 32> bit_mass_{};
  std::vector<double> layer_tally_;        // deviation-weighted, pre-finalize
  std::array<double, 32> bit_tally_{};
  std::vector<Span> spans_;  // kParam element spans; empty after from_json
  std::size_t samples_ = 0;
  std::size_t total_flips_ = 0;
  bool finalized_ = false;
  bool from_space_ = false;
};

}  // namespace bdlfi::bayes
