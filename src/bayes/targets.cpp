#include "bayes/targets.h"

namespace bdlfi::bayes {

std::optional<double> PriorTarget::analytic_toggle_delta(
    const FaultMask& current, std::int64_t flat_bit) {
  const double delta =
      net_.space().log_prior_toggle_delta(flat_bit, net_.profile(), p_);
  // Toggling *out* of the mask negates the insertion delta.
  return current.contains(flat_bit) ? -delta : delta;
}

double DeviationTemperedTarget::log_density(const FaultMask& mask) {
  const double prior = net_.log_prior(mask, p_);
  const MaskOutcome outcome = net_.evaluate_mask(mask);
  return prior + lambda_ * (outcome.deviation / 100.0);
}

}  // namespace bdlfi::bayes
