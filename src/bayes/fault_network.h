// BayesianFaultNetwork: the paper's core construct (Fig. 1-②).
//
// It couples (a) a deep copy of a trained "golden" network, (b) an
// InjectionSpace enumerating the Bernoulli fault variables {b_i} attached to
// the selected state bits, and (c) an evaluation set over which the effect of
// a concrete fault pattern e = {b_i} is measured. The corrupted state is
// W' = e ⊙ W (bitwise XOR); XOR's self-inverse property means a mask can be
// applied, measured, and reverted in O(#flips) without copying weights.
//
// Evaluation is *truncated* whenever possible: the golden per-layer
// activations of the eval batch are recorded once (ActivationCache), and a
// mask whose earliest affected layer is L replays only layers [L, depth)
// from the cached prefix — an exact O(depth-L) shortcut, since eval-mode
// inference is deterministic. Masks touching the input (or networks whose
// cache exceeds the memory budget) fall back to the full forward.
//
// The network owned here is private to the instance, so independent MCMC
// chains each hold their own BayesianFaultNetwork and run lock-free in
// parallel.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/space.h"
#include "nn/activation_cache.h"
#include "nn/network.h"

namespace bdlfi::bayes {

class MultiMaskEvaluator;

using fault::AvfProfile;
using fault::FaultMask;
using fault::InjectionSpace;
using fault::TargetSpec;

/// Whole-evaluation outcome class of one fault pattern — the classic FI
/// taxonomy, driven only by *actual detection signals* (ABFT checksum
/// mismatches and non-finite output logits; RangeGuard clamps are silent and
/// never count):
///   kMasked    — no detector fired and every prediction matched golden;
///   kSdc       — no detector fired but some prediction silently changed;
///   kDetected  — a detector fired and the corruption was not (fully)
///                repaired: an unrecoverable DUE the system can flag;
///   kCorrected — ABFT recovery repaired every corrupted row and the final
///                predictions match golden exactly.
enum class FaultOutcome { kMasked, kSdc, kDetected, kCorrected };

const char* fault_outcome_name(FaultOutcome outcome);

/// Outcome of evaluating one concrete fault pattern, including the classic
/// fault-injection outcome taxonomy per evaluation sample:
///   benign   — prediction unchanged from the golden run;
///   SDC      — prediction silently changed (finite logits, wrong answer);
///   detected — non-finite values (NaN/Inf) reached the output logits, i.e.
///              the corruption is detectable by a cheap output check.
struct MaskOutcome {
  /// % of evaluation labels misclassified under the corrupted weights.
  double classification_error = 0.0;
  /// % of predictions that differ from the *golden* predictions (the silent
  /// data corruption rate — insensitive to the model's baseline error).
  double deviation = 0.0;
  /// % of samples whose output logits contain NaN/Inf (detectable).
  double detected = 0.0;
  /// % of samples with a silently changed, finite-logit prediction.
  double sdc = 0.0;
  std::size_t flipped_bits = 0;

  /// Whole-evaluation outcome class (see FaultOutcome above).
  FaultOutcome outcome = FaultOutcome::kMasked;
  /// ABFT activity during this evaluation (deltas of the network's counters):
  /// rows flagged-but-left-corrupted, rows recomputed, compute-fault flips
  /// actually applied mid-kernel.
  std::uint64_t abft_detected_rows = 0;
  std::uint64_t abft_corrected_rows = 0;
  std::uint64_t abft_faults_injected = 0;
  /// RangeGuard clamp firings during this evaluation. Telemetry only — the
  /// clamp is silent, so this never drives the outcome classification.
  std::uint64_t guard_corrections = 0;
};

/// Configuration of the golden-activation cache behind truncated evaluation.
struct EvalCacheConfig {
  /// Master switch; off forces every evaluation down the full-forward path.
  bool enable_truncated_replay = true;
  /// Retained golden activations are capped at this many bytes; the cache
  /// keeps the longest layer *prefix* that fits (a replay from layer L needs
  /// exactly the cached output of layer L-1).
  std::size_t memory_budget_bytes = std::size_t{256} << 20;
};

/// Per-instance observability counters for the truncated-replay pipeline.
struct EvalStats {
  std::size_t full_evals = 0;       // evaluations that ran every layer
  std::size_t truncated_evals = 0;  // evaluations resumed from the cache
  std::size_t layers_run = 0;       // layer executions actually performed
  std::size_t layers_total = 0;     // layer executions a full-forward policy
                                    // would have performed
  double layers_saved_pct() const {
    return layers_total == 0
               ? 0.0
               : 100.0 *
                     static_cast<double>(layers_total - layers_run) /
                     static_cast<double>(layers_total);
  }
};

/// One consolidated mask-evaluation request. Every evaluation entry point —
/// single mask, batched multi-mask, per-mask sequential fallback — is a
/// special case of this: the engine groups `masks` by first-affected layer,
/// rides up to `mask_batch` variants through one widened forward per replay
/// group (DESIGN.md §10), and transparently routes masks the batched path
/// cannot carry soundly (compute-fault sites, ABFT checking, range guards,
/// exotic layers) through sequential evaluation. mask_batch <= 1 forces the
/// sequential path for every mask.
struct EvalRequest {
  std::span<const FaultMask> masks;
  std::size_t mask_batch = 8;
};

/// Result of one EvalRequest. `outcomes` is in input order and bit-identical
/// to evaluating each mask alone; the counters report which engine served
/// each mask (telemetry — they never affect results).
struct EvalOutcome {
  std::vector<MaskOutcome> outcomes;
  std::size_t batched = 0;     // masks served by the widened multi-mask path
  std::size_t sequential = 0;  // masks served by per-mask evaluation
};

class BayesianFaultNetwork {
 public:
  /// Clones `golden`; the original is never mutated. `eval_inputs` is a
  /// [N, ...] batch and `eval_labels` its ground truth.
  BayesianFaultNetwork(const nn::Network& golden, const TargetSpec& target,
                       AvfProfile profile, tensor::Tensor eval_inputs,
                       std::vector<std::int64_t> eval_labels,
                       EvalCacheConfig cache_config = {});
  ~BayesianFaultNetwork();

  BayesianFaultNetwork(const BayesianFaultNetwork&) = delete;
  BayesianFaultNetwork& operator=(const BayesianFaultNetwork&) = delete;
  BayesianFaultNetwork(BayesianFaultNetwork&&) = delete;

  /// Independent replica (own network copy, same golden weights/eval set).
  /// Copies the golden predictions and activation cache instead of re-running
  /// the golden forward pass — replication is O(memcpy), not O(inference).
  std::unique_ptr<BayesianFaultNetwork> replicate() const;

  /// The owned network replica (read-only): deployment properties such as
  /// the ABFT checking mode live on the network and feed e.g. the campaign
  /// checkpoint fingerprint.
  const nn::Network& network() const { return net_; }

  const InjectionSpace& space() const { return *space_; }
  /// Mutable access for campaign-level configuration (selective hardening via
  /// InjectionSpace::protect_elements). Note: protections are per-instance
  /// and copied by replicate().
  InjectionSpace& mutable_space() { return *space_; }
  const AvfProfile& profile() const { return profile_; }
  std::size_t eval_size() const { return eval_labels_.size(); }

  /// Golden (fault-free) classification error, %.
  double golden_error() const { return golden_error_; }
  const std::vector<std::int64_t>& golden_predictions() const {
    return golden_preds_;
  }

  /// THE evaluation entry point: applies each requested mask, measures,
  /// reverts. The weights are bit-exact golden before and after this call,
  /// and outcomes are bit-identical regardless of which engine (batched
  /// widened forward or per-mask sequential) served each mask. The batched
  /// engine is persistent — its widened activation panels are pooled across
  /// calls, so steady-state campaigns stop allocating.
  EvalOutcome evaluate(const EvalRequest& request);

  /// Single-mask shorthand, equivalent to an EvalRequest of one mask with
  /// mask_batch = 1 (allocation-free: no outcome vector is built).
  MaskOutcome evaluate_mask(const FaultMask& mask);

  /// Deprecated: thin wrapper over evaluate(); prefer the EvalRequest form.
  std::vector<MaskOutcome> evaluate_masks(std::span<const FaultMask> masks,
                                          std::size_t mask_batch = 8);

  /// Output logits of the network corrupted by `mask` over the eval batch —
  /// bit-identical between the truncated and full evaluation paths. State is
  /// golden again on return.
  tensor::Tensor logits_under_mask(const FaultMask& mask);

  /// Per-sample indicator: prediction under `mask` differs from golden.
  std::vector<std::uint8_t> deviation_under_mask(const FaultMask& mask);

  /// Applies the XOR delta between the network's current mask state and a new
  /// mask — the O(|Δ|) state transition used by MCMC kernels. The caller is
  /// responsible for tracking which mask is currently applied. Parameter
  /// sites only (transient input/activation sites cannot persist).
  void transition(const FaultMask& from, const FaultMask& to);

  /// Predictions of the (currently corrupted or clean) network on an
  /// arbitrary batch — used by the decision-boundary experiment, where one
  /// sampled mask is evaluated over a whole grid of inputs.
  std::vector<std::int64_t> predict_current(const tensor::Tensor& inputs);

  /// Draws a mask from the Bernoulli prior at base rate p.
  FaultMask sample_prior_mask(double p, util::Rng& rng) const {
    return space_->sample_mask(profile_, p, rng);
  }

  double log_prior(const FaultMask& mask, double p) const {
    return space_->log_prior(mask, profile_, p);
  }

  /// Truncated-replay observability (full vs truncated evals, layers saved).
  const EvalStats& eval_stats() const { return eval_stats_; }
  void reset_eval_stats() { eval_stats_ = {}; }
  const EvalCacheConfig& cache_config() const { return cache_config_; }
  /// Cached golden-activation prefix length (0 = full-forward fallback only).
  std::size_t cached_layers() const { return cache_.cached_layers(); }

 private:
  friend class MultiMaskEvaluator;

  struct ReplicaTag {};
  /// Replication path: clones the network and copies all derived golden
  /// state (predictions, error, activation cache) without a forward pass.
  BayesianFaultNetwork(const BayesianFaultNetwork& other, ReplicaTag);

  void rebuild_space();

  /// Borrowed logits of the corrupted network — the allocation-free core of
  /// evaluate_mask (a view of the planned-execution arena on the planned
  /// path). Valid until the next forward on the owned network.
  const tensor::Tensor& logits_view_under_mask(const FaultMask& mask);

  nn::Network net_;
  std::unique_ptr<InjectionSpace> space_;
  bool has_guards_ = false;  // cached: avoids a dynamic_cast scan per eval
  TargetSpec target_;
  AvfProfile profile_;
  tensor::Tensor eval_inputs_;
  std::vector<std::int64_t> eval_labels_;
  std::vector<std::int64_t> golden_preds_;
  double golden_error_ = 0.0;
  EvalCacheConfig cache_config_;
  nn::ActivationCache cache_;
  fault::ActivationGeometry geometry_;
  EvalStats eval_stats_;
  // Reusable staging tensor for masks that corrupt the replay-start
  // activation or the input batch; its storage amortizes across evaluations.
  tensor::Tensor start_scratch_;
  // Persistent batched engine behind evaluate(): lazily created, reused
  // across calls so its widened panels and weight-copy pools amortize.
  std::unique_ptr<MultiMaskEvaluator> multi_mask_;
};

}  // namespace bdlfi::bayes
