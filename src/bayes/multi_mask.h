// MultiMaskEvaluator: rides K fault variants through one shared widened
// forward (DESIGN.md §10).
//
// Sequential mask evaluation pays one narrow forward per mask: every conv
// becomes a per-sample [O, patch] × [patch, OH*OW] GEMM whose panel is far
// too narrow to feed the SIMD kernels late in a ResNet (OH*OW shrinks to
// 16, then 4). Batching K masks restructures the work: masks are grouped by
// their first-affected layer, each group replays once from the shared
// golden-activation prefix, and the live samples of *all* variants traverse
// each layer together — convs collapse into wide multi-variant GEMMs
// (tensor::conv2d_forward_multi) that amortize im2col and fill the kernels'
// panels.
//
// Semantics are exactly sequential: per-element GEMM results are independent
// of panel width and row grouping on every backend (backend.h), eval-mode
// layers are per-sample pure functions, and parameter corruption is applied
// as per-variant weight copies (convs) or flip/forward/revert slices (other
// layers). The returned outcomes are bit-identical to evaluate_mask run on
// each mask in order. Masks the widened forward cannot carry soundly —
// compute-fault sites, ABFT checking, range guards, unsupported layer kinds
// — transparently take the sequential path.
#pragma once

#include <span>
#include <vector>

#include "bayes/fault_network.h"

namespace bdlfi::bayes {

class MultiMaskEvaluator {
 public:
  /// Binds to `net`; the network must outlive the evaluator. Scans the layer
  /// topology once to decide whether the widened forward applies. The
  /// evaluator is designed to persist across calls: its widened activation
  /// panels and per-variant weight copies live in grow-once float pools, so
  /// steady-state evaluation stops allocating panel storage.
  explicit MultiMaskEvaluator(BayesianFaultNetwork& net);
  ~MultiMaskEvaluator();

  /// True when every layer kind is supported by the widened forward and no
  /// self-checking machinery (ABFT checksums, range guards) requires the
  /// per-mask sequential path. Checked per call too — cheap and robust
  /// against reconfiguration between construction and use.
  bool batchable() const;

  /// Evaluates all masks, batching up to `max_batch` variants per widened
  /// forward. Outcomes are in input order and bit-identical to sequential
  /// evaluate_mask calls; state is golden again on return. The returned
  /// counters record how many masks each engine served.
  EvalOutcome evaluate(std::span<const FaultMask> masks,
                       std::size_t max_batch);

 private:
  struct Variant;
  struct Pool;
  void evaluate_chunk(std::span<Variant> chunk, std::int64_t begin,
                      std::vector<MaskOutcome>& out);

  BayesianFaultNetwork& net_;
  bool kinds_ok_ = false;
  std::unique_ptr<Pool> pool_;  // grow-once panel + weight-copy storage
};

}  // namespace bdlfi::bayes
