// Worst-case fault search: how few bit flips break this network?
//
// The campaign machinery measures *average-case* resilience under random
// faults; safety arguments also need the *worst case* — the minimal fault
// pattern an adversary (or pathological strike) needs to flip predictions.
// This greedy search ranks candidate bits by the deviation a single flip
// causes and grows a mask until a target deviation is reached, optionally
// refining each round on the already-corrupted network (greedy forward
// selection). The tempered MCMC target (DeviationTemperedTarget) explores
// the same landscape stochastically; this is its deterministic counterpart
// for headline "bits-to-break" numbers (bench/tab_protection).
#pragma once

#include <cstdint>
#include <vector>

#include "bayes/fault_network.h"

namespace bdlfi::bayes {

struct CriticalBitConfig {
  /// Stop once the (greedy) mask deviates at least this % of predictions.
  double target_deviation = 50.0;
  /// Candidate bits evaluated per greedy round (sampled uniformly from the
  /// space; exhaustive scans are infeasible for real networks).
  std::size_t candidates_per_round = 256;
  /// Hard cap on mask size.
  std::size_t max_flips = 64;
  std::uint64_t seed = 1;
  /// Restrict candidates to sign+exponent bits (the high-impact subfield);
  /// dramatically improves search efficiency on float weights.
  bool high_impact_bits_only = true;
};

struct CriticalBitResult {
  fault::FaultMask mask;           // the found fault pattern
  double achieved_deviation = 0.0; // % under the final mask
  std::vector<double> deviation_trajectory;  // after each accepted flip
  std::size_t network_evals = 0;
  bool reached_target = false;
};

/// Greedy forward selection of error-causing bits on `net` (restored to
/// golden state on return).
CriticalBitResult find_critical_bits(BayesianFaultNetwork& net,
                                     const CriticalBitConfig& config);

}  // namespace bdlfi::bayes
