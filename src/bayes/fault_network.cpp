#include "bayes/fault_network.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace bdlfi::bayes {

BayesianFaultNetwork::BayesianFaultNetwork(
    const nn::Network& golden, const TargetSpec& target, AvfProfile profile,
    tensor::Tensor eval_inputs, std::vector<std::int64_t> eval_labels)
    : net_(golden.clone()),
      target_(target),
      profile_(std::move(profile)),
      eval_inputs_(std::move(eval_inputs)),
      eval_labels_(std::move(eval_labels)) {
  BDLFI_CHECK(!eval_labels_.empty());
  BDLFI_CHECK(eval_inputs_.shape()[0] ==
              static_cast<std::int64_t>(eval_labels_.size()));
  space_ = std::make_unique<InjectionSpace>(net_, target_);
  golden_preds_ = net_.predict(eval_inputs_);
  std::size_t miss = 0;
  for (std::size_t i = 0; i < eval_labels_.size(); ++i) {
    if (golden_preds_[i] != eval_labels_[i]) ++miss;
  }
  golden_error_ = 100.0 * static_cast<double>(miss) /
                  static_cast<double>(eval_labels_.size());
}

std::unique_ptr<BayesianFaultNetwork> BayesianFaultNetwork::replicate() const {
  auto copy = std::make_unique<BayesianFaultNetwork>(net_, target_, profile_,
                                                     eval_inputs_,
                                                     eval_labels_);
  // Hardening configuration carries over: replicas must inject into the same
  // vulnerable subset as the original.
  copy->space_->protect_elements(space_->protected_elements());
  return copy;
}

MaskOutcome BayesianFaultNetwork::evaluate_mask(const FaultMask& mask) {
  space_->apply(mask);
  const tensor::Tensor logits = net_.forward(eval_inputs_);
  space_->apply(mask);  // XOR is self-inverse: state restored exactly
  const auto preds = tensor::argmax_rows(logits);

  MaskOutcome outcome;
  outcome.flipped_bits = mask.num_flips();
  const std::int64_t classes = logits.shape()[1];
  std::size_t miss = 0, dev = 0, detected = 0, sdc = 0;
  for (std::size_t i = 0; i < eval_labels_.size(); ++i) {
    bool finite = true;
    const float* row = logits.data() + static_cast<std::int64_t>(i) * classes;
    for (std::int64_t c = 0; c < classes; ++c) {
      if (!std::isfinite(row[c])) {
        finite = false;
        break;
      }
    }
    const bool deviated = preds[i] != golden_preds_[i];
    if (preds[i] != eval_labels_[i]) ++miss;
    if (deviated) ++dev;
    if (!finite) {
      ++detected;
    } else if (deviated) {
      ++sdc;
    }
  }
  const auto n = static_cast<double>(eval_labels_.size());
  outcome.classification_error = 100.0 * static_cast<double>(miss) / n;
  outcome.deviation = 100.0 * static_cast<double>(dev) / n;
  outcome.detected = 100.0 * static_cast<double>(detected) / n;
  outcome.sdc = 100.0 * static_cast<double>(sdc) / n;
  return outcome;
}

std::vector<std::uint8_t> BayesianFaultNetwork::deviation_under_mask(
    const FaultMask& mask) {
  space_->apply(mask);
  const auto preds = net_.predict(eval_inputs_);
  space_->apply(mask);
  std::vector<std::uint8_t> out(preds.size());
  for (std::size_t i = 0; i < preds.size(); ++i) {
    out[i] = preds[i] != golden_preds_[i] ? 1 : 0;
  }
  return out;
}

void BayesianFaultNetwork::transition(const FaultMask& from,
                                      const FaultMask& to) {
  const auto delta = FaultMask::symmetric_difference(from, to);
  space_->apply_bits(delta);
}

std::vector<std::int64_t> BayesianFaultNetwork::predict_current(
    const tensor::Tensor& inputs) {
  return net_.predict(inputs);
}

}  // namespace bdlfi::bayes
