#include "bayes/fault_network.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "bayes/mask_split.h"
#include "bayes/multi_mask.h"
#include "nn/range_guard.h"
#include "obs/metrics.h"
#include "tensor/backend/backend.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace bdlfi::bayes {

const char* fault_outcome_name(FaultOutcome outcome) {
  switch (outcome) {
    case FaultOutcome::kMasked: return "masked";
    case FaultOutcome::kSdc: return "sdc";
    case FaultOutcome::kDetected: return "detected";
    case FaultOutcome::kCorrected: return "corrected";
  }
  return "?";
}

namespace {

// Process-wide truncated-replay counters, aggregated across every instance
// and chain (the per-instance EvalStats stay authoritative for results; the
// registry view is what live reporters and sinks read).
struct EvalMetrics {
  obs::Counter& full = obs::MetricsRegistry::global().counter("eval.full");
  obs::Counter& truncated =
      obs::MetricsRegistry::global().counter("eval.truncated");
  obs::Counter& layers_run =
      obs::MetricsRegistry::global().counter("eval.layers_run");
  obs::Counter& layers_total =
      obs::MetricsRegistry::global().counter("eval.layers_total");
  static EvalMetrics& get() {
    static EvalMetrics m;
    return m;
  }
};

}  // namespace

// SplitMask / split_mask / flip_into moved to bayes/mask_split.h so the
// batched evaluator (multi_mask.cpp) decomposes masks identically.
using detail::flip_into;
using detail::split_mask;
using detail::SplitMask;

BayesianFaultNetwork::BayesianFaultNetwork(
    const nn::Network& golden, const TargetSpec& target, AvfProfile profile,
    tensor::Tensor eval_inputs, std::vector<std::int64_t> eval_labels,
    EvalCacheConfig cache_config)
    : net_(golden.clone()),
      target_(target),
      profile_(std::move(profile)),
      eval_inputs_(std::move(eval_inputs)),
      eval_labels_(std::move(eval_labels)),
      cache_config_(cache_config) {
  BDLFI_CHECK(!eval_labels_.empty());
  BDLFI_CHECK(eval_inputs_.shape()[0] ==
              static_cast<std::int64_t>(eval_labels_.size()));
  // One golden forward serves three purposes: the golden predictions, the
  // activation cache behind truncated replay, and the activation geometry
  // that sizes input/activation fault sites.
  const std::size_t budget = cache_config_.enable_truncated_replay
                                 ? cache_config_.memory_budget_bytes
                                 : 0;
  const tensor::Tensor logits = cache_.capture(net_, eval_inputs_, budget);
  golden_preds_ = tensor::argmax_rows(logits);
  std::size_t miss = 0;
  for (std::size_t i = 0; i < eval_labels_.size(); ++i) {
    if (golden_preds_[i] != eval_labels_[i]) ++miss;
  }
  golden_error_ = 100.0 * static_cast<double>(miss) /
                  static_cast<double>(eval_labels_.size());
  geometry_.input_numel = eval_inputs_.numel();
  geometry_.layer_numel.resize(cache_.num_layers());
  for (std::size_t i = 0; i < cache_.num_layers(); ++i) {
    geometry_.layer_numel[i] = cache_.layer_numel(i);
  }
  for (std::size_t i = 0; i < net_.num_layers(); ++i) {
    if (dynamic_cast<nn::RangeGuard*>(&net_.layer(i)) != nullptr) {
      has_guards_ = true;
      break;
    }
  }
  rebuild_space();
}

BayesianFaultNetwork::BayesianFaultNetwork(const BayesianFaultNetwork& other,
                                           ReplicaTag)
    : net_(other.net_.clone()),
      has_guards_(other.has_guards_),
      target_(other.target_),
      profile_(other.profile_),
      eval_inputs_(other.eval_inputs_),
      eval_labels_(other.eval_labels_),
      golden_preds_(other.golden_preds_),
      golden_error_(other.golden_error_),
      cache_config_(other.cache_config_),
      cache_(other.cache_),
      geometry_(other.geometry_) {
  rebuild_space();
  // Hardening configuration carries over: replicas must inject into the same
  // vulnerable subset as the original.
  space_->protect_elements(other.space_->protected_elements());
}

void BayesianFaultNetwork::rebuild_space() {
  space_ = std::make_unique<InjectionSpace>(net_, target_, &geometry_);
}

std::unique_ptr<BayesianFaultNetwork> BayesianFaultNetwork::replicate() const {
  return std::unique_ptr<BayesianFaultNetwork>(
      new BayesianFaultNetwork(*this, ReplicaTag{}));
}

BayesianFaultNetwork::~BayesianFaultNetwork() = default;

EvalOutcome BayesianFaultNetwork::evaluate(const EvalRequest& request) {
  // The engine is persistent so its widened panels and weight-copy pools
  // survive across calls — steady-state campaigns stop allocating.
  if (multi_mask_ == nullptr) {
    multi_mask_ = std::make_unique<MultiMaskEvaluator>(*this);
  }
  return multi_mask_->evaluate(request.masks, request.mask_batch);
}

std::vector<MaskOutcome> BayesianFaultNetwork::evaluate_masks(
    std::span<const FaultMask> masks, std::size_t mask_batch) {
  return evaluate({masks, mask_batch}).outcomes;
}

tensor::Tensor BayesianFaultNetwork::logits_under_mask(const FaultMask& mask) {
  return logits_view_under_mask(mask);  // deep copy at the return boundary
}

const tensor::Tensor& BayesianFaultNetwork::logits_view_under_mask(
    const FaultMask& mask) {
  const SplitMask split = split_mask(*space_, mask);
  // Transient compute faults ride on the network for the duration of this
  // forward only; `split` outlives both forward paths below.
  if (!split.compute_flips.empty()) {
    net_.set_compute_fault_plan(&split.compute_flips);
  }
  const std::size_t depth = net_.num_layers();
  // First layer whose execution can differ from golden; replay can begin no
  // later than the cached-prefix length (a replay at B needs act[B-1]). With
  // no cached prefix the scan cannot save anything — skip the replay
  // bookkeeping entirely and take the plain full-forward path.
  const auto cached = static_cast<std::int64_t>(cache_.cached_layers());
  const std::int64_t begin =
      cached == 0 ? 0 : std::min(space_->first_replay_layer(mask), cached);

  nn::Network::ActivationHook hook;
  if (!split.act_flips.empty()) {
    hook = [&split](std::size_t i, tensor::Tensor& act) {
      const auto it = split.act_flips.find(static_cast<std::int64_t>(i));
      if (it != split.act_flips.end()) flip_into(act, it->second);
    };
  }

  space_->apply_bits(split.param_bits);
  const tensor::Tensor* logits = nullptr;
  if (begin > 0) {
    // Weight-fault masks (the common campaign case) replay straight off the
    // cached golden activation — no staging copy. Only masks that corrupt
    // the replay-start activation itself stage into the reusable scratch
    // tensor (whose storage amortizes across evaluations).
    const tensor::Tensor& start =
        cache_.activation(static_cast<std::size_t>(begin - 1));
    const auto it = split.act_flips.find(begin - 1);
    if (it != split.act_flips.end()) {
      start_scratch_ = start;
      flip_into(start_scratch_, it->second);
      logits = &net_.forward_view(static_cast<std::size_t>(begin),
                                  start_scratch_, hook);
    } else {
      logits =
          &net_.forward_view(static_cast<std::size_t>(begin), start, hook);
    }
    ++eval_stats_.truncated_evals;
    eval_stats_.layers_run += depth - static_cast<std::size_t>(begin);
  } else {
    if (!split.input_flips.empty()) {
      start_scratch_ = eval_inputs_;
      flip_into(start_scratch_, split.input_flips);
      logits = &net_.forward_view(0, start_scratch_, hook);
    } else {
      logits = &net_.forward_view(0, eval_inputs_, hook);
    }
    ++eval_stats_.full_evals;
    eval_stats_.layers_run += depth;
  }
  eval_stats_.layers_total += depth;
  if (obs::enabled()) {
    EvalMetrics& m = EvalMetrics::get();
    if (begin > 0) {
      m.truncated.add();
      m.layers_run.add(depth - static_cast<std::size_t>(begin));
    } else {
      m.full.add();
      m.layers_run.add(depth);
    }
    m.layers_total.add(depth);
  }
  space_->apply_bits(split.param_bits);  // XOR self-inverse: golden restored
  if (!split.compute_flips.empty()) net_.set_compute_fault_plan(nullptr);
  return *logits;
}

MaskOutcome BayesianFaultNetwork::evaluate_mask(const FaultMask& mask) {
  // Snapshot the network's cumulative self-checking counters so this
  // evaluation's ABFT/guard activity can be read back as deltas.
  const tensor::abft::Stats& abft = net_.abft_stats();
  const std::uint64_t det0 =
      abft.detected_rows.load(std::memory_order_relaxed);
  const std::uint64_t cor0 =
      abft.corrected_rows.load(std::memory_order_relaxed);
  const std::uint64_t inj0 =
      abft.faults_injected.load(std::memory_order_relaxed);
  const std::uint64_t guard0 =
      has_guards_ ? nn::total_guard_corrections(net_) : 0;

  const tensor::Tensor& logits = logits_view_under_mask(mask);

  MaskOutcome outcome;
  outcome.flipped_bits = mask.num_flips();
  outcome.abft_detected_rows =
      abft.detected_rows.load(std::memory_order_relaxed) - det0;
  outcome.abft_corrected_rows =
      abft.corrected_rows.load(std::memory_order_relaxed) - cor0;
  outcome.abft_faults_injected =
      abft.faults_injected.load(std::memory_order_relaxed) - inj0;
  outcome.guard_corrections =
      has_guards_ ? nn::total_guard_corrections(net_) - guard0 : 0;
  const std::int64_t classes = logits.shape()[1];
  const auto scan = tensor::backend::active().argmax_finite_row;
  std::size_t miss = 0, dev = 0, detected = 0, sdc = 0;
  for (std::size_t i = 0; i < eval_labels_.size(); ++i) {
    const float* row = logits.data() + static_cast<std::int64_t>(i) * classes;
    // One fused pass per row: argmax and NaN/Inf finiteness together, via
    // the active kernel backend. The argmax matches tensor::argmax_rows — a
    // NaN compare is false, so a NaN never displaces the incumbent.
    std::int64_t best = 0;
    bool finite = false;
    scan(row, classes, &best, &finite);
    const bool deviated = best != golden_preds_[i];
    if (best != eval_labels_[i]) ++miss;
    if (deviated) ++dev;
    if (!finite) {
      ++detected;
    } else if (deviated) {
      ++sdc;
    }
  }
  const auto n = static_cast<double>(eval_labels_.size());
  outcome.classification_error = 100.0 * static_cast<double>(miss) / n;
  outcome.deviation = 100.0 * static_cast<double>(dev) / n;
  outcome.detected = 100.0 * static_cast<double>(detected) / n;
  outcome.sdc = 100.0 * static_cast<double>(sdc) / n;

  // Whole-evaluation taxonomy. Only real detection signals classify: ABFT
  // rows flagged without recovery, or non-finite output logits. RangeGuard
  // clamps are silent (telemetry above) and sub-tolerance compute flips that
  // change nothing land in kMasked by construction.
  const bool detector_fired = outcome.abft_detected_rows > 0 || detected > 0;
  if (detector_fired) {
    outcome.outcome = FaultOutcome::kDetected;
  } else if (dev > 0) {
    outcome.outcome = FaultOutcome::kSdc;
  } else if (outcome.abft_corrected_rows > 0) {
    outcome.outcome = FaultOutcome::kCorrected;
  } else {
    outcome.outcome = FaultOutcome::kMasked;
  }
  return outcome;
}

std::vector<std::uint8_t> BayesianFaultNetwork::deviation_under_mask(
    const FaultMask& mask) {
  const auto preds = tensor::argmax_rows(logits_view_under_mask(mask));
  std::vector<std::uint8_t> out(preds.size());
  for (std::size_t i = 0; i < preds.size(); ++i) {
    out[i] = preds[i] != golden_preds_[i] ? 1 : 0;
  }
  return out;
}

void BayesianFaultNetwork::transition(const FaultMask& from,
                                      const FaultMask& to) {
  const auto delta = FaultMask::symmetric_difference(from, to);
  space_->apply_bits(delta);
}

std::vector<std::int64_t> BayesianFaultNetwork::predict_current(
    const tensor::Tensor& inputs) {
  return net_.predict(inputs);
}

}  // namespace bdlfi::bayes
