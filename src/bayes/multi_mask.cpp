#include "bayes/multi_mask.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bayes/mask_split.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "nn/plan.h"
#include "nn/resblock.h"
#include "obs/metrics.h"
#include "tensor/backend/backend.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace bdlfi::bayes {
namespace {

using tensor::Shape;
using tensor::Tensor;

// One bit flip resolved to its live parameter tensor.
struct ParamFlip {
  Tensor* t = nullptr;
  std::int64_t elem = 0;
  int bit = 0;
};

// Per-variant flip lists for the layer being executed; nullptr = clean.
using LayerFlips = std::vector<const std::vector<ParamFlip>*>;

Shape with_batch(const Shape& s, std::int64_t n0) {
  switch (s.rank()) {
    case 1: return Shape{n0};
    case 2: return Shape{n0, s[1]};
    case 3: return Shape{n0, s[1], s[2]};
    default: return Shape{n0, s[1], s[2], s[3]};
  }
}

// Grow-once storage behind the widened forward: four ping-pong activation
// slots (two for the main panel, two for the block shortcut) plus per-variant
// corrupted weight/bias copies, acquired in deterministic order per chunk.
// Everything amortizes — a steady-state campaign stops allocating panel or
// weight-copy storage entirely (only small per-call bookkeeping vectors
// remain). Tensors handed out are borrowed views of the pool.
struct PanelPool {
  std::vector<float> act[4];
  std::vector<std::vector<float>> wcopies;
  std::size_t wcopy_next = 0;
  nn::Workspace ws;

  Tensor view(int slot, const Shape& shape) {
    std::vector<float>& buf = act[slot];
    const auto n = static_cast<std::size_t>(shape.numel());
    if (buf.size() < n) buf.resize(n);
    return Tensor::view(shape, buf.data());
  }
  /// Copy of `src` in reusable storage (stable pointer until the pool grows a
  /// brand-new entry, which only happens the first time an acquisition
  /// ordinal is reached).
  Tensor wcopy(const Tensor& src) {
    if (wcopy_next == wcopies.size()) wcopies.emplace_back();
    std::vector<float>& buf = wcopies[wcopy_next++];
    const auto n = static_cast<std::size_t>(src.numel());
    if (buf.size() < n) buf.resize(n);
    std::copy_n(src.data(), n, buf.data());
    return Tensor::view(src.shape(), buf.data());
  }
  void begin_chunk() { wcopy_next = 0; }
};

// The activation panel riding through the widened forward. While every
// variant's slice is still bit-identical (`uniform`), only one [N, ...] copy
// is carried; the first variant-dependent step widens it to [K*N, ...] with
// variant v owning rows [v*N, (v+1)*N). The panel ping-pongs between its two
// pool slots; `cur` tracks which slot `act` occupies (-1: owned storage from
// a dirty-slice fallback, which never aliases a slot).
struct Panel {
  Tensor act;
  bool uniform = true;
  std::size_t k = 1;
  PanelPool* pool = nullptr;
  int slot0 = 0, slot1 = 1;
  int cur = -1;

  std::int64_t rows() const { return act.shape()[0]; }
  std::int64_t per_variant() const {
    return act.numel() / static_cast<std::int64_t>(k);
  }
  /// A view of the *other* slot, pre-sized for `shape`; never aliases `act`.
  Tensor next(const Shape& shape) {
    cur = (cur == slot0) ? slot1 : slot0;
    return pool->view(cur, shape);
  }
  void diverge() {
    if (!uniform) return;
    const std::int64_t per = act.numel();
    Tensor wide =
        next(with_batch(act.shape(), rows() * static_cast<std::int64_t>(k)));
    for (std::size_t v = 0; v < k; ++v) {
      std::copy_n(act.data(), per,
                  wide.data() + static_cast<std::int64_t>(v) * per);
    }
    act = std::move(wide);
    uniform = false;
  }
};

// XOR toggle — self-inverse, so the same call applies and reverts.
void toggle(const std::vector<ParamFlip>& flips) {
  for (const ParamFlip& f : flips) {
    (*f.t)[f.elem] = fault::flip_bit((*f.t)[f.elem], f.bit);
  }
}

// Convolution step. Every live sample funnels through the wide multi-variant
// GEMM path whether or not any variant corrupts this conv — the fused
// [patch, T*OH*OW] panels are where the batched speedup comes from (late
// ResNet convs have per-sample panels as narrow as 4 columns). Dirty
// variants run against corrupted deep copies of the weight/bias; clean ones
// share the golden pointers.
void run_conv(nn::Conv2d& conv, Panel& p, const LayerFlips& flips) {
  const Shape& in = p.act.shape();
  const std::int64_t c = in[1], h = in[2], w = in[3];
  const tensor::Conv2dSpec& spec = conv.spec();
  const std::int64_t o = conv.out_channels();
  const std::int64_t oh = spec.out_h(h), ow = spec.out_w(w);

  std::vector<Tensor> store;
  store.reserve(2 * p.k);  // pointers into store must stay stable below
  std::vector<const float*> wv(p.k, conv.weight().data());
  std::vector<const float*> bv(
      p.k, conv.bias().empty() ? nullptr : conv.bias().data());
  bool dirty = false;
  for (std::size_t v = 0; v < p.k; ++v) {
    if (flips[v] == nullptr) continue;
    Tensor* wc = nullptr;
    Tensor* bc = nullptr;
    for (const ParamFlip& f : *flips[v]) {
      Tensor** copy;
      const float** slot;
      if (f.t == &conv.weight()) {
        copy = &wc;
        slot = &wv[v];
      } else if (f.t == &conv.bias()) {
        copy = &bc;
        slot = &bv[v];
      } else {
        continue;  // flip on another sub-tensor of the same top-level layer
      }
      if (*copy == nullptr) {
        // Pooled corrupted copy — storage reused across chunks, since copies
        // are acquired in deterministic (variant, tensor) order.
        store.push_back(p.pool->wcopy(*f.t));
        *copy = &store.back();
        *slot = (*copy)->data();
      }
      (**copy)[f.elem] = fault::flip_bit((**copy)[f.elem], f.bit);
      dirty = true;
    }
  }

  if (!dirty) {
    // One "variant" spanning every live sample, golden kernel.
    Tensor out = p.next(Shape{p.rows(), o, oh, ow});
    const float* ws[1] = {conv.weight().data()};
    const float* bs[1] = {bv[0]};
    tensor::conv2d_forward_multi(p.act.data(), /*shared_input=*/false, 1,
                                 p.rows(), c, h, w, ws, bs, o, spec,
                                 out.data());
    p.act = std::move(out);
    return;
  }
  if (p.uniform) {
    // Divergence point: all variants read the same [N, ...] block, so the
    // im2col panel is unfolded once and shared across every variant's GEMM.
    const std::int64_t n = p.rows();
    Tensor out = p.next(Shape{static_cast<std::int64_t>(p.k) * n, o, oh, ow});
    tensor::conv2d_forward_multi(p.act.data(), /*shared_input=*/true, p.k, n,
                                 c, h, w, wv.data(), bv.data(), o, spec,
                                 out.data());
    p.act = std::move(out);
    p.uniform = false;
    return;
  }
  const std::int64_t n = p.rows() / static_cast<std::int64_t>(p.k);
  Tensor out = p.next(Shape{p.rows(), o, oh, ow});
  tensor::conv2d_forward_multi(p.act.data(), /*shared_input=*/false, p.k, n,
                               c, h, w, wv.data(), bv.data(), o, spec,
                               out.data());
  p.act = std::move(out);
}

// Output shape of one widened step for the supported per-sample-pure layer
// kinds; rank-0 means "unknown — use the allocating forward".
Shape widened_out_shape(nn::Layer& layer, const Shape& in) {
  const std::string kind = layer.kind();
  if (kind == "bn" || kind == "relu" || kind == "dropout") return in;
  if (kind == "flatten") return Shape{in[0], in.numel() / in[0]};
  if (kind == "avgpool") return Shape{in[0], in[1]};
  if (kind == "maxpool") {
    const auto k = static_cast<nn::MaxPool2d&>(layer).kernel();
    return Shape{in[0], in[1], in[2] / k, in[3] / k};
  }
  if (kind == "dense") {
    return Shape{in[0], static_cast<nn::Dense&>(layer).out_features()};
  }
  return Shape{};
}

// Clean widened forward of one supported layer, pooled via forward_into when
// the layer is plan-eval-safe. MC-mode Dropout samples even in eval (its
// forward_into refuses) and unknown shapes have no pooled recipe — both fall
// back to the allocating forward, and `cur = -1` records that the panel left
// the pool's slots.
void run_clean(nn::Layer& layer, Panel& p) {
  const Shape out_shape = widened_out_shape(layer, p.act.shape());
  if (out_shape.rank() == 0 || !layer.plan_eval_safe()) {
    p.act = layer.forward(p.act, /*training=*/false);
    p.cur = -1;
    return;
  }
  Tensor out = p.next(out_shape);
  layer.forward_into(p.act, out, p.pool->ws);
  p.act = std::move(out);
}

// Any other layer. Clean: one widened forward — eval-mode layers are
// per-sample pure functions, so the stacked result is bit-exact per slice.
// Dirty: per-variant flip-in-place / forward-slice / revert against the live
// tensors — fully general, and the only bit-exact option for Dense, whose
// scalar GEMM zero-skips on the *activation* operand (backend.h), so a
// transposed variant kernel would change which products are elided.
void run_generic(nn::Layer& layer, Panel& p, const LayerFlips& flips) {
  std::vector<nn::ParamRef> refs;
  layer.collect_params("", refs);
  layer.collect_buffers("", refs);
  std::vector<std::vector<ParamFlip>> owned(p.k);
  bool dirty = false;
  for (std::size_t v = 0; v < p.k; ++v) {
    if (flips[v] == nullptr) continue;
    for (const ParamFlip& f : *flips[v]) {
      for (const nn::ParamRef& r : refs) {
        if (r.value == f.t) {
          owned[v].push_back(f);
          dirty = true;
          break;
        }
      }
    }
  }
  if (!dirty) {
    run_clean(layer, p);
    return;
  }
  p.diverge();
  const std::int64_t n = p.rows() / static_cast<std::int64_t>(p.k);
  const std::int64_t per = p.per_variant();
  Tensor out;
  for (std::size_t v = 0; v < p.k; ++v) {
    toggle(owned[v]);
    Tensor slice{with_batch(p.act.shape(), n)};
    std::copy_n(p.act.data() + static_cast<std::int64_t>(v) * per, per,
                slice.data());
    Tensor res = layer.forward(slice, /*training=*/false);
    toggle(owned[v]);
    if (out.empty()) {
      out = Tensor{with_batch(res.shape(),
                              res.shape()[0] * static_cast<std::int64_t>(p.k))};
    }
    std::copy_n(res.data(), res.numel(),
                out.data() + static_cast<std::int64_t>(v) * res.numel());
  }
  p.act = std::move(out);
  p.cur = -1;  // panel left the pool slots; next() must not alias `out`
}

// BasicBlock, always decomposed so the inner convs ride the fused panels
// even when the block is clean. Mirrors BasicBlock::forward step for step:
// conv1 → bn1 → relu → conv2 → bn2, shortcut (projection or identity),
// residual add, relu. Flip lists pass through unfiltered — run_conv and
// run_generic match flips to sub-tensors by pointer.
void run_block(nn::BasicBlock& block, Panel& p, const LayerFlips& flips) {
  // Shortcut branch rides its own slot pair (2/3) so the main panel can
  // ping-pong 0/1 freely; it starts from a pooled copy of the block input.
  Panel shortcut;
  shortcut.uniform = p.uniform;
  shortcut.k = p.k;
  shortcut.pool = p.pool;
  shortcut.slot0 = 2;
  shortcut.slot1 = 3;
  {
    Tensor copy = shortcut.next(p.act.shape());
    std::copy_n(p.act.data(), p.act.numel(), copy.data());
    shortcut.act = std::move(copy);
  }
  run_conv(block.conv1(), p, flips);
  run_generic(block.bn1(), p, flips);
  tensor::relu_inplace(p.act);
  run_conv(block.conv2(), p, flips);
  run_generic(block.bn2(), p, flips);
  if (block.has_projection()) {
    run_conv(*block.proj_conv(), shortcut, flips);
    run_generic(*block.proj_bn(), shortcut, flips);
  }
  // The branches may have diverged independently; reconcile widths before
  // the residual add.
  if (p.uniform != shortcut.uniform) {
    p.diverge();
    shortcut.diverge();
  }
  tensor::add_inplace(p.act, shortcut.act);
  tensor::relu_inplace(p.act);
}

// Layer kinds whose eval-mode forward is a per-sample pure function, the
// property the widened panel rests on. Anything else (e.g. quantized
// rebuilds) sends the whole batch down the sequential path.
bool kind_supported(const std::string& kind) {
  return kind == "conv" || kind == "bn" || kind == "relu" ||
         kind == "maxpool" || kind == "avgpool" || kind == "flatten" ||
         kind == "dense" || kind == "block" || kind == "dropout";
}

// Registry counters shared with the sequential path (same names, same
// counter objects — the registry is keyed by name).
struct EvalMetrics {
  obs::Counter& full = obs::MetricsRegistry::global().counter("eval.full");
  obs::Counter& truncated =
      obs::MetricsRegistry::global().counter("eval.truncated");
  obs::Counter& layers_run =
      obs::MetricsRegistry::global().counter("eval.layers_run");
  obs::Counter& layers_total =
      obs::MetricsRegistry::global().counter("eval.layers_total");
  static EvalMetrics& get() {
    static EvalMetrics m;
    return m;
  }
};

}  // namespace

// One mask prepared for the widened forward: its split by site kind plus its
// parameter flips resolved to (live tensor, element, bit) per owning layer.
struct MultiMaskEvaluator::Variant {
  std::size_t index = 0;        // position in the input span
  std::size_t flips_total = 0;  // mask.num_flips()
  detail::SplitMask split;
  std::map<std::int64_t, std::vector<ParamFlip>> layer_flips;
};

// Grow-once storage (panel slots, weight copies, layer workspace) persisted
// for the evaluator's lifetime.
struct MultiMaskEvaluator::Pool {
  PanelPool p;
};

MultiMaskEvaluator::MultiMaskEvaluator(BayesianFaultNetwork& net)
    : net_(net), pool_(std::make_unique<Pool>()) {
  kinds_ok_ = true;
  for (std::size_t i = 0; i < net_.net_.num_layers(); ++i) {
    if (!kind_supported(net_.net_.layer_kind(i))) {
      kinds_ok_ = false;
      break;
    }
  }
}

MultiMaskEvaluator::~MultiMaskEvaluator() = default;

bool MultiMaskEvaluator::batchable() const {
  // eval_fusion folds BN into block convs on the sequential/planned path;
  // the widened forward decomposes blocks unfused, so batching under fusion
  // would break the bit-exact-parity contract — route sequentially instead.
  return kinds_ok_ && !net_.has_guards_ && !net_.net_.eval_fusion() &&
         net_.net_.abft().mode == tensor::abft::Mode::kOff;
}

EvalOutcome MultiMaskEvaluator::evaluate(std::span<const FaultMask> masks,
                                         std::size_t max_batch) {
  EvalOutcome result;
  result.outcomes.resize(masks.size());
  std::vector<MaskOutcome>& out = result.outcomes;
  if (!batchable() || max_batch <= 1 || masks.size() <= 1) {
    for (std::size_t i = 0; i < masks.size(); ++i) {
      out[i] = net_.evaluate_mask(masks[i]);
    }
    result.sequential = masks.size();
    return result;
  }

  const auto cached = static_cast<std::int64_t>(net_.cache_.cached_layers());
  std::map<std::int64_t, std::vector<Variant>> groups;
  std::vector<std::size_t> sequential;
  for (std::size_t i = 0; i < masks.size(); ++i) {
    Variant var;
    var.index = i;
    var.flips_total = masks[i].num_flips();
    var.split = detail::split_mask(*net_.space_, masks[i]);
    if (!var.split.compute_flips.empty()) {
      // Mid-kernel flips need the per-sample checked-GEMM addressing of the
      // sequential path.
      sequential.push_back(i);
      continue;
    }
    for (std::int64_t flat : var.split.param_bits) {
      const fault::FaultSite site = fault::FaultSite::from_flat(flat);
      const InjectionSpace::Entry& entry = net_.space_->entry_of(site.element);
      var.layer_flips[entry.layer].push_back(
          {entry.value, site.element - entry.offset, site.bit});
    }
    // Same replay-start rule as the sequential path, so the per-mask
    // truncated/full accounting matches it exactly.
    const std::int64_t begin =
        cached == 0
            ? 0
            : std::min(net_.space_->first_replay_layer(masks[i]), cached);
    groups[begin].push_back(std::move(var));
  }

  for (auto& [begin, vars] : groups) {
    for (std::size_t lo = 0; lo < vars.size(); lo += max_batch) {
      const std::size_t len = std::min(max_batch, vars.size() - lo);
      evaluate_chunk(std::span<Variant>(vars.data() + lo, len), begin, out);
    }
  }
  for (std::size_t i : sequential) out[i] = net_.evaluate_mask(masks[i]);
  result.sequential = sequential.size();
  result.batched = masks.size() - result.sequential;
  return result;
}

void MultiMaskEvaluator::evaluate_chunk(std::span<Variant> chunk,
                                        std::int64_t begin,
                                        std::vector<MaskOutcome>& out) {
  const std::size_t k = chunk.size();
  const std::size_t depth = net_.net_.num_layers();
  const auto n_eval = static_cast<std::int64_t>(net_.eval_labels_.size());

  Panel p;
  p.k = k;
  p.pool = &pool_->p;
  p.pool->begin_chunk();
  {
    // Pooled copy of the replay-start tensor (the pre-start flips below
    // mutate it, so the cache/input must never be handed out directly).
    const Tensor& start =
        begin > 0
            ? net_.cache_.activation(static_cast<std::size_t>(begin) - 1)
            : net_.eval_inputs_;
    Tensor copy = p.next(start.shape());
    std::copy_n(start.data(), start.numel(), copy.data());
    p.act = std::move(copy);
  }

  // Pre-start corruption: input bits (begin == 0) or stored-activation bits
  // of layer begin-1 — both flip the tensor the replay starts from, exactly
  // where the sequential path applies them.
  bool pre = false;
  for (const Variant& v : chunk) {
    if (begin == 0 ? !v.split.input_flips.empty()
                   : v.split.act_flips.count(begin - 1) > 0) {
      pre = true;
      break;
    }
  }
  if (pre) {
    p.diverge();
    const std::int64_t per = p.per_variant();
    for (std::size_t v = 0; v < k; ++v) {
      const std::vector<std::pair<std::int64_t, int>>* flips = nullptr;
      if (begin == 0) {
        if (!chunk[v].split.input_flips.empty()) {
          flips = &chunk[v].split.input_flips;
        }
      } else {
        const auto it = chunk[v].split.act_flips.find(begin - 1);
        if (it != chunk[v].split.act_flips.end()) flips = &it->second;
      }
      if (flips == nullptr) continue;
      float* base = p.act.data() + static_cast<std::int64_t>(v) * per;
      for (const auto& [elem, bit] : *flips) {
        base[elem] = fault::flip_bit(base[elem], bit);
      }
    }
  }

  LayerFlips flips(k, nullptr);
  for (std::size_t j = static_cast<std::size_t>(begin); j < depth; ++j) {
    bool any = false;
    for (std::size_t v = 0; v < k; ++v) {
      const auto it = chunk[v].layer_flips.find(static_cast<std::int64_t>(j));
      flips[v] = it == chunk[v].layer_flips.end() ? nullptr : &it->second;
      any |= flips[v] != nullptr;
    }
    nn::Layer& layer = net_.net_.layer(j);
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      run_conv(*conv, p, flips);
    } else if (auto* block = dynamic_cast<nn::BasicBlock*>(&layer)) {
      run_block(*block, p, flips);
    } else if (any) {
      run_generic(layer, p, flips);
    } else {
      run_clean(layer, p);
    }
    // Post-layer activation corruption (where the sequential hook fires).
    bool any_act = false;
    for (const Variant& v : chunk) {
      if (v.split.act_flips.count(static_cast<std::int64_t>(j)) > 0) {
        any_act = true;
        break;
      }
    }
    if (any_act) {
      p.diverge();
      const std::int64_t per = p.per_variant();
      for (std::size_t v = 0; v < k; ++v) {
        const auto it =
            chunk[v].split.act_flips.find(static_cast<std::int64_t>(j));
        if (it == chunk[v].split.act_flips.end()) continue;
        float* base = p.act.data() + static_cast<std::int64_t>(v) * per;
        for (const auto& [elem, bit] : it->second) {
          base[elem] = fault::flip_bit(base[elem], bit);
        }
      }
    }
  }

  // Per-variant outcome scan, mirroring evaluate_mask exactly. ABFT is off
  // and guards are absent on this path (batchable()), so the self-checking
  // deltas are zero and kCorrected cannot occur.
  BDLFI_CHECK(p.act.shape().rank() == 2);
  const std::int64_t classes = p.act.shape()[1];
  const auto scan = tensor::backend::active().argmax_finite_row;
  for (std::size_t v = 0; v < k; ++v) {
    const float* rows =
        p.act.data() +
        (p.uniform ? 0 : static_cast<std::int64_t>(v) * n_eval * classes);
    MaskOutcome o;
    o.flipped_bits = chunk[v].flips_total;
    std::size_t miss = 0, dev = 0, detected = 0, sdc = 0;
    for (std::int64_t i = 0; i < n_eval; ++i) {
      const float* row = rows + i * classes;
      std::int64_t best = 0;
      bool finite = false;
      scan(row, classes, &best, &finite);
      const auto s = static_cast<std::size_t>(i);
      const bool deviated = best != net_.golden_preds_[s];
      if (best != net_.eval_labels_[s]) ++miss;
      if (deviated) ++dev;
      if (!finite) {
        ++detected;
      } else if (deviated) {
        ++sdc;
      }
    }
    const auto n = static_cast<double>(n_eval);
    o.classification_error = 100.0 * static_cast<double>(miss) / n;
    o.deviation = 100.0 * static_cast<double>(dev) / n;
    o.detected = 100.0 * static_cast<double>(detected) / n;
    o.sdc = 100.0 * static_cast<double>(sdc) / n;
    if (detected > 0) {
      o.outcome = FaultOutcome::kDetected;
    } else if (dev > 0) {
      o.outcome = FaultOutcome::kSdc;
    } else {
      o.outcome = FaultOutcome::kMasked;
    }
    out[chunk[v].index] = o;
  }

  // Truncated-replay accounting: one entry per mask, as if evaluated alone.
  const std::size_t ran =
      depth - (begin > 0 ? static_cast<std::size_t>(begin) : 0);
  for (std::size_t v = 0; v < k; ++v) {
    if (begin > 0) {
      ++net_.eval_stats_.truncated_evals;
    } else {
      ++net_.eval_stats_.full_evals;
    }
    net_.eval_stats_.layers_run += ran;
    net_.eval_stats_.layers_total += depth;
  }
  if (obs::enabled()) {
    EvalMetrics& m = EvalMetrics::get();
    if (begin > 0) {
      m.truncated.add(k);
    } else {
      m.full.add(k);
    }
    m.layers_run.add(k * ran);
    m.layers_total.add(k * depth);
  }
}

}  // namespace bdlfi::bayes
