// MCMC target distributions over fault masks.
//
// The generic target is log π(e) = log prior(e) + log likelihood(e). Two
// concrete instances cover the paper's uses:
//
//  * PriorTarget — π is the fault prior itself; sampling it yields the
//    *predictive* distribution of classification error (Figs. 2 & 4). Its
//    structure (independent Bernoulli bits) makes toggle deltas analytic, so
//    MH moves cost no forward passes; network evaluations happen only when a
//    retained sample's error statistic is recorded. This is the "algorithmic
//    acceleration" §I advantage 2 refers to.
//
//  * DeviationTemperedTarget — π(e) ∝ prior(e) · exp(λ · dev(e)) where
//    dev(e) is the fraction of evaluation points whose prediction deviates
//    from the golden run. With λ > 0 this tilts mass toward *error-causing*
//    fault patterns (posterior over "what faults break this network"), the
//    analysis behind the decision-boundary discussion of §III.
#pragma once

#include <cstdint>
#include <optional>

#include "bayes/fault_network.h"

namespace bdlfi::bayes {

class MaskTarget {
 public:
  virtual ~MaskTarget() = default;

  /// Full log density (up to an additive constant).
  virtual double log_density(const FaultMask& mask) = 0;

  /// Log-density change from toggling `flat_bit` in `current`, if available
  /// in closed form (no network evaluation). nullopt → caller must evaluate
  /// both states via log_density.
  virtual std::optional<double> analytic_toggle_delta(
      const FaultMask& current, std::int64_t flat_bit) = 0;

  /// True when log_density requires a forward pass (samplers budget these).
  virtual bool requires_network_eval() const = 0;
};

class PriorTarget : public MaskTarget {
 public:
  PriorTarget(BayesianFaultNetwork& net, double p) : net_(net), p_(p) {}

  double log_density(const FaultMask& mask) override {
    return net_.log_prior(mask, p_);
  }
  std::optional<double> analytic_toggle_delta(const FaultMask& current,
                                              std::int64_t flat_bit) override;
  bool requires_network_eval() const override { return false; }
  double p() const { return p_; }

 private:
  BayesianFaultNetwork& net_;
  double p_;
};

class DeviationTemperedTarget : public MaskTarget {
 public:
  /// lambda: tilt strength (log-odds added per 100% deviation).
  DeviationTemperedTarget(BayesianFaultNetwork& net, double p, double lambda)
      : net_(net), p_(p), lambda_(lambda) {}

  double log_density(const FaultMask& mask) override;
  std::optional<double> analytic_toggle_delta(const FaultMask&,
                                              std::int64_t) override {
    return std::nullopt;  // likelihood term requires a forward pass
  }
  bool requires_network_eval() const override { return true; }

 private:
  BayesianFaultNetwork& net_;
  double p_;
  double lambda_;
};

}  // namespace bdlfi::bayes
