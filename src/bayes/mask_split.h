// Internal: one fault mask sorted into the site kinds the evaluation
// pipelines treat differently. Shared by the sequential path
// (fault_network.cpp) and the batched path (multi_mask.cpp) so both apply
// exactly the same decomposition of a mask.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "fault/space.h"
#include "nn/network.h"

namespace bdlfi::bayes::detail {

/// A mask sorted into the three site kinds the evaluation pipeline treats
/// differently: persistent parameter bits (XOR-able in place), input bits
/// (applied to a copy of the eval batch), and per-layer activation bits
/// (applied in flight via the forward hook). Offsets are element indices
/// *within* the owning tensor.
struct SplitMask {
  std::vector<std::int64_t> param_bits;  // flat space addressing
  std::vector<std::pair<std::int64_t, int>> input_flips;
  std::map<std::int64_t, std::vector<std::pair<std::int64_t, int>>> act_flips;
  /// Per-layer mid-kernel flips, installed on the network for the forward.
  /// Per-layer lists are sorted by element (mask bits are sorted and each
  /// layer's compute range is one contiguous entry), as gemm_checked needs.
  nn::ComputeFaultPlan compute_flips;
};

inline SplitMask split_mask(const fault::InjectionSpace& space,
                            const fault::FaultMask& mask) {
  SplitMask split;
  for (std::int64_t flat : mask.bits()) {
    const fault::FaultSite site = fault::FaultSite::from_flat(flat);
    const fault::InjectionSpace::Entry& entry = space.entry_of(site.element);
    const std::int64_t elem = site.element - entry.offset;
    switch (entry.site) {
      case fault::InjectionSpace::SiteKind::kParam:
        split.param_bits.push_back(flat);
        break;
      case fault::InjectionSpace::SiteKind::kInput:
        split.input_flips.emplace_back(elem, site.bit);
        break;
      case fault::InjectionSpace::SiteKind::kActivation:
        split.act_flips[entry.layer].emplace_back(elem, site.bit);
        break;
      case fault::InjectionSpace::SiteKind::kCompute:
        split.compute_flips[static_cast<std::size_t>(entry.layer)]
            .emplace_back(elem, site.bit);
        break;
    }
  }
  return split;
}

inline void flip_into(tensor::Tensor& t,
                      const std::vector<std::pair<std::int64_t, int>>& flips) {
  for (const auto& [elem, bit] : flips) {
    t[elem] = fault::flip_bit(t[elem], bit);
  }
}

}  // namespace bdlfi::bayes::detail
