#include "bayes/critical.h"

#include <algorithm>

#include "fault/bits.h"
#include "util/check.h"

namespace bdlfi::bayes {

CriticalBitResult find_critical_bits(BayesianFaultNetwork& net,
                                     const CriticalBitConfig& config) {
  BDLFI_CHECK(config.candidates_per_round > 0 && config.max_flips > 0);
  util::Rng rng{config.seed};
  const std::int64_t total_bits = net.space().total_bits();

  CriticalBitResult result;
  auto current_outcome = net.evaluate_mask(result.mask);
  ++result.network_evals;

  while (result.mask.num_flips() < config.max_flips &&
         current_outcome.deviation < config.target_deviation) {
    // Sample a candidate pool (deduplicated against the current mask).
    std::vector<std::int64_t> candidates;
    candidates.reserve(config.candidates_per_round);
    while (candidates.size() < config.candidates_per_round) {
      const auto flat = static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(total_bits)));
      const int bit = static_cast<int>(flat % fault::kBitsPerWord);
      if (config.high_impact_bits_only && fault::is_mantissa_bit(bit)) {
        continue;
      }
      if (!net.mutable_space().is_protected(flat / fault::kBitsPerWord) &&
          !result.mask.contains(flat)) {
        candidates.push_back(flat);
      }
    }

    // Evaluate each candidate added to the current mask; keep the best.
    double best_deviation = current_outcome.deviation;
    std::int64_t best_bit = -1;
    for (std::int64_t flat : candidates) {
      fault::FaultMask trial = result.mask;
      trial.insert(flat);
      const MaskOutcome outcome = net.evaluate_mask(trial);
      ++result.network_evals;
      if (outcome.deviation > best_deviation) {
        best_deviation = outcome.deviation;
        best_bit = flat;
      }
    }
    if (best_bit < 0) {
      // No candidate improved this round; greedy search has plateaued.
      break;
    }
    result.mask.insert(best_bit);
    current_outcome = net.evaluate_mask(result.mask);
    ++result.network_evals;
    result.deviation_trajectory.push_back(current_outcome.deviation);
  }

  result.achieved_deviation = current_outcome.deviation;
  result.reached_target =
      current_outcome.deviation >= config.target_deviation;
  return result;
}

}  // namespace bdlfi::bayes
