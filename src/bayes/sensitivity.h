// Gradient-based fault-site sensitivity analysis.
//
// The paper's closing §I point: the only assumption BDLFI makes is
// *end-to-end differentiability*. Differentiability buys more than fault
// propagation — the gradient of the loss w.r.t. every parameter ranks fault
// sites by first-order impact before a single injection is performed. This
// module computes that ranking (Taylor criterion |g·w|, or |g| alone) over
// the elements of an injection space, enabling:
//   * algorithmic acceleration (§I advantage 2): importance-focus the
//     campaign on sites that can matter;
//   * selective hardening: protect the top-k% most sensitive sites
//     (InjectionSpace::protect_elements) and quantify the error-curve shift.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/space.h"
#include "nn/network.h"

namespace bdlfi::bayes {

enum class SensitivityScore {
  kGradTimesWeight,  // |∂L/∂w · w| — first-order loss change from zeroing w
  kGradOnly,         // |∂L/∂w|
  kWeightOnly,       // |w| — magnitude heuristic baseline
};

struct SensitivityReport {
  /// score[i] corresponds to flat element i of InjectionSpace(net, spec).
  std::vector<double> element_scores;
  /// Element indices sorted by descending score.
  std::vector<std::int64_t> ranking;

  /// The top `fraction` (0..1] most sensitive elements.
  std::vector<std::int64_t> top_fraction(double fraction) const;
};

/// Computes per-element sensitivity of the cross-entropy loss on
/// (inputs, labels), for the parameters selected by `spec`. The golden
/// network is cloned internally and never mutated.
SensitivityReport compute_sensitivity(
    const nn::Network& golden, const fault::TargetSpec& spec,
    const tensor::Tensor& inputs, std::span<const std::int64_t> labels,
    SensitivityScore score = SensitivityScore::kGradTimesWeight);

}  // namespace bdlfi::bayes
