// Fleet worker: the body of one forked worker process — runs exactly one
// campaign from a FleetSpec with the existing run_until_complete machinery
// and leaves two artifacts in the campaign's directory:
//
//  * a per-attempt JSONL metrics stream (metrics-a<attempt>.jsonl) that the
//    supervising parent tails as the worker's heartbeat, and
//  * a deterministic result.json (written atomically on any terminal
//    outcome) whose content depends only on the campaign configuration —
//    never on timing, attempt count, or whether the run was killed and
//    resumed — so a kill -9/resume sequence is verifiable by byte
//    comparison against an uninterrupted run.
//
// run_worker is a plain function, not a process: the fleet runner calls it
// after fork() (through _exit so no parent state unwinds), and tests may
// call it in-process to validate the result document without any forking.
#pragma once

#include <cstddef>
#include <string>

#include "fleet/spec.h"

namespace bdlfi::fleet {

inline constexpr const char* kFleetResultSchema = "bdlfi_fleet_result";
inline constexpr std::uint64_t kFleetResultVersion = 1;

/// Filesystem layout of one campaign under the fleet output directory.
struct WorkerPaths {
  /// <out>/campaigns/<name>
  std::string campaign_dir;
  /// <campaign_dir>/ckpt — the campaign's own checkpoint dir, shared across
  /// attempts so a restarted worker resumes the same lineage.
  std::string checkpoint_dir;
  /// <campaign_dir>/metrics-a<attempt>.jsonl — fresh per attempt (the
  /// reporter truncates on open; a shared file would interleave two
  /// attempts' seq counters).
  std::string metrics_path;
  /// <campaign_dir>/result.json — terminal outcome, atomic tmp+rename.
  std::string result_path;
  /// <campaign_dir>/worker-a<attempt>.log — the worker's stdout/stderr.
  std::string log_path;
};

/// Canonical paths for `attempt` (1-based) of campaign `name`.
WorkerPaths worker_paths(const std::string& out_dir, const std::string& name,
                         std::size_t attempt);

/// Runs the campaign to a terminal outcome. `resume` continues from the
/// checkpoint in paths.checkpoint_dir (restart attempts and `bdlfi fleet
/// --resume` both set it). Returns the bdlfi exit-code convention:
///   0 converged   2 unusable subject/ckpt/backend   3 round budget exhausted
///   4 failed/rejected (supervision collapse, lock or fingerprint rejection)
///   5 interrupted (no result.json — the checkpoint carries the state)
///   6 checkpoint backend mismatch
int run_worker(const CampaignSpec& spec, const WorkerPaths& paths,
               bool resume);

}  // namespace bdlfi::fleet
