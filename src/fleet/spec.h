// Fleet campaign specification: a JSON document describing a whole family of
// fault-injection campaigns — targets × fault models × AVF profiles ×
// backends × ABFT modes — that `bdlfi fleet` shards across worker processes.
//
// The spec separates "what to measure" from "how to schedule it": a
// `defaults` object carries the settings shared by every campaign, each entry
// of `campaigns` overrides what differs, and any of the sweep axes (`p`,
// `avf`, `target`, `abft`, `backend`, `layer`) may be given as an array,
// which expands that campaign into the cross product of the axis values.
// Expansion is fully deterministic: each expanded campaign gets a canonical
// name (base name plus `-axis=value` suffixes for multi-valued axes) and a
// 16-hex campaign id hashed from its fully-resolved configuration, stable
// across runs — the id that stamps every JSONL event and ties a resumed
// worker back to its checkpoint lineage.
//
// Parsing is strict (the obs::json recursive-descent parser): unknown keys,
// type mismatches, invalid enum values, duplicate expanded names, and
// non-integral counts are all hard errors with the offending key in the
// message. A spec that loads is a spec the fleet can run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bdlfi::fleet {

inline constexpr const char* kFleetSpecSchema = "bdlfi_fleet_spec";
inline constexpr std::uint64_t kFleetSpecVersion = 1;

/// One fully-resolved campaign: every knob `bdlfi complete` accepts, with the
/// same defaults, so a fleet campaign and the equivalent single CLI run are
/// the same experiment.
struct CampaignSpec {
  /// Unique within the fleet; doubles as the campaign's directory name under
  /// the fleet output dir.
  std::string name;
  /// 16-hex FNV-1a of the resolved configuration (stable across runs).
  std::string id;

  // Subject network (mirrors bdlfi build_subject/load_subject).
  std::string model = "mlp";  // mlp | resnet
  std::string ckpt;           // golden weights; required
  double width = 0.125;       // resnet width multiplier
  std::int64_t image_size = 16;
  std::size_t samples = 800;  // two-moons dataset size
  std::size_t samples_per_class = 60;
  std::uint64_t data_seed = 11;
  std::uint64_t init_seed = 12;

  // Fault model / deployment (the sweep axes).
  double p = 1e-3;
  std::string avf = "uniform";  // uniform | exponent | mantissa | sign-exponent
  std::string target = "params";  // params | compute
  std::string abft = "off";       // off | detect | correct
  std::string layer;              // "" = whole network
  std::string backend = "scalar";  // scalar | avx2 | auto

  // Sampler.
  std::string sampler = "mh";  // mh | gibbs
  std::size_t chains = 4;
  std::size_t samples_per_chain = 100;
  std::size_t burn_in = 30;
  std::size_t thin = 5;
  std::size_t mask_batch = 8;
  std::uint64_t seed = 1;

  // Completeness criterion.
  double rhat = 1.05;
  double tol = 0.05;
  std::size_t max_rounds = 8;

  // Chain supervision (within the worker).
  double round_timeout_ms = 0.0;
  std::size_t max_chain_retries = 2;
  double min_acceptance = 0.0;
  std::size_t max_evals_per_round = 0;
  double retry_backoff_ms = 0.0;

  /// Canonical key=value serialization of every resolved field (sorted,
  /// ';'-joined). The campaign id is the FNV-1a hash of this string.
  std::string canonical() const;
};

/// The whole fleet: scheduling policy plus the expanded campaign list.
struct FleetSpec {
  /// Worker processes to fork; 0 = min(hardware threads, campaigns).
  std::size_t workers = 0;
  /// Heartbeat watchdog: a worker whose metrics stream stalls longer than
  /// this is presumed hung and killed (0 = off).
  double worker_timeout_ms = 0.0;
  /// Crash/retry policy, one level above chain supervision: a campaign whose
  /// worker keeps dying is quarantined after this many restarts.
  std::size_t max_worker_retries = 2;
  double worker_backoff_ms = 500.0;
  double worker_backoff_cap_ms = 10000.0;
  /// 16-hex id of the fleet itself (hash over the campaign ids); stamps the
  /// fleet-level lifecycle events.
  std::string id;
  std::vector<CampaignSpec> campaigns;
};

/// Parses and expands a fleet spec from JSON text. nullopt with a
/// human-readable message in `error` on any validation failure.
std::optional<FleetSpec> parse_fleet_spec(const std::string& text,
                                          std::string* error = nullptr);

/// Reads `path` and parses it. nullopt on I/O or validation failure.
std::optional<FleetSpec> load_fleet_spec(const std::string& path,
                                         std::string* error = nullptr);

}  // namespace bdlfi::fleet
