// Fleet runner: crash-tolerant multiprocess campaign orchestration.
//
// run_fleet shards the campaigns of a FleetSpec across fork()ed worker
// processes — up to `workers` at a time, each running one campaign through
// run_worker with its own checkpoint dir and JSONL metrics stream. The
// supervising parent never blocks on a child: it reaps exits with
// waitpid(WNOHANG), tails each worker's metrics stream as a heartbeat
// (JsonlTailReader, torn-line safe), and applies the same retry/quarantine
// policy chains get inside a worker, one level up:
//
//  * a worker that crashes (signal, nonzero exit) is restarted with bounded
//    exponential backoff (mcmc::ChainSupervisor::backoff_ms), resuming from
//    the campaign's last atomic checkpoint — bit-exact, so a kill -9
//    mid-round is invisible in the final result;
//  * a worker whose heartbeat stalls past worker_timeout_ms is presumed
//    hung, killed, and restarted the same way;
//  * a campaign that exhausts max_worker_retries is quarantined: the fleet
//    keeps running everything else and the exit code reports the partial
//    completion.
//
// SIGINT/SIGTERM are forwarded to every live worker (util::interrupt
// forwarding hook), so one Ctrl-C stops the whole tree gracefully: workers
// checkpoint their last complete round and exit, the parent reaps them all
// (no zombies), and `bdlfi fleet --resume` continues the fleet.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "fleet/spec.h"

namespace bdlfi::fleet {

/// A worker lifecycle incident, mirrored into <out>/fleet.jsonl and the
/// optional event hook (tests subscribe to assert restart behavior).
struct WorkerEvent {
  /// "worker_start" | "worker_exit" | "worker_restart".
  std::string type;
  std::string campaign;
  std::string campaign_id;
  long pid = 0;
  /// 1-based launch attempt the event belongs to (for worker_restart: the
  /// upcoming attempt being scheduled).
  std::size_t attempt = 0;
  /// worker_exit: exit code (-1 when the worker died to a signal).
  int exit_code = -1;
  /// worker_exit: terminating signal (0 for a normal exit).
  int term_signal = 0;
  /// Rounds observed on the worker's metrics stream so far.
  std::size_t rounds = 0;
  /// worker_restart: scheduled backoff before the next launch.
  double backoff_ms = 0.0;
  /// worker_exit: "completed" | "not_converged" | "interrupted" | a failure
  /// reason ("signal:9", "exit:4", "hung").
  /// worker_restart: the failure reason being retried.
  std::string outcome;
};

struct FleetOptions {
  /// Fleet output directory: <out>/campaigns/<name>/..., <out>/fleet.jsonl,
  /// <out>/summary.csv.
  std::string out_dir = "fleet_out";
  /// Resume every campaign from its checkpoint (a fresh campaign ignores it).
  bool resume = false;
  /// Overrides FleetSpec::workers when nonzero.
  std::size_t workers = 0;
  /// Supervisor poll cadence (heartbeats, reaping, launches).
  double poll_interval_ms = 50.0;
  /// Fault-injection hook for the fleet itself: SIGKILL each campaign's
  /// worker once its stream reports this many rounds (once per campaign;
  /// 0 = off). The restarted attempt must resume bit-exactly — the ctest
  /// smoke chain and fleet_test compare result.json byte-for-byte against
  /// an unkilled run.
  std::size_t chaos_kill_round = 0;
  /// Invoked on every WorkerEvent (after it is logged). Test hook.
  std::function<void(const WorkerEvent&)> event_hook;
  /// Suppress the per-event progress lines and final table on stdout.
  bool quiet = false;
};

/// Terminal state of one campaign after the fleet finishes.
struct CampaignOutcome {
  CampaignSpec spec;
  /// "completed" | "not_converged" | "quarantined" | "interrupted".
  std::string status;
  /// Worker launches consumed (1 = no restarts).
  std::size_t attempts = 0;
  /// Rounds seen on the final attempt's metrics stream.
  std::size_t rounds = 0;
  /// Exit code of the last worker (-1 when it died to a signal).
  int exit_code = -1;
  /// Last restart/quarantine reason ("" when the campaign never failed).
  std::string last_failure;
  // Pooled results parsed back from the worker's result.json (zero when the
  // campaign produced none).
  double mean_error = 0.0;
  double rhat = 0.0;
  double ess = 0.0;
  double sdc_rate = 0.0;
  double detection_coverage = 0.0;
  std::size_t total_samples = 0;
};

struct FleetResult {
  std::vector<CampaignOutcome> campaigns;
  std::size_t completed = 0;      // converged
  std::size_t not_converged = 0;  // terminal, round budget exhausted
  std::size_t quarantined = 0;    // retries exhausted
  bool interrupted = false;

  /// Fleet exit code, worst outcome wins: 5 interrupted, 4 any campaign
  /// quarantined, 3 any campaign unconverged, else 0.
  int exit_code() const;
};

/// Cross-campaign summary table (one row per campaign).
std::string summary_table(const FleetResult& result);
bool write_summary_csv(const FleetResult& result, const std::string& path);

/// Runs the whole fleet to completion. On platforms without fork/waitpid the
/// campaigns run sequentially in-process (no crash tolerance, same results).
FleetResult run_fleet(const FleetSpec& spec, const FleetOptions& options);

}  // namespace bdlfi::fleet
