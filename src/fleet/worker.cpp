#include "fleet/worker.h"

#include <cstdio>
#include <filesystem>
#include <memory>

#include "bayes/targets.h"
#include "data/cifar_like.h"
#include "data/toy2d.h"
#include "mcmc/runner.h"
#include "nn/builders.h"
#include "nn/checkpoint.h"
#include "obs/json.h"
#include "obs/reporter.h"
#include "tensor/backend/backend.h"
#include "util/interrupt.h"
#include "util/log.h"
#include "util/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace bdlfi::fleet {

namespace {

struct Subject {
  nn::Network net;
  data::Dataset train;
  data::Dataset test;
};

/// Deterministic subject reconstruction — the same recipe as the bdlfi CLI's
/// build_subject, driven by the resolved spec instead of flags, so a fleet
/// campaign and the equivalent `bdlfi complete` invocation evaluate the same
/// network on the same test set.
bool build_subject(const CampaignSpec& spec, Subject* subject) {
  util::Rng data_rng{spec.data_seed};
  util::Rng init_rng{spec.init_seed};
  if (spec.model == "mlp") {
    data::Dataset all = data::make_two_moons(spec.samples, 0.08, data_rng);
    data::Split split = data::split_dataset(all, 0.75, data_rng);
    subject->net = nn::make_mlp({2, 16, 32, 2}, init_rng);
    subject->train = std::move(split.train);
    subject->test = std::move(split.test);
    return true;
  }
  if (spec.model == "resnet") {
    data::CifarLikeConfig dc;
    dc.samples_per_class = spec.samples_per_class;
    dc.image_size = spec.image_size;
    data::Dataset all = data::make_cifar_like(dc, data_rng);
    data::Split split = data::split_dataset(all, 0.8, data_rng);
    nn::ResNetConfig nc;
    nc.width_multiplier = spec.width;
    subject->net = nn::make_resnet18(nc, init_rng);
    subject->train = std::move(split.train);
    subject->test = std::move(split.test);
    return true;
  }
  return false;
}

fault::AvfProfile avf_from(const std::string& name) {
  if (name == "exponent") return fault::AvfProfile::exponent_weighted(4.0);
  if (name == "mantissa") return fault::AvfProfile::mantissa_only();
  if (name == "sign-exponent") return fault::AvfProfile::sign_exponent_only();
  return fault::AvfProfile::uniform();
}

/// Serializes the terminal campaign outcome. Every field is a pure function
/// of the campaign configuration (doubles via number_exact): no timestamps,
/// no attempt counters, no resumed_from_round — that is what makes the
/// kill/resume equivalence check a byte comparison.
std::string result_document(const CampaignSpec& spec,
                            const mcmc::CompletenessResult& result) {
  const mcmc::CampaignResult& fin = result.final_result;
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", kFleetResultSchema);
  w.field("version", kFleetResultVersion);
  w.field("name", spec.name);
  w.field("campaign_id", spec.id);
  w.key("p").number_exact(spec.p);
  w.field("backend", std::string(tensor::backend::active_name()));
  w.field("converged", result.converged);
  w.field("rounds", static_cast<std::uint64_t>(result.rounds));
  w.field_exact("mean_error", fin.mean_error);
  w.field_exact("stddev_error", fin.stddev_error);
  w.field_exact("q05", fin.q05);
  w.field_exact("q50", fin.q50);
  w.field_exact("q95", fin.q95);
  w.field_exact("mean_deviation", fin.mean_deviation);
  w.field_exact("mean_flips", fin.mean_flips);
  w.field_exact("mean_acceptance", fin.mean_acceptance);
  w.field_exact("rhat", fin.diagnostics.rhat);
  w.field_exact("ess", fin.diagnostics.ess);
  w.field_exact("geweke_max", fin.diagnostics.geweke_max);
  w.field("total_samples", static_cast<std::uint64_t>(fin.total_samples));
  w.field("total_network_evals",
          static_cast<std::uint64_t>(fin.total_network_evals));
  w.field("outcome_masked",
          static_cast<std::uint64_t>(fin.total_outcome_masked));
  w.field("outcome_sdc", static_cast<std::uint64_t>(fin.total_outcome_sdc));
  w.field("outcome_detected",
          static_cast<std::uint64_t>(fin.total_outcome_detected));
  w.field("outcome_corrected",
          static_cast<std::uint64_t>(fin.total_outcome_corrected));
  w.field_exact("detection_coverage", fin.detection_coverage());
  w.field_exact("sdc_rate", fin.sdc_rate());
  w.field("chains_quarantined",
          static_cast<std::uint64_t>(fin.chains_quarantined));
  w.field("degraded", fin.degraded);
  w.field("failed", fin.failed);
  if (fin.failed) w.field("fail_reason", fin.fail_reason);
  w.key("trajectory").begin_array();
  for (const auto& r : result.trajectory) {
    w.begin_object();
    w.field("cumulative_samples",
            static_cast<std::uint64_t>(r.cumulative_samples));
    w.field_exact("mean_error", r.mean_error);
    w.field_exact("rhat", r.rhat);
    w.field_exact("ess", r.ess);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool write_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
            content.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fflush(f) == 0 && ok;
#if defined(__unix__) || defined(__APPLE__)
  if (ok) ok = ::fsync(fileno(f)) == 0;
#endif
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

}  // namespace

WorkerPaths worker_paths(const std::string& out_dir, const std::string& name,
                         std::size_t attempt) {
  WorkerPaths paths;
  paths.campaign_dir = out_dir + "/campaigns/" + name;
  paths.checkpoint_dir = paths.campaign_dir + "/ckpt";
  const std::string suffix = "-a" + std::to_string(attempt);
  paths.metrics_path = paths.campaign_dir + "/metrics" + suffix + ".jsonl";
  paths.result_path = paths.campaign_dir + "/result.json";
  paths.log_path = paths.campaign_dir + "/worker" + suffix + ".log";
  return paths;
}

int run_worker(const CampaignSpec& spec, const WorkerPaths& paths,
               bool resume) {
  std::error_code ec;
  std::filesystem::create_directories(paths.campaign_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n",
                 paths.campaign_dir.c_str(), ec.message().c_str());
    return 2;
  }

  // The spec's backend axis is an explicit request — resolved through the
  // shared policy, strictly (no env fallback: every worker in a cell must
  // run the cell's pinned backend).
  const tensor::backend::Resolution backend =
      tensor::backend::resolve(spec.backend, /*env=*/nullptr);
  if (!backend.ok) {
    std::fprintf(stderr, "backend: %s\n", backend.error.c_str());
    return 2;
  }

  Subject subject;
  if (!build_subject(spec, &subject)) {
    std::fprintf(stderr, "unknown model '%s'\n", spec.model.c_str());
    return 2;
  }
  if (!nn::load_checkpoint(subject.net, spec.ckpt)) {
    std::fprintf(stderr,
                 "failed to load %s (do model/width/image_size match the "
                 "train run?)\n",
                 spec.ckpt.c_str());
    return 2;
  }

  tensor::abft::Config abft;
  if (!tensor::abft::parse_mode(spec.abft, &abft.mode)) return 2;
  subject.net.set_abft(abft);

  bayes::TargetSpec target_spec = spec.target == "compute"
                                      ? bayes::TargetSpec::compute_only()
                                      : bayes::TargetSpec::all_parameters();
  if (!spec.layer.empty()) {
    target_spec = bayes::TargetSpec::single_layer(spec.layer);
  }
  bayes::BayesianFaultNetwork bfn(subject.net, target_spec,
                                  avf_from(spec.avf), subject.test.inputs,
                                  subject.test.labels);

  mcmc::RunnerConfig runner;
  runner.num_chains = spec.chains;
  runner.use_gibbs = spec.sampler == "gibbs";
  runner.mh.samples = spec.samples_per_chain;
  runner.mh.burn_in = spec.burn_in;
  runner.mh.thin = spec.thin;
  runner.mh.mask_batch = spec.mask_batch;
  runner.gibbs.samples = spec.samples_per_chain;
  runner.gibbs.burn_in = spec.burn_in;
  runner.gibbs.mask_batch = spec.mask_batch;
  runner.seed = spec.seed;
  runner.supervisor.round_timeout_ms = spec.round_timeout_ms;
  runner.supervisor.max_retries = spec.max_chain_retries;
  runner.supervisor.min_acceptance = spec.min_acceptance;
  runner.supervisor.max_evals_per_round = spec.max_evals_per_round;
  runner.supervisor.backoff_base_ms = spec.retry_backoff_ms;
  runner.checkpoint_dir = paths.checkpoint_dir;
  runner.resume = resume;
  util::install_interrupt_handlers();

  obs::CampaignReporter::Options opts;
  opts.metrics_path = paths.metrics_path;
  opts.label = spec.name;
  opts.backend = tensor::backend::active_name();
  opts.campaign_id = spec.id;
  opts.subject = spec.layer;
  obs::CampaignReporter reporter(opts);
  runner.round_hook = reporter.hook();
  runner.health_hook = reporter.health_hook();
  runner.checkpoint_hook = [&reporter](std::size_t round,
                                       const std::string& path) {
    reporter.checkpoint_saved(round, path);
  };

  mcmc::CompletenessCriterion criterion;
  criterion.rhat_threshold = spec.rhat;
  criterion.mean_rel_tol = spec.tol;
  criterion.max_rounds = spec.max_rounds;

  const double p = spec.p;
  mcmc::TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };
  reporter.begin(p, runner.num_chains, runner.mh.samples,
                 criterion.max_rounds);
  const mcmc::CompletenessResult result =
      mcmc::run_until_complete(bfn, factory, p, runner, criterion);
  reporter.end(result.converged, result.rounds);

  if (result.lock_rejected || result.resume_rejected) {
    std::fprintf(stderr, "campaign rejected: %s\n",
                 result.final_result.fail_reason.c_str());
    return result.backend_mismatch ? 6 : 4;
  }
  if (result.interrupted) {
    // The checkpoint carries the state; a result.json here would be a lie
    // about a campaign that has not terminated.
    std::fprintf(stderr, "interrupted after %zu complete round(s)\n",
                 result.rounds);
    return 5;
  }
  if (!write_atomic(paths.result_path, result_document(spec, result))) {
    std::fprintf(stderr, "cannot write %s\n", paths.result_path.c_str());
    return 4;
  }
  if (result.final_result.failed) {
    std::fprintf(stderr, "campaign FAILED: %s\n",
                 result.final_result.fail_reason.c_str());
    return 4;
  }
  return result.converged ? 0 : 3;
}

}  // namespace bdlfi::fleet
