#include "fleet/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "fleet/worker.h"
#include "mcmc/supervisor.h"
#include "obs/json.h"
#include "obs/stream.h"
#include "util/csv.h"
#include "util/interrupt.h"
#include "util/log.h"
#include "util/thread_pool.h"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define BDLFI_FLEET_FORK 1
#endif

namespace bdlfi::fleet {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Appends fleet lifecycle events to <out>/fleet.jsonl with the standard
/// event envelope (campaign_id + per-file monotonic seq), so check_json and
/// the dashboard's aggregator accept the stream like any other.
class FleetLog {
 public:
  FleetLog(const std::string& path, std::string fleet_id)
      : fleet_id_(std::move(fleet_id)) {
    sink_ = std::fopen(path.c_str(), "w");
  }
  ~FleetLog() {
    if (sink_ != nullptr) std::fclose(sink_);
  }
  FleetLog(const FleetLog&) = delete;
  FleetLog& operator=(const FleetLog&) = delete;

  void fleet_begin(std::size_t campaigns, std::size_t workers) {
    obs::JsonWriter w;
    w.begin_object();
    stamp(w, "fleet_begin", fleet_id_);
    w.field("campaigns", static_cast<std::uint64_t>(campaigns));
    w.field("workers", static_cast<std::uint64_t>(workers));
    w.end_object();
    write(w);
  }

  void fleet_end(const FleetResult& r) {
    obs::JsonWriter w;
    w.begin_object();
    stamp(w, "fleet_end", fleet_id_);
    w.field("completed", static_cast<std::uint64_t>(r.completed));
    w.field("not_converged", static_cast<std::uint64_t>(r.not_converged));
    w.field("quarantined", static_cast<std::uint64_t>(r.quarantined));
    w.field("interrupted", r.interrupted);
    w.end_object();
    write(w);
  }

  void worker(const WorkerEvent& e) {
    obs::JsonWriter w;
    w.begin_object();
    stamp(w, e.type.c_str(), e.campaign_id);
    w.field("campaign", e.campaign);
    w.field("pid", static_cast<std::int64_t>(e.pid));
    w.field("attempt", static_cast<std::uint64_t>(e.attempt));
    if (e.type == "worker_exit") {
      w.field("exit_code", static_cast<std::int64_t>(e.exit_code));
      w.field("signal", static_cast<std::int64_t>(e.term_signal));
      w.field("rounds", static_cast<std::uint64_t>(e.rounds));
      w.field("outcome", e.outcome);
    } else if (e.type == "worker_restart") {
      w.field("backoff_ms", e.backoff_ms);
      w.field("reason", e.outcome);
    }
    w.end_object();
    write(w);
  }

 private:
  void stamp(obs::JsonWriter& w, const char* event, const std::string& id) {
    w.field("event", event)
        .field("label", "fleet")
        .field("campaign_id", id)
        .field("seq", static_cast<std::uint64_t>(++seq_));
  }
  void write(const obs::JsonWriter& w) {
    if (sink_ == nullptr) return;
    std::fwrite(w.str().data(), 1, w.str().size(), sink_);
    std::fputc('\n', sink_);
    std::fflush(sink_);
  }

  std::string fleet_id_;
  std::FILE* sink_ = nullptr;
  std::uint64_t seq_ = 0;
};

/// Pulls the pooled stats of a finished campaign back out of its result.json
/// for the cross-campaign summary table. Missing/partial files leave zeros.
void load_result_stats(const std::string& path, CampaignOutcome* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto doc = obs::json_parse(buffer.str());
  if (!doc.has_value() || !doc->is_object()) return;
  const auto num = [&doc](const char* key, double* value) {
    const obs::JsonValue* v = doc->find(key);
    if (v != nullptr && v->is_number()) *value = v->as_number();
  };
  num("mean_error", &out->mean_error);
  num("rhat", &out->rhat);
  num("ess", &out->ess);
  num("sdc_rate", &out->sdc_rate);
  num("detection_coverage", &out->detection_coverage);
  double samples = 0.0, rounds = 0.0;
  num("total_samples", &samples);
  num("rounds", &rounds);
  out->total_samples = static_cast<std::size_t>(samples);
  if (rounds > 0.0) out->rounds = static_cast<std::size_t>(rounds);
}

util::Table make_table(const FleetResult& result) {
  util::Table table({"campaign", "status", "attempts", "rounds", "samples",
                     "mean_error_%", "rhat", "ess", "sdc_rate", "coverage"});
  for (const CampaignOutcome& c : result.campaigns) {
    table.row()
        .col(c.spec.name)
        .col(c.status)
        .col(c.attempts)
        .col(c.rounds)
        .col(c.total_samples)
        .col(c.mean_error)
        .col(c.rhat)
        .col(c.ess)
        .col(c.sdc_rate)
        .col(c.detection_coverage);
  }
  return table;
}

/// Classifies a worker's normal exit. Returns true for a terminal outcome
/// (status/result recorded), false for a failure the caller should retry.
bool classify_exit(int exit_code, const WorkerPaths& paths, FleetResult* fleet,
                   CampaignOutcome* out, std::string* failure_reason) {
  if (exit_code == 0 || exit_code == 3) {
    out->status = exit_code == 0 ? "completed" : "not_converged";
    (exit_code == 0 ? fleet->completed : fleet->not_converged) += 1;
    load_result_stats(paths.result_path, out);
    return true;
  }
  if (exit_code == 5 && util::interrupt_requested()) {
    out->status = "interrupted";
    fleet->interrupted = true;
    return true;
  }
  *failure_reason = "exit:" + std::to_string(exit_code);
  return false;
}

}  // namespace

int FleetResult::exit_code() const {
  if (interrupted) return 5;
  if (quarantined > 0) return 4;
  if (not_converged > 0) return 3;
  return 0;
}

std::string summary_table(const FleetResult& result) {
  return make_table(result).to_text();
}

bool write_summary_csv(const FleetResult& result, const std::string& path) {
  return make_table(result).write_csv(path);
}

#if defined(BDLFI_FLEET_FORK)

FleetResult run_fleet(const FleetSpec& spec, const FleetOptions& options) {
  FleetResult result;
  result.campaigns.resize(spec.campaigns.size());
  for (std::size_t i = 0; i < spec.campaigns.size(); ++i) {
    result.campaigns[i].spec = spec.campaigns[i];
    result.campaigns[i].status = "pending";
  }
  std::error_code ec;
  std::filesystem::create_directories(options.out_dir + "/campaigns", ec);
  if (ec) {
    BDLFI_LOG_ERROR("cannot create %s: %s", options.out_dir.c_str(),
                    ec.message().c_str());
    for (auto& c : result.campaigns) c.status = "quarantined";
    result.quarantined = result.campaigns.size();
    return result;
  }

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::size_t workers = options.workers != 0 ? options.workers : spec.workers;
  if (workers == 0) workers = std::min(hw, spec.campaigns.size());
  workers = std::max<std::size_t>(
      1, std::min(workers, spec.campaigns.size()));
  // Workers split the machine instead of oversubscribing it: each child
  // rebuilds its global pool (reinit_after_fork) at its share of the cores.
  const std::size_t threads_per_worker = std::max<std::size_t>(1, hw / workers);

  // The retry/quarantine policy is literally the chain supervisor's, one
  // level up: campaign index = "chain", worker launch = "attempt".
  mcmc::SupervisorConfig policy_config;
  policy_config.max_retries = spec.max_worker_retries;
  policy_config.backoff_base_ms = spec.worker_backoff_ms;
  policy_config.backoff_cap_ms = spec.worker_backoff_cap_ms;
  mcmc::ChainSupervisor policy(policy_config, spec.campaigns.size());

  util::install_interrupt_handlers();
  FleetLog log(options.out_dir + "/fleet.jsonl", spec.id);
  log.fleet_begin(spec.campaigns.size(), workers);

  const auto emit = [&](const WorkerEvent& e) {
    log.worker(e);
    if (!options.quiet) {
      if (e.type == "worker_start") {
        std::printf("[fleet] %s: worker %ld started (attempt %zu)\n",
                    e.campaign.c_str(), e.pid, e.attempt);
      } else if (e.type == "worker_exit") {
        std::printf("[fleet] %s: worker %ld exited (%s)\n", e.campaign.c_str(),
                    e.pid, e.outcome.c_str());
      } else {
        std::printf("[fleet] %s: restarting after %s (attempt %zu in %.0fms)\n",
                    e.campaign.c_str(), e.outcome.c_str(), e.attempt,
                    e.backoff_ms);
      }
      std::fflush(stdout);
    }
    if (options.event_hook) options.event_hook(e);
  };

  enum class CState { pending, running, done };
  struct CampaignState {
    CState state = CState::pending;
    std::size_t attempts = 0;
    std::size_t failures = 0;
    double not_before_ms = 0.0;
    std::size_t rounds_seen = 0;
    bool chaos_done = false;
    bool killed_hung = false;
    bool killed_chaos = false;
    bool stop_sent = false;
  };
  struct RunningWorker {
    std::size_t idx = 0;
    pid_t pid = -1;
    std::unique_ptr<obs::JsonlTailReader> reader;
    double last_beat_ms = 0.0;
  };
  std::vector<CampaignState> st(spec.campaigns.size());
  std::vector<RunningWorker> running;

  const auto all_done = [&] {
    return std::all_of(st.begin(), st.end(), [](const CampaignState& s) {
      return s.state == CState::done;
    });
  };

  const auto count_rounds = [&](RunningWorker& w) {
    std::vector<obs::JsonValue> events;
    if (w.reader->poll(&events) == 0) return false;
    w.last_beat_ms = now_ms();
    for (const obs::JsonValue& ev : events) {
      const obs::JsonValue* type = ev.find("event");
      if (type != nullptr && type->is_string() &&
          type->as_string() == "round") {
        ++st[w.idx].rounds_seen;
      }
    }
    return true;
  };

  const auto launch = [&](std::size_t idx) {
    CampaignState& s = st[idx];
    const CampaignSpec& c = spec.campaigns[idx];
    ++s.attempts;
    s.killed_hung = s.killed_chaos = false;
    const WorkerPaths paths = worker_paths(options.out_dir, c.name, s.attempts);
    std::filesystem::create_directories(paths.campaign_dir);
    // Restart attempts always resume: the whole point of the per-round
    // checkpoint is that the replacement worker continues the lineage.
    const bool resume = options.resume || s.attempts > 1;
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      BDLFI_LOG_ERROR("fork failed for campaign %s", c.name.c_str());
      s.not_before_ms = now_ms() + std::max(100.0, spec.worker_backoff_ms);
      return;
    }
    if (pid == 0) {
      // Child. The inherited forwarding registry would make this worker kill
      // its siblings on Ctrl-C; the inherited global thread pool is a map of
      // threads that do not exist after fork. Reset both before any work.
      util::interrupt_forward_clear();
      util::set_interrupt_requested(false);
      util::ThreadPool::reinit_after_fork(threads_per_worker);
      std::freopen(paths.log_path.c_str(), "w", stdout);
      std::freopen(paths.log_path.c_str(), "a", stderr);
      const int rc = run_worker(c, paths, resume);
      std::fflush(nullptr);
      ::_exit(rc);
    }
    util::interrupt_forward_add(static_cast<long>(pid));
    RunningWorker w;
    w.idx = idx;
    w.pid = pid;
    w.reader = std::make_unique<obs::JsonlTailReader>(paths.metrics_path);
    w.last_beat_ms = now_ms();
    running.push_back(std::move(w));
    s.state = CState::running;
    WorkerEvent e;
    e.type = "worker_start";
    e.campaign = c.name;
    e.campaign_id = c.id;
    e.pid = static_cast<long>(pid);
    e.attempt = s.attempts;
    emit(e);
  };

  const auto handle_exit = [&](pid_t pid, int status) {
    const auto it =
        std::find_if(running.begin(), running.end(),
                     [pid](const RunningWorker& w) { return w.pid == pid; });
    if (it == running.end()) return;  // not one of ours
    RunningWorker w = std::move(*it);
    running.erase(it);
    util::interrupt_forward_remove(static_cast<long>(pid));
    count_rounds(w);  // drain the stream's tail before judging the attempt

    CampaignState& s = st[w.idx];
    CampaignOutcome& out = result.campaigns[w.idx];
    int exit_code = -1;
    int sig = 0;
    if (WIFEXITED(status)) {
      exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      sig = WTERMSIG(status);
    }
    out.exit_code = exit_code;
    out.attempts = s.attempts;
    out.rounds = s.rounds_seen;

    WorkerEvent e;
    e.type = "worker_exit";
    e.campaign = out.spec.name;
    e.campaign_id = out.spec.id;
    e.pid = static_cast<long>(pid);
    e.attempt = s.attempts;
    e.exit_code = exit_code;
    e.term_signal = sig;
    e.rounds = s.rounds_seen;

    std::string reason;
    bool terminal = false;
    if (sig != 0) {
      reason = s.killed_hung    ? "hung"
               : s.killed_chaos ? "chaos_kill"
                                : "signal:" + std::to_string(sig);
    } else {
      const WorkerPaths paths =
          worker_paths(options.out_dir, out.spec.name, s.attempts);
      terminal = classify_exit(exit_code, paths, &result, &out, &reason);
    }
    if (terminal) {
      s.state = CState::done;
      e.outcome = out.status;
      emit(e);
      return;
    }

    // Failure path: retry with backoff, or quarantine and move on — the rest
    // of the fleet is unaffected either way.
    e.outcome = reason;
    out.last_failure = reason;
    emit(e);
    const std::size_t attempt_idx = s.failures++;
    if (util::interrupt_requested()) {
      s.state = CState::done;
      out.status = "interrupted";
      result.interrupted = true;
      return;
    }
    if (policy.record_failure(w.idx, s.rounds_seen, reason, attempt_idx)) {
      const double backoff = policy.backoff_ms(attempt_idx);
      s.state = CState::pending;
      s.not_before_ms = now_ms() + backoff;
      WorkerEvent r;
      r.type = "worker_restart";
      r.campaign = out.spec.name;
      r.campaign_id = out.spec.id;
      r.pid = static_cast<long>(pid);
      r.attempt = s.attempts + 1;
      r.backoff_ms = backoff;
      r.outcome = reason;
      emit(r);
    } else {
      s.state = CState::done;
      out.status = "quarantined";
      ++result.quarantined;
      if (!options.quiet) {
        std::printf("[fleet] %s: QUARANTINED after %zu attempt(s) (%s)\n",
                    out.spec.name.c_str(), s.attempts, reason.c_str());
      }
    }
  };

  while (!all_done()) {
    const bool stop = util::interrupt_requested();
    if (!stop) {
      for (std::size_t i = 0;
           i < st.size() && running.size() < workers; ++i) {
        if (st[i].state == CState::pending &&
            st[i].not_before_ms <= now_ms()) {
          launch(i);
        }
      }
    } else {
      result.interrupted = true;
      for (std::size_t i = 0; i < st.size(); ++i) {
        if (st[i].state == CState::pending) {
          st[i].state = CState::done;
          result.campaigns[i].status = "interrupted";
        }
      }
      // The signal handler forwarded to every registered pid, but a worker
      // forked between signal delivery and registration would miss it; a
      // second (idempotent) notice per worker closes that race.
      for (RunningWorker& w : running) {
        CampaignState& s = st[w.idx];
        if (!s.stop_sent) {
          const int sig = util::interrupt_signal();
          ::kill(w.pid, sig != 0 ? sig : SIGTERM);
          s.stop_sent = true;
        }
      }
    }

    for (RunningWorker& w : running) {
      count_rounds(w);
      CampaignState& s = st[w.idx];
      if (options.chaos_kill_round > 0 && !s.chaos_done &&
          s.rounds_seen >= options.chaos_kill_round) {
        s.chaos_done = true;
        s.killed_chaos = true;
        ::kill(w.pid, SIGKILL);
      } else if (spec.worker_timeout_ms > 0.0 && !stop &&
                 now_ms() - w.last_beat_ms > spec.worker_timeout_ms) {
        s.killed_hung = true;
        ::kill(w.pid, SIGKILL);
      }
    }

    for (;;) {
      int status = 0;
      const pid_t pid = ::waitpid(-1, &status, WNOHANG);
      if (pid <= 0) break;
      handle_exit(pid, status);
    }

    if (all_done()) break;
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<std::int64_t>(options.poll_interval_ms * 1000.0)));
  }

  log.fleet_end(result);
  write_summary_csv(result, options.out_dir + "/summary.csv");
  if (!options.quiet) {
    std::printf("%s", summary_table(result).c_str());
  }
  return result;
}

#else  // no fork/waitpid: sequential in-process fallback

FleetResult run_fleet(const FleetSpec& spec, const FleetOptions& options) {
  FleetResult result;
  std::filesystem::create_directories(options.out_dir + "/campaigns");
  FleetLog log(options.out_dir + "/fleet.jsonl", spec.id);
  log.fleet_begin(spec.campaigns.size(), 1);
  for (const CampaignSpec& c : spec.campaigns) {
    CampaignOutcome out;
    out.spec = c;
    out.attempts = 1;
    if (util::interrupt_requested()) {
      out.status = "interrupted";
      result.interrupted = true;
      result.campaigns.push_back(std::move(out));
      continue;
    }
    const WorkerPaths paths = worker_paths(options.out_dir, c.name, 1);
    const int rc = run_worker(c, paths, options.resume);
    out.exit_code = rc;
    std::string reason;
    if (!classify_exit(rc, paths, &result, &out, &reason)) {
      out.status = "quarantined";
      out.last_failure = reason;
      ++result.quarantined;
    }
    result.campaigns.push_back(std::move(out));
  }
  log.fleet_end(result);
  write_summary_csv(result, options.out_dir + "/summary.csv");
  if (!options.quiet) std::printf("%s", summary_table(result).c_str());
  return result;
}

#endif

}  // namespace bdlfi::fleet
