#include "fleet/spec.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "obs/json.h"
#include "obs/stream.h"

namespace bdlfi::fleet {

namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

std::string fmt_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_short(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// The sweep axes: the only keys whose value may be an array (expanding the
/// campaign into the cross product). Order fixed — it is the expansion order
/// and therefore part of the deterministic naming contract.
const char* const kAxisKeys[] = {"p", "avf", "target", "abft", "backend",
                                 "layer"};

bool is_axis_key(const std::string& key) {
  for (const char* axis : kAxisKeys) {
    if (key == axis) return true;
  }
  return false;
}

const std::set<std::string>& campaign_keys() {
  static const std::set<std::string> keys = {
      "model",       "ckpt",
      "width",       "image_size",
      "samples",     "samples_per_class",
      "data_seed",   "init_seed",
      "p",           "avf",
      "target",      "abft",
      "layer",       "backend",
      "sampler",     "chains",
      "samples_per_chain", "burn_in",
      "thin",        "mask_batch",
      "seed",        "rhat",
      "tol",         "max_rounds",
      "round_timeout_ms", "max_chain_retries",
      "min_acceptance", "max_evals_per_round",
      "retry_backoff_ms"};
  return keys;
}

bool get_double(const obs::JsonValue& v, const std::string& key, double* out,
                std::string* error) {
  if (!v.is_number()) return fail(error, "'" + key + "' must be a number");
  *out = v.as_number();
  if (!std::isfinite(*out)) return fail(error, "'" + key + "' must be finite");
  return true;
}

bool get_count(const obs::JsonValue& v, const std::string& key,
               std::size_t* out, std::string* error) {
  double d;
  if (!get_double(v, key, &d, error)) return false;
  if (d < 0.0 || d != std::floor(d)) {
    return fail(error, "'" + key + "' must be a non-negative integer");
  }
  *out = static_cast<std::size_t>(d);
  return true;
}

bool get_u64(const obs::JsonValue& v, const std::string& key,
             std::uint64_t* out, std::string* error) {
  std::size_t n;
  if (!get_count(v, key, &n, error)) return false;
  *out = static_cast<std::uint64_t>(n);
  return true;
}

bool get_string(const obs::JsonValue& v, const std::string& key,
                std::string* out, std::string* error) {
  if (!v.is_string()) return fail(error, "'" + key + "' must be a string");
  *out = v.as_string();
  return true;
}

/// Applies one scalar field to the spec. Type errors name the key.
bool apply_field(CampaignSpec& c, const std::string& key,
                 const obs::JsonValue& v, std::string* error) {
  // Strings.
  if (key == "model") return get_string(v, key, &c.model, error);
  if (key == "ckpt") return get_string(v, key, &c.ckpt, error);
  if (key == "avf") return get_string(v, key, &c.avf, error);
  if (key == "target") return get_string(v, key, &c.target, error);
  if (key == "abft") return get_string(v, key, &c.abft, error);
  if (key == "layer") return get_string(v, key, &c.layer, error);
  if (key == "backend") return get_string(v, key, &c.backend, error);
  if (key == "sampler") return get_string(v, key, &c.sampler, error);
  // Doubles.
  if (key == "width") return get_double(v, key, &c.width, error);
  if (key == "p") return get_double(v, key, &c.p, error);
  if (key == "rhat") return get_double(v, key, &c.rhat, error);
  if (key == "tol") return get_double(v, key, &c.tol, error);
  if (key == "round_timeout_ms") {
    return get_double(v, key, &c.round_timeout_ms, error);
  }
  if (key == "min_acceptance") {
    return get_double(v, key, &c.min_acceptance, error);
  }
  if (key == "retry_backoff_ms") {
    return get_double(v, key, &c.retry_backoff_ms, error);
  }
  // Counts.
  if (key == "samples") return get_count(v, key, &c.samples, error);
  if (key == "samples_per_class") {
    return get_count(v, key, &c.samples_per_class, error);
  }
  if (key == "chains") return get_count(v, key, &c.chains, error);
  if (key == "samples_per_chain") {
    return get_count(v, key, &c.samples_per_chain, error);
  }
  if (key == "burn_in") return get_count(v, key, &c.burn_in, error);
  if (key == "thin") return get_count(v, key, &c.thin, error);
  if (key == "mask_batch") return get_count(v, key, &c.mask_batch, error);
  if (key == "max_rounds") return get_count(v, key, &c.max_rounds, error);
  if (key == "max_chain_retries") {
    return get_count(v, key, &c.max_chain_retries, error);
  }
  if (key == "max_evals_per_round") {
    return get_count(v, key, &c.max_evals_per_round, error);
  }
  // Seeds / sizes.
  if (key == "data_seed") return get_u64(v, key, &c.data_seed, error);
  if (key == "init_seed") return get_u64(v, key, &c.init_seed, error);
  if (key == "seed") return get_u64(v, key, &c.seed, error);
  if (key == "image_size") {
    std::size_t n;
    if (!get_count(v, key, &n, error)) return false;
    c.image_size = static_cast<std::int64_t>(n);
    return true;
  }
  return fail(error, "unknown campaign key '" + key + "'");
}

bool one_of(const std::string& value, std::initializer_list<const char*> opts) {
  for (const char* o : opts) {
    if (value == o) return true;
  }
  return false;
}

bool validate_campaign(const CampaignSpec& c, std::string* error) {
  const std::string where = "campaign '" + c.name + "': ";
  if (c.name.empty()) return fail(error, "campaign name must not be empty");
  for (const char ch : c.name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '-' || ch == '_' ||
                    ch == '.' || ch == '=';
    if (!ok) {
      return fail(error, where + "name contains '" + std::string(1, ch) +
                             "' (allowed: alphanumerics - _ . =)");
    }
  }
  if (c.ckpt.empty()) return fail(error, where + "'ckpt' is required");
  if (!one_of(c.model, {"mlp", "resnet"})) {
    return fail(error, where + "unknown model '" + c.model + "' (mlp|resnet)");
  }
  if (!one_of(c.avf, {"uniform", "exponent", "mantissa", "sign-exponent"})) {
    return fail(error, where + "unknown avf '" + c.avf +
                           "' (uniform|exponent|mantissa|sign-exponent)");
  }
  if (!one_of(c.target, {"params", "compute"})) {
    return fail(error,
                where + "unknown target '" + c.target + "' (params|compute)");
  }
  if (!one_of(c.abft, {"off", "detect", "correct"})) {
    return fail(error,
                where + "unknown abft '" + c.abft + "' (off|detect|correct)");
  }
  if (!one_of(c.backend, {"scalar", "avx2", "auto"})) {
    return fail(error, where + "unknown backend '" + c.backend +
                           "' (scalar|avx2|auto)");
  }
  if (!one_of(c.sampler, {"mh", "gibbs"})) {
    return fail(error,
                where + "unknown sampler '" + c.sampler + "' (mh|gibbs)");
  }
  if (c.p <= 0.0 || c.p >= 1.0) {
    return fail(error, where + "'p' must be in (0, 1)");
  }
  if (c.chains == 0) return fail(error, where + "'chains' must be >= 1");
  if (c.samples_per_chain == 0) {
    return fail(error, where + "'samples_per_chain' must be >= 1");
  }
  if (c.thin == 0) return fail(error, where + "'thin' must be >= 1");
  if (c.mask_batch == 0) return fail(error, where + "'mask_batch' must be >= 1");
  if (c.max_rounds == 0) return fail(error, where + "'max_rounds' must be >= 1");
  return true;
}

/// Value of an axis entry rendered for the expanded campaign's name suffix.
std::string axis_suffix_value(const obs::JsonValue& v) {
  if (v.is_string()) return v.as_string().empty() ? "none" : v.as_string();
  if (v.is_number()) return fmt_short(v.as_number());
  return "invalid";
}

}  // namespace

std::string CampaignSpec::canonical() const {
  // Fixed field order; every resolved knob participates, so two campaigns
  // share an id exactly when they are the same experiment.
  std::ostringstream out;
  out << "name=" << name << ";model=" << model << ";ckpt=" << ckpt
      << ";width=" << fmt_exact(width) << ";image_size=" << image_size
      << ";samples=" << samples << ";samples_per_class=" << samples_per_class
      << ";data_seed=" << data_seed << ";init_seed=" << init_seed
      << ";p=" << fmt_exact(p) << ";avf=" << avf << ";target=" << target
      << ";abft=" << abft << ";layer=" << layer << ";backend=" << backend
      << ";sampler=" << sampler << ";chains=" << chains
      << ";samples_per_chain=" << samples_per_chain << ";burn_in=" << burn_in
      << ";thin=" << thin << ";mask_batch=" << mask_batch << ";seed=" << seed
      << ";rhat=" << fmt_exact(rhat) << ";tol=" << fmt_exact(tol)
      << ";max_rounds=" << max_rounds
      << ";round_timeout_ms=" << fmt_exact(round_timeout_ms)
      << ";max_chain_retries=" << max_chain_retries
      << ";min_acceptance=" << fmt_exact(min_acceptance)
      << ";max_evals_per_round=" << max_evals_per_round
      << ";retry_backoff_ms=" << fmt_exact(retry_backoff_ms);
  return out.str();
}

std::optional<FleetSpec> parse_fleet_spec(const std::string& text,
                                          std::string* error) {
  std::string parse_error;
  auto doc = obs::json_parse(text, &parse_error);
  if (!doc.has_value()) {
    fail(error, "fleet spec is not valid JSON: " + parse_error);
    return std::nullopt;
  }
  if (!doc->is_object()) {
    fail(error, "fleet spec must be a JSON object");
    return std::nullopt;
  }

  FleetSpec fleet;
  const obs::JsonValue* defaults = nullptr;
  const obs::JsonValue* campaigns = nullptr;
  for (const auto& [key, value] : doc->as_object()) {
    if (key == "schema") {
      std::string schema;
      if (!get_string(value, key, &schema, error)) return std::nullopt;
      if (schema != kFleetSpecSchema) {
        fail(error, "unexpected schema '" + schema + "' (want " +
                        std::string(kFleetSpecSchema) + ")");
        return std::nullopt;
      }
    } else if (key == "version") {
      std::size_t version;
      if (!get_count(value, key, &version, error)) return std::nullopt;
      if (version != kFleetSpecVersion) {
        fail(error, "unsupported fleet spec version " +
                        std::to_string(version) + " (want " +
                        std::to_string(kFleetSpecVersion) + ")");
        return std::nullopt;
      }
    } else if (key == "workers") {
      if (!get_count(value, key, &fleet.workers, error)) return std::nullopt;
    } else if (key == "worker_timeout_ms") {
      if (!get_double(value, key, &fleet.worker_timeout_ms, error)) {
        return std::nullopt;
      }
    } else if (key == "max_worker_retries") {
      if (!get_count(value, key, &fleet.max_worker_retries, error)) {
        return std::nullopt;
      }
    } else if (key == "worker_backoff_ms") {
      if (!get_double(value, key, &fleet.worker_backoff_ms, error)) {
        return std::nullopt;
      }
    } else if (key == "worker_backoff_cap_ms") {
      if (!get_double(value, key, &fleet.worker_backoff_cap_ms, error)) {
        return std::nullopt;
      }
    } else if (key == "defaults") {
      if (!value.is_object()) {
        fail(error, "'defaults' must be an object");
        return std::nullopt;
      }
      defaults = &value;
    } else if (key == "campaigns") {
      if (!value.is_array()) {
        fail(error, "'campaigns' must be an array");
        return std::nullopt;
      }
      campaigns = &value;
    } else {
      fail(error, "unknown top-level key '" + key + "'");
      return std::nullopt;
    }
  }
  if (doc->find("schema") == nullptr) {
    fail(error, "missing required key 'schema'");
    return std::nullopt;
  }
  if (doc->find("version") == nullptr) {
    fail(error, "missing required key 'version'");
    return std::nullopt;
  }
  if (campaigns == nullptr || campaigns->as_array().empty()) {
    fail(error, "'campaigns' must be a non-empty array");
    return std::nullopt;
  }
  if (defaults != nullptr) {
    for (const auto& [key, value] : defaults->as_object()) {
      (void)value;
      if (campaign_keys().count(key) == 0) {
        fail(error, "defaults: unknown campaign key '" + key + "'");
        return std::nullopt;
      }
    }
  }

  std::set<std::string> seen_names;
  for (const obs::JsonValue& entry : campaigns->as_array()) {
    if (!entry.is_object()) {
      fail(error, "each campaign must be an object");
      return std::nullopt;
    }
    const obs::JsonValue* name_value = entry.find("name");
    if (name_value == nullptr || !name_value->is_string() ||
        name_value->as_string().empty()) {
      fail(error, "each campaign needs a non-empty string 'name'");
      return std::nullopt;
    }
    const std::string base_name = name_value->as_string();
    const std::string where = "campaign '" + base_name + "': ";

    // Merge defaults under the campaign's own settings (campaign wins).
    std::map<std::string, const obs::JsonValue*> merged;
    if (defaults != nullptr) {
      for (const auto& [key, value] : defaults->as_object()) {
        merged[key] = &value;
      }
    }
    for (const auto& [key, value] : entry.as_object()) {
      if (key == "name") continue;
      if (campaign_keys().count(key) == 0) {
        fail(error, where + "unknown campaign key '" + key + "'");
        return std::nullopt;
      }
      merged[key] = &value;
    }

    // Split the merged view into scalar fields and array-valued sweep axes.
    std::vector<std::pair<std::string, const obs::JsonValue*>> scalars;
    struct Axis {
      std::string key;
      const obs::JsonValue::Array* values;
    };
    std::vector<Axis> axes;
    for (const auto& [key, value] : merged) {
      if (value->is_array()) {
        if (!is_axis_key(key)) {
          fail(error, where + "'" + key +
                          "' cannot be an array (sweep axes: p, avf, target, "
                          "abft, backend, layer)");
          return std::nullopt;
        }
        if (value->as_array().empty()) {
          fail(error, where + "axis '" + key + "' must not be empty");
          return std::nullopt;
        }
        axes.push_back({key, &value->as_array()});
      } else {
        scalars.emplace_back(key, value);
      }
    }
    // Fixed axis order (the declaration order of kAxisKeys) keeps expansion
    // deterministic regardless of JSON member ordering.
    std::vector<Axis> ordered;
    for (const char* axis_key : kAxisKeys) {
      for (const Axis& a : axes) {
        if (a.key == axis_key) ordered.push_back(a);
      }
    }

    // Cross product over the axes (an empty axis list is one campaign).
    std::size_t combos = 1;
    for (const Axis& a : ordered) combos *= a.values->size();
    for (std::size_t combo = 0; combo < combos; ++combo) {
      CampaignSpec c;
      c.name = base_name;
      std::string field_error;
      for (const auto& [key, value] : scalars) {
        if (!apply_field(c, key, *value, &field_error)) {
          fail(error, where + field_error);
          return std::nullopt;
        }
      }
      std::size_t rest = combo;
      for (const Axis& a : ordered) {
        const std::size_t idx = rest % a.values->size();
        rest /= a.values->size();
        const obs::JsonValue& v = (*a.values)[idx];
        if (!apply_field(c, a.key, v, &field_error)) {
          fail(error, where + field_error);
          return std::nullopt;
        }
        if (a.values->size() > 1) {
          c.name += "-" + a.key + "=" + axis_suffix_value(v);
        }
      }
      if (!validate_campaign(c, error)) return std::nullopt;
      if (!seen_names.insert(c.name).second) {
        fail(error, "duplicate campaign name '" + c.name + "'");
        return std::nullopt;
      }
      c.id = obs::hex64(obs::fnv1a64(c.canonical()));
      fleet.campaigns.push_back(std::move(c));
    }
  }

  std::string fleet_canonical;
  for (const CampaignSpec& c : fleet.campaigns) {
    fleet_canonical += c.canonical();
    fleet_canonical += '\n';
  }
  fleet.id = obs::hex64(obs::fnv1a64(fleet_canonical));
  return fleet;
}

std::optional<FleetSpec> load_fleet_spec(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(error, "cannot read fleet spec '" + path + "'");
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_fleet_spec(buffer.str(), error);
}

}  // namespace bdlfi::fleet
