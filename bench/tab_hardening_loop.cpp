// The posterior-guided hardening loop, end to end — the paper's assessment
// turned into mitigation (§III: use the posterior to decide "the regions ...
// that need more protection"):
//
//   1. assess:   MCMC campaign over fault masks (deviation-tempered target,
//                retained masks recorded) → bayes::PosteriorProfile.
//   2. harden:   (a) fault-aware fine-tuning — train under bit flips sampled
//                from the profile (harden::FaultAwareTrainer); (b) budgeted
//                selective protection — greedy posterior-mass-per-overhead
//                placement of range guards + per-layer ABFT
//                (harden::place_protection / apply_plan).
//   3. re-assess: random-FI SDC rate and a fresh campaign on the hardened
//                deployment, at the same fault rate.
//
// Headline: SDC rate before vs after at (near-)equal clean accuracy, plus
// the coverage-vs-overhead frontier of the placement optimizer. Non-smoke
// gates (exit 1 on failure): >= 25% relative SDC reduction, clean-accuracy
// delta <= 0.5%, monotone frontier.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bayes/posterior_profile.h"
#include "common.h"
#include "harden/placement.h"
#include "harden/profile_export.h"
#include "harden/trainer.h"
#include "inject/random_fi.h"
#include "mcmc/runner.h"
#include "tensor/abft.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool smoke = flags.get("smoke", std::int64_t{0}) != 0;
  util::Stopwatch total;
  bench::ObsSession session(flags, "tab_hardening_loop");

  bench::MlpSetup setup = bench::make_trained_moons_mlp(flags);
  // ~2 expected flips per injection on the 658-param MLP: the single-to-few
  // bit-flip regime hardening can realistically absorb.
  const double p = flags.get("p", 1e-4);
  const std::size_t injections =
      flags.get("injections", smoke ? std::size_t{60} : std::size_t{1500});
  const double clean_before =
      setup.net.accuracy(setup.test.inputs, setup.test.labels);

  // --- 1. baseline assessment -------------------------------------------------
  bayes::BayesianFaultNetwork baseline_bfn(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);
  inject::RandomFiConfig fi;
  fi.injections = injections;
  fi.seed = 180;
  const auto before = inject::run_random_fi(baseline_bfn, p, fi);

  mcmc::RunnerConfig runner;
  runner.num_chains = flags.get("chains", smoke ? std::size_t{2}
                                                : std::size_t{4});
  runner.mh.samples =
      flags.get("round-samples", smoke ? std::size_t{30} : std::size_t{80});
  runner.mh.burn_in = smoke ? 10 : 20;
  runner.mh.record_masks = true;  // the profile consumes the retained masks
  runner.seed = 181;
  bench::parse_campaign_flags(flags, session, runner);
  // Deviation-tempered: the campaign concentrates on damaging masks, so the
  // profile measures criticality rather than the (uniform) prior.
  const double lambda = flags.get("lambda", 0.05);
  mcmc::TargetFactory factory = [p,
                                 lambda](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::DeviationTemperedTarget>(net, p, lambda);
  };
  mcmc::CompletenessCriterion criterion;
  criterion.max_rounds =
      flags.get("max-rounds", smoke ? std::size_t{2} : std::size_t{4});
  const auto campaign =
      mcmc::run_until_complete(baseline_bfn, factory, p, runner, criterion);

  bayes::PosteriorProfile profile =
      harden::summarize_campaign(campaign.final_result, baseline_bfn.space());
  std::printf("[profile] %zu retained masks, %zu flips attributed\n",
              profile.samples(), profile.total_flips());
  const std::string profile_path = flags.get("profile-out", "");
  if (!profile_path.empty() && profile.save(profile_path)) {
    std::printf("[profile written to %s]\n", profile_path.c_str());
  }

  // --- 2a. fault-aware fine-tuning --------------------------------------------
  nn::Network tuned = setup.net.clone();
  harden::FaultAwareConfig hcfg;
  hcfg.base.epochs =
      flags.get("tune-epochs", smoke ? std::size_t{2} : std::size_t{30});
  hcfg.base.batch_size = 32;
  hcfg.base.lr = flags.get("tune-lr", 0.02);
  hcfg.base.seed = 183;
  hcfg.inject_prob = flags.get("inject-prob", 0.7);
  hcfg.min_flips = 1;
  hcfg.max_flips = flags.get("max-flips", std::size_t{2});
  harden::FaultAwareTrainer trainer(tuned, profile, hcfg);
  const auto tune = trainer.run(setup.train, setup.test);
  std::printf("[tune] %zu/%zu epochs, %zu batches injected (%zu flips), "
              "%zu updates skipped, %zu clipped, test acc %.1f%%\n",
              tune.train.history.size(), hcfg.base.epochs,
              tune.batches_injected, tune.flips_injected,
              tune.updates_skipped, tune.updates_clipped,
              100.0 * tune.train.final_test_accuracy);

  // --- 2b. budgeted selective protection --------------------------------------
  const double budget = flags.get("budget", 0.15);
  const std::vector<double> budgets = {0.0, 0.04, 0.08, 0.15, 0.3, 0.6};
  const auto frontier = harden::coverage_frontier(profile, tuned, budgets);
  harden::PlacementPlan plan = harden::place_protection(profile, tuned, budget);
  const tensor::abft::Config abft{tensor::abft::Mode::kDetect, 4.0};
  nn::Network deployed =
      harden::apply_plan(tuned, plan, setup.train.inputs, abft);
  std::printf("[placement] budget %.2f -> %zu guards + %zu ABFT layers, "
              "coverage %.1f%% of posterior mass, est. overhead %.1f%%\n",
              budget, plan.guard_layers.size(), plan.abft_layers.size(),
              100.0 * plan.coverage, 100.0 * plan.overhead);

  util::Table frontier_table(
      {"budget", "coverage_%", "overhead_%", "guards", "abft_layers"});
  bool frontier_monotone = true;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    if (i > 0 && frontier[i].coverage < frontier[i - 1].coverage - 1e-12) {
      frontier_monotone = false;
    }
    frontier_table.row()
        .col(frontier[i].budget)
        .col(100.0 * frontier[i].coverage)
        .col(100.0 * frontier[i].overhead)
        .col(frontier[i].guard_layers.size())
        .col(frontier[i].abft_layers.size());
  }
  std::printf("=== Protection-budget frontier (greedy prefix placement) "
              "===\n\n");
  bench::emit(frontier_table, "tab_hardening_frontier");

  // --- 3. re-assessment -------------------------------------------------------
  bayes::BayesianFaultNetwork tuned_bfn(
      tuned, bayes::TargetSpec::all_parameters(), fault::AvfProfile::uniform(),
      setup.test.inputs, setup.test.labels);
  bayes::BayesianFaultNetwork deployed_bfn(
      deployed, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);
  const auto after_tune = inject::run_random_fi(tuned_bfn, p, fi);
  const auto after = inject::run_random_fi(deployed_bfn, p, fi);
  const double clean_after =
      deployed.accuracy(setup.test.inputs, setup.test.labels);

  // Fresh campaign on the hardened deployment — the "re-campaign" leg: the
  // Bayesian assessment itself, not just random FI, sees the improvement.
  mcmc::RunnerConfig re_runner = runner;
  re_runner.mh.record_masks = false;
  re_runner.seed = 185;
  const auto re_campaign = mcmc::run_until_complete(
      deployed_bfn, factory, p, re_runner, criterion);

  util::Table table({"deployment", "sdc_%", "det_cov_%", "mean_dev_%",
                     "clean_acc_%"});
  table.row()
      .col("unhardened")
      .col(100.0 * before.sdc_rate)
      .col(100.0 * before.detection_coverage)
      .col(before.mean_deviation)
      .col(100.0 * clean_before);
  table.row()
      .col("fine_tuned")
      .col(100.0 * after_tune.sdc_rate)
      .col(100.0 * after_tune.detection_coverage)
      .col(after_tune.mean_deviation)
      .col(100.0 * tuned.accuracy(setup.test.inputs, setup.test.labels));
  table.row()
      .col("tuned+protected")
      .col(100.0 * after.sdc_rate)
      .col(100.0 * after.detection_coverage)
      .col(after.mean_deviation)
      .col(100.0 * clean_after);
  std::printf("=== Hardening loop: random-FI assessment before/after "
              "(p = %.2g) ===\n\n", p);
  bench::emit(table, "tab_hardening_loop");
  std::printf("campaign mean deviation: %.2f%% before -> %.2f%% after "
              "hardening\n\n",
              campaign.final_result.mean_deviation,
              re_campaign.final_result.mean_deviation);

  // --- gates & JSON -----------------------------------------------------------
  const double sdc_before = before.sdc_rate;
  const double sdc_after = after.sdc_rate;
  const double reduction =
      sdc_before > 0.0 ? 100.0 * (1.0 - sdc_after / sdc_before) : 0.0;
  const double acc_delta = 100.0 * (clean_after - clean_before);
  // The "equal clean accuracy" gate guards against hardening buying fault
  // tolerance by giving up accuracy — only a *drop* counts against it.
  const double acc_drop = std::max(0.0, -acc_delta);
  // bench_track headline (lower is better); floored so the history entry
  // stays positive even after a perfect hardening run.
  const double sdc_remaining =
      sdc_before > 0.0 ? std::max(0.1, 100.0 * sdc_after / sdc_before) : 100.0;
  const bool gate_reduction = reduction >= 25.0;
  const bool gate_accuracy = acc_drop <= 0.5;
  const bool gate_ok = gate_reduction && gate_accuracy && frontier_monotone;

  obs::JsonWriter json;
  json.begin_object();
  json.key("config").begin_object();
  json.field("p", p);
  json.field("injections", injections);
  json.field("chains", runner.num_chains);
  json.field("round_samples", runner.mh.samples);
  json.field("lambda", lambda);
  json.field("tune_epochs", hcfg.base.epochs);
  json.field("inject_prob", hcfg.inject_prob);
  json.field("budget", budget);
  json.field("smoke", smoke);
  json.end_object();
  json.key("baseline").begin_object();
  json.field("sdc_rate_pct", 100.0 * before.sdc_rate);
  json.field("detection_coverage_pct", 100.0 * before.detection_coverage);
  json.field("mean_deviation_pct", before.mean_deviation);
  json.field("clean_accuracy_pct", 100.0 * clean_before);
  json.end_object();
  json.key("campaign").begin_object();
  json.field("profile_samples", profile.samples());
  json.field("profile_flips", profile.total_flips());
  json.field("mean_deviation_before_pct",
             campaign.final_result.mean_deviation);
  json.field("mean_deviation_after_pct",
             re_campaign.final_result.mean_deviation);
  json.field("converged", campaign.converged);
  json.end_object();
  json.key("tuning").begin_object();
  json.field("batches_injected", tune.batches_injected);
  json.field("flips_injected", tune.flips_injected);
  json.field("updates_skipped", tune.updates_skipped);
  json.field("updates_clipped", tune.updates_clipped);
  json.field("final_test_accuracy_pct",
             100.0 * tune.train.final_test_accuracy);
  json.end_object();
  json.key("hardened").begin_object();
  json.key("fine_tuned").begin_object();
  json.field("sdc_rate_pct", 100.0 * after_tune.sdc_rate);
  json.field("mean_deviation_pct", after_tune.mean_deviation);
  json.end_object();
  json.key("deployed").begin_object();
  json.field("sdc_rate_pct", 100.0 * after.sdc_rate);
  json.field("detection_coverage_pct", 100.0 * after.detection_coverage);
  json.field("mean_deviation_pct", after.mean_deviation);
  json.field("clean_accuracy_pct", 100.0 * clean_after);
  json.field("guard_layers", plan.guard_layers.size());
  json.field("abft_layers", plan.abft_layers.size());
  json.end_object();
  json.end_object();
  json.key("frontier").begin_array();
  for (const auto& f : frontier) {
    json.begin_object();
    json.field("budget", f.budget);
    json.field("coverage", f.coverage);
    json.field("overhead", f.overhead);
    json.field("guards", f.guard_layers.size());
    json.field("abft_layers", f.abft_layers.size());
    json.end_object();
  }
  json.end_array();
  json.key("summary").begin_object();
  json.field("sdc_before_pct", 100.0 * sdc_before);
  json.field("sdc_after_pct", 100.0 * sdc_after);
  json.field("sdc_reduction_pct", reduction);
  json.field("sdc_remaining_pct", sdc_remaining);
  json.field("clean_acc_delta_pct", acc_delta);
  json.field("clean_acc_drop_pct", acc_drop);
  json.field("frontier_monotone", frontier_monotone);
  json.field("gate_enforced", !smoke);
  json.end_object();
  json.end_object();
  if (!bench::emit_bench_json(json, "hardening_loop")) return 1;

  std::printf("SDC %.2f%% -> %.2f%% (%.1f%% relative reduction), clean "
              "accuracy delta %+.2f%%, frontier %s%s\n",
              100.0 * sdc_before, 100.0 * sdc_after, reduction, acc_delta,
              frontier_monotone ? "monotone" : "NON-MONOTONE",
              smoke ? "  [smoke: gates not enforced]"
                    : (gate_ok ? "  [hardening gates: PASS]"
                               : "  [hardening gates: FAIL]"));
  std::printf("[tab_hardening_loop done in %.1fs]\n", total.seconds());
  return (!smoke && !gate_ok) ? 1 : 0;
}
