// Reproduces Fig. 1-③ of the paper: the MLP's decision boundary and the
// log(error) probability map of fault-induced misclassification over the
// 2-D input plane, plus the distribution of classification error produced by
// BDLFI at a fixed flip probability.
//
// Expected qualitative result (§III): the deviation probability is highest
// along the decision boundary — points that are "harder to classify" are the
// ones faults flip first.
#include "common.h"
#include "inject/boundary.h"
#include "mcmc/runner.h"
#include "util/ascii_plot.h"
#include "util/stats.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;

  bench::MlpSetup setup = bench::make_trained_moons_mlp(flags);

  bayes::BayesianFaultNetwork bfn(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  inject::BoundaryConfig config;
  config.grid.x_min = -1.5;
  config.grid.x_max = 2.5;
  config.grid.y_min = -1.0;
  config.grid.y_max = 1.5;
  config.grid.nx = flags.get("nx", std::size_t{64});
  config.grid.ny = flags.get("ny", std::size_t{24});
  config.p = flags.get("p", 2e-3);
  config.masks = flags.get("masks", std::size_t{250});
  config.seed = 61;

  const inject::BoundaryMap map = inject::compute_boundary_map(bfn, config);

  std::printf("=== Fig. 1-③: decision boundary and fault-error probability "
              "(p = %.2g, %zu masks) ===\n\n",
              config.p, map.masks_used);

  // Panel 1: the golden classification boundary.
  std::vector<double> class_grid(map.golden_prediction.begin(),
                                 map.golden_prediction.end());
  std::printf("%s\n",
              util::render_heatmap(class_grid, config.grid.ny, config.grid.nx,
                                   0.0, 1.0,
                                   "golden classification (class 0 / 1):")
                  .c_str());

  // Panel 2: log10 P(prediction deviates due to faults).
  std::printf("%s\n",
              util::render_heatmap(map.log10_probability, config.grid.ny,
                                   config.grid.nx, 0.0, 0.0,
                                   "log10 P(misclassification due to faults):")
                  .c_str());

  // Quantify boundary concentration for the CSV record.
  double boundary_mean = 0.0, interior_mean = 0.0;
  std::size_t nb = 0, ni = 0;
  const std::size_t nx = config.grid.nx, ny = config.grid.ny;
  for (std::size_t r = 1; r + 1 < ny; ++r) {
    for (std::size_t c = 1; c + 1 < nx; ++c) {
      const auto at = [&](std::size_t rr, std::size_t cc) {
        return map.golden_prediction[rr * nx + cc];
      };
      const bool near = at(r, c) != at(r - 1, c) || at(r, c) != at(r + 1, c) ||
                        at(r, c) != at(r, c - 1) || at(r, c) != at(r, c + 1);
      const double v = map.deviation_probability[r * nx + c];
      if (near) {
        boundary_mean += v;
        ++nb;
      } else {
        interior_mean += v;
        ++ni;
      }
    }
  }
  boundary_mean /= static_cast<double>(nb ? nb : 1);
  interior_mean /= static_cast<double>(ni ? ni : 1);

  util::Table table({"region", "cells", "mean_P(deviation)"});
  table.row().col(std::string("decision boundary")).col(nb).col(boundary_mean);
  table.row().col(std::string("interior")).col(ni).col(interior_mean);
  bench::emit(table, "fig1_boundary_concentration");
  std::printf("boundary / interior deviation ratio: %.1fx (paper: effect of "
              "faults is most significant at the decision boundary)\n\n",
              boundary_mean / std::max(1e-12, interior_mean));

  // Panel 3: the distribution of classification error under faults (the
  // histogram the figure's right-hand panel sketches).
  mcmc::RunnerConfig runner;
  runner.num_chains = 3;
  runner.mh.samples = flags.get("samples", std::size_t{150});
  runner.mh.burn_in = 50;
  runner.seed = 62;
  mcmc::TargetFactory factory = [&](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, config.p);
  };
  const mcmc::CampaignResult campaign =
      mcmc::run_chains(bfn, factory, config.p, runner);
  util::Histogram hist(0.0, 50.0, 20);
  for (const auto& chain : campaign.chains) {
    for (double e : chain.error_samples) hist.add(e);
  }
  std::printf("distribution of classification error due to faults "
              "(golden %.2f%%, posterior mean %.2f%%):\n%s\n",
              bfn.golden_error(), campaign.mean_error,
              hist.ascii(40).c_str());

  // CSV of the full map for external plotting.
  util::Table map_csv({"row", "col", "x", "y", "golden_class",
                       "P_deviation", "log10_P"});
  for (std::size_t r = 0; r < ny; ++r) {
    for (std::size_t c = 0; c < nx; ++c) {
      const double x = config.grid.x_min +
                       (config.grid.x_max - config.grid.x_min) *
                           static_cast<double>(c) /
                           static_cast<double>(nx - 1);
      const double y = config.grid.y_max -
                       (config.grid.y_max - config.grid.y_min) *
                           static_cast<double>(r) /
                           static_cast<double>(ny - 1);
      map_csv.row()
          .col(r)
          .col(c)
          .col(x)
          .col(y)
          .col(static_cast<std::size_t>(map.golden_prediction[r * nx + c]))
          .col(map.deviation_probability[r * nx + c])
          .col(map.log10_probability[r * nx + c]);
    }
  }
  std::filesystem::create_directories("bench_results");
  map_csv.write_csv("bench_results/fig1_boundary_map.csv");
  std::printf("[full map csv: bench_results/fig1_boundary_map.csv]\n");
  std::printf("[fig1 done in %.1fs]\n", total.seconds());
  return 0;
}
