// Shared setup for the experiment benches: trained subject networks (the
// paper's MLP and ResNet-18), simple flag parsing, and result output.
//
// Default workload sizes are chosen so each bench finishes in about a minute
// on one CPU core; every knob can be raised from the command line, e.g.
//   ./fig4_resnet_sweep --width=1.0 --image-size=32 --samples-per-class=500
// to run the full-scale configuration of the paper.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "data/cifar_like.h"
#include "data/toy2d.h"
#include "mcmc/runner.h"
#include "nn/builders.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "tensor/backend/backend.h"
#include "train/trainer.h"
#include "util/csv.h"
#include "util/interrupt.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace bdlfi::bench {

/// --key=value / --key value parser with typed getters.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        kv_.emplace_back(arg, argv[++i]);
      } else {
        kv_.emplace_back(arg, "1");
      }
    }
  }

  double get(const std::string& key, double fallback) const {
    for (const auto& [k, v] : kv_) {
      if (k == key) return std::atof(v.c_str());
    }
    return fallback;
  }
  std::int64_t get(const std::string& key, std::int64_t fallback) const {
    for (const auto& [k, v] : kv_) {
      if (k == key) return std::atoll(v.c_str());
    }
    return fallback;
  }
  std::size_t get(const std::string& key, std::size_t fallback) const {
    return static_cast<std::size_t>(
        get(key, static_cast<std::int64_t>(fallback)));
  }
  std::string get(const std::string& key, const char* fallback) const {
    for (const auto& [k, v] : kv_) {
      if (k == key) return v;
    }
    return fallback;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Shared observability wiring for the benches: honors the --progress,
/// --metrics=<file.jsonl>, --fsync-metrics, and --trace=<file.json> flags.
/// Attach the round hook to a RunnerConfig to stream per-round campaign
/// health; finish() (or destruction) writes the Chrome trace and the final
/// metrics snapshot.
class ObsSession {
 public:
  ObsSession(const Flags& flags, const std::string& label) {
    trace_path_ = flags.get("trace", "");
    const std::string metrics = flags.get("metrics", "");
    const bool progress = flags.get("progress", std::int64_t{0}) != 0;
    if (progress || !metrics.empty()) {
      obs::CampaignReporter::Options options;
      options.progress = progress;
      options.metrics_path = metrics;
      options.label = label;
      options.fsync = flags.get("fsync-metrics", std::int64_t{0}) != 0;
      // A --layer restriction is the campaign's subject; carried in
      // campaign_begin so merged dashboards can tell single-layer campaigns
      // apart from whole-network ones.
      options.subject = flags.get("layer", "");
      reporter_ = std::make_unique<obs::CampaignReporter>(options);
    }
    if (!trace_path_.empty()) {
      obs::TraceRecorder::global().set_enabled(true);
    }
    if (reporter_ != nullptr || !trace_path_.empty()) obs::set_enabled(true);
  }

  ~ObsSession() { finish(); }

  obs::CampaignReporter* reporter() { return reporter_.get(); }

  /// Round hook for mcmc::RunnerConfig (empty when no sink is attached, so
  /// the runner skips event assembly entirely).
  obs::RoundCallback hook() {
    return reporter_ != nullptr ? reporter_->hook() : obs::RoundCallback{};
  }

  void finish() {
    if (finished_) return;
    finished_ = true;
    if (reporter_ != nullptr) reporter_->metrics_event();
    if (!trace_path_.empty()) {
      if (obs::TraceRecorder::global().write(trace_path_)) {
        std::printf("[trace written to %s]\n", trace_path_.c_str());
      } else {
        std::fprintf(stderr, "cannot write trace to %s\n", trace_path_.c_str());
      }
    }
  }

 private:
  std::unique_ptr<obs::CampaignReporter> reporter_;
  std::string trace_path_;
  bool finished_ = false;
};

/// Wires the resilience flags (--round-timeout-ms, --max-chain-retries,
/// --retry-backoff-ms) into the runner config and routes chain-health events
/// to the session reporter when one is attached. Everything defaults to off:
/// with no flags the supervisor adds no clock reads to the sampling loop, so
/// the bench wall-clock matches a build without resilience entirely.
inline void wire_resilience(const Flags& flags, ObsSession& session,
                            mcmc::RunnerConfig& runner) {
  runner.supervisor.round_timeout_ms = flags.get("round-timeout-ms", 0.0);
  runner.supervisor.max_retries =
      flags.get("max-chain-retries", std::size_t{2});
  runner.supervisor.backoff_base_ms = flags.get("retry-backoff-ms", 0.0);
  if (session.reporter() != nullptr) {
    runner.health_hook = session.reporter()->health_hook();
  }
}

/// What parse_campaign_flags resolved, for callers that want to print or
/// record it.
struct CampaignFlags {
  std::string backend;  // name of the kernel backend now active
  std::string checkpoint_dir;
  bool resume = false;
};

/// Resolves a `--backend=scalar|avx2|auto` flag through the shared
/// tensor::backend::resolve() policy (flag beats BDLFI_BACKEND beats scalar)
/// and returns the resolved name. Exits 2 when an explicit flag is unusable —
/// silently falling back would invalidate a backend comparison.
inline std::string require_backend(const tensor::backend::Resolution& r) {
  if (!r.ok) {
    std::fprintf(stderr, "--backend: %s\n", r.error.c_str());
    std::exit(2);
  }
  return r.name;
}

/// Deprecated: thin wrapper kept for older benches; prefer
/// tensor::backend::resolve() + require_backend().
inline std::string resolve_backend_flag(const Flags& flags) {
  return require_backend(tensor::backend::resolve(flags.get("backend", "")));
}

/// One-stop campaign flag wiring, hoisted from the near-identical blocks the
/// fig benches and bdlfi_cli used to copy-paste:
///   --backend=scalar|avx2|auto   kernel backend (via resolve_backend_flag)
///   --round-timeout-ms / --max-chain-retries / --retry-backoff-ms /
///   --min-acceptance / --max-evals-per-round   chain supervision
///   --checkpoint-dir=<dir> / --resume          crash-safe campaigns (arms
///                                              SIGINT/SIGTERM for a
///                                              graceful stop)
/// Also attaches the session's round/health/checkpoint hooks and stamps the
/// active backend into the reporter's JSONL events.
inline CampaignFlags parse_campaign_flags(const Flags& flags,
                                          ObsSession& session,
                                          mcmc::RunnerConfig& runner) {
  CampaignFlags out;
  out.backend =
      require_backend(tensor::backend::resolve(flags.get("backend", "")));

  runner.round_hook = session.hook();
  wire_resilience(flags, session, runner);
  runner.supervisor.min_acceptance = flags.get("min-acceptance", 0.0);
  runner.supervisor.max_evals_per_round =
      flags.get("max-evals-per-round", std::size_t{0});

  runner.checkpoint_dir = flags.get("checkpoint-dir", "");
  runner.resume = flags.get("resume", std::int64_t{0}) != 0;
  out.checkpoint_dir = runner.checkpoint_dir;
  out.resume = runner.resume;
  // With a checkpoint on disk, Ctrl-C becomes a graceful stop: chains wind
  // down at the next sample, the partial round is discarded, and the last
  // complete round's checkpoint supports --resume.
  if (!runner.checkpoint_dir.empty()) util::install_interrupt_handlers();

  if (obs::CampaignReporter* rep = session.reporter(); rep != nullptr) {
    rep->set_backend(out.backend);
    runner.checkpoint_hook = [rep](std::size_t round,
                                   const std::string& path) {
      rep->checkpoint_saved(round, path);
    };
  }
  return out;
}

/// Shared JSON sink for bench result documents: writes the document built in
/// `w` (a complete object) to BENCH_<name>.json. Replaces per-bench ad-hoc
/// fprintf JSON; the schema per bench is documented in DESIGN.md §6.
inline bool emit_bench_json(const obs::JsonWriter& w, const std::string& name) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string& doc = w.str();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fputc('\n', f);
  std::fclose(f);
  if (ok) std::printf("[json written to %s]\n", path.c_str());
  return ok;
}

/// Writes the CSV next to the binary under bench_results/.
inline void emit(const util::Table& table, const std::string& name) {
  std::filesystem::create_directories("bench_results");
  const std::string path = "bench_results/" + name + ".csv";
  table.write_csv(path);
  std::printf("%s\n", table.to_text().c_str());
  std::printf("[csv written to %s]\n\n", path.c_str());
}

struct MlpSetup {
  nn::Network net;
  data::Dataset train;
  data::Dataset test;
  double test_accuracy = 0.0;
};

/// The paper's Fig.-1 subject: a small ReLU MLP trained on a 2-D two-moons
/// problem (2-16-32-2, matching the 32-neuron layer the figure draws).
inline MlpSetup make_trained_moons_mlp(const Flags& flags) {
  util::Stopwatch timer;
  util::Rng data_rng{flags.get("data-seed", std::int64_t{11})};
  data::Dataset all = data::make_two_moons(
      flags.get("moons", std::size_t{800}), 0.08, data_rng);
  data::Split split = data::split_dataset(all, 0.75, data_rng);

  util::Rng init{static_cast<std::uint64_t>(
      flags.get("init-seed", std::int64_t{12}))};
  MlpSetup setup{nn::make_mlp({2, 16, 32, 2}, init), std::move(split.train),
                 std::move(split.test)};

  train::TrainConfig config;
  config.epochs = flags.get("epochs", std::size_t{40});
  config.batch_size = 32;
  config.lr = 0.05;
  config.seed = 13;
  config.target_accuracy = 0.99;
  const auto result = train::fit(setup.net, setup.train, setup.test, config);
  setup.test_accuracy = result.final_test_accuracy;
  std::printf("[setup] MLP 2-16-32-2 trained on two-moons: test acc %.1f%% "
              "(%.1fs)\n",
              100.0 * setup.test_accuracy, timer.seconds());
  return setup;
}

struct ResnetSetup {
  nn::Network net;
  data::Dataset train;
  data::Dataset eval;  // injection evaluation batch
  double test_accuracy = 0.0;
  double width = 0.0;
  std::int64_t image_size = 0;
};

/// The paper's second subject: ResNet-18 on a CIFAR-10-like 10-class image
/// problem (procedural substitute; see DESIGN.md). Width/image size are
/// scaled down by default so a single-core campaign stays in bench budget —
/// topology (18 layers, 4 stages, residual skips) is the paper's.
inline ResnetSetup make_trained_resnet(const Flags& flags) {
  util::Stopwatch timer;
  data::CifarLikeConfig data_config;
  data_config.samples_per_class =
      flags.get("samples-per-class", std::size_t{60});
  data_config.image_size = flags.get("image-size", std::int64_t{16});
  util::Rng data_rng{static_cast<std::uint64_t>(
      flags.get("data-seed", std::int64_t{21}))};
  data::Dataset all = data::make_cifar_like(data_config, data_rng);
  data::Split split = data::split_dataset(all, 0.8, data_rng);

  nn::ResNetConfig net_config;
  net_config.width_multiplier = flags.get("width", 0.125);
  net_config.num_classes = 10;
  util::Rng init{static_cast<std::uint64_t>(
      flags.get("init-seed", std::int64_t{22}))};
  ResnetSetup setup{nn::make_resnet18(net_config, init), {}, {}};
  setup.width = net_config.width_multiplier;
  setup.image_size = data_config.image_size;

  train::TrainConfig config;
  config.epochs = flags.get("epochs", std::size_t{5});
  config.batch_size = 32;
  config.lr = 0.02;
  config.seed = 23;
  config.target_accuracy = 0.97;
  const auto result = train::fit(setup.net, split.train, split.test, config);
  setup.test_accuracy = result.final_test_accuracy;

  const std::size_t eval_n =
      std::min(flags.get("eval-batch", std::size_t{64}), split.test.size());
  setup.eval = split.test.slice(0, eval_n);
  setup.train = std::move(split.train);
  std::printf("[setup] ResNet-18 (width %.3g, %lldx%lld) trained on "
              "CifarLike: test acc %.1f%%, %lld params (%.1fs)\n",
              setup.width, static_cast<long long>(setup.image_size),
              static_cast<long long>(setup.image_size),
              100.0 * setup.test_accuracy,
              static_cast<long long>(setup.net.num_params()),
              timer.seconds());
  return setup;
}

}  // namespace bdlfi::bench
