// Protection-mechanism comparison — the engineering payoff of the paper's
// analysis (§III: "set a threshold on the regions ... that need more
// protection"). One trained MLP, six deployments:
//   1. unprotected float32,
//   2. float32 + Ranger-style range guards (activation clamping),
//   3. float32 with the top-20% most sensitive weights ECC-protected,
//   4. int8 quantized weights,
//   5. float32 + ABFT row checksums, detect-only (flag the corrupted rows),
//   6. float32 + ABFT row checksums with recovery (recompute flagged rows).
// Each is measured under random *parameter* faults (stored-weight upsets,
// the paper's model) and random *compute* faults (transient MAC upsets),
// reporting mean deviation plus the fault-outcome taxonomy: detection
// coverage = (detected+corrected)/(detected+corrected+SDC) and SDC rate.
// The physical contrast this table exists to show: checksums verify the
// multiply, so ABFT sees compute faults that range guards cannot — while a
// corrupted weight yields a *consistent* wrong product that no checksum can
// flag. Finally the worst case: how many adversarial bit flips each float32
// deployment needs before half of its predictions deviate.
#include <algorithm>
#include <vector>

#include "bayes/critical.h"
#include "bayes/sensitivity.h"
#include "common.h"
#include "fault/models.h"
#include "inject/random_fi.h"
#include "nn/range_guard.h"
#include "quant/space.h"
#include "tensor/abft.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool smoke = flags.get("smoke", std::int64_t{0}) != 0;
  util::Stopwatch total;

  bench::MlpSetup setup = bench::make_trained_moons_mlp(flags);
  const std::size_t injections =
      flags.get("injections", smoke ? std::size_t{80} : std::size_t{400});

  // --- the six deployments ----------------------------------------------------
  bayes::BayesianFaultNetwork plain(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  nn::Network guarded_net =
      nn::add_range_guards(setup.net, setup.train.inputs, 0.1);
  bayes::BayesianFaultNetwork guarded(
      guarded_net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  bayes::BayesianFaultNetwork hardened(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);
  const auto sensitivity = bayes::compute_sensitivity(
      setup.net, bayes::TargetSpec::all_parameters(), setup.test.inputs,
      setup.test.labels, bayes::SensitivityScore::kWeightOnly);
  hardened.mutable_space().protect_elements(sensitivity.top_fraction(0.2));

  nn::Network qnet = quant::quantize_network(setup.net);
  quant::QuantFaultNetwork quantized(qnet, setup.test.inputs,
                                     setup.test.labels);

  nn::Network abft_detect_net = setup.net.clone();
  abft_detect_net.set_abft(
      tensor::abft::Config{tensor::abft::Mode::kDetect, 4.0});
  nn::Network abft_recover_net = setup.net.clone();
  abft_recover_net.set_abft(
      tensor::abft::Config{tensor::abft::Mode::kCorrect, 4.0});
  bayes::BayesianFaultNetwork abft_detect(
      abft_detect_net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);
  bayes::BayesianFaultNetwork abft_recover(
      abft_recover_net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  // --- random parameter-fault table (deviation, historical headline) ----------
  util::Table table({"p", "unprotected_dev_%", "range_guard_dev_%",
                     "ecc_top20_dev_%", "int8_dev_%"});
  for (double p : {1e-3, 3e-3, 1e-2}) {
    inject::RandomFiConfig fi;
    fi.injections = injections;
    fi.seed = 140;
    const auto base = inject::run_random_fi(plain, p, fi);
    const auto guard = inject::run_random_fi(guarded, p, fi);
    const auto ecc = inject::run_random_fi(hardened, p, fi);
    const auto quant_result =
        quant::run_quant_random_fi(quantized, p, injections, 141);
    table.row()
        .col(p)
        .col(base.mean_deviation)
        .col(guard.mean_deviation)
        .col(ecc.mean_deviation)
        .col(quant_result.mean_deviation);
  }
  std::printf("=== Protection mechanisms under random weight faults "
              "(deviation from golden, %%) ===\n\n");
  bench::emit(table, "tab_protection_random");

  // --- fault-outcome taxonomy: parameter faults -------------------------------
  // Columns alternate detection coverage / SDC rate per deployment. ABFT
  // checks the multiply, not the operands: expect ~0 checksum coverage here.
  const auto outcome_columns = [] {
    return util::Table({"p", "unprot_cov_%", "unprot_sdc_%", "guard_cov_%",
                        "guard_sdc_%", "abft_det_cov_%", "abft_det_sdc_%",
                        "abft_rec_cov_%", "abft_rec_sdc_%"});
  };
  const std::vector<double> param_ps =
      smoke ? std::vector<double>{3e-3} : std::vector<double>{1e-3, 3e-3};
  util::Table param_outcomes = outcome_columns();
  for (double p : param_ps) {
    inject::RandomFiConfig fi;
    fi.injections = injections;
    fi.seed = 143;
    const auto base = inject::run_random_fi(plain, p, fi);
    const auto guard = inject::run_random_fi(guarded, p, fi);
    const auto det = inject::run_random_fi(abft_detect, p, fi);
    const auto rec = inject::run_random_fi(abft_recover, p, fi);
    param_outcomes.row()
        .col(p)
        .col(100.0 * base.detection_coverage)
        .col(100.0 * base.sdc_rate)
        .col(100.0 * guard.detection_coverage)
        .col(100.0 * guard.sdc_rate)
        .col(100.0 * det.detection_coverage)
        .col(100.0 * det.sdc_rate)
        .col(100.0 * rec.detection_coverage)
        .col(100.0 * rec.sdc_rate);
  }
  std::printf("=== Fault-outcome taxonomy under random PARAMETER faults "
              "(detection coverage / SDC rate, %%) ===\n\n");
  bench::emit(param_outcomes, "tab_protection_outcomes_param");

  // --- fault-outcome taxonomy: transient compute faults -----------------------
  // Same deployments, faults struck mid-GEMM via the compute plan. The test
  // batch fixes the MAC-output geometry, so each deployment sees identical
  // fault doses at a given p.
  bayes::BayesianFaultNetwork plain_c(
      setup.net, bayes::TargetSpec::compute_only(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);
  bayes::BayesianFaultNetwork guarded_c(
      guarded_net, bayes::TargetSpec::compute_only(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);
  bayes::BayesianFaultNetwork abft_detect_c(
      abft_detect_net, bayes::TargetSpec::compute_only(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);
  bayes::BayesianFaultNetwork abft_recover_c(
      abft_recover_net, bayes::TargetSpec::compute_only(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  const std::vector<double> compute_ps =
      smoke ? std::vector<double>{1e-4} : std::vector<double>{3e-5, 1e-4};
  util::Table compute_outcomes = outcome_columns();
  double min_abft_cov = 100.0, max_guard_cov = 0.0;
  for (double p : compute_ps) {
    const fault::ComputeFaultSampler sampler(p);
    inject::RandomFiConfig fi;
    fi.injections = injections;
    fi.seed = 144;
    const auto base = inject::run_random_fi(plain_c, sampler, fi);
    const auto guard = inject::run_random_fi(guarded_c, sampler, fi);
    const auto det = inject::run_random_fi(abft_detect_c, sampler, fi);
    const auto rec = inject::run_random_fi(abft_recover_c, sampler, fi);
    compute_outcomes.row()
        .col(p)
        .col(100.0 * base.detection_coverage)
        .col(100.0 * base.sdc_rate)
        .col(100.0 * guard.detection_coverage)
        .col(100.0 * guard.sdc_rate)
        .col(100.0 * det.detection_coverage)
        .col(100.0 * det.sdc_rate)
        .col(100.0 * rec.detection_coverage)
        .col(100.0 * rec.sdc_rate);
    min_abft_cov = std::min({min_abft_cov, 100.0 * det.detection_coverage,
                             100.0 * rec.detection_coverage});
    max_guard_cov = std::max(max_guard_cov, 100.0 * guard.detection_coverage);
  }
  std::printf("=== Fault-outcome taxonomy under transient COMPUTE faults "
              "(detection coverage / SDC rate, %%) ===\n\n");
  bench::emit(compute_outcomes, "tab_protection_outcomes_compute");

  // --- worst case: adversarial bits-to-break ------------------------------------
  if (!smoke) {
    bayes::CriticalBitConfig crit;
    crit.target_deviation = 50.0;
    crit.candidates_per_round = flags.get("candidates", std::size_t{128});
    crit.max_flips = 40;
    crit.seed = 142;

    util::Table worst({"deployment", "flips_to_50%_deviation",
                       "achieved_dev_%", "network_evals"});
    struct Subject {
      const char* name;
      bayes::BayesianFaultNetwork* net;
    };
    for (auto& [name, subject] :
         {Subject{"unprotected", &plain}, Subject{"range_guard", &guarded},
          Subject{"ecc_top20", &hardened}}) {
      const auto result = bayes::find_critical_bits(*subject, crit);
      worst.row()
          .col(name)
          .col(result.reached_target ? std::to_string(result.mask.num_flips())
                                     : (">" + std::to_string(
                                                  result.mask.num_flips())))
          .col(result.achieved_deviation)
          .col(result.network_evals);
    }
    std::printf("=== Worst case: greedy adversarial bit search ===\n\n");
    bench::emit(worst, "tab_protection_worstcase");
  }

  std::printf("range guards fence the activation pathways high-magnitude "
              "weight corruption needs; ECC on the top-20%% sites removes "
              "the adversary's best single targets; int8 removes the "
              "high-magnitude mechanism entirely; ABFT checksums verify the "
              "multiply itself, catching the transient compute faults all "
              "of the above are blind to.\n");
  const bool contrast_ok =
      min_abft_cov > 0.0 && min_abft_cov > max_guard_cov;
  std::printf("compute-fault contrast: ABFT coverage >= %.1f%%, range-guard "
              "coverage <= %.1f%%%s\n", min_abft_cov, max_guard_cov,
              contrast_ok
                  ? "  [ABFT > guards on compute faults: PASS]"
                  : (smoke ? "  [smoke: contrast not checked]"
                           : "  [ABFT > guards on compute faults: FAIL]"));
  std::printf("[tab_protection done in %.1fs]\n", total.seconds());
  // Smoke only exercises the pipeline; the real run enforces the headline
  // physical contrast the table exists to demonstrate.
  return (!smoke && !contrast_ok) ? 1 : 0;
}
