// Protection-mechanism comparison — the engineering payoff of the paper's
// analysis (§III: "set a threshold on the regions ... that need more
// protection"). One trained MLP, four deployments:
//   1. unprotected float32,
//   2. float32 + Ranger-style range guards (activation clamping),
//   3. float32 with the top-20% most sensitive weights ECC-protected,
//   4. int8 quantized weights.
// Each measured under random weight faults at several rates, plus the
// worst case: how many adversarial bit flips each deployment needs before
// half of its predictions deviate (greedy critical-bit search).
#include "bayes/critical.h"
#include "bayes/sensitivity.h"
#include "common.h"
#include "inject/random_fi.h"
#include "nn/range_guard.h"
#include "quant/space.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;

  bench::MlpSetup setup = bench::make_trained_moons_mlp(flags);
  const std::size_t injections = flags.get("injections", std::size_t{400});

  // --- the four deployments ---------------------------------------------------
  bayes::BayesianFaultNetwork plain(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  nn::Network guarded_net =
      nn::add_range_guards(setup.net, setup.train.inputs, 0.1);
  bayes::BayesianFaultNetwork guarded(
      guarded_net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  bayes::BayesianFaultNetwork hardened(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);
  const auto sensitivity = bayes::compute_sensitivity(
      setup.net, bayes::TargetSpec::all_parameters(), setup.test.inputs,
      setup.test.labels, bayes::SensitivityScore::kWeightOnly);
  hardened.mutable_space().protect_elements(sensitivity.top_fraction(0.2));

  nn::Network qnet = quant::quantize_network(setup.net);
  quant::QuantFaultNetwork quantized(qnet, setup.test.inputs,
                                     setup.test.labels);

  // --- random-fault table -------------------------------------------------------
  util::Table table({"p", "unprotected_dev_%", "range_guard_dev_%",
                     "ecc_top20_dev_%", "int8_dev_%"});
  for (double p : {1e-3, 3e-3, 1e-2}) {
    inject::RandomFiConfig fi;
    fi.injections = injections;
    fi.seed = 140;
    const auto base = inject::run_random_fi(plain, p, fi);
    const auto guard = inject::run_random_fi(guarded, p, fi);
    const auto ecc = inject::run_random_fi(hardened, p, fi);
    const auto quant_result =
        quant::run_quant_random_fi(quantized, p, injections, 141);
    table.row()
        .col(p)
        .col(base.mean_deviation)
        .col(guard.mean_deviation)
        .col(ecc.mean_deviation)
        .col(quant_result.mean_deviation);
  }
  std::printf("=== Protection mechanisms under random weight faults "
              "(deviation from golden, %%) ===\n\n");
  bench::emit(table, "tab_protection_random");

  // --- worst case: adversarial bits-to-break ------------------------------------
  bayes::CriticalBitConfig crit;
  crit.target_deviation = 50.0;
  crit.candidates_per_round = flags.get("candidates", std::size_t{128});
  crit.max_flips = 40;
  crit.seed = 142;

  util::Table worst({"deployment", "flips_to_50%_deviation",
                     "achieved_dev_%", "network_evals"});
  struct Subject {
    const char* name;
    bayes::BayesianFaultNetwork* net;
  };
  for (auto& [name, subject] :
       {Subject{"unprotected", &plain}, Subject{"range_guard", &guarded},
        Subject{"ecc_top20", &hardened}}) {
    const auto result = bayes::find_critical_bits(*subject, crit);
    worst.row()
        .col(name)
        .col(result.reached_target ? std::to_string(result.mask.num_flips())
                                   : (">" + std::to_string(
                                                result.mask.num_flips())))
        .col(result.achieved_deviation)
        .col(result.network_evals);
  }
  std::printf("=== Worst case: greedy adversarial bit search ===\n\n");
  bench::emit(worst, "tab_protection_worstcase");
  std::printf("range guards fence the activation pathways high-magnitude "
              "weight corruption needs; ECC on the top-20%% sites removes "
              "the adversary's best single targets; int8 removes the "
              "high-magnitude mechanism entirely.\n");
  std::printf("[tab_protection done in %.1fs]\n", total.seconds());
  return 0;
}
