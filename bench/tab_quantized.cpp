// Float32 vs int8 fault resilience (the accelerator-deployment question the
// paper's §I motivates: models run on embedded accelerators, whose weight
// memories usually hold int8). Sweeps the per-bit flip probability over both
// representations of the same trained MLP and reports deviation-from-golden,
// plus the detected (NaN/Inf) channel that only the float format exhibits.
#include "common.h"
#include "inject/random_fi.h"
#include "quant/space.h"
#include "util/ascii_plot.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;

  bench::MlpSetup setup = bench::make_trained_moons_mlp(flags);
  nn::Network qnet = quant::quantize_network(setup.net);

  bayes::BayesianFaultNetwork float_net(
      setup.net, bayes::TargetSpec::weights_only(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);
  quant::QuantFaultNetwork quant_net(qnet, setup.test.inputs,
                                     setup.test.labels);
  std::printf("golden error: float %.2f%%, int8 %.2f%% (quantization cost "
              "%.2fpp)\n\n",
              float_net.golden_error(), quant_net.golden_error(),
              quant_net.golden_error() - float_net.golden_error());

  const std::size_t injections = flags.get("injections", std::size_t{400});
  util::Table table({"p", "float_deviation_%", "float_detected_%",
                     "int8_deviation_%", "int8_detected_%"});
  util::Series float_series{"float32", {}, {}, 'f'};
  util::Series int8_series{"int8", {}, {}, 'q'};
  for (double p : {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2}) {
    inject::RandomFiConfig fi;
    fi.injections = injections;
    fi.seed = 130;
    const auto f = inject::run_random_fi(float_net, p, fi);
    const auto q = quant::run_quant_random_fi(quant_net, p, injections, 131);
    table.row()
        .col(p)
        .col(f.mean_deviation)
        .col(f.mean_detected)
        .col(q.mean_deviation)
        .col(q.mean_detected);
    float_series.xs.push_back(p);
    float_series.ys.push_back(f.mean_deviation);
    int8_series.xs.push_back(p);
    int8_series.ys.push_back(q.mean_deviation);
  }
  std::printf("=== float32 vs int8 weight-fault resilience (%zu injections "
              "per point) ===\n\n",
              injections);
  bench::emit(table, "tab_quantized");

  util::PlotOptions opt;
  opt.log_x = true;
  opt.title = "deviation from golden vs flip probability";
  opt.x_label = "flip probability p";
  opt.y_label = "deviation (%)";
  std::printf("%s\n", util::render_plot({float_series, int8_series}, opt)
                          .c_str());
  std::printf("int8's worst single-bit upset moves a weight by 128 "
              "quantization steps; float32's moves it by up to ~2^96 in "
              "magnitude — hence the int8 curve stays near golden far "
              "longer and never trips the NaN/Inf detector.\n");
  std::printf("[tab_quantized done in %.1fs]\n", total.seconds());
  return 0;
}
