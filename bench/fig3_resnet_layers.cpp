// Reproduces Fig. 3 of the paper: ResNet-18 classification error when faults
// are injected into one layer at a time (fixed flip probability).
//
// The paper's claim (§III, "Error propagation ... is not related to the depth
// of the injection layer", contradicting Li et al. [1]): error shows no
// monotone relationship with layer depth. We print the per-layer series and
// the rank correlation between depth and error — expect it near zero.
#include <cmath>

#include "common.h"
#include "inject/campaign.h"
#include "util/ascii_plot.h"

using namespace bdlfi;

#include "util/stats.h"

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;
  bench::ObsSession obs_session(flags, "fig3");

  bench::ResnetSetup setup = bench::make_trained_resnet(flags);

  mcmc::RunnerConfig runner;
  runner.num_chains = flags.get("chains", std::size_t{2});
  runner.mh.samples = flags.get("samples", std::size_t{15});
  runner.mh.burn_in = flags.get("burn-in", std::size_t{5});
  runner.mh.thin = flags.get("thin", std::size_t{5});
  runner.seed = 51;
  const bench::CampaignFlags campaign =
      bench::parse_campaign_flags(flags, obs_session, runner);
  std::printf("[setup] kernel backend: %s\n", campaign.backend.c_str());
  const double p = flags.get("p", 1e-3);
  const double dose = flags.get("dose", 4.0);

  // Mode B is the figure's protocol: a constant fault dose per injection
  // (expected `dose` flipped bits) regardless of layer size — matching the
  // per-layer single/multi-bit FI studies whose depth claim the paper tests.
  // Mode A (raw fixed rate) is reported alongside: there, larger layers
  // absorb proportionally more faults.
  const auto fixed_dose = inject::run_layer_campaign(
      setup.net, setup.eval.inputs, setup.eval.labels,
      fault::AvfProfile::uniform(), p, runner, dose);
  const auto fixed_rate = inject::run_layer_campaign(
      setup.net, setup.eval.inputs, setup.eval.labels,
      fault::AvfProfile::uniform(), p, runner);

  // The two campaigns can stop at different layers on interrupt; the table
  // covers the common prefix.
  const std::size_t rows = std::min(fixed_dose.size(), fixed_rate.size());
  util::Table table({"layer_idx", "name", "kind", "params",
                     "err_fixed_dose_%", "q05", "q95", "err_fixed_rate_%",
                     "det_cov_%", "sdc_%", "accept", "evals", "truncated",
                     "layers_saved_%", "quar"});
  std::vector<double> depths, errors_dose, errors_rate;
  double evals_saved = 0.0;
  std::size_t evals = 0, truncated = 0, quarantined = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& pt = fixed_dose[i];
    table.row()
        .col(pt.layer_index)
        .col(pt.layer_name)
        .col(pt.layer_kind)
        .col(static_cast<std::size_t>(pt.layer_params))
        .col(pt.mean_error)
        .col(pt.q05)
        .col(pt.q95)
        .col(fixed_rate[i].mean_error)
        .col(100.0 * pt.stats.detection_coverage)
        .col(100.0 * pt.stats.sdc_rate)
        .col(pt.stats.acceptance_rate)
        .col(pt.stats.network_evals)
        .col(pt.stats.truncated_evals)
        .col(pt.stats.layers_saved_pct)
        .col(pt.stats.chains_quarantined +
             fixed_rate[i].stats.chains_quarantined);
    depths.push_back(static_cast<double>(pt.layer_index));
    errors_dose.push_back(pt.mean_error);
    errors_rate.push_back(fixed_rate[i].mean_error);
    evals_saved += pt.evals_saved + fixed_rate[i].evals_saved;
    evals += pt.stats.network_evals + fixed_rate[i].stats.network_evals;
    truncated +=
        pt.stats.truncated_evals + fixed_rate[i].stats.truncated_evals;
    quarantined += pt.stats.chains_quarantined +
                   fixed_rate[i].stats.chains_quarantined;
  }
  std::printf("=== Fig. 3: ResNet-18 error vs injected layer "
              "(dose = %.3g flips/injection; rate mode p = %.2g) ===\n\n",
              dose, p);
  bench::emit(table, "fig3_resnet_layers");
  std::printf("stats: %zu/%zu mask evals truncated via the golden activation "
              "cache; ~%.0f equivalent full-network evals saved across both "
              "modes\n",
              truncated, evals, evals_saved);
  if (quarantined > 0) {
    std::printf("DEGRADED: %zu chain(s) quarantined across the per-layer "
                "campaigns; statistics cover surviving chains only\n",
                quarantined);
  }

  util::Series series{"fixed dose (paper protocol)", {}, {}, '*'};
  series.xs = depths;
  series.ys = errors_dose;
  util::PlotOptions opt;
  opt.title = "Fig. 3 (reproduced): error vs injection layer depth";
  opt.x_label = "layer index (depth)";
  opt.y_label = "classification error (%)";
  std::printf("%s\n", util::render_plot({series}, opt).c_str());

  const double rho_dose = util::spearman_correlation(depths, errors_dose);
  const double rho_rate = util::spearman_correlation(depths, errors_rate);
  std::printf("Spearman rank corr(depth, error): fixed dose %+.3f, "
              "fixed rate %+.3f\n", rho_dose, rho_rate);
  std::printf("paper's claim: with a size-independent dose there is no direct "
              "relationship between injection depth and output error "
              "(|rho| << 1); the fixed-rate mode shows any residual trend is "
              "a layer-size artifact, not depth.\n");
  obs_session.finish();
  std::printf("[fig3 done in %.1fs]\n", total.seconds());
  return 0;
}
