// Cross-architecture resilience: the paper evaluates an MLP and ResNet-18;
// this table extends the comparison with VGG-11 (plain convolutional, no
// skip connections) on the same dataset family. Reported per architecture:
// golden accuracy, weight-fault error at two rates (normalized per-bit and
// matched expected-upset dose), and the adversarial bits-to-break.
#include "bayes/critical.h"
#include "common.h"
#include "data/cifar_like.h"
#include "inject/random_fi.h"

using namespace bdlfi;

namespace {

struct Subject {
  std::string name;
  nn::Network net;
  double test_accuracy;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;

  // Shared 32×32 dataset (VGG-11's pooling stack needs the full size).
  data::CifarLikeConfig dc;
  dc.samples_per_class = flags.get("samples-per-class", std::size_t{40});
  dc.image_size = 32;
  util::Rng data_rng{150};
  data::Dataset all = data::make_cifar_like(dc, data_rng);
  data::Split split = data::split_dataset(all, 0.8, data_rng);
  const std::size_t eval_n = std::min<std::size_t>(48, split.test.size());
  data::Dataset eval = split.test.slice(0, eval_n);

  train::TrainConfig tc;
  tc.epochs = flags.get("epochs", std::size_t{4});
  tc.batch_size = 32;
  tc.lr = 0.02;
  tc.seed = 151;

  std::vector<Subject> subjects;
  {
    util::Rng init{152};
    nn::ResNetConfig rc;
    rc.width_multiplier = flags.get("width", 0.125);
    Subject s{"resnet18", nn::make_resnet18(rc, init), 0.0};
    s.test_accuracy =
        train::fit(s.net, split.train, split.test, tc).final_test_accuracy;
    subjects.push_back(std::move(s));
  }
  {
    util::Rng init{153};
    nn::VggConfig vc;
    vc.width_multiplier = flags.get("width", 0.125);
    vc.image_size = 32;
    Subject s{"vgg11", nn::make_vgg11(vc, init), 0.0};
    s.test_accuracy =
        train::fit(s.net, split.train, split.test, tc).final_test_accuracy;
    subjects.push_back(std::move(s));
  }
  {
    // Pixel-flattening MLP baseline.
    util::Rng init{154};
    Subject s{"mlp_3072-64",
              nn::make_mlp({3 * 32 * 32, 64, 10}, init), 0.0};
    // Flatten images for the MLP: reuse the same data reshaped.
    data::Dataset flat_train = split.train;
    flat_train.inputs = flat_train.inputs.reshaped(tensor::Shape{
        static_cast<std::int64_t>(flat_train.size()), 3 * 32 * 32});
    data::Dataset flat_test = split.test;
    flat_test.inputs = flat_test.inputs.reshaped(tensor::Shape{
        static_cast<std::int64_t>(flat_test.size()), 3 * 32 * 32});
    s.test_accuracy =
        train::fit(s.net, flat_train, flat_test, tc).final_test_accuracy;
    subjects.push_back(std::move(s));
  }

  const std::size_t injections = flags.get("injections", std::size_t{60});
  util::Table table({"architecture", "params", "golden_acc_%", "dev_%@p=1e-6",
                     "dev_%@dose=10flips", "adversarial_flips_to_50%"});
  for (auto& subject : subjects) {
    const bool is_mlp = subject.name.rfind("mlp", 0) == 0;
    tensor::Tensor inputs = eval.inputs;
    if (is_mlp) {
      inputs = inputs.reshaped(tensor::Shape{
          static_cast<std::int64_t>(eval.size()), 3 * 32 * 32});
    }
    bayes::BayesianFaultNetwork bfn(subject.net,
                                    bayes::TargetSpec::all_parameters(),
                                    fault::AvfProfile::uniform(), inputs,
                                    eval.labels);
    inject::RandomFiConfig fi;
    fi.injections = injections;
    fi.seed = 155;
    const auto fixed_rate = inject::run_random_fi(bfn, 1e-6, fi);
    // Matched dose: p chosen so E[flips] = 10 regardless of model size.
    const double dose_p =
        10.0 / static_cast<double>(bfn.space().total_bits());
    const auto fixed_dose = inject::run_random_fi(bfn, dose_p, fi);

    bayes::CriticalBitConfig crit;
    crit.target_deviation = 50.0;
    crit.candidates_per_round = 96;
    crit.max_flips = 25;
    crit.seed = 156;
    const auto worst = bayes::find_critical_bits(bfn, crit);

    table.row()
        .col(subject.name)
        .col(static_cast<std::size_t>(subject.net.num_params()))
        .col(100.0 * subject.test_accuracy)
        .col(fixed_rate.mean_deviation)
        .col(fixed_dose.mean_deviation)
        .col(worst.reached_target
                 ? std::to_string(worst.mask.num_flips())
                 : (">" + std::to_string(worst.mask.num_flips())));
  }
  std::printf("=== Cross-architecture weight-fault resilience ===\n\n");
  bench::emit(table, "tab_architectures");
  std::printf("at a fixed per-bit rate bigger models absorb more upsets; at "
              "a matched 10-flip dose the comparison isolates architectural "
              "effects (skip connections, width, depth).\n");
  std::printf("[tab_architectures done in %.1fs]\n", total.seconds());
  return 0;
}
