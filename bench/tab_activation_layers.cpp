// Activation-fault campaign companion to Fig. 3: the paper's fault model also
// covers "inputs, intermediate activations and outputs"; this bench injects
// bit flips into each layer's output activation in flight (via the network's
// activation hook — the no-system-support injection path of §I) and reports
// per-layer output error, on the ResNet-18 subject.
#include "common.h"
#include "inject/activation.h"
#include "util/ascii_plot.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;

  bench::ResnetSetup setup = bench::make_trained_resnet(flags);

  inject::ActivationCampaignConfig config;
  config.p = flags.get("p", 1e-4);
  config.injections = flags.get("injections", std::size_t{20});
  config.seed = 111;

  const auto points = inject::run_activation_campaign(
      setup.net, setup.eval.inputs, setup.eval.labels, config);

  std::printf("=== Activation faults, layer by layer (ResNet-18, p = %.2g, "
              "%zu injections/layer) ===\n\n",
              config.p, config.injections);
  util::Table table({"layer_idx", "name", "kind", "act_numel", "mean_error_%",
                     "deviation_%", "detected_%", "mean_flips"});
  util::Series series{"activation-fault error", {}, {}, '*'};
  for (const auto& pt : points) {
    table.row()
        .col(static_cast<int>(pt.layer_index))
        .col(pt.layer_name)
        .col(pt.layer_kind)
        .col(static_cast<std::size_t>(pt.activation_numel))
        .col(pt.mean_error)
        .col(pt.mean_deviation)
        .col(pt.mean_detected)
        .col(pt.mean_flips);
    series.xs.push_back(static_cast<double>(pt.layer_index));
    series.ys.push_back(pt.mean_error);
  }
  bench::emit(table, "tab_activation_layers");

  util::PlotOptions opt;
  opt.title = "activation-fault error vs layer (input = -1)";
  opt.x_label = "layer index";
  opt.y_label = "classification error (%)";
  std::printf("%s\n", util::render_plot({series}, opt).c_str());
  std::printf("transient activation faults wash out once their tensor leaves "
              "scope; unlike weight faults they hit one inference, and "
              "late-layer hits leave no room for masking — compare with the "
              "weight-fault profile of fig3.\n");
  std::printf("[tab_activation_layers done in %.1fs]\n", total.seconds());
  return 0;
}
