// Algorithmic acceleration (§I advantage 2): importance-sampled FI vs plain
// Monte Carlo in the rare-error regime. At small p almost every sampled mask
// is benign; tilting the proposal raises the hit rate while exact per-bit
// density ratios keep the estimate unbiased. The table reports, per budget,
// the absolute estimation error against a large-budget reference, the hit
// rate, and the weight ESS (the health diagnostic for the tilt).
#include <algorithm>
#include <cmath>

#include "common.h"
#include "inject/importance.h"
#include "inject/random_fi.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;

  bench::MlpSetup setup = bench::make_trained_moons_mlp(flags);
  bayes::BayesianFaultNetwork bfn(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  const double p = flags.get("p", 3e-5);
  const double beta = flags.get("beta", 5.0);

  inject::RandomFiConfig ref_config;
  ref_config.injections = flags.get("reference", std::size_t{8000});
  ref_config.seed = 120;
  const auto reference = inject::run_random_fi(bfn, p, ref_config);
  std::printf("=== Importance-sampled FI at p = %.2g (reference %.4f%% from "
              "%zu injections) ===\n\n",
              p, reference.mean_error, reference.injections);

  util::Table table({"estimator", "budget", "rel_err_vs_ref_%", "hit_rate",
                     "weight_ess"});
  const std::size_t seeds = flags.get("seeds", std::size_t{6});
  for (std::size_t budget : {100UL, 300UL, 1000UL}) {
    double mc_abs = 0.0, is_abs = 0.0, mc_hits = 0.0, is_hits = 0.0,
           is_ess = 0.0;
    for (std::size_t s = 0; s < seeds; ++s) {
      inject::RandomFiConfig mc;
      mc.injections = budget;
      mc.seed = 1000 + s;
      const auto mc_result = inject::run_random_fi(bfn, p, mc);
      mc_abs += std::abs(mc_result.mean_error - reference.mean_error);
      double hits = 0.0;
      for (double e : mc_result.error_samples) {
        if (e > bfn.golden_error()) hits += 1.0;
      }
      mc_hits += hits / static_cast<double>(budget);

      inject::ImportanceFiConfig is;
      is.beta = beta;
      is.injections = budget;
      is.seed = 2000 + s;
      const auto is_result = inject::run_importance_fi(bfn, p, is);
      is_abs += std::abs(is_result.mean_error - reference.mean_error);
      is_hits += is_result.hit_rate;
      is_ess += is_result.weight_ess;
    }
    const auto k = static_cast<double>(seeds);
    table.row()
        .col(std::string("plain_mc"))
        .col(budget)
        .col(100.0 * mc_abs / k / std::max(1e-9, reference.mean_error))
        .col(mc_hits / k)
        .col(static_cast<double>(budget));
    table.row()
        .col(std::string("importance(beta=" + util::format_double(beta) + ")"))
        .col(budget)
        .col(100.0 * is_abs / k / std::max(1e-9, reference.mean_error))
        .col(is_hits / k)
        .col(is_ess / k);
  }
  bench::emit(table, "tab_importance");
  std::printf("the tilted estimator exercises error paths on a large "
              "fraction of its forward passes; exact Bernoulli density "
              "ratios keep it unbiased. Keep beta*p*bits O(1): weight ESS "
              "collapse flags an over-aggressive tilt.\n");
  std::printf("[tab_importance done in %.1fs]\n", total.seconds());
  return 0;
}
