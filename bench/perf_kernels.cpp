// google-benchmark microbenchmarks of the hot kernels underneath a BDLFI
// campaign: GEMM, conv2d, fault-mask sampling (geometric skipping), mask
// apply/revert, and a full corrupted-forward evaluation — the §I claim that
// injection cost reduces to inference cost, with no ptrace-style overhead.
//
// Before the google-benchmark suite runs, a hand-timed harness races the
// scalar reference table against the avx2 table on square GEMMs and writes
// the comparison to BENCH_kernels.json. Flags (stripped before
// google-benchmark sees argv):
//   --backend=scalar|avx2|auto  backend for the google-benchmark section
//   --smoke                     shrink reps and skip the google-benchmark
//                               suite so ctest can exercise the path quickly
// A non-smoke run on an AVX2 machine enforces the acceptance target:
// avx2 GEMM >= 2x scalar throughput at n=256.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "bayes/fault_network.h"
#include "common.h"
#include "data/toy2d.h"
#include "nn/batchnorm.h"
#include "nn/builders.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "nn/plan.h"
#include "tensor/backend/backend.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace bdlfi;

namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  util::Rng rng{1};
  tensor::Tensor a = tensor::Tensor::randn(tensor::Shape{n, n}, rng);
  tensor::Tensor b = tensor::Tensor::randn(tensor::Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const auto channels = state.range(0);
  util::Rng rng{2};
  tensor::Tensor input =
      tensor::Tensor::randn(tensor::Shape{4, channels, 16, 16}, rng);
  tensor::Tensor weight =
      tensor::Tensor::randn(tensor::Shape{channels, channels, 3, 3}, rng);
  tensor::Conv2dSpec spec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tensor::conv2d_forward(input, weight, {}, spec));
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

// Shared fixture state for the campaign-level benchmarks.
struct CampaignFixture {
  CampaignFixture() : rng(3), data(data::make_two_moons(256, 0.08, rng)) {
    util::Rng init{4};
    net = std::make_unique<nn::Network>(nn::make_mlp({2, 16, 32, 2}, init));
    bfn = std::make_unique<bayes::BayesianFaultNetwork>(
        *net, bayes::TargetSpec::all_parameters(),
        fault::AvfProfile::uniform(), data.inputs, data.labels);
  }
  util::Rng rng;
  data::Dataset data;
  std::unique_ptr<nn::Network> net;
  std::unique_ptr<bayes::BayesianFaultNetwork> bfn;
};

CampaignFixture& fixture() {
  static CampaignFixture f;
  return f;
}

void BM_SampleMask(benchmark::State& state) {
  auto& f = fixture();
  const double p = 1.0 / static_cast<double>(state.range(0));
  util::Rng rng{5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.bfn->sample_prior_mask(p, rng));
  }
}
// p = 1e-2 .. 1e-5: cost is O(#flips), not O(#bits).
BENCHMARK(BM_SampleMask)->Arg(100)->Arg(10000)->Arg(100000);

void BM_MaskApplyRevert(benchmark::State& state) {
  auto& f = fixture();
  util::Rng rng{6};
  const fault::FaultMask mask = f.bfn->sample_prior_mask(1e-3, rng);
  for (auto _ : state) {
    f.bfn->space().apply(mask);
    f.bfn->space().apply(mask);
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(mask.num_flips()));
}
BENCHMARK(BM_MaskApplyRevert);

void BM_EvaluateMask(benchmark::State& state) {
  // One full injection: corrupt, batch forward over 256 inputs, revert.
  auto& f = fixture();
  util::Rng rng{7};
  const fault::FaultMask mask = f.bfn->sample_prior_mask(1e-3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.bfn->evaluate_mask(mask));
  }
}
BENCHMARK(BM_EvaluateMask);

void BM_LogPrior(benchmark::State& state) {
  auto& f = fixture();
  util::Rng rng{8};
  const fault::FaultMask mask = f.bfn->sample_prior_mask(1e-3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.bfn->log_prior(mask, 1e-3));
  }
}
BENCHMARK(BM_LogPrior);

// ---------------------------------------------------------------------------
// Hand-timed scalar-vs-avx2 GEMM race (backend tables called directly, no
// dispatch or row tiling in the way).

struct GemmRace {
  std::int64_t n = 0;
  std::size_t reps = 0;
  double scalar_gflops = 0.0;
  double avx2_gflops = 0.0;  // 0 when the CPU lacks AVX2
  double speedup = 0.0;      // avx2 / scalar, 0 when not measured
};

double time_gemm_gflops(const tensor::backend::KernelBackend& be,
                        std::int64_t n, std::size_t reps,
                        const std::vector<float>& a,
                        const std::vector<float>& b, std::vector<float>& c) {
  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  be.gemm_rows(false, false, 0, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
               c.data(), n);  // warm-up: page in code and operands
  double best = 1e30;
  for (std::size_t r = 0; r < reps; ++r) {
    util::Stopwatch timer;
    be.gemm_rows(false, false, 0, n, n, n, 1.0f, a.data(), n, b.data(), n,
                 0.0f, c.data(), n);
    best = std::min(best, timer.seconds());
  }
  return flops / std::max(best, 1e-12) / 1e9;
}

std::vector<GemmRace> race_backends(bool smoke) {
  const bool has_avx2 = tensor::backend::avx2_supported();
  util::Rng rng{9};
  std::vector<GemmRace> races;
  for (const std::int64_t n : {std::int64_t{64}, std::int64_t{128},
                               std::int64_t{256}}) {
    // Small GEMMs finish in microseconds: repeat more, keep best-of-R so the
    // single-core CI box's scheduler noise doesn't poison the ratio.
    const std::size_t reps =
        smoke ? std::size_t{3}
              : static_cast<std::size_t>(std::max<std::int64_t>(
                    4, (256 * 256 * 256) / (n * n * n) * 4));
    std::vector<float> a(static_cast<std::size_t>(n * n));
    std::vector<float> b(static_cast<std::size_t>(n * n));
    std::vector<float> c(static_cast<std::size_t>(n * n));
    for (auto& v : a) v = static_cast<float>(rng.normal());
    for (auto& v : b) v = static_cast<float>(rng.normal());

    GemmRace race;
    race.n = n;
    race.reps = reps;
    race.scalar_gflops = time_gemm_gflops(tensor::backend::scalar_backend(), n,
                                          reps, a, b, c);
    if (has_avx2) {
      race.avx2_gflops = time_gemm_gflops(tensor::backend::avx2_backend(), n,
                                          reps, a, b, c);
      race.speedup = race.avx2_gflops / std::max(race.scalar_gflops, 1e-12);
    }
    races.push_back(race);
  }
  return races;
}

// ---------------------------------------------------------------------------
// Fused conv+BN+ReLU race (DESIGN.md §13): the unfused eval-step sequence
// exactly as the legacy layer-by-layer path executes it (allocating
// conv.forward → bn.forward → in-place relu) against the planned fused step
// exactly as ExecutionPlan runs it (per-execution BN refold + folded conv
// forward_into a pre-sized buffer + in-place relu). The refold is charged to
// the fused side — the plan refreshes folds from the live golden tensors on
// every fused execution so weight-resident faults stay visible.

struct FusionRace {
  std::string backend;
  std::size_t reps = 0;
  double unfused_ms = 0.0;  // best-of-reps, conv.forward + bn.forward + relu
  double fused_ms = 0.0;    // best-of-reps, refold + forward_into + relu
  double speedup = 0.0;
};

FusionRace race_fusion(const std::string& backend_name, bool smoke) {
  std::string error;
  const bool ok = tensor::backend::set_active(backend_name, &error);
  FusionRace race;
  race.backend = backend_name;
  if (!ok) return race;

  util::Rng rng{10};
  // The ResNet projection-conv shape (1x1 kernel): per output element the
  // GEMM does only 2*C flops, so the BN normalization pass, the in-place
  // relu fold, and the legacy path's per-call output/im2col allocations are
  // a large fraction of the step — the case fusion exists for. (3x3 block
  // convs fold too, but their GEMM dominates and the win shrinks toward 1x.)
  const std::int64_t n = 8, c = 4, o = 8, hw = 32;
  nn::Conv2d conv(c, o, 1, /*stride=*/1, /*pad=*/0, /*bias=*/true);
  conv.init_he(rng);
  nn::BatchNorm2d bn(o);
  for (std::int64_t ch = 0; ch < o; ++ch) {
    bn.gamma()[ch] = 0.75f + 0.05f * static_cast<float>(ch);
    bn.beta()[ch] = 0.1f * static_cast<float>(ch % 3);
    bn.running_mean()[ch] = 0.02f * static_cast<float>(ch);
    bn.running_var()[ch] = 1.0f + 0.1f * static_cast<float>(ch);
  }
  tensor::Tensor x = tensor::Tensor::randn(tensor::Shape{n, c, hw, hw}, rng);

  nn::Conv2d folded(c, o, 1, /*stride=*/1, /*pad=*/0, /*bias=*/true);
  tensor::Tensor out{tensor::Shape{n, o, hw, hw}};
  nn::Workspace ws;

  race.reps = smoke ? std::size_t{5} : std::size_t{300};
  // Warm both sides: page in kernels, grow the fused side's scratch.
  nn::ReLU relu;
  tensor::Tensor warm =
      relu.forward(bn.forward(conv.forward(x, false), false), false);
  nn::fold_conv_bn(conv.weight(), conv.bias(), bn, folded.weight(),
                   folded.bias());
  folded.forward_into(x, out, ws);

  double best_unfused = 1e30, best_fused = 1e30;
  for (std::size_t r = 0; r < race.reps; ++r) {
    {
      // The legacy Network path: each layer's forward() returns a fresh
      // tensor (ReLU included — its value-copy materializes owned storage).
      util::Stopwatch timer;
      tensor::Tensor t = conv.forward(x, false);
      t = bn.forward(t, false);
      t = relu.forward(t, false);
      best_unfused = std::min(best_unfused, timer.seconds());
    }
    {
      util::Stopwatch timer;
      nn::fold_conv_bn(conv.weight(), conv.bias(), bn, folded.weight(),
                       folded.bias());
      folded.forward_into(x, out, ws);
      tensor::relu_inplace(out);
      best_fused = std::min(best_fused, timer.seconds());
    }
  }
  race.unfused_ms = best_unfused * 1e3;
  race.fused_ms = best_fused * 1e3;
  race.speedup = best_unfused / std::max(best_fused, 1e-12);
  return race;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool smoke = flags.get("smoke", std::int64_t{0}) != 0;
  const std::string backend = bench::require_backend(
      tensor::backend::resolve(flags.get("backend", "")));

  const bool has_avx2 = tensor::backend::avx2_supported();
  std::printf("[setup] kernel backend: %s (avx2 %s)%s\n", backend.c_str(),
              has_avx2 ? "supported" : "unsupported",
              smoke ? " [smoke]" : "");

  const std::vector<GemmRace> races = race_backends(smoke);
  util::Table table(
      {"n", "reps", "scalar_gflops", "avx2_gflops", "speedup"});
  for (const auto& race : races) {
    table.row()
        .col(static_cast<std::size_t>(race.n))
        .col(race.reps)
        .col(race.scalar_gflops)
        .col(race.avx2_gflops)
        .col(race.speedup);
  }
  std::printf("=== perf: scalar vs avx2 GEMM microkernel ===\n\n");
  bench::emit(table, "perf_kernels");

  const GemmRace& final_race = races.back();
  const bool target_met = !has_avx2 || final_race.speedup >= 2.0;
  if (has_avx2) {
    std::printf("avx2 speedup at n=%lld: %.2fx%s\n",
                static_cast<long long>(final_race.n), final_race.speedup,
                target_met ? "  [target >= 2x: PASS]"
                           : (smoke ? "  [smoke: target not checked]"
                                    : "  [target >= 2x: FAIL]"));
  }

  // Fused conv+BN+ReLU race per backend; the resolved backend is restored
  // afterwards for the google-benchmark section.
  std::vector<FusionRace> fusion_races;
  fusion_races.push_back(race_fusion("scalar", smoke));
  if (has_avx2) fusion_races.push_back(race_fusion("avx2", smoke));
  bench::require_backend(tensor::backend::resolve(backend));

  util::Table fusion_table(
      {"backend", "reps", "unfused_ms", "fused_ms", "speedup"});
  for (const auto& race : fusion_races) {
    fusion_table.row()
        .col(race.backend)
        .col(race.reps)
        .col(race.unfused_ms)
        .col(race.fused_ms)
        .col(race.speedup);
  }
  std::printf("=== perf: fused conv+BN+ReLU step vs unfused sequence ===\n\n");
  bench::emit(fusion_table, "perf_kernels_fusion");

  const double fusion_speedup_avx2 =
      has_avx2 ? fusion_races.back().speedup : 0.0;
  const bool fusion_gate = !smoke && has_avx2;
  const bool fusion_met = !fusion_gate || fusion_speedup_avx2 >= 1.3;
  if (has_avx2) {
    std::printf("fused conv+BN+ReLU speedup (avx2): %.2fx%s\n",
                fusion_speedup_avx2,
                fusion_gate ? (fusion_met ? "  [target >= 1.3x: PASS]"
                                          : "  [target >= 1.3x: FAIL]")
                            : "  [smoke: target not checked]");
  }

  obs::JsonWriter json;
  json.begin_object();
  json.key("config").begin_object();
  json.field("backend", backend);
  json.field("avx2_supported", has_avx2);
  json.field("smoke", smoke);
  json.end_object();
  json.key("gemm").begin_array();
  for (const auto& race : races) {
    json.begin_object();
    json.field("n", race.n);
    json.field("reps", race.reps);
    json.field("scalar_gflops", race.scalar_gflops);
    if (has_avx2) {
      json.field("avx2_gflops", race.avx2_gflops);
      json.field("speedup", race.speedup);
    }
    json.end_object();
  }
  json.end_array();
  json.key("fusion").begin_array();
  for (const auto& race : fusion_races) {
    json.begin_object();
    json.field("backend", race.backend);
    json.field("reps", race.reps);
    json.field("unfused_ms", race.unfused_ms);
    json.field("fused_ms", race.fused_ms);
    json.field("speedup", race.speedup);
    json.end_object();
  }
  json.end_array();
  json.key("summary").begin_object();
  json.field("speedup_n256", has_avx2 ? final_race.speedup : 0.0);
  json.field("target_speedup", 2.0);
  json.field("target_met", target_met);
  json.field("fusion_speedup_avx2", fusion_speedup_avx2);
  json.field("fusion_target_speedup", 1.3);
  json.field("fusion_target_met", fusion_met);
  json.end_object();
  json.end_object();
  if (!bench::emit_bench_json(json, "kernels")) return 1;

  if (!smoke) {
    // Forward only google-benchmark's own flags; ours would be rejected.
    std::vector<char*> gb_argv;
    gb_argv.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
        gb_argv.push_back(argv[i]);
      }
    }
    int gb_argc = static_cast<int>(gb_argv.size());
    benchmark::Initialize(&gb_argc, gb_argv.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return (!smoke && (!target_met || !fusion_met)) ? 1 : 0;
}
