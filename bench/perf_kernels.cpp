// google-benchmark microbenchmarks of the hot kernels underneath a BDLFI
// campaign: GEMM, conv2d, fault-mask sampling (geometric skipping), mask
// apply/revert, and a full corrupted-forward evaluation — the §I claim that
// injection cost reduces to inference cost, with no ptrace-style overhead.
#include <benchmark/benchmark.h>

#include "bayes/fault_network.h"
#include "data/toy2d.h"
#include "nn/builders.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace bdlfi;

namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  util::Rng rng{1};
  tensor::Tensor a = tensor::Tensor::randn(tensor::Shape{n, n}, rng);
  tensor::Tensor b = tensor::Tensor::randn(tensor::Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const auto channels = state.range(0);
  util::Rng rng{2};
  tensor::Tensor input =
      tensor::Tensor::randn(tensor::Shape{4, channels, 16, 16}, rng);
  tensor::Tensor weight =
      tensor::Tensor::randn(tensor::Shape{channels, channels, 3, 3}, rng);
  tensor::Conv2dSpec spec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tensor::conv2d_forward(input, weight, {}, spec));
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

// Shared fixture state for the campaign-level benchmarks.
struct CampaignFixture {
  CampaignFixture() : rng(3), data(data::make_two_moons(256, 0.08, rng)) {
    util::Rng init{4};
    net = std::make_unique<nn::Network>(nn::make_mlp({2, 16, 32, 2}, init));
    bfn = std::make_unique<bayes::BayesianFaultNetwork>(
        *net, bayes::TargetSpec::all_parameters(),
        fault::AvfProfile::uniform(), data.inputs, data.labels);
  }
  util::Rng rng;
  data::Dataset data;
  std::unique_ptr<nn::Network> net;
  std::unique_ptr<bayes::BayesianFaultNetwork> bfn;
};

CampaignFixture& fixture() {
  static CampaignFixture f;
  return f;
}

void BM_SampleMask(benchmark::State& state) {
  auto& f = fixture();
  const double p = 1.0 / static_cast<double>(state.range(0));
  util::Rng rng{5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.bfn->sample_prior_mask(p, rng));
  }
}
// p = 1e-2 .. 1e-5: cost is O(#flips), not O(#bits).
BENCHMARK(BM_SampleMask)->Arg(100)->Arg(10000)->Arg(100000);

void BM_MaskApplyRevert(benchmark::State& state) {
  auto& f = fixture();
  util::Rng rng{6};
  const fault::FaultMask mask = f.bfn->sample_prior_mask(1e-3, rng);
  for (auto _ : state) {
    f.bfn->space().apply(mask);
    f.bfn->space().apply(mask);
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(mask.num_flips()));
}
BENCHMARK(BM_MaskApplyRevert);

void BM_EvaluateMask(benchmark::State& state) {
  // One full injection: corrupt, batch forward over 256 inputs, revert.
  auto& f = fixture();
  util::Rng rng{7};
  const fault::FaultMask mask = f.bfn->sample_prior_mask(1e-3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.bfn->evaluate_mask(mask));
  }
}
BENCHMARK(BM_EvaluateMask);

void BM_LogPrior(benchmark::State& state) {
  auto& f = fixture();
  util::Rng rng{8};
  const fault::FaultMask mask = f.bfn->sample_prior_mask(1e-3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.bfn->log_prior(mask, 1e-3));
  }
}
BENCHMARK(BM_LogPrior);

}  // namespace

BENCHMARK_MAIN();
