// Reproduces Fig. 4 of the paper: classification error (%) of ResNet-18 as a
// function of per-bit flip probability, golden run as reference.
//
// Expected shape: same two-regime curve as the MLP (Fig. 2) but with the
// ResNet's (higher) baseline error as the floor — the paper reports a 30-70%
// error band on CIFAR-10. Defaults are width/image-scaled for a single-core
// budget; run with --width=1.0 --image-size=32 --samples-per-class=500
// --epochs=30 for the full configuration.
#include "common.h"
#include "inject/campaign.h"
#include "util/ascii_plot.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;
  bench::ObsSession obs_session(flags, "fig4");

  bench::ResnetSetup setup = bench::make_trained_resnet(flags);

  bayes::BayesianFaultNetwork bfn(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.eval.inputs, setup.eval.labels);

  mcmc::RunnerConfig runner;
  runner.num_chains = flags.get("chains", std::size_t{2});
  runner.mh.samples = flags.get("samples", std::size_t{25});
  runner.mh.burn_in = flags.get("burn-in", std::size_t{8});
  runner.mh.thin = flags.get("thin", std::size_t{10});
  runner.seed = 41;
  const bench::CampaignFlags campaign =
      bench::parse_campaign_flags(flags, obs_session, runner);
  std::printf("[setup] kernel backend: %s\n", campaign.backend.c_str());

  // The knee of the curve sits where p × (#fault-site bits) × P(bit matters)
  // ~ 1, so its x-position scales inversely with network size; we sweep a
  // wider range than the paper's axis so both regimes are visible for the
  // (scaled) network under test. See EXPERIMENTS.md.
  const double p_lo = flags.get("p-lo", 1e-8);
  const double p_hi = flags.get("p-hi", 1e-1);
  const auto ps =
      inject::log_space(p_lo, p_hi, flags.get("points", std::size_t{8}));
  const inject::SweepResult sweep = inject::run_bdlfi_sweep(bfn, ps, runner);

  util::Table table({"p", "mean_error_%", "q05", "q95", "deviation_%",
                     "mean_flips", "det_cov_%", "sdc_%", "accept", "rhat",
                     "samples", "evals", "truncated", "layers_saved_%",
                     "quar"});
  std::size_t evals = 0, truncated = 0, quarantined = 0;
  for (const auto& pt : sweep.points) {
    table.row()
        .col(pt.p)
        .col(pt.mean_error)
        .col(pt.q05)
        .col(pt.q95)
        .col(pt.mean_deviation)
        .col(pt.mean_flips)
        .col(100.0 * pt.stats.detection_coverage)
        .col(100.0 * pt.stats.sdc_rate)
        .col(pt.stats.acceptance_rate)
        .col(pt.stats.rhat)
        .col(pt.stats.samples)
        .col(pt.stats.network_evals)
        .col(pt.stats.truncated_evals)
        .col(pt.stats.layers_saved_pct)
        .col(pt.stats.chains_quarantined);
    evals += pt.stats.network_evals;
    truncated += pt.stats.truncated_evals;
    quarantined += pt.stats.chains_quarantined;
  }
  std::printf(
      "=== Fig. 4: ResNet-18 classification error vs flip probability ===\n");
  std::printf("golden run error: %.2f%%\n\n", sweep.golden_error);
  bench::emit(table, "fig4_resnet_sweep");
  std::printf("stats: %zu/%zu mask evals truncated via the golden activation "
              "cache\n", truncated, evals);
  if (quarantined > 0) {
    std::printf("DEGRADED: %zu chain(s) quarantined across the sweep; "
                "statistics cover surviving chains only\n", quarantined);
  }
  if (sweep.interrupted) {
    std::printf("INTERRUPTED: sweep stopped early; the table is a valid "
                "prefix of the grid\n");
  }

  util::Series series{"BDLFI mean error", {}, {}, '*'};
  util::Series golden{"golden run", {}, {}, '-'};
  for (const auto& pt : sweep.points) {
    series.xs.push_back(pt.p);
    series.ys.push_back(pt.mean_error);
    golden.xs.push_back(pt.p);
    golden.ys.push_back(sweep.golden_error);
  }
  util::PlotOptions opt;
  opt.log_x = true;
  opt.title = "Fig. 4 (reproduced): ResNet-18 error vs flip probability";
  opt.x_label = "flip probability p";
  opt.y_label = "classification error (%)";
  std::printf("%s\n", util::render_plot({series, golden}, opt).c_str());
  obs_session.finish();
  std::printf("[fig4 done in %.1fs]\n", total.seconds());
  return 0;
}
