// Bench regression tracking: every BENCH_<name>.json document appends one
// history entry (headline metric + config fingerprint) to a JSONL ledger,
// and new results are compared against the best prior entry recorded for the
// same fingerprint. Grouping by fingerprint means a smoke run never gates
// against a full-scale run, an avx2 result never gates against scalar, and a
// deliberate workload change starts a fresh baseline automatically.
//
// Header-only like the rest of bench/; tools/bench_track is the CLI and the
// ctest wiring lives in bench/CMakeLists.txt.
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/stream.h"

namespace bdlfi::bench {

/// One recorded bench result: the headline metric plus enough identity to
/// compare like with like.
struct HistoryEntry {
  std::string bench;        // "kernels" | "abft" | "mask_eval" | ...
  std::string backend;      // from the document's config
  std::string fingerprint;  // hex64 FNV-1a over the serialized config object
  bool smoke = false;
  std::string metric;  // name of the headline metric recorded in `value`
  double value = 0.0;
  bool higher_is_better = true;
  std::uint64_t ts_ms = 0;
};

/// Canonical re-serialization of a parsed JSON value (objects iterate in
/// sorted key order), used to fingerprint bench config objects.
inline void history_serialize(const obs::JsonValue& v, obs::JsonWriter* w) {
  if (v.is_null()) {
    w->null();
  } else if (v.is_bool()) {
    w->boolean(v.as_bool());
  } else if (v.is_number()) {
    w->number_exact(v.as_number());
  } else if (v.is_string()) {
    w->string(v.as_string());
  } else if (v.is_array()) {
    w->begin_array();
    for (const auto& e : v.as_array()) history_serialize(e, w);
    w->end_array();
  } else {
    w->begin_object();
    for (const auto& [k, e] : v.as_object()) {
      w->key(k);
      history_serialize(e, w);
    }
    w->end_object();
  }
}

inline std::string config_fingerprint(const obs::JsonValue& config) {
  obs::JsonWriter w;
  history_serialize(config, &w);
  return obs::hex64(obs::fnv1a64(w.str()));
}

inline double num_at(const obs::JsonValue& obj, const char* key,
                     double fallback = 0.0) {
  const obs::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

/// Extracts the headline metric of one BENCH_<name>.json document. Returns
/// nullopt (with a message in `error`) when the document does not carry the
/// fields its bench promises in DESIGN.md §6.
inline std::optional<HistoryEntry> entry_from_bench_doc(
    const obs::JsonValue& doc, const std::string& bench, std::string* error) {
  HistoryEntry entry;
  entry.bench = bench;
  const obs::JsonValue* config = doc.find("config");
  if (config == nullptr || !config->is_object()) {
    if (error != nullptr) *error = bench + ": missing config object";
    return std::nullopt;
  }
  if (const obs::JsonValue* b = config->find("backend");
      b != nullptr && b->is_string()) {
    entry.backend = b->as_string();
  }
  if (const obs::JsonValue* s = config->find("smoke");
      s != nullptr && s->is_bool()) {
    entry.smoke = s->as_bool();
  }
  entry.fingerprint = config_fingerprint(*config);

  const obs::JsonValue* summary = doc.find("summary");
  if (bench == "kernels") {
    // Headline: AVX2 GEMM speedup at the largest size. Scalar-only machines
    // record absolute scalar throughput instead (still comparable run to
    // run: the config fingerprint separates the two populations anyway).
    const obs::JsonValue* avx2 = config->find("avx2_supported");
    if (avx2 != nullptr && avx2->is_bool() && avx2->as_bool() &&
        summary != nullptr) {
      entry.metric = "speedup_n256";
      entry.value = num_at(*summary, "speedup_n256");
    } else {
      const obs::JsonValue* gemm = doc.find("gemm");
      if (gemm == nullptr || !gemm->is_array() || gemm->as_array().empty()) {
        if (error != nullptr) *error = "kernels: missing gemm array";
        return std::nullopt;
      }
      entry.metric = "scalar_gflops";
      entry.value = num_at(gemm->as_array().back(), "scalar_gflops");
    }
    entry.higher_is_better = true;
  } else if (bench == "abft") {
    if (summary == nullptr) {
      if (error != nullptr) *error = "abft: missing summary object";
      return std::nullopt;
    }
    entry.metric = "detect_overhead_pct";
    entry.value = num_at(*summary, "detect_overhead_pct");
    entry.higher_is_better = false;
  } else if (bench == "mask_eval") {
    const obs::JsonValue* mm = doc.find("multi_mask");
    const obs::JsonValue* mm_summary =
        mm != nullptr ? mm->find("summary") : nullptr;
    if (mm_summary == nullptr) {
      if (error != nullptr) *error = "mask_eval: missing multi_mask.summary";
      return std::nullopt;
    }
    entry.metric = "overall_speedup";
    entry.value = num_at(*mm_summary, "overall_speedup");
    entry.higher_is_better = true;
  } else if (bench == "hardening_loop") {
    // Headline: SDC remaining after hardening as % of the unhardened rate
    // (the bench floors it at 0.1 so a perfect run still records a positive
    // value). Lower is better — a regression here means hardening got worse.
    if (summary == nullptr) {
      if (error != nullptr) *error = "hardening_loop: missing summary object";
      return std::nullopt;
    }
    entry.metric = "sdc_remaining_pct";
    entry.value = num_at(*summary, "sdc_remaining_pct");
    entry.higher_is_better = false;
  } else {
    // Unknown bench: record the generic summary.overall_speedup if present,
    // so new benches join the ledger without touching this switch.
    if (summary == nullptr) {
      if (error != nullptr) *error = bench + ": missing summary object";
      return std::nullopt;
    }
    entry.metric = "overall_speedup";
    entry.value = num_at(*summary, "overall_speedup");
    entry.higher_is_better = true;
  }
  if (!(entry.value > 0.0) || !std::isfinite(entry.value)) {
    if (error != nullptr) {
      *error = bench + ": headline metric \"" + entry.metric +
               "\" missing or non-positive";
    }
    return std::nullopt;
  }
  return entry;
}

inline std::string entry_to_json(const HistoryEntry& e) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", e.bench);
  w.field("backend", e.backend);
  w.field("fingerprint", e.fingerprint);
  w.field("smoke", e.smoke);
  w.field("metric", e.metric);
  w.field("value", e.value);
  w.field("higher_is_better", e.higher_is_better);
  w.field("ts_ms", e.ts_ms);
  w.end_object();
  return w.str();
}

/// Loads the JSONL ledger; malformed lines are skipped (a torn tail from a
/// killed run must not wedge the tracker), counted in `skipped` when given.
inline std::vector<HistoryEntry> load_history(const std::string& path,
                                              std::size_t* skipped = nullptr) {
  std::vector<HistoryEntry> out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto doc = obs::json_parse(line);
    if (!doc.has_value() || !doc->is_object()) {
      if (skipped != nullptr) ++*skipped;
      continue;
    }
    HistoryEntry e;
    const auto str = [&doc](const char* key) -> std::string {
      const obs::JsonValue* v = doc->find(key);
      return v != nullptr && v->is_string() ? v->as_string() : "";
    };
    e.bench = str("bench");
    e.backend = str("backend");
    e.fingerprint = str("fingerprint");
    e.metric = str("metric");
    e.value = num_at(*doc, "value");
    if (const obs::JsonValue* v = doc->find("smoke");
        v != nullptr && v->is_bool()) {
      e.smoke = v->as_bool();
    }
    if (const obs::JsonValue* v = doc->find("higher_is_better");
        v != nullptr && v->is_bool()) {
      e.higher_is_better = v->as_bool();
    }
    e.ts_ms = static_cast<std::uint64_t>(num_at(*doc, "ts_ms"));
    if (e.bench.empty() || e.fingerprint.empty() || !(e.value > 0.0)) {
      if (skipped != nullptr) ++*skipped;
      continue;
    }
    out.push_back(std::move(e));
  }
  return out;
}

inline bool append_history(const std::string& path, const HistoryEntry& e) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  const std::string line = entry_to_json(e) + "\n";
  const bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  std::fclose(f);
  return ok;
}

/// Verdict of comparing a fresh entry against the recorded history.
struct RegressionCheck {
  bool has_baseline = false;  // some prior entry matched the fingerprint
  bool regression = false;
  double best = 0.0;        // best prior value (max or min per direction)
  double worse_frac = 0.0;  // fractional slowdown vs best (>= 0)
};

/// Compares `fresh` against the best prior entry with the same bench +
/// fingerprint (+ backend, which the fingerprint already encodes for every
/// current bench). `threshold` is the tolerated fractional slowdown: 0.35
/// means "flag anything more than 35% worse than the best ever recorded" —
/// loose enough for shared-machine noise, tight enough to catch a real 2x.
inline RegressionCheck check_regression(const std::vector<HistoryEntry>& prior,
                                        const HistoryEntry& fresh,
                                        double threshold) {
  RegressionCheck out;
  for (const HistoryEntry& e : prior) {
    if (e.bench != fresh.bench || e.fingerprint != fresh.fingerprint) continue;
    if (!out.has_baseline) {
      out.best = e.value;
      out.has_baseline = true;
    } else if (fresh.higher_is_better ? e.value > out.best
                                      : e.value < out.best) {
      out.best = e.value;
    }
  }
  if (!out.has_baseline || out.best <= 0.0) return out;
  out.worse_frac = fresh.higher_is_better
                       ? (out.best - fresh.value) / out.best
                       : (fresh.value - out.best) / out.best;
  if (out.worse_frac < 0.0) out.worse_frac = 0.0;
  out.regression = out.worse_frac > threshold;
  return out;
}

}  // namespace bdlfi::bench
