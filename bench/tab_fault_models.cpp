// Fault-model ablation (the §II note that BDLFI "can also be extended to
// other fault models"): compare the Bernoulli bit-flip model of the paper
// against burst, stuck-at, random-word and zero-word models at comparable
// corruption magnitudes, including the outcome taxonomy
// (benign / SDC / detected-by-NaN).
#include "common.h"
#include "fault/models.h"
#include "inject/random_fi.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;

  bench::MlpSetup setup = bench::make_trained_moons_mlp(flags);
  bayes::BayesianFaultNetwork bfn(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  const std::size_t injections = flags.get("injections", std::size_t{400});
  const double p = flags.get("p", 1e-3);

  std::vector<std::unique_ptr<fault::MaskSampler>> samplers;
  samplers.push_back(
      std::make_unique<fault::BernoulliSampler>(fault::AvfProfile::uniform(),
                                                p));
  samplers.push_back(std::make_unique<fault::BurstSampler>(p / 4.0, 4));
  samplers.push_back(std::make_unique<fault::StuckAtSampler>(p, true));
  samplers.push_back(std::make_unique<fault::StuckAtSampler>(p, false));
  samplers.push_back(std::make_unique<fault::RandomWordSampler>(8.0 * p));
  samplers.push_back(std::make_unique<fault::ZeroWordSampler>(8.0 * p));

  std::printf("=== Fault-model comparison (MLP, %zu injections each) ===\n\n",
              injections);
  util::Table table({"model", "mean_error_%", "q95", "deviation_%", "sdc_%",
                     "detected_%", "mean_flips"});
  for (const auto& sampler : samplers) {
    inject::RandomFiConfig config;
    config.injections = injections;
    config.seed = 101;
    const auto result = inject::run_random_fi(bfn, *sampler, config);
    table.row()
        .col(sampler->name())
        .col(result.mean_error)
        .col(result.q95)
        .col(result.mean_deviation)
        .col(result.mean_sdc)
        .col(result.mean_detected)
        .col(result.mean_flips);
  }
  bench::emit(table, "tab_fault_models");
  std::printf(
      "notes: stuck-at-1 forces exponent bits high (loud, detectable NaN/Inf "
      "outputs); stuck-at-0 and zero-word shrink magnitudes (quieter, mostly "
      "SDC or benign); random-word sits between; bursts concentrate damage "
      "in fewer words than i.i.d. flips of equal count.\n");
  std::printf("[tab_fault_models done in %.1fs]\n", total.seconds());
  return 0;
}
