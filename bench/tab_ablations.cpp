// Ablations over the design choices DESIGN.md calls out:
//  (a) AVF profile — the paper sets "p based on AVF" without fixing a
//      profile; we quantify how much the bit-position weighting matters
//      (exponent bits dominate fp32 corruption impact).
//  (b) MH proposal kernel mix — single-toggle vs block-resample vs
//      independence vs the default mixture: acceptance rate and effective
//      samples per second / per network evaluation.
#include "common.h"
#include "mcmc/runner.h"
#include "util/stats.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;

  bench::MlpSetup setup = bench::make_trained_moons_mlp(flags);
  const double p = flags.get("p", 1e-3);

  // --- (a) AVF profiles --------------------------------------------------------
  std::printf("=== Ablation A: AVF profile at p = %.2g ===\n\n", p);
  util::Table avf_table({"profile", "mean_error_%", "q95", "mean_flips",
                         "expected_flips_per_word"});
  const fault::AvfProfile profiles[] = {
      fault::AvfProfile::uniform(),
      fault::AvfProfile::exponent_weighted(4.0),
      fault::AvfProfile::mantissa_only(),
      fault::AvfProfile::sign_exponent_only(),
  };
  for (const auto& profile : profiles) {
    bayes::BayesianFaultNetwork bfn(setup.net,
                                    bayes::TargetSpec::all_parameters(),
                                    profile, setup.test.inputs,
                                    setup.test.labels);
    mcmc::RunnerConfig runner;
    runner.num_chains = 3;
    runner.mh.samples = flags.get("samples", std::size_t{120});
    runner.mh.burn_in = 40;
    runner.seed = 91;
    mcmc::TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
      return std::make_unique<bayes::PriorTarget>(net, p);
    };
    const auto result = mcmc::run_chains(bfn, factory, p, runner);
    avf_table.row()
        .col(profile.name())
        .col(result.mean_error)
        .col(result.q95)
        .col(result.mean_flips)
        .col(profile.expected_flips_per_word(p));
  }
  bench::emit(avf_table, "tab_ablation_avf");
  std::printf("mantissa-only flips are near-harmless; sign/exponent flips "
              "carry almost all of the corruption impact.\n\n");

  // --- (b) proposal kernels ----------------------------------------------------
  std::printf("=== Ablation B: MH proposal kernel mix ===\n\n");
  bayes::BayesianFaultNetwork bfn(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  struct KernelMix {
    const char* name;
    double w_single, w_block, w_indep;
  };
  const KernelMix mixes[] = {
      {"single_toggle_only", 1.0, 0.0, 0.0},
      {"block_resample_only", 0.0, 1.0, 0.0},
      {"independence_only", 0.0, 0.0, 1.0},
      {"default_mixture", 0.5, 0.3, 0.2},
  };
  util::Table kernel_table({"kernel_mix", "accept_rate", "ess", "rhat",
                            "network_evals", "seconds", "ess_per_sec",
                            "ess_per_eval"});
  for (const auto& mix : mixes) {
    mcmc::RunnerConfig runner;
    runner.num_chains = 4;
    runner.mh.samples = flags.get("samples", std::size_t{120});
    runner.mh.burn_in = 40;
    runner.mh.w_single_toggle = mix.w_single;
    runner.mh.w_block_resample = mix.w_block;
    runner.mh.w_independence = mix.w_indep;
    runner.seed = 92;
    mcmc::TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
      return std::make_unique<bayes::PriorTarget>(net, p);
    };
    util::Stopwatch timer;
    const auto result = mcmc::run_chains(bfn, factory, p, runner);
    const double secs = timer.seconds();
    double accept = 0.0;
    for (const auto& chain : result.chains) accept += chain.acceptance_rate;
    accept /= static_cast<double>(result.chains.size());
    kernel_table.row()
        .col(mix.name)
        .col(accept)
        .col(result.diagnostics.ess)
        .col(result.diagnostics.rhat)
        .col(result.total_network_evals)
        .col(secs)
        .col(result.diagnostics.ess / std::max(1e-9, secs))
        .col(result.diagnostics.ess /
             static_cast<double>(
                 std::max<std::size_t>(1, result.total_network_evals)));
  }
  bench::emit(kernel_table, "tab_ablation_kernels");
  std::printf("single-toggle moves mix slowly at small p (insertions are "
              "rarely accepted); prior-cancelling block/independence moves "
              "accept every proposal and dominate ESS per evaluation.\n");
  std::printf("[tab_ablations done in %.1fs]\n", total.seconds());
  return 0;
}
