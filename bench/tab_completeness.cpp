// Reproduces the paper's §I claim 1: BDLFI can quantify the *completeness* of
// an injection campaign via MCMC mixing — "further injections do not change
// the measured hypothesis".
//
// We run the round-based completeness loop (R-hat + estimate-stability
// criterion) and, for contrast, show how the traditional random-FI campaign's
// only completeness signal (the shrinking confidence interval) evolves at the
// same forward-pass budget. The table regenerated here is the convergence
// trajectory: cumulative samples vs estimate vs R-hat vs ESS.
#include "common.h"
#include "inject/random_fi.h"
#include "mcmc/runner.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;

  bench::MlpSetup setup = bench::make_trained_moons_mlp(flags);
  bayes::BayesianFaultNetwork bfn(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  const double p = flags.get("p", 1e-3);
  mcmc::RunnerConfig runner;
  runner.num_chains = flags.get("chains", std::size_t{4});
  runner.mh.samples = flags.get("round-samples", std::size_t{60});
  runner.mh.burn_in = 20;
  runner.seed = 71;

  mcmc::TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };
  mcmc::CompletenessCriterion criterion;
  criterion.rhat_threshold = flags.get("rhat", 1.05);
  criterion.mean_rel_tol = flags.get("tol", 0.05);
  criterion.max_rounds = flags.get("max-rounds", std::size_t{8});

  const mcmc::CompletenessResult result =
      mcmc::run_until_complete(bfn, factory, p, runner, criterion);

  std::printf("=== Completeness via MCMC mixing (p = %.2g) ===\n\n", p);
  util::Table table({"round", "cumulative_samples", "mean_error_%", "rhat",
                     "ess"});
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const auto& r = result.trajectory[i];
    table.row()
        .col(i + 1)
        .col(r.cumulative_samples)
        .col(r.mean_error)
        .col(r.rhat)
        .col(r.ess);
  }
  bench::emit(table, "tab_completeness_trajectory");
  std::printf("campaign declared COMPLETE: %s after %zu rounds "
              "(criterion: rhat <= %.3g and |Δmean|/mean <= %.3g)\n\n",
              result.converged ? "yes" : "no", result.rounds,
              criterion.rhat_threshold, criterion.mean_rel_tol);

  // Contrast: random FI at the same network-eval budget only offers a CI.
  const std::size_t budget = result.final_result.total_network_evals;
  util::Table fi_table({"injections", "mean_error_%", "ci95_halfwidth"});
  for (std::size_t n : {budget / 4, budget / 2, budget}) {
    if (n == 0) continue;
    inject::RandomFiConfig fi_config;
    fi_config.injections = n;
    fi_config.seed = 72;
    const auto fi = inject::run_random_fi(bfn, p, fi_config);
    fi_table.row().col(n).col(fi.mean_error).col(fi.ci95_halfwidth);
  }
  std::printf("random-FI baseline at the same forward-pass budget (%zu):\n",
              budget);
  bench::emit(fi_table, "tab_completeness_random_fi");
  std::printf("random FI offers no mixing-style completeness signal — only "
              "the CI width, with no statement about unexplored fault "
              "locations (§I challenge 3).\n");
  std::printf("[tab_completeness done in %.1fs]\n", total.seconds());
  return 0;
}
