// Measures the wall-clock cost of ABFT row checksums on the forward pass at
// ResNet-18 scale: unchecked vs. detect-only vs. detect+recover, same
// network, same batch, same backend. The checksum adds O(M*K + K*N + M*N)
// work to an O(M*N*K) GEMM, so the relative overhead shrinks as layers get
// wider — the acceptance target is <= 25% total forward overhead for
// detect mode.
//
// Training is deliberately skipped (as in perf_mask_eval): kernel timing is
// independent of the weight values. Results go to BENCH_abft.json (and the
// usual CSV). `--smoke` shrinks everything so ctest can exercise the path.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "obs/json.h"
#include "tensor/abft.h"
#include "util/rng.h"

using namespace bdlfi;

namespace {

struct ModeTiming {
  std::string mode;
  double seconds = 0.0;
  double forwards_per_s = 0.0;
  double overhead_pct = 0.0;  // vs. unchecked
  std::size_t checks = 0;
  std::size_t detected_rows = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool smoke = flags.get("smoke", std::int64_t{0}) != 0;
  const std::string backend = bench::require_backend(
      tensor::backend::resolve(flags.get("backend", "")));
  util::Stopwatch total;

  // Subject: the paper's ResNet-18 topology, scaled by the usual flags.
  nn::ResNetConfig net_config;
  net_config.width_multiplier = flags.get("width", smoke ? 0.0625 : 0.25);
  net_config.num_classes = 10;
  util::Rng init{static_cast<std::uint64_t>(
      flags.get("init-seed", std::int64_t{171}))};
  nn::Network net = nn::make_resnet18(net_config, init);

  data::CifarLikeConfig data_config;
  data_config.image_size = flags.get("image-size", smoke ? std::int64_t{8}
                                                         : std::int64_t{16});
  const std::size_t eval_batch =
      flags.get("eval-batch", smoke ? std::size_t{8} : std::size_t{64});
  data_config.samples_per_class = (eval_batch + 9) / 10 + 1;
  util::Rng data_rng{static_cast<std::uint64_t>(
      flags.get("data-seed", std::int64_t{172}))};
  data::Dataset eval =
      data::make_cifar_like(data_config, data_rng).slice(0, eval_batch);

  const std::size_t reps = std::max<std::size_t>(
      1, flags.get("reps", smoke ? std::size_t{2} : std::size_t{12}));

  std::printf("[setup] kernel backend: %s\n", backend.c_str());
  std::printf("[setup] ResNet-18 (width %.3g, %lldx%lld), eval batch %zu, "
              "%zu timed forwards per mode%s\n",
              net_config.width_multiplier,
              static_cast<long long>(data_config.image_size),
              static_cast<long long>(data_config.image_size), eval_batch,
              reps, smoke ? " [smoke]" : "");

  const tensor::abft::Mode modes[] = {tensor::abft::Mode::kOff,
                                      tensor::abft::Mode::kDetect,
                                      tensor::abft::Mode::kCorrect};
  std::vector<ModeTiming> timings;
  for (const tensor::abft::Mode mode : modes) {
    nn::Network subject = net.clone();
    subject.set_abft(tensor::abft::Config{mode, 4.0});
    // Warm-up (page in the checked path), then timed runs.
    (void)subject.forward(eval.inputs, false);
    util::Stopwatch timer;
    for (std::size_t r = 0; r < reps; ++r) {
      (void)subject.forward(eval.inputs, false);
    }
    ModeTiming t;
    t.mode = tensor::abft::mode_name(mode);
    t.seconds = timer.seconds();
    t.forwards_per_s = static_cast<double>(reps) / std::max(t.seconds, 1e-9);
    t.checks = subject.abft_stats().checks.load();
    t.detected_rows = subject.abft_stats().detected_rows.load();
    timings.push_back(t);
  }
  const double base_s = std::max(timings.front().seconds, 1e-9);
  for (auto& t : timings) {
    t.overhead_pct = 100.0 * (t.seconds - base_s) / base_s;
  }

  util::Table table({"abft_mode", "seconds", "forwards_per_s", "overhead_%",
                     "checks", "detected_rows"});
  for (const auto& t : timings) {
    table.row()
        .col(t.mode)
        .col(t.seconds)
        .col(t.forwards_per_s)
        .col(t.overhead_pct)
        .col(t.checks)
        .col(t.detected_rows);
  }
  std::printf("=== perf: forward wall-clock, unchecked vs ABFT-checked "
              "===\n\n");
  bench::emit(table, "perf_abft");

  const double detect_overhead = timings[1].overhead_pct;
  const double correct_overhead = timings[2].overhead_pct;
  std::printf("detect-mode overhead: %.1f%%%s\n", detect_overhead,
              detect_overhead <= 25.0
                  ? "  [target <= 25%: PASS]"
                  : (smoke ? "  [smoke: target not checked]"
                           : "  [target <= 25%: FAIL]"));
  // On a clean network kCorrect never recomputes, so its cost should track
  // kDetect; a large gap means false positives are triggering recovery.
  std::printf("correct-mode overhead: %.1f%% (clean run: recovery idle)\n",
              correct_overhead);

  obs::JsonWriter json;
  json.begin_object();
  json.key("config").begin_object();
  json.field("backend", backend);
  json.field("width", net_config.width_multiplier);
  json.field("image_size", static_cast<std::int64_t>(data_config.image_size));
  json.field("eval_batch", eval_batch);
  json.field("reps", reps);
  json.field("tolerance_scale", 4.0);
  json.field("smoke", smoke);
  json.end_object();
  json.key("modes").begin_array();
  for (const auto& t : timings) {
    json.begin_object();
    json.field("mode", t.mode);
    json.field("seconds", t.seconds);
    json.field("forwards_per_s", t.forwards_per_s);
    json.field("overhead_pct", t.overhead_pct);
    json.field("checks", t.checks);
    json.field("detected_rows", t.detected_rows);
    json.end_object();
  }
  json.end_array();
  json.key("summary").begin_object();
  json.field("detect_overhead_pct", detect_overhead);
  json.field("correct_overhead_pct", correct_overhead);
  json.field("target_overhead_pct", 25.0);
  json.end_object();
  json.end_object();
  if (!bench::emit_bench_json(json, "abft")) return 1;
  std::printf("[perf_abft done in %.1fs]\n", total.seconds());
  // The smoke run only checks that the pipeline works end to end; the real
  // run enforces the acceptance target.
  return (!smoke && detect_overhead > 25.0) ? 1 : 0;
}
