// Measures the throughput win of truncated forward replay: for each
// parameterized ResNet-18 layer, masks confined to that layer are evaluated
// with the golden-activation cache enabled vs. disabled, and the speedup is
// reported per layer plus aggregated over the last third of the network —
// where truncation replays the fewest layers and the win is largest
// (speedup ~ depth / layers-remaining).
//
// Training is deliberately skipped: evaluation throughput is independent of
// the weight values, and an untrained network keeps the bench about the
// replay machinery. Results go to BENCH_mask_eval.json (and the usual CSV).
// `--smoke` shrinks everything so ctest can exercise the path in seconds.
#include <algorithm>
#include <cstdio>

#include "bayes/fault_network.h"
#include "common.h"
#include "obs/json.h"
#include "util/rng.h"

using namespace bdlfi;

namespace {

struct LayerTiming {
  std::size_t layer_index = 0;
  std::string layer_name;
  std::int64_t layer_params = 0;
  std::size_t evals = 0;
  double full_seconds = 0.0;
  double truncated_seconds = 0.0;
  double full_throughput = 0.0;       // evals / s
  double truncated_throughput = 0.0;  // evals / s
  double speedup = 0.0;
  double layers_saved_pct = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool smoke = flags.get("smoke", std::int64_t{0}) != 0;
  const std::string backend = bench::resolve_backend_flag(flags);
  util::Stopwatch total;

  // Subject: the paper's ResNet-18 topology, scaled by the usual flags.
  nn::ResNetConfig net_config;
  net_config.width_multiplier = flags.get("width", smoke ? 0.0625 : 0.25);
  net_config.num_classes = 10;
  util::Rng init{static_cast<std::uint64_t>(
      flags.get("init-seed", std::int64_t{61}))};
  nn::Network net = nn::make_resnet18(net_config, init);

  data::CifarLikeConfig data_config;
  data_config.image_size = flags.get("image-size", smoke ? std::int64_t{8}
                                                         : std::int64_t{16});
  const std::size_t eval_batch =
      flags.get("eval-batch", smoke ? std::size_t{8} : std::size_t{64});
  data_config.samples_per_class = (eval_batch + 9) / 10 + 1;
  util::Rng data_rng{static_cast<std::uint64_t>(
      flags.get("data-seed", std::int64_t{62}))};
  data::Dataset eval =
      data::make_cifar_like(data_config, data_rng).slice(0, eval_batch);

  const std::size_t masks = std::max<std::size_t>(
      1, flags.get("masks", smoke ? std::size_t{3} : std::size_t{24}));
  const std::size_t reps = std::max<std::size_t>(
      1, flags.get("reps", smoke ? std::size_t{1} : std::size_t{3}));
  const double p = flags.get("p", 1e-3);

  const std::size_t depth = net.num_layers();
  std::printf("[setup] kernel backend: %s\n", backend.c_str());
  std::printf("[setup] ResNet-18 (width %.3g, %lldx%lld), %zu layers, "
              "eval batch %zu, %zu masks x %zu reps per layer, p=%.2g%s\n",
              net_config.width_multiplier,
              static_cast<long long>(data_config.image_size),
              static_cast<long long>(data_config.image_size), depth,
              eval_batch, masks, reps, p, smoke ? " [smoke]" : "");

  std::vector<LayerTiming> timings;
  for (std::size_t i = 0; i < depth; ++i) {
    std::vector<nn::ParamRef> refs;
    net.layer(i).collect_params(net.layer_name(i) + ".", refs);
    if (refs.empty()) continue;  // relu/pool/flatten: nothing to corrupt
    std::int64_t layer_params = 0;
    for (const auto& r : refs) layer_params += r.value->numel();

    const bayes::TargetSpec spec =
        bayes::TargetSpec::single_layer(net.layer_name(i));
    bayes::EvalCacheConfig full_config;
    full_config.enable_truncated_replay = false;
    bayes::BayesianFaultNetwork truncated(net, spec,
                                          fault::AvfProfile::uniform(),
                                          eval.inputs, eval.labels);
    bayes::BayesianFaultNetwork full(net, spec, fault::AvfProfile::uniform(),
                                     eval.inputs, eval.labels, full_config);

    util::Rng rng{70 + static_cast<std::uint64_t>(i)};
    std::vector<bayes::FaultMask> batch;
    batch.reserve(masks);
    for (std::size_t m = 0; m < masks; ++m) {
      batch.push_back(truncated.sample_prior_mask(p, rng));
    }

    // Warm-up (page in both code paths), then timed runs.
    full.evaluate_mask(batch.front());
    truncated.evaluate_mask(batch.front());
    truncated.reset_eval_stats();

    util::Stopwatch full_timer;
    for (std::size_t r = 0; r < reps; ++r) {
      for (const auto& mask : batch) full.evaluate_mask(mask);
    }
    const double full_s = full_timer.seconds();

    util::Stopwatch truncated_timer;
    for (std::size_t r = 0; r < reps; ++r) {
      for (const auto& mask : batch) truncated.evaluate_mask(mask);
    }
    const double truncated_s = truncated_timer.seconds();

    LayerTiming t;
    t.layer_index = i;
    t.layer_name = net.layer_name(i);
    t.layer_params = layer_params;
    t.evals = masks * reps;
    t.full_seconds = full_s;
    t.truncated_seconds = truncated_s;
    t.full_throughput = static_cast<double>(t.evals) / std::max(full_s, 1e-9);
    t.truncated_throughput =
        static_cast<double>(t.evals) / std::max(truncated_s, 1e-9);
    t.speedup = full_s / std::max(truncated_s, 1e-9);
    t.layers_saved_pct = truncated.eval_stats().layers_saved_pct();
    timings.push_back(t);
  }

  util::Table table({"layer_idx", "name", "params", "evals",
                     "full_evals_per_s", "trunc_evals_per_s", "speedup",
                     "layers_saved_%"});
  for (const auto& t : timings) {
    table.row()
        .col(t.layer_index)
        .col(t.layer_name)
        .col(static_cast<std::size_t>(t.layer_params))
        .col(t.evals)
        .col(t.full_throughput)
        .col(t.truncated_throughput)
        .col(t.speedup)
        .col(t.layers_saved_pct);
  }
  std::printf("=== perf: full vs truncated mask evaluation, per target layer "
              "===\n\n");
  bench::emit(table, "perf_mask_eval");

  // Aggregate speedups as total-time ratios (robust to per-layer noise).
  double full_all = 0.0, trunc_all = 0.0, full_last = 0.0, trunc_last = 0.0;
  const std::size_t last_third_begin = depth - depth / 3;
  for (const auto& t : timings) {
    full_all += t.full_seconds;
    trunc_all += t.truncated_seconds;
    if (t.layer_index >= last_third_begin) {
      full_last += t.full_seconds;
      trunc_last += t.truncated_seconds;
    }
  }
  const double overall = full_all / std::max(trunc_all, 1e-9);
  const double last_third = full_last / std::max(trunc_last, 1e-9);
  std::printf("overall speedup (all layers): %.2fx\n", overall);
  std::printf("last-third speedup (layers >= %zu): %.2fx%s\n",
              last_third_begin, last_third,
              last_third >= 3.0 ? "  [target >= 3x: PASS]"
                                : (smoke ? "  [smoke: target not checked]"
                                         : "  [target >= 3x: FAIL]"));

  obs::JsonWriter json;
  json.begin_object();
  json.key("config").begin_object();
  json.field("backend", backend);
  json.field("width", net_config.width_multiplier);
  json.field("image_size",
             static_cast<std::int64_t>(data_config.image_size));
  json.field("eval_batch", eval_batch);
  json.field("masks", masks);
  json.field("reps", reps);
  json.field("p", p);
  json.field("depth", depth);
  json.field("smoke", smoke);
  json.end_object();
  json.key("layers").begin_array();
  for (const auto& t : timings) {
    json.begin_object();
    json.field("layer_index", t.layer_index);
    json.field("name", t.layer_name);
    json.field("params", static_cast<std::int64_t>(t.layer_params));
    json.field("evals", t.evals);
    json.field("full_evals_per_s", t.full_throughput);
    json.field("truncated_evals_per_s", t.truncated_throughput);
    json.field("speedup", t.speedup);
    json.field("layers_saved_pct", t.layers_saved_pct);
    json.end_object();
  }
  json.end_array();
  json.key("summary").begin_object();
  json.field("overall_speedup", overall);
  json.field("last_third_speedup", last_third);
  json.field("last_third_begin", last_third_begin);
  json.end_object();
  json.end_object();
  if (!bench::emit_bench_json(json, "mask_eval")) return 1;
  std::printf("[perf_mask_eval done in %.1fs]\n", total.seconds());
  // The smoke run only checks that the pipeline works end to end; the real
  // run enforces the acceptance target.
  return (!smoke && last_third < 3.0) ? 1 : 0;
}
