// Measures the throughput win of truncated forward replay: for each
// parameterized ResNet-18 layer, masks confined to that layer are evaluated
// with the golden-activation cache enabled vs. disabled, and the speedup is
// reported per layer plus aggregated over the last third of the network —
// where truncation replays the fewest layers and the win is largest
// (speedup ~ depth / layers-remaining).
//
// A second race measures batched multi-mask evaluation (DESIGN.md §10): the
// same mask set rides through BayesianFaultNetwork::evaluate_masks, which
// fuses K fault variants into one widened forward, against the sequential
// evaluate_mask loop — per layer, plus a mask-batch (K) sweep. On an AVX2
// host the non-smoke run enforces the >=4x overall batched speedup target.
//
// Training is deliberately skipped: evaluation throughput is independent of
// the weight values, and an untrained network keeps the bench about the
// replay machinery. Results go to BENCH_mask_eval.json (and the usual CSV).
// `--smoke` shrinks everything so ctest can exercise the path in seconds.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bayes/fault_network.h"
#include "common.h"
#include "obs/json.h"
#include "tensor/backend/backend.h"
#include "util/rng.h"

using namespace bdlfi;

namespace {

struct LayerTiming {
  std::size_t layer_index = 0;
  std::string layer_name;
  std::int64_t layer_params = 0;
  std::size_t evals = 0;
  double full_seconds = 0.0;
  double truncated_seconds = 0.0;
  double full_throughput = 0.0;       // evals / s
  double truncated_throughput = 0.0;  // evals / s
  double speedup = 0.0;
  double layers_saved_pct = 0.0;
  // Batched race: seconds per mask-batch size K, same eval count as the
  // sequential (truncated) loop above.
  std::vector<std::size_t> batch_ks;
  std::vector<double> batched_seconds;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const bool smoke = flags.get("smoke", std::int64_t{0}) != 0;
  // The batched-vs-sequential race is a SIMD story: default to the best
  // backend this host supports. An explicit --backend or BDLFI_BACKEND
  // still wins (the CI sanitize script pins the backend per pass).
  tensor::backend::Resolution res =
      tensor::backend::resolve(flags.get("backend", ""));
  if (std::string(res.source) == "default") {
    res = tensor::backend::resolve("auto");
  }
  const std::string backend = bench::require_backend(res);
  util::Stopwatch total;

  // Subject: the paper's ResNet-18 topology, scaled by the usual flags.
  nn::ResNetConfig net_config;
  net_config.width_multiplier = flags.get("width", smoke ? 0.0625 : 0.25);
  net_config.num_classes = 10;
  util::Rng init{static_cast<std::uint64_t>(
      flags.get("init-seed", std::int64_t{61}))};
  nn::Network net = nn::make_resnet18(net_config, init);

  data::CifarLikeConfig data_config;
  data_config.image_size = flags.get("image-size", smoke ? std::int64_t{8}
                                                         : std::int64_t{16});
  const std::size_t eval_batch =
      flags.get("eval-batch", smoke ? std::size_t{8} : std::size_t{64});
  data_config.samples_per_class = (eval_batch + 9) / 10 + 1;
  util::Rng data_rng{static_cast<std::uint64_t>(
      flags.get("data-seed", std::int64_t{62}))};
  data::Dataset eval =
      data::make_cifar_like(data_config, data_rng).slice(0, eval_batch);

  const std::size_t masks = std::max<std::size_t>(
      1, flags.get("masks", smoke ? std::size_t{3} : std::size_t{24}));
  const std::size_t reps = std::max<std::size_t>(
      1, flags.get("reps", smoke ? std::size_t{1} : std::size_t{3}));
  const double p = flags.get("p", 1e-3);

  const std::size_t depth = net.num_layers();
  std::printf("[setup] kernel backend: %s\n", backend.c_str());
  std::printf("[setup] ResNet-18 (width %.3g, %lldx%lld), %zu layers, "
              "eval batch %zu, %zu masks x %zu reps per layer, p=%.2g%s\n",
              net_config.width_multiplier,
              static_cast<long long>(data_config.image_size),
              static_cast<long long>(data_config.image_size), depth,
              eval_batch, masks, reps, p, smoke ? " [smoke]" : "");

  std::vector<LayerTiming> timings;
  for (std::size_t i = 0; i < depth; ++i) {
    std::vector<nn::ParamRef> refs;
    net.layer(i).collect_params(net.layer_name(i) + ".", refs);
    if (refs.empty()) continue;  // relu/pool/flatten: nothing to corrupt
    std::int64_t layer_params = 0;
    for (const auto& r : refs) layer_params += r.value->numel();

    const bayes::TargetSpec spec =
        bayes::TargetSpec::single_layer(net.layer_name(i));
    bayes::EvalCacheConfig full_config;
    full_config.enable_truncated_replay = false;
    bayes::BayesianFaultNetwork truncated(net, spec,
                                          fault::AvfProfile::uniform(),
                                          eval.inputs, eval.labels);
    bayes::BayesianFaultNetwork full(net, spec, fault::AvfProfile::uniform(),
                                     eval.inputs, eval.labels, full_config);

    util::Rng rng{70 + static_cast<std::uint64_t>(i)};
    std::vector<bayes::FaultMask> batch;
    batch.reserve(masks);
    for (std::size_t m = 0; m < masks; ++m) {
      batch.push_back(truncated.sample_prior_mask(p, rng));
    }

    // Warm-up (page in both code paths), then timed runs. The two sides are
    // interleaved per mask with alternating pair order: clock drift (turbo
    // decay under sustained SIMD load, background noise) then cancels
    // instead of systematically favoring whichever side runs first — at
    // stem depth the two paths are the same work, and a one-sided ordering
    // shows up as a spurious few-percent "slowdown".
    full.evaluate_mask(batch.front());
    truncated.evaluate_mask(batch.front());
    truncated.reset_eval_stats();

    double full_s = 0.0, truncated_s = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      for (std::size_t m = 0; m < batch.size(); ++m) {
        for (int side = 0; side < 2; ++side) {
          const bool run_full = (side == 0) == (m % 2 == 0);
          util::Stopwatch timer;
          if (run_full) {
            full.evaluate_mask(batch[m]);
            full_s += timer.seconds();
          } else {
            truncated.evaluate_mask(batch[m]);
            truncated_s += timer.seconds();
          }
        }
      }
    }

    // Batched multi-mask race against the sequential truncated loop above:
    // same masks, same replay cache, K variants fused per widened forward.
    const std::vector<std::size_t> batch_ks =
        smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 8, 24};
    std::vector<double> batched_s(batch_ks.size(), 0.0);
    truncated.evaluate_masks(batch, batch_ks.front());  // warm the fused path
    for (std::size_t ki = 0; ki < batch_ks.size(); ++ki) {
      util::Stopwatch batched_timer;
      for (std::size_t r = 0; r < reps; ++r) {
        truncated.evaluate_masks(batch, batch_ks[ki]);
      }
      batched_s[ki] += batched_timer.seconds();
    }

    LayerTiming t;
    t.layer_index = i;
    t.layer_name = net.layer_name(i);
    t.layer_params = layer_params;
    t.evals = masks * reps;
    t.full_seconds = full_s;
    t.truncated_seconds = truncated_s;
    t.full_throughput = static_cast<double>(t.evals) / std::max(full_s, 1e-9);
    t.truncated_throughput =
        static_cast<double>(t.evals) / std::max(truncated_s, 1e-9);
    t.speedup = full_s / std::max(truncated_s, 1e-9);
    t.layers_saved_pct = truncated.eval_stats().layers_saved_pct();
    t.batch_ks = batch_ks;
    t.batched_seconds = batched_s;
    timings.push_back(t);
  }

  util::Table table({"layer_idx", "name", "params", "evals",
                     "full_evals_per_s", "trunc_evals_per_s", "speedup",
                     "layers_saved_%"});
  for (const auto& t : timings) {
    table.row()
        .col(t.layer_index)
        .col(t.layer_name)
        .col(static_cast<std::size_t>(t.layer_params))
        .col(t.evals)
        .col(t.full_throughput)
        .col(t.truncated_throughput)
        .col(t.speedup)
        .col(t.layers_saved_pct);
  }
  std::printf("=== perf: full vs truncated mask evaluation, per target layer "
              "===\n\n");
  bench::emit(table, "perf_mask_eval");

  // Batched race table: sequential truncated loop vs evaluate_masks at the
  // default mask batch (8 non-smoke; the only swept K in smoke).
  const std::vector<std::size_t>& ks = timings.front().batch_ks;
  std::size_t default_ki = 0;
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    if (ks[ki] == 8) default_ki = ki;
  }
  util::Table mm_table({"layer_idx", "name", "seq_masks_per_s",
                        "batched_masks_per_s", "speedup"});
  for (const auto& t : timings) {
    const double bs = t.batched_seconds[default_ki];
    mm_table.row()
        .col(t.layer_index)
        .col(t.layer_name)
        .col(static_cast<double>(t.evals) / std::max(t.truncated_seconds, 1e-9))
        .col(static_cast<double>(t.evals) / std::max(bs, 1e-9))
        .col(t.truncated_seconds / std::max(bs, 1e-9));
  }
  std::printf("=== perf: batched (K=%zu) vs sequential mask evaluation "
              "===\n\n", ks[default_ki]);
  bench::emit(mm_table, "perf_mask_eval_batched");

  // Aggregate speedups as total-time ratios (robust to per-layer noise).
  double full_all = 0.0, trunc_all = 0.0, full_last = 0.0, trunc_last = 0.0;
  std::vector<double> batched_all(ks.size(), 0.0);
  const std::size_t last_third_begin = depth - depth / 3;
  for (const auto& t : timings) {
    full_all += t.full_seconds;
    trunc_all += t.truncated_seconds;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      batched_all[ki] += t.batched_seconds[ki];
    }
    if (t.layer_index >= last_third_begin) {
      full_last += t.full_seconds;
      trunc_last += t.truncated_seconds;
    }
  }
  const double overall = full_all / std::max(trunc_all, 1e-9);
  const double last_third = full_last / std::max(trunc_last, 1e-9);
  // The 3x truncated-replay target is calibrated for the scalar backend. On
  // AVX2 the late layers' narrow GEMM panels leave the SIMD lanes starved, so
  // replaying them is relatively costlier and the sequential win shrinks —
  // which is precisely what the batched gate below measures the fix for.
  const bool gate_seq = !smoke && backend == "scalar";
  std::printf("overall speedup (all layers): %.2fx\n", overall);
  std::printf("last-third speedup (layers >= %zu): %.2fx%s\n",
              last_third_begin, last_third,
              gate_seq ? (last_third >= 3.0 ? "  [target >= 3x: PASS]"
                                            : "  [target >= 3x: FAIL]")
                       : "  [target checked on scalar backend only]");
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    std::printf("batched speedup vs sequential (K=%zu): %.2fx\n", ks[ki],
                trunc_all / std::max(batched_all[ki], 1e-9));
  }
  // The >=4x batched target assumes the SIMD backend: the fused panels exist
  // to feed wide FMA lanes, so a scalar-only host only reports the ratio.
  const bool gate_batched = !smoke && backend == "avx2";
  const double batched_overall =
      trunc_all / std::max(batched_all[default_ki], 1e-9);
  if (gate_batched) {
    std::printf("batched target (K=%zu, avx2): %.2fx  [target >= 4x: %s]\n",
                ks[default_ki], batched_overall,
                batched_overall >= 4.0 ? "PASS" : "FAIL");
  } else if (!smoke) {
    std::printf("batched target: not enforced on backend '%s'\n",
                backend.c_str());
  }

  // Fused eval race: the same masks evaluated sequentially with eval-mode
  // conv+BN+ReLU fusion off (the bit-exact default) vs on (--fuse). Both
  // sides run full, non-truncated evals targeting the first parameterized
  // layer so every variant traverses the whole network, fused blocks
  // included. This quantifies what --fuse buys at the network level; the
  // per-kernel >=1.3x AVX2 gate lives in perf_kernels.
  const bayes::TargetSpec fusion_spec =
      bayes::TargetSpec::single_layer(timings.front().layer_name);
  bayes::EvalCacheConfig no_replay;
  no_replay.enable_truncated_replay = false;
  net.set_eval_fusion(false);
  bayes::BayesianFaultNetwork seq_plain(net, fusion_spec,
                                        fault::AvfProfile::uniform(),
                                        eval.inputs, eval.labels, no_replay);
  net.set_eval_fusion(true);
  bayes::BayesianFaultNetwork seq_fused(net, fusion_spec,
                                        fault::AvfProfile::uniform(),
                                        eval.inputs, eval.labels, no_replay);
  net.set_eval_fusion(false);

  util::Rng fusion_rng{170};
  std::vector<bayes::FaultMask> fusion_masks;
  fusion_masks.reserve(masks);
  for (std::size_t m = 0; m < masks; ++m) {
    fusion_masks.push_back(seq_plain.sample_prior_mask(p, fusion_rng));
  }
  // Warm both plans, then interleave sides per mask (same drift-cancelling
  // scheme as the truncated race above).
  seq_plain.evaluate_mask(fusion_masks.front());
  seq_fused.evaluate_mask(fusion_masks.front());
  double seq_plain_s = 0.0, seq_fused_s = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    for (std::size_t m = 0; m < fusion_masks.size(); ++m) {
      for (int side = 0; side < 2; ++side) {
        const bool run_plain = (side == 0) == (m % 2 == 0);
        util::Stopwatch timer;
        if (run_plain) {
          seq_plain.evaluate_mask(fusion_masks[m]);
          seq_plain_s += timer.seconds();
        } else {
          seq_fused.evaluate_mask(fusion_masks[m]);
          seq_fused_s += timer.seconds();
        }
      }
    }
  }
  const double fusion_evals = static_cast<double>(masks * reps);
  const double fusion_speedup = seq_plain_s / std::max(seq_fused_s, 1e-9);
  std::printf("fused eval speedup (--fuse vs default, full evals): %.2fx "
              "(%.1f -> %.1f masks/s)\n",
              fusion_speedup, fusion_evals / std::max(seq_plain_s, 1e-9),
              fusion_evals / std::max(seq_fused_s, 1e-9));

  obs::JsonWriter json;
  json.begin_object();
  json.key("config").begin_object();
  json.field("backend", backend);
  json.field("width", net_config.width_multiplier);
  json.field("image_size",
             static_cast<std::int64_t>(data_config.image_size));
  json.field("eval_batch", eval_batch);
  json.field("masks", masks);
  json.field("reps", reps);
  json.field("p", p);
  json.field("depth", depth);
  json.field("smoke", smoke);
  json.end_object();
  json.key("layers").begin_array();
  for (const auto& t : timings) {
    json.begin_object();
    json.field("layer_index", t.layer_index);
    json.field("name", t.layer_name);
    json.field("params", static_cast<std::int64_t>(t.layer_params));
    json.field("evals", t.evals);
    json.field("full_evals_per_s", t.full_throughput);
    json.field("truncated_evals_per_s", t.truncated_throughput);
    json.field("speedup", t.speedup);
    json.field("layers_saved_pct", t.layers_saved_pct);
    json.end_object();
  }
  json.end_array();
  json.key("multi_mask").begin_object();
  json.field("mask_batch_default", ks[default_ki]);
  json.key("groups").begin_array();
  for (const auto& t : timings) {
    json.begin_object();
    json.field("layer_index", t.layer_index);
    json.field("name", t.layer_name);
    json.field("seq_s", t.truncated_seconds);
    json.field("batched_s", t.batched_seconds[default_ki]);
    json.field("speedup",
               t.truncated_seconds /
                   std::max(t.batched_seconds[default_ki], 1e-9));
    json.end_object();
  }
  json.end_array();
  json.key("k_sweep").begin_array();
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    json.begin_object();
    json.field("k", ks[ki]);
    json.field("batched_s", batched_all[ki]);
    json.field("speedup", trunc_all / std::max(batched_all[ki], 1e-9));
    json.end_object();
  }
  json.end_array();
  json.key("summary").begin_object();
  json.field("overall_speedup", batched_overall);
  json.field("gate_enforced", gate_batched);
  json.end_object();
  json.end_object();
  json.key("fusion").begin_object();
  json.field("masks_per_rep", masks);
  json.field("reps", reps);
  json.field("unfused_s", seq_plain_s);
  json.field("fused_s", seq_fused_s);
  json.field("speedup", fusion_speedup);
  json.end_object();
  json.key("summary").begin_object();
  json.field("overall_speedup", overall);
  json.field("last_third_speedup", last_third);
  json.field("last_third_begin", last_third_begin);
  json.end_object();
  json.end_object();
  if (!bench::emit_bench_json(json, "mask_eval")) return 1;
  std::printf("[perf_mask_eval done in %.1fs]\n", total.seconds());
  // The smoke run only checks that the pipeline works end to end; the real
  // run enforces the acceptance targets (truncated-replay and, on the SIMD
  // backend, the batched multi-mask race).
  if (gate_seq && last_third < 3.0) return 1;
  if (gate_batched && batched_overall < 4.0) return 1;
  return 0;
}
