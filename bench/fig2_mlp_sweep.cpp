// Reproduces Fig. 2 of the paper: classification error (%) of the MLP as a
// function of per-bit flip probability p, swept over [1e-5, 1e-1] with the
// golden run as reference line.
//
// Expected shape (paper §III "Scope for trading off reliability and
// performance"): a flat regime at small p where error stays at the golden
// level, then a knee, then a steep rise — the two regimes the paper argues
// define the optimal performance/reliability operating point.
#include "common.h"
#include "inject/campaign.h"
#include "util/ascii_plot.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;
  bench::ObsSession obs_session(flags, "fig2");

  bench::MlpSetup setup = bench::make_trained_moons_mlp(flags);

  bayes::BayesianFaultNetwork bfn(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  mcmc::RunnerConfig runner;
  runner.num_chains = flags.get("chains", std::size_t{3});
  runner.mh.samples = flags.get("samples", std::size_t{150});
  runner.mh.burn_in = flags.get("burn-in", std::size_t{50});
  runner.mh.thin = flags.get("thin", std::size_t{5});
  runner.seed = 31;
  const bench::CampaignFlags campaign =
      bench::parse_campaign_flags(flags, obs_session, runner);
  std::printf("[setup] kernel backend: %s\n", campaign.backend.c_str());

  const auto ps =
      inject::log_space(1e-5, 1e-1, flags.get("points", std::size_t{9}));
  const inject::SweepResult sweep = inject::run_bdlfi_sweep(bfn, ps, runner);

  util::Table table({"p", "mean_error_%", "q05", "q50", "q95", "deviation_%",
                     "mean_flips", "det_cov_%", "sdc_%", "accept", "rhat",
                     "ess", "samples", "evals", "truncated", "layers_saved_%",
                     "quar"});
  std::size_t evals = 0, truncated = 0, quarantined = 0;
  for (const auto& pt : sweep.points) {
    table.row()
        .col(pt.p)
        .col(pt.mean_error)
        .col(pt.q05)
        .col(pt.q50)
        .col(pt.q95)
        .col(pt.mean_deviation)
        .col(pt.mean_flips)
        .col(100.0 * pt.stats.detection_coverage)
        .col(100.0 * pt.stats.sdc_rate)
        .col(pt.stats.acceptance_rate)
        .col(pt.stats.rhat)
        .col(pt.stats.ess)
        .col(pt.stats.samples)
        .col(pt.stats.network_evals)
        .col(pt.stats.truncated_evals)
        .col(pt.stats.layers_saved_pct)
        .col(pt.stats.chains_quarantined);
    evals += pt.stats.network_evals;
    truncated += pt.stats.truncated_evals;
    quarantined += pt.stats.chains_quarantined;
  }
  std::printf("=== Fig. 2: MLP classification error vs flip probability ===\n");
  std::printf("golden run error: %.2f%%\n\n", sweep.golden_error);
  bench::emit(table, "fig2_mlp_sweep");
  if (quarantined > 0) {
    std::printf("DEGRADED: %zu chain(s) quarantined across the sweep; "
                "statistics cover surviving chains only\n", quarantined);
  }
  if (sweep.interrupted) {
    std::printf("INTERRUPTED: sweep stopped early; the table is a valid "
                "prefix of the grid\n");
  }
  std::printf("stats: %zu/%zu mask evals truncated via the golden activation "
              "cache\n", truncated, evals);

  util::Series bdlfi_series{"BDLFI mean error", {}, {}, '*'};
  util::Series golden{"golden run", {}, {}, '-'};
  for (const auto& pt : sweep.points) {
    bdlfi_series.xs.push_back(pt.p);
    bdlfi_series.ys.push_back(pt.mean_error);
    golden.xs.push_back(pt.p);
    golden.ys.push_back(sweep.golden_error);
  }
  util::PlotOptions opt;
  opt.log_x = true;
  opt.title = "Fig. 2 (reproduced): MLP error vs flip probability";
  opt.x_label = "flip probability p";
  opt.y_label = "classification error (%)";
  std::printf("%s\n", util::render_plot({bdlfi_series, golden}, opt).c_str());

  // Regime summary: knee = first p whose error exceeds golden by >2 points.
  double knee = 0.0;
  for (const auto& pt : sweep.points) {
    if (pt.mean_error > sweep.golden_error + 2.0) {
      knee = pt.p;
      break;
    }
  }
  std::printf("flat regime ends near p ~ %.3g (paper: two clear regimes; "
              "knee is the optimal reliability/performance trade-off)\n",
              knee);
  obs_session.finish();
  std::printf("[fig2 done in %.1fs]\n", total.seconds());
  return 0;
}
