// Reproduces the paper's §I claim that BDLFI can subsume traditional random
// FI: both estimate the same fault-induced error distribution, so their
// estimates must agree — and BDLFI adds diagnostics and algorithmic structure
// (analytic prior moves that cost no forward pass).
//
// Table 1: agreement — BDLFI vs random FI mean error across p, with joint
//          Monte Carlo uncertainty.
// Table 2: sample efficiency — absolute estimate error vs a large-budget
//          reference, as a function of forward-pass budget, for both methods.
#include <cmath>

#include "common.h"
#include "inject/campaign.h"
#include "inject/random_fi.h"
#include "mcmc/runner.h"
#include "util/stats.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  util::Stopwatch total;

  bench::MlpSetup setup = bench::make_trained_moons_mlp(flags);
  bayes::BayesianFaultNetwork bfn(
      setup.net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), setup.test.inputs, setup.test.labels);

  std::printf("=== BDLFI vs traditional random FI ===\n\n");

  // --- Agreement across p ----------------------------------------------------
  // Mean agreement AND distributional agreement: a two-sample KS test of the
  // BDLFI error samples against the random-FI samples. High p-values mean
  // the two methods measure the same *distribution*, not just the same mean.
  util::Table agreement({"p", "bdlfi_mean_%", "bdlfi_rhat", "random_fi_mean_%",
                         "fi_ci95", "abs_diff", "ks_stat", "ks_pvalue"});
  for (double p : {1e-4, 1e-3, 1e-2}) {
    mcmc::RunnerConfig runner;
    runner.num_chains = 4;
    runner.mh.samples = flags.get("samples", std::size_t{150});
    runner.mh.burn_in = 50;
    runner.mh.thin = 5;  // decorrelate retained samples for the KS test
    runner.seed = 81;
    mcmc::TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
      return std::make_unique<bayes::PriorTarget>(net, p);
    };
    const auto campaign = mcmc::run_chains(bfn, factory, p, runner);
    std::vector<double> bdlfi_samples;
    for (const auto& chain : campaign.chains) {
      bdlfi_samples.insert(bdlfi_samples.end(), chain.error_samples.begin(),
                           chain.error_samples.end());
    }

    inject::RandomFiConfig fi_config;
    fi_config.injections = flags.get("injections", std::size_t{600});
    fi_config.seed = 82;
    const auto fi = inject::run_random_fi(bfn, p, fi_config);

    const auto ks = util::ks_two_sample(bdlfi_samples, fi.error_samples);
    agreement.row()
        .col(p)
        .col(campaign.mean_error)
        .col(campaign.diagnostics.rhat)
        .col(fi.mean_error)
        .col(fi.ci95_halfwidth)
        .col(std::abs(campaign.mean_error - fi.mean_error))
        .col(ks.statistic)
        .col(ks.p_value);
  }
  bench::emit(agreement, "tab_bdlfi_vs_random_agreement");

  // --- Sample efficiency ------------------------------------------------------
  const double p = flags.get("p", 1e-3);
  inject::RandomFiConfig ref_config;
  ref_config.injections = flags.get("reference", std::size_t{4000});
  ref_config.seed = 83;
  const auto reference = inject::run_random_fi(bfn, p, ref_config);
  std::printf("reference estimate at p=%.2g (%zu injections): %.3f%%\n\n", p,
              reference.injections, reference.mean_error);

  util::Table efficiency({"forward_passes", "bdlfi_abs_err", "random_abs_err"});
  for (std::size_t budget : {100UL, 300UL, 1000UL}) {
    mcmc::RunnerConfig runner;
    runner.num_chains = 4;
    runner.mh.samples = budget / 4;
    runner.mh.burn_in = 10;
    runner.seed = 84 + budget;
    const auto sweep = inject::run_bdlfi_sweep(bfn, {p}, runner);

    inject::RandomFiConfig fi_config;
    fi_config.injections = budget;
    fi_config.seed = 85 + budget;
    const auto fi = inject::run_random_fi(bfn, p, fi_config);

    efficiency.row()
        .col(budget)
        .col(std::abs(sweep.points[0].mean_error - reference.mean_error))
        .col(std::abs(fi.mean_error - reference.mean_error));
  }
  bench::emit(efficiency, "tab_bdlfi_vs_random_efficiency");
  std::printf("both estimators converge to the same value — BDLFI subsumes "
              "the random-FI measurement while adding completeness "
              "diagnostics (see tab_completeness).\n");
  std::printf("[tab_bdlfi_vs_random done in %.1fs]\n", total.seconds());
  return 0;
}
