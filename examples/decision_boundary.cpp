// Decision-boundary analysis (the paper's Fig. 1-③ and the "faults hurt most
// near the boundary" finding): renders the golden decision boundary of a 2-D
// classifier next to the map of fault-induced misclassification probability,
// then uses that map the way §III suggests — to flag the input region that
// needs protection.
//
// Run: ./decision_boundary [p]     (default p = 2e-3)
#include <cstdio>
#include <cstdlib>

#include "data/toy2d.h"
#include "inject/boundary.h"
#include "nn/builders.h"
#include "train/trainer.h"
#include "util/ascii_plot.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  const double p = argc > 1 ? std::atof(argv[1]) : 2e-3;

  util::Rng data_rng{10};
  data::Dataset all = data::make_rings(800, 0.05, data_rng);
  data::Split split = data::split_dataset(all, 0.8, data_rng);

  util::Rng init_rng{11};
  nn::Network net = nn::make_mlp({2, 24, 24, 2}, init_rng);
  train::TrainConfig config;
  config.epochs = 60;
  config.lr = 0.05;
  config.seed = 12;
  const auto trained = train::fit(net, split.train, split.test, config);
  std::printf("rings classifier: test accuracy %.1f%%\n\n",
              100.0 * trained.final_test_accuracy);

  bayes::BayesianFaultNetwork bfn(
      net, bayes::TargetSpec::all_parameters(), fault::AvfProfile::uniform(),
      split.test.inputs, split.test.labels);

  inject::BoundaryConfig boundary;
  boundary.grid = {-1.5, 1.5, -1.5, 1.5, 56, 24};
  boundary.p = p;
  boundary.masks = 200;
  boundary.seed = 13;
  const inject::BoundaryMap map = inject::compute_boundary_map(bfn, boundary);

  std::vector<double> classes(map.golden_prediction.begin(),
                              map.golden_prediction.end());
  std::printf("%s\n",
              util::render_heatmap(classes, boundary.grid.ny,
                                   boundary.grid.nx, 0, 1,
                                   "golden decision regions (ring problem):")
                  .c_str());
  std::printf("%s\n",
              util::render_heatmap(map.log10_probability, boundary.grid.ny,
                                   boundary.grid.nx, 0, 0,
                                   "log10 P(fault flips the prediction):")
                  .c_str());

  // §III application: threshold the map to find the region needing extra
  // protection/verification.
  const double threshold = 0.25;
  std::size_t flagged = 0;
  for (double v : map.deviation_probability) {
    if (v >= threshold) ++flagged;
  }
  std::printf("%.1f%% of the input plane exceeds P(deviation) >= %.2f at "
              "p = %.0e — this is the region the paper argues needs "
              "reliability features in safety-critical deployments.\n",
              100.0 * static_cast<double>(flagged) /
                  static_cast<double>(map.deviation_probability.size()),
              threshold, p);
  return 0;
}
