// BDLFI on a differentiable program that is not an image classifier.
//
// §I of the paper: "BFI can be used to inject faults into programs other
// than neural networks, with the only assumption being that of end-to-end
// differentiability." This example builds a differentiable DSP program — a
// trainable FIR filterbank (1-D convolutions), rectification, energy pooling
// and a linear decision stage, i.e. a classic matched-filter detector — and
// runs the identical BDLFI machinery over its coefficients:
//
//   waveform → FIR filterbank → |·| (rectifier) → mean energy → linear score
//
// The fault question is the DSP engineer's: which filter taps can a bit
// upset corrupt before the detector misfires?
//
// Run: ./differentiable_program [p]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bayes/critical.h"
#include "bayes/targets.h"
#include "data/toy2d.h"
#include "inject/campaign.h"
#include "mcmc/runner.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "train/trainer.h"

using namespace bdlfi;

namespace {

// The FIR detector as a Network: every stage is differentiable, so the
// whole program trains end-to-end and BDLFI applies unmodified.
nn::Network make_fir_detector(std::int64_t taps, std::int64_t filters,
                              util::Rng& rng) {
  nn::Network net;
  // 1×taps kernels over [N,1,1,L]: a bank of FIR filters ("same" padding
  // along the time axis only).
  auto bank = std::make_unique<nn::Conv2d>(1, filters, /*kernel_h=*/1, taps,
                                           /*stride=*/1, /*pad_h=*/0,
                                           /*pad_w=*/taps / 2);
  bank->init_he(rng);
  net.add("firbank", std::move(bank));
  net.add("rectify", std::make_unique<nn::ReLU>());
  net.add("energy", std::make_unique<nn::GlobalAvgPool>());
  auto decide = std::make_unique<nn::Dense>(filters, 3);
  decide->init_he(rng);
  net.add("decide", std::move(decide));
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  const double p = argc > 1 ? std::atof(argv[1]) : 1e-3;

  util::Rng data_rng{70};
  data::Dataset all = data::make_waveforms(900, 64, 0.15, data_rng);
  data::Split split = data::split_dataset(all, 0.8, data_rng);

  util::Rng init{71};
  nn::Network program = make_fir_detector(9, 12, init);
  train::TrainConfig config;
  config.epochs = 30;
  config.batch_size = 32;
  config.lr = 0.05;
  config.seed = 72;
  const auto trained =
      train::fit(program, split.train, split.test, config);
  std::printf("FIR waveform detector (differentiable DSP program): test "
              "accuracy %.1f%% over sine/square/sawtooth\n\n",
              100.0 * trained.final_test_accuracy);

  // The identical BDLFI pipeline, no NN-specific assumptions used.
  bayes::BayesianFaultNetwork bfn(
      program, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), split.test.inputs, split.test.labels);
  std::printf("fault space: %lld coefficient bits\n",
              static_cast<long long>(bfn.space().total_bits()));

  mcmc::RunnerConfig runner;
  runner.num_chains = 4;
  runner.mh.samples = 120;
  runner.mh.burn_in = 40;
  runner.mh.thin = 5;
  runner.seed = 73;
  mcmc::TargetFactory prior = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };
  const auto campaign = mcmc::run_chains(bfn, prior, p, runner);
  std::printf("at p = %.0e: detector error %.2f%% (golden %.2f%%), "
              "rhat %.3f\n",
              p, campaign.mean_error, bfn.golden_error(),
              campaign.diagnostics.rhat);

  // Stage-level sensitivity: which program stage is fragile?
  const auto stages = inject::run_layer_campaign(
      program, split.test.inputs, split.test.labels,
      fault::AvfProfile::uniform(), p, runner, /*expected_flips=*/4.0);
  std::printf("\nper-stage error at a fixed 4-flip dose:\n");
  for (const auto& stage : stages) {
    std::printf("  %-8s (%5lld coeffs): %6.2f%%\n", stage.layer_name.c_str(),
                static_cast<long long>(stage.layer_params),
                stage.mean_error);
  }

  bayes::CriticalBitConfig crit;
  crit.target_deviation = 50.0;
  crit.seed = 74;
  const auto worst = bayes::find_critical_bits(bfn, crit);
  std::printf("\nadversarial worst case: %zu coefficient bit flip(s) "
              "derail %.0f%% of detections\n",
              worst.mask.num_flips(), worst.achieved_deviation);
  std::printf("the only property BDLFI used is end-to-end "
              "differentiability — the program never had to be a neural "
              "network.\n");
  return 0;
}
