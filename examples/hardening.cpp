// Selective hardening guided by BDLFI:
//
// §III of the paper suggests using the fault-error analysis to decide what
// "needs more protection". This example closes that loop for weights: rank
// every parameter element by first-order sensitivity (|grad × weight| — the
// differentiability the method already assumes), protect the top-k%, and
// measure how the fault-error curve shifts.
//
// Run: ./hardening [p] [protect_fraction]     (defaults 3e-3, 0.2)
#include <cstdio>
#include <cstdlib>

#include "bayes/sensitivity.h"
#include "data/toy2d.h"
#include "inject/random_fi.h"
#include "nn/builders.h"
#include "train/trainer.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  const double p = argc > 1 ? std::atof(argv[1]) : 3e-3;
  const double fraction = argc > 2 ? std::atof(argv[2]) : 0.2;

  util::Rng data_rng{40};
  data::Dataset all = data::make_two_moons(600, 0.08, data_rng);
  data::Split split = data::split_dataset(all, 0.8, data_rng);
  util::Rng init{41};
  nn::Network net = nn::make_mlp({2, 16, 32, 2}, init);
  train::TrainConfig config;
  config.epochs = 40;
  config.lr = 0.05;
  config.seed = 42;
  train::fit(net, split.train, split.test, config);

  // Sensitivity ranking over all parameters.
  const auto spec = bayes::TargetSpec::all_parameters();
  const auto report = bayes::compute_sensitivity(
      net, spec, split.test.inputs, split.test.labels,
      bayes::SensitivityScore::kWeightOnly);
  const auto protected_sites = report.top_fraction(fraction);
  std::printf("ranked %zu parameter elements; protecting top %.0f%% "
              "(%zu sites)\n\n",
              report.ranking.size(), 100.0 * fraction,
              protected_sites.size());

  bayes::BayesianFaultNetwork plain(net, spec, fault::AvfProfile::uniform(),
                                    split.test.inputs, split.test.labels);
  bayes::BayesianFaultNetwork hardened(net, spec,
                                       fault::AvfProfile::uniform(),
                                       split.test.inputs, split.test.labels);
  hardened.mutable_space().protect_elements(protected_sites);

  // Random-sites control: same protection budget, arbitrary placement.
  bayes::BayesianFaultNetwork random_protected(
      net, spec, fault::AvfProfile::uniform(), split.test.inputs,
      split.test.labels);
  {
    util::Rng pick{43};
    std::vector<std::int64_t> sites;
    while (sites.size() < protected_sites.size()) {
      sites.push_back(static_cast<std::int64_t>(
          pick.below(static_cast<std::uint64_t>(
              random_protected.space().total_elements()))));
    }
    random_protected.mutable_space().protect_elements(std::move(sites));
  }

  std::printf("%-28s %-12s %-10s %-10s\n", "configuration", "error@p(%)",
              "SDC(%)", "detected(%)");
  inject::RandomFiConfig fi;
  fi.injections = 800;
  fi.seed = 44;
  for (auto& [label, bfn] :
       {std::pair<const char*, bayes::BayesianFaultNetwork*>{
            "unprotected", &plain},
        {"top-sensitivity protected", &hardened},
        {"random-sites protected", &random_protected}}) {
    const auto result = inject::run_random_fi(*bfn, p, fi);
    std::printf("%-28s %-12.2f %-10.2f %-10.2f\n", label, result.mean_error,
                result.mean_sdc, result.mean_detected);
  }
  std::printf("\nsensitivity-guided protection beats a random budget of the "
              "same size — the gradient ranking (which BDLFI gets for free "
              "from differentiability) identifies the sites worth ECC.\n");
  return 0;
}
