// Mission reliability analysis in physical units.
//
// Campaign sweeps use a dimensionless per-bit flip probability; a safety
// engineer has a FIT rate (upsets / 10^9 h / Mb, from the memory datasheet
// or beam testing) and a mission profile. This example walks the full
// production question end-to-end:
//
//   "Our perception MLP runs on SRAM rated R FIT/Mb, unscrubbed for H hours.
//    What is the probability that accumulated soft errors silently corrupt
//    a prediction, and is that within budget?"
//
// Run: ./mission_analysis [fit_per_mb] [mission_hours]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bayes/targets.h"
#include "data/toy2d.h"
#include "fault/fit.h"
#include "mcmc/runner.h"
#include "nn/builders.h"
#include "train/trainer.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  // Defaults model a space-grade environment (unshielded orbital SRAM) over
  // a three-year mission; terrestrial rates (~600 FIT/Mb) with daily
  // scrubbing land deep in the benign regime for a model this small.
  const double fit_per_mb = argc > 1 ? std::atof(argv[1]) : 5e4;
  const double mission_hours = argc > 2 ? std::atof(argv[2]) : 26280.0;

  util::Rng data_rng{60};
  data::Dataset all = data::make_two_moons(600, 0.08, data_rng);
  data::Split split = data::split_dataset(all, 0.8, data_rng);
  util::Rng init{61};
  nn::Network net = nn::make_mlp({2, 64, 128, 2}, init);
  train::TrainConfig config;
  config.epochs = 40;
  config.lr = 0.05;
  config.seed = 62;
  train::fit(net, split.train, split.test, config);

  const std::int64_t model_bits = net.num_params() * 32;
  const double p =
      fault::fit_to_bit_probability(fit_per_mb, mission_hours);
  const double expected_upsets =
      fault::expected_model_upsets(fit_per_mb, mission_hours, model_bits);

  std::printf("mission profile:\n");
  std::printf("  memory rating:        %.0f FIT/Mb\n", fit_per_mb);
  std::printf("  unscrubbed exposure:  %.0f hours\n", mission_hours);
  std::printf("  model footprint:      %lld params (%lld bits)\n",
              static_cast<long long>(net.num_params()),
              static_cast<long long>(model_bits));
  std::printf("  per-bit flip prob:    p = %.3e\n", p);
  std::printf("  expected upsets:      %.3f per mission\n", expected_upsets);
  std::printf("  one upset every:      %.0f hours\n\n",
              fault::hours_to_one_upset(fit_per_mb, model_bits));

  if (p <= 0.0 || p >= 1.0) {
    std::printf("degenerate p; adjust the mission profile\n");
    return 1;
  }

  bayes::BayesianFaultNetwork bfn(
      net, bayes::TargetSpec::all_parameters(), fault::AvfProfile::uniform(),
      split.test.inputs, split.test.labels);

  mcmc::RunnerConfig runner;
  runner.num_chains = 4;
  runner.mh.samples = 200;
  runner.mh.burn_in = 50;
  runner.mh.thin = 10;
  runner.seed = 63;
  mcmc::TargetFactory prior = [p](bayes::BayesianFaultNetwork& chain_net) {
    return std::make_unique<bayes::PriorTarget>(chain_net, p);
  };
  const auto result = mcmc::run_chains(bfn, prior, p, runner);

  // Per-mission SDC probability: fraction of sampled fault states deviating
  // on at least one evaluation input.
  std::size_t any_dev = 0, total = 0;
  for (const auto& chain : result.chains) {
    for (double d : chain.deviation_samples) {
      if (d > 0.0) ++any_dev;
      ++total;
    }
  }
  const double mission_sdc =
      static_cast<double>(any_dev) / static_cast<double>(total);

  std::printf("BDLFI campaign at mission-equivalent p (rhat %.3f, %zu "
              "samples):\n",
              result.diagnostics.rhat, result.total_samples);
  std::printf("  golden error:                   %.2f%%\n",
              bfn.golden_error());
  std::printf("  mean error under mission dose:  %.2f%% (q95 %.2f%%)\n",
              result.mean_error, result.q95);
  std::printf("  mean prediction deviation:      %.3f%%\n",
              result.mean_deviation);
  std::printf("  P(>=1 silent corruption over the mission): %.1f%%\n\n",
              100.0 * mission_sdc);
  std::printf("scrubbing resets the accumulation window: rerun with the "
              "scrub interval as the exposure (e.g. ./mission_analysis "
              "%.0f 24) to size a scrubbing policy against an SDC budget.\n",
              fit_per_mb);
  return 0;
}
