// Completeness monitoring: run a BDLFI campaign in rounds and stop the moment
// the MCMC mixing diagnostics say "further injections will not change the
// measured hypothesis" — the paper's §I advantage over traditional FI, which
// can only ever report how many injections were performed.
//
// The monitoring is live: an obs::CampaignReporter subscribes to the runner's
// round hook and prints each row the moment the round finishes (plus campaign
// health on stderr), rather than dumping the trajectory after the fact — the
// point of a completeness monitor is watching the estimate stabilize.
//
// Also demonstrates the conditioned posterior: tilting the chain toward
// error-causing fault patterns (DeviationTemperedTarget) to inspect *which*
// faults actually break the network.
//
// Run: ./completeness_monitor [p]    (default 1e-3)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bayes/targets.h"
#include "data/toy2d.h"
#include "fault/bits.h"
#include "mcmc/mh.h"
#include "mcmc/runner.h"
#include "nn/builders.h"
#include "obs/reporter.h"
#include "train/trainer.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  const double p = argc > 1 ? std::atof(argv[1]) : 1e-3;

  util::Rng data_rng{30};
  data::Dataset all = data::make_two_moons(500, 0.08, data_rng);
  data::Split split = data::split_dataset(all, 0.8, data_rng);
  util::Rng init_rng{31};
  nn::Network net = nn::make_mlp({2, 16, 32, 2}, init_rng);
  train::TrainConfig config;
  config.epochs = 40;
  config.lr = 0.05;
  config.seed = 32;
  train::fit(net, split.train, split.test, config);

  bayes::BayesianFaultNetwork bfn(
      net, bayes::TargetSpec::all_parameters(), fault::AvfProfile::uniform(),
      split.test.inputs, split.test.labels);

  // Round-based campaign with the completeness stopper.
  mcmc::RunnerConfig runner;
  runner.num_chains = 4;
  runner.mh.samples = 60;
  runner.mh.burn_in = 20;
  runner.seed = 33;
  mcmc::TargetFactory prior = [p](bayes::BayesianFaultNetwork& chain_net) {
    return std::make_unique<bayes::PriorTarget>(chain_net, p);
  };
  mcmc::CompletenessCriterion criterion;  // rhat <= 1.05, mean stable to 5%

  // Live monitoring: the reporter receives every round event as it happens;
  // our subscriber renders the trajectory row immediately.
  obs::CampaignReporter::Options monitor_options;
  monitor_options.label = "completeness";
  obs::CampaignReporter reporter(monitor_options);
  reporter.on_round([](const obs::RoundEvent& r) {
    std::printf("  %-6zu %-10zu %-12.3f %-8.4f %-8.0f %-8.2f\n", r.round,
                r.cumulative_samples, r.mean_error, r.rhat, r.ess,
                r.acceptance_rate);
    std::fflush(stdout);
  });
  runner.round_hook = reporter.hook();

  std::printf("campaign trajectory at p = %.0e (live, one row per round):\n",
              p);
  std::printf("  %-6s %-10s %-12s %-8s %-8s %-8s\n", "round", "samples",
              "mean_error%", "rhat", "ESS", "accept");
  reporter.begin(p, runner.num_chains, runner.mh.samples);
  const auto result =
      mcmc::run_until_complete(bfn, prior, p, runner, criterion);
  reporter.end(result.converged, result.rounds);
  std::printf("=> %s after %zu rounds (%zu samples, %zu forward passes)\n\n",
              result.converged ? "COMPLETE" : "NOT CONVERGED", result.rounds,
              result.final_result.total_samples,
              result.final_result.total_network_evals);

  // Conditioned inference: which faults break the network? Sample from
  // prior × exp(λ·deviation) and inspect the bit positions of the masks the
  // chain visits.
  std::printf("posterior over error-causing fault patterns (tempered, "
              "lambda = 40):\n");
  auto replica = bfn.replicate();
  bayes::DeviationTemperedTarget tempered(*replica, p, 40.0);
  mcmc::MhConfig mh;
  mh.samples = 80;
  mh.burn_in = 40;
  mh.seed = 34;
  mcmc::MhSampler sampler(*replica, tempered, p, mh);
  const mcmc::ChainResult chain = sampler.run();

  double mean_dev = 0.0;
  for (double d : chain.deviation_samples) mean_dev += d;
  mean_dev /= static_cast<double>(chain.deviation_samples.size());
  std::printf("  mean deviation under tempered posterior: %.2f%% "
              "(prior-predictive was %.2f%%)\n", mean_dev,
              result.final_result.mean_deviation);
  std::printf("  (the tempered chain concentrates on masks that actually "
              "flip predictions — sign/exponent bits of high-fanout "
              "weights)\n");
  return 0;
}
