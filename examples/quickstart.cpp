// Quickstart: the full BDLFI workflow in ~60 lines.
//
//   1. Train a network (the "golden run").
//   2. Wrap it in a BayesianFaultNetwork: Bernoulli bit-flip fault variables
//      attached to every parameter bit.
//   3. Run MCMC chains over fault patterns and read off the distribution of
//      classification error — with mixing diagnostics telling you when the
//      campaign is complete.
//
// Build & run:  ./quickstart
#include <cstdio>
#include <memory>

#include "bayes/fault_network.h"
#include "bayes/targets.h"
#include "data/toy2d.h"
#include "mcmc/runner.h"
#include "nn/builders.h"
#include "train/trainer.h"

using namespace bdlfi;

int main() {
  // 1. Data + golden training run.
  util::Rng data_rng{1};
  data::Dataset all = data::make_two_moons(600, 0.08, data_rng);
  data::Split split = data::split_dataset(all, 0.8, data_rng);

  util::Rng init_rng{2};
  nn::Network net = nn::make_mlp({2, 16, 32, 2}, init_rng);

  train::TrainConfig train_config;
  train_config.epochs = 40;
  train_config.lr = 0.05;
  train_config.seed = 3;
  const auto trained = train::fit(net, split.train, split.test, train_config);
  std::printf("golden run: test accuracy %.1f%%\n",
              100.0 * trained.final_test_accuracy);

  // 2. Bayesian fault model: every bit of every parameter is a Bernoulli
  //    fault variable; p is set from the (uniform) AVF profile at run time.
  bayes::BayesianFaultNetwork bfn(
      net, bayes::TargetSpec::all_parameters(), fault::AvfProfile::uniform(),
      split.test.inputs, split.test.labels);
  std::printf("fault space: %lld bits across %zu tensors\n",
              static_cast<long long>(bfn.space().total_bits()),
              bfn.space().entries().size());

  // 3. MCMC inference of the error distribution at p = 1e-3.
  const double p = 1e-3;
  mcmc::RunnerConfig runner;
  runner.num_chains = 4;
  runner.mh.samples = 150;
  runner.mh.burn_in = 50;
  runner.seed = 4;
  mcmc::TargetFactory prior = [p](bayes::BayesianFaultNetwork& chain_net) {
    return std::make_unique<bayes::PriorTarget>(chain_net, p);
  };
  const mcmc::CampaignResult result = mcmc::run_chains(bfn, prior, p, runner);

  std::printf("\nBDLFI campaign at p = %.0e:\n", p);
  std::printf("  golden error:            %.2f%%\n", bfn.golden_error());
  std::printf("  error under faults:      %.2f%% (q05 %.2f, q95 %.2f)\n",
              result.mean_error, result.q05, result.q95);
  std::printf("  deviation from golden:   %.2f%% of predictions\n",
              result.mean_deviation);
  std::printf("  mean flipped bits/mask:  %.2f\n", result.mean_flips);
  std::printf("  diagnostics:             rhat %.3f, ESS %.0f over %zu "
              "samples\n",
              result.diagnostics.rhat, result.diagnostics.ess,
              result.total_samples);
  std::printf("campaign %s (rhat close to 1 means the chains mixed — the "
              "paper's completeness criterion)\n",
              result.diagnostics.rhat < 1.05 ? "is complete" : "needs more "
                                                               "samples");
  return 0;
}
