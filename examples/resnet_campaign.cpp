// Layer-by-layer fault campaign on ResNet-18 (the paper's Fig. 3 workflow as
// a library consumer would run it): train the network, then inject into each
// layer in turn and rank layers by fault sensitivity.
//
// Also demonstrates checkpointing: the trained golden weights are saved and
// reloaded, mirroring a real pipeline where training and injection are
// separate jobs.
//
// Run: ./resnet_campaign [width] [p]    (defaults 0.125, 3e-3)
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "data/cifar_like.h"
#include "inject/campaign.h"
#include "nn/builders.h"
#include "nn/checkpoint.h"
#include "train/trainer.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  const double width = argc > 1 ? std::atof(argv[1]) : 0.125;
  const double p = argc > 2 ? std::atof(argv[2]) : 3e-3;

  // CIFAR-10 substitute (procedural; see DESIGN.md), scaled for one core.
  data::CifarLikeConfig data_config;
  data_config.samples_per_class = 50;
  data_config.image_size = 16;
  util::Rng data_rng{20};
  data::Dataset all = data::make_cifar_like(data_config, data_rng);
  data::Split split = data::split_dataset(all, 0.8, data_rng);

  nn::ResNetConfig net_config;
  net_config.width_multiplier = width;
  util::Rng init_rng{21};
  nn::Network net = nn::make_resnet18(net_config, init_rng);
  std::printf("ResNet-18 (width %.3g): %lld parameters\n%s\n", width,
              static_cast<long long>(net.num_params()),
              net.summary().c_str());

  train::TrainConfig config;
  config.epochs = 5;
  config.batch_size = 32;
  config.lr = 0.02;
  config.seed = 22;
  config.verbose = true;
  const auto trained = train::fit(net, split.train, split.test, config);
  std::printf("golden test accuracy: %.1f%%\n\n",
              100.0 * trained.final_test_accuracy);

  // Checkpoint round trip: injection jobs load the golden weights from disk.
  const std::string ckpt = "/tmp/bdlfi_resnet_golden.bin";
  if (!nn::save_checkpoint(net, ckpt)) return 1;
  nn::Network loaded = nn::make_resnet18(net_config, init_rng);
  if (!nn::load_checkpoint(loaded, ckpt)) return 1;
  std::printf("golden weights checkpointed to %s and reloaded\n\n",
              ckpt.c_str());

  // Per-layer campaign at fixed p.
  data::Dataset eval = split.test.slice(0, std::min<std::size_t>(
                                               64, split.test.size()));
  mcmc::RunnerConfig runner;
  runner.num_chains = 2;
  runner.mh.samples = 15;
  runner.mh.burn_in = 5;
  runner.seed = 23;
  auto points = inject::run_layer_campaign(loaded, eval.inputs, eval.labels,
                                           fault::AvfProfile::uniform(), p,
                                           runner);

  std::sort(points.begin(), points.end(),
            [](const auto& a, const auto& b) {
              return a.mean_error > b.mean_error;
            });
  std::printf("layers ranked by fault sensitivity at p = %.0e:\n", p);
  for (const auto& pt : points) {
    std::printf("  %-12s (%-5s, depth %2zu, %8lld params): error %6.2f%%  "
                "deviation %6.2f%%\n",
                pt.layer_name.c_str(), pt.layer_kind.c_str(), pt.layer_index,
                static_cast<long long>(pt.layer_params), pt.mean_error,
                pt.mean_deviation);
  }
  std::printf("\nnote the ranking does not follow depth — the paper's Fig. 3 "
              "finding (contradicting depth-based heuristics from prior "
              "random-FI studies).\n");
  return 0;
}
