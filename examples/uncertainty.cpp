// Epistemic vs fault-induced uncertainty, over the input plane.
//
// The paper builds on Gal's Bayesian Deep Learning (its ref [2]), whose
// practical workhorse is MC-Dropout: sampling dropout masks at inference time
// measures how unsure the *model* is. BDLFI uses the same predictive
// machinery to measure how unsure the *hardware* makes the model. This
// example renders both uncertainty fields over a 2-D input grid and
// quantifies their overlap: both concentrate along the decision boundary,
// which is why the paper's boundary finding matters — faults amplify exactly
// the predictions that were fragile to begin with.
//
// Run: ./uncertainty [p] [mc_passes]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bayes/fault_network.h"
#include "data/toy2d.h"
#include "nn/builders.h"
#include "nn/dropout.h"
#include "train/trainer.h"
#include "util/ascii_plot.h"
#include "util/stats.h"

using namespace bdlfi;

int main(int argc, char** argv) {
  const double p = argc > 1 ? std::atof(argv[1]) : 1e-3;
  const std::size_t passes =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 80;

  util::Rng data_rng{50};
  data::Dataset all = data::make_two_moons(600, 0.1, data_rng);
  data::Split split = data::split_dataset(all, 0.8, data_rng);
  util::Rng init{51};
  nn::Network net = nn::make_mlp_dropout({2, 24, 24, 2}, 0.25, init);
  train::TrainConfig config;
  config.epochs = 50;
  config.lr = 0.05;
  config.seed = 52;
  const auto trained = train::fit(net, split.train, split.test, config);
  std::printf("dropout MLP trained: test accuracy %.1f%%\n\n",
              100.0 * trained.final_test_accuracy);

  // Probe grid over the input plane.
  const std::size_t nx = 56, ny = 20;
  tensor::Tensor grid{tensor::Shape{static_cast<std::int64_t>(nx * ny), 2}};
  std::int64_t cell = 0;
  for (std::size_t r = 0; r < ny; ++r) {
    const double y = 1.5 - 2.5 * static_cast<double>(r) / (ny - 1);
    for (std::size_t c = 0; c < nx; ++c, ++cell) {
      const double x = -1.5 + 4.0 * static_cast<double>(c) / (nx - 1);
      grid[cell * 2 + 0] = static_cast<float>(x);
      grid[cell * 2 + 1] = static_cast<float>(y);
    }
  }

  // Epistemic field: MC-Dropout vote entropy per grid point.
  nn::set_mc_dropout(net, true);
  const auto epistemic = nn::mc_dropout_predict(net, grid, passes);
  nn::set_mc_dropout(net, false);

  // Fault field: deviation frequency per grid point under sampled masks.
  // Labels for the BFN are the golden grid predictions (only deviation is
  // used, so ground truth is irrelevant here).
  const auto golden_grid = net.predict(grid);
  bayes::BayesianFaultNetwork bfn(net, bayes::TargetSpec::all_parameters(),
                                  fault::AvfProfile::uniform(), grid,
                                  golden_grid);
  std::vector<double> fault_field(nx * ny, 0.0);
  util::Rng rng{53};
  const std::size_t masks = 250;
  for (std::size_t m = 0; m < masks; ++m) {
    const fault::FaultMask mask = bfn.sample_prior_mask(p, rng);
    const auto dev = bfn.deviation_under_mask(mask);
    for (std::size_t i = 0; i < dev.size(); ++i) fault_field[i] += dev[i];
  }
  for (double& v : fault_field) v /= static_cast<double>(masks);

  std::printf("%s\n",
              util::render_heatmap(epistemic.vote_entropy, ny, nx, 0, 0,
                                   "epistemic uncertainty (MC-dropout vote "
                                   "entropy):")
                  .c_str());
  std::printf("%s\n",
              util::render_heatmap(fault_field, ny, nx, 0, 0,
                                   "fault-induced uncertainty "
                                   "(P(prediction flips), p = " +
                                       std::to_string(p) + "):")
                  .c_str());

  const double rho =
      util::spearman_correlation(epistemic.vote_entropy, fault_field);

  // Top-decile overlap: do the 10% most epistemically-uncertain cells
  // coincide with the 10% most fault-vulnerable ones?
  auto top_decile = [&](const std::vector<double>& v) {
    std::vector<std::size_t> order(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return v[a] > v[b]; });
    order.resize(v.size() / 10);
    std::sort(order.begin(), order.end());
    return order;
  };
  const auto ta = top_decile(epistemic.vote_entropy);
  const auto tb = top_decile(fault_field);
  std::vector<std::size_t> common;
  std::set_intersection(ta.begin(), ta.end(), tb.begin(), tb.end(),
                        std::back_inserter(common));
  const double overlap =
      static_cast<double>(common.size()) / static_cast<double>(ta.size());

  std::printf("Spearman corr(epistemic, fault-induced) over the grid: "
              "%+.3f\n",
              rho);
  std::printf("top-decile overlap: %.0f%% (random baseline: 10%%)\n",
              100.0 * overlap);
  std::printf("both uncertainty fields ridge along the decision boundary — "
              "the paper's boundary effect restated in Gal's BDL "
              "vocabulary.\n");
  return 0;
}
