#!/usr/bin/env bash
# CI job: build with ASan + UBSan (BDLFI_SANITIZE=ON) and run the test suite.
# The resilience layer (signal handlers, checkpoint serialization, chain
# retry/quarantine) is the main consumer: those paths have exactly the
# use-after-free / UB failure modes sanitizers exist to catch.
#
# Usage: scripts/ci_sanitize.sh [build-dir]   (default: build-sanitize)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBDLFI_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# abort_on_error gives CI a crash dump instead of a hung exit; the suite must
# stay leak-clean too.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

# The suite runs once per kernel backend: the scalar reference always, and
# the avx2 table when the CI box supports it (the sanitizers instrument the
# intrinsics paths like any other code). BDLFI_BACKEND is read at startup by
# every test binary.
echo "=== test suite under BDLFI_BACKEND=scalar ==="
BDLFI_BACKEND=scalar ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -j "$(nproc)"

if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
  echo "=== test suite under BDLFI_BACKEND=avx2 ==="
  BDLFI_BACKEND=avx2 ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -j "$(nproc)"
else
  echo "=== avx2 not supported on this host: skipping the avx2 pass ==="
fi

# Targeted ABFT / compute-fault pass: the checksum verification and the
# mid-kernel flip injection are the newest pointer-arithmetic-heavy paths
# (row-window selection from elem_base, in-place row recompute), so they get
# an explicit sanitized run per backend — including the protection-table
# smoke that drives compute faults through the whole random-FI pipeline.
for backend in scalar avx2; do
  if [ "$backend" = avx2 ] && ! grep -q avx2 /proc/cpuinfo 2>/dev/null; then
    continue
  fi
  echo "=== ABFT + compute-fault suite under BDLFI_BACKEND=$backend ==="
  BDLFI_BACKEND="$backend" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R 'abft|tab_protection_smoke|perf_abft_smoke'
done

# Targeted batched multi-mask pass: the fused-panel evaluation (per-variant
# pointer tables into widened activation tensors, shared-im2col scatter,
# in-place panel divergence) is the newest pointer-arithmetic-heavy path, so
# the parity/equivalence suite and the batched bench smoke get an explicit
# sanitized run per backend.
for backend in scalar avx2; do
  if [ "$backend" = avx2 ] && ! grep -q avx2 /proc/cpuinfo 2>/dev/null; then
    continue
  fi
  echo "=== batched multi-mask suite under BDLFI_BACKEND=$backend ==="
  BDLFI_BACKEND="$backend" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R 'MultiMask|perf_mask_eval'
done

# Targeted planned-execution / fusion pass: the execution plan's arena is a
# single flat allocation carved into reused buffer views (offset arithmetic,
# borrowed tensors outliving individual forwards), and eval fusion rewrites
# conv weights in place from folded BN stats — both textbook sanitizer
# territory. The plan suite covers arena sizing/steady-state reuse, planned
# vs legacy parity, and fold correctness; the kernels bench smoke drives the
# fused conv+BN+ReLU race end to end.
for backend in scalar avx2; do
  if [ "$backend" = avx2 ] && ! grep -q avx2 /proc/cpuinfo 2>/dev/null; then
    continue
  fi
  echo "=== planned-execution / fusion suite under BDLFI_BACKEND=$backend ==="
  BDLFI_BACKEND="$backend" ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -R 'PlanTest|perf_kernels_smoke'
done

# Targeted flight-recorder pass: the incremental JSONL reader (per-poll
# fopen/fseek over possibly-torn files), the multi-stream aggregator, the
# dashboard render/export paths, and the bench-history tracker all juggle
# offsets and string slicing — run them sanitized explicitly, including the
# end-to-end dash + bench_track ctest chains.
echo "=== flight-recorder / dashboard suite ==="
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'JsonlTailReader|EventAggregator|FlightRecorder|HistogramQuantiles|BenchHistory|dash_|bench_track_|cli_obs'

# Targeted fleet pass: the multiprocess supervisor is the newest
# signal-and-lifetime-heavy path (fork/waitpid bookkeeping, SIGKILL'd
# children, stale-lock breaking, post-fork thread-pool reinit), exactly the
# territory where use-after-free and leaked-fd bugs hide. Run the fleet unit
# suite, the checkpoint-lock tests, and the end-to-end CLI chain (spec →
# chaos-killed fleet → byte-equal results → dash over the output tree)
# sanitized. ASan makes the forked workers slower, which only widens the
# window the chaos kill needs — the chain's timing gets easier, not tighter.
echo "=== fleet orchestration suite ==="
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'FleetSpec|FleetRunTest|CheckpointDirLock|fleet_'

# Targeted hardening pass: fault-aware fine-tuning XORs live weight tensors
# around the optimizer step (a leaked mask is a silent weight corruption, a
# mis-scoped InjectionSpace is a dangling tensor pointer), and apply_plan
# splices guard layers into a cloned network while remapping ABFT indices —
# structural surgery worth running under ASan/UBSan end to end, plus the
# hardening-loop bench smoke that drives campaign → profile → fine-tune →
# placement → re-assessment in one process.
echo "=== posterior-guided hardening suite ==="
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R 'HardenTest|tab_hardening_loop_'
