// Tensor & Shape invariants.
#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bdlfi::tensor {
namespace {

TEST(Shape, NumelAndAccess) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[2], 4);
}

TEST(Shape, EmptyShapeIsScalarLike) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, ToString) {
  EXPECT_EQ(Shape({5, 7}).to_string(), "[5, 7]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t{Shape{3, 3}};
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full(Shape{4}, 2.5f);
  EXPECT_EQ(t[3], 2.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t[0], -1.0f);
}

TEST(Tensor, ArangeRowMajor) {
  Tensor t = Tensor::arange(Shape{2, 3});
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 2), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, OffsetMatchesRowMajor4d) {
  Tensor t = Tensor::arange(Shape{2, 3, 4, 5});
  EXPECT_EQ(t.at(1, 2, 3, 4), static_cast<float>(1 * 60 + 2 * 20 + 3 * 5 + 4));
}

TEST(Tensor, CopyIsDeep) {
  Tensor a = Tensor::full(Shape{2}, 1.0f);
  Tensor b = a;
  b[0] = 9.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor a = Tensor::arange(Shape{2, 6});
  Tensor b = a.reshaped(Shape{3, 4});
  EXPECT_EQ(b.shape(), Shape({3, 4}));
  EXPECT_EQ(b[7], 7.0f);
}

TEST(Tensor, ReshapeWrongNumelAborts) {
  Tensor a{Shape{2, 3}};
  EXPECT_DEATH((void)a.reshaped(Shape{5}), "numel");
}

TEST(Tensor, RandnMoments) {
  util::Rng rng{1};
  Tensor t = Tensor::randn(Shape{10000}, rng, 1.0f, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  const double mean = sum / 10000.0;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(sq / 10000.0 - mean * mean, 4.0, 0.3);
}

TEST(Tensor, UniformRange) {
  util::Rng rng{2};
  Tensor t = Tensor::uniform(Shape{1000}, rng, -2.0f, 3.0f);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], 3.0f);
  }
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a = Tensor::full(Shape{3}, 1.0f);
  Tensor b = a;
  b[1] = 1.5f;
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(a, b), 0.5f);
}

TEST(Tensor, ScaleInPlace) {
  Tensor a = Tensor::arange(Shape{4});
  a.scale(2.0f);
  EXPECT_EQ(a[3], 6.0f);
}

TEST(Tensor, ToStringTruncates) {
  Tensor a = Tensor::arange(Shape{100});
  const std::string s = a.to_string(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace bdlfi::tensor
