// Edge cases and failure paths across modules: contract violations that must
// abort loudly, degenerate-but-legal configurations, and campaign behaviour
// at the boundaries of the parameter space.
#include <gtest/gtest.h>

#include <memory>

#include "bayes/targets.h"
#include "data/toy2d.h"
#include "fault/models.h"
#include "inject/activation.h"
#include "mcmc/runner.h"
#include "nn/builders.h"
#include "nn/layers.h"
#include "quant/space.h"
#include "train/trainer.h"
#include "util/csv.h"
#include "util/rng.h"

namespace bdlfi {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(EdgeCases, ForwardOnEmptyNetworkAborts) {
  nn::Network net;
  Tensor x{Shape{1, 2}};
  EXPECT_DEATH(net.forward(x), "empty network");
}

TEST(EdgeCases, DenseRejectsWrongInputWidth) {
  nn::Dense dense(3, 2);
  Tensor x{Shape{1, 4}};
  EXPECT_DEATH(dense.forward(x, false), "");
}

TEST(EdgeCases, BackwardWithoutTrainingForwardAborts) {
  util::Rng rng{1};
  nn::Dense dense(2, 2);
  dense.init_he(rng);
  Tensor x{Shape{1, 2}};
  dense.forward(x, /*training=*/false);
  Tensor g{Shape{1, 2}};
  EXPECT_DEATH(dense.backward(g), "without training forward");
}

TEST(EdgeCases, BurstSamplerRejectsDegenerateRates) {
  util::Rng init{2};
  nn::Network net = nn::make_mlp({2, 4, 2}, init);
  fault::InjectionSpace space(net);
  util::Rng rng{3};
  fault::BurstSampler bad_rate(0.0, 4);
  EXPECT_DEATH(bad_rate.sample(space, rng), "event_rate");
  fault::BurstSampler bad_len(0.01, 0);
  EXPECT_DEATH(bad_len.sample(space, rng), "burst_length");
}

TEST(EdgeCases, QuantSpaceOnFloatNetworkAborts) {
  util::Rng rng{4};
  nn::Network net = nn::make_mlp({2, 4, 2}, rng);
  EXPECT_DEATH(quant::QuantInjectionSpace space(net), "no quantized buffers");
}

TEST(EdgeCases, BfnRejectsEmptyEvalSet) {
  util::Rng rng{5};
  nn::Network net = nn::make_mlp({2, 4, 2}, rng);
  Tensor inputs{Shape{0, 2}};
  EXPECT_DEATH(bayes::BayesianFaultNetwork(
                   net, bayes::TargetSpec::all_parameters(),
                   fault::AvfProfile::uniform(), inputs, {}),
               "");
}

TEST(EdgeCases, SingleSampleEvalSetWorks) {
  util::Rng rng{6};
  data::Dataset ds = data::make_blobs(30, 2, 3.0, 0.3, rng);
  nn::Network net = nn::make_mlp({2, 6, 2}, rng);
  train::TrainConfig tc;
  tc.epochs = 5;
  tc.seed = 7;
  train::fit(net, ds, ds, tc);
  bayes::BayesianFaultNetwork bfn(net, bayes::TargetSpec::all_parameters(),
                                  fault::AvfProfile::uniform(),
                                  ds.slice(0, 1).inputs, {ds.labels[0]});
  const auto outcome = bfn.evaluate_mask(fault::FaultMask{});
  // With one sample, error is exactly 0 or 100.
  EXPECT_TRUE(outcome.classification_error == 0.0 ||
              outcome.classification_error == 100.0);
}

TEST(EdgeCases, RunnerWithSingleChainSkipsRhat) {
  util::Rng rng{8};
  data::Dataset ds = data::make_blobs(40, 2, 3.0, 0.3, rng);
  nn::Network net = nn::make_mlp({2, 6, 2}, rng);
  bayes::BayesianFaultNetwork bfn(net, bayes::TargetSpec::all_parameters(),
                                  fault::AvfProfile::uniform(), ds.inputs,
                                  ds.labels);
  mcmc::RunnerConfig config;
  config.num_chains = 1;
  config.mh.samples = 20;
  config.seed = 9;
  mcmc::TargetFactory factory = [](bayes::BayesianFaultNetwork& n) {
    return std::make_unique<bayes::PriorTarget>(n, 1e-3);
  };
  const auto result = mcmc::run_chains(bfn, factory, 1e-3, config);
  EXPECT_DOUBLE_EQ(result.diagnostics.rhat, 1.0);  // single chain: undefined→1
  EXPECT_EQ(result.total_samples, 20u);
}

TEST(EdgeCases, CompletenessNonConvergenceReported) {
  util::Rng rng{10};
  data::Dataset ds = data::make_blobs(40, 2, 3.0, 0.3, rng);
  nn::Network net = nn::make_mlp({2, 6, 2}, rng);
  bayes::BayesianFaultNetwork bfn(net, bayes::TargetSpec::all_parameters(),
                                  fault::AvfProfile::uniform(), ds.inputs,
                                  ds.labels);
  mcmc::RunnerConfig config;
  config.num_chains = 2;
  config.mh.samples = 10;
  config.seed = 11;
  mcmc::TargetFactory factory = [](bayes::BayesianFaultNetwork& n) {
    return std::make_unique<bayes::PriorTarget>(n, 1e-2);
  };
  mcmc::CompletenessCriterion impossible;
  impossible.rhat_threshold = 0.0;  // rhat >= 1 even for agreeing chains
  impossible.mean_rel_tol = 1e-12;
  impossible.max_rounds = 2;
  const auto result =
      mcmc::run_until_complete(bfn, factory, 1e-2, config, impossible);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.rounds, 2u);
  EXPECT_EQ(result.trajectory.size(), 2u);
}

TEST(EdgeCases, ActivationCampaignSingleInjection) {
  util::Rng rng{12};
  data::Dataset ds = data::make_blobs(20, 2, 3.0, 0.3, rng);
  nn::Network net = nn::make_mlp({2, 4, 2}, rng);
  inject::ActivationCampaignConfig config;
  config.injections = 1;
  config.seed = 13;
  const auto points =
      inject::run_activation_campaign(net, ds.inputs, ds.labels, config);
  EXPECT_EQ(points.size(), 1u + net.num_layers());
}

TEST(EdgeCases, TableRowBuilderTypesAndCount) {
  util::Table table({"a", "b", "c", "d"});
  table.row().col(std::string("x")).col(1.5).col(std::size_t{7}).col(-2);
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.num_columns(), 4u);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("x,1.5,7,-2"), std::string::npos);
}

TEST(EdgeCases, MaskToStringTruncates) {
  std::vector<std::int64_t> bits;
  for (int i = 0; i < 20; ++i) bits.push_back(i * 33);
  fault::FaultMask mask{std::move(bits)};
  const std::string s = mask.to_string(4);
  EXPECT_NE(s.find("20 flips"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(EdgeCases, GibbsRejectsDegenerateP) {
  util::Rng rng{14};
  data::Dataset ds = data::make_blobs(20, 2, 3.0, 0.3, rng);
  nn::Network net = nn::make_mlp({2, 4, 2}, rng);
  bayes::BayesianFaultNetwork bfn(net, bayes::TargetSpec::all_parameters(),
                                  fault::AvfProfile::uniform(), ds.inputs,
                                  ds.labels);
  bayes::PriorTarget target(bfn, 1.0);
  mcmc::GibbsConfig config;
  EXPECT_DEATH(mcmc::GibbsSampler(bfn, target, 1.0, config), "p >");
}

TEST(EdgeCases, TrainerHandlesBatchLargerThanDataset) {
  util::Rng rng{15};
  data::Dataset ds = data::make_blobs(10, 2, 3.0, 0.3, rng);
  nn::Network net = nn::make_mlp({2, 4, 2}, rng);
  train::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 64;  // > dataset size: one batch per epoch
  config.seed = 16;
  const auto result = train::fit(net, ds, ds, config);
  EXPECT_EQ(result.history.size(), 2u);
}

}  // namespace
}  // namespace bdlfi
