// ABFT checksummed GEMM: zero false positives on clean kernels, single-bit
// compute-fault detection on every backend, recovery back to the golden
// output, bit-exact transparency of a checked-but-clean network forward, and
// the kCompute injection-space / ComputeFaultSampler plumbing.
#include "tensor/abft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "bayes/fault_network.h"
#include "data/toy2d.h"
#include "fault/models.h"
#include "nn/builders.h"
#include "nn/network.h"
#include "tensor/backend/backend.h"
#include "tensor/ops.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::tensor::abft {
namespace {

std::vector<float> random_matrix(std::int64_t numel, util::Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(numel));
  for (auto& v : m) v = static_cast<float>(rng.normal());
  return m;
}

/// Runs one checked GEMM over fresh random operands and returns the stats.
void run_checked(bool ta, bool tb, std::int64_t m, std::int64_t n,
                 std::int64_t k, Mode mode, const FlipList* flips,
                 Stats* stats, std::vector<float>* out, util::Rng& rng) {
  const std::vector<float> a = random_matrix(m * k, rng);
  const std::vector<float> b = random_matrix(k * n, rng);
  out->assign(static_cast<std::size_t>(m * n), 0.0f);
  OpContext ctx;
  ctx.config.mode = mode;
  ctx.stats = stats;
  ctx.flips = flips;
  const std::int64_t lda = ta ? m : k;
  const std::int64_t ldb = tb ? k : n;
  gemm_checked(ta, tb, m, n, k, 1.0f, a.data(), lda, b.data(), ldb,
               out->data(), n, ctx, /*elem_base=*/0);
}

TEST(AbftModes, ParseAndName) {
  Mode mode = Mode::kCorrect;
  EXPECT_TRUE(parse_mode("off", &mode));
  EXPECT_EQ(mode, Mode::kOff);
  EXPECT_TRUE(parse_mode("detect", &mode));
  EXPECT_EQ(mode, Mode::kDetect);
  EXPECT_TRUE(parse_mode("correct", &mode));
  EXPECT_EQ(mode, Mode::kCorrect);
  EXPECT_FALSE(parse_mode("recover", &mode));
  EXPECT_STREQ(mode_name(Mode::kDetect), "detect");
}

TEST(AbftChecksum, CleanGemmNeverFlagged) {
  // The tolerance is a worst-case rounding bound: no clean GEMM of any shape
  // or transpose combination may trip it.
  util::Rng rng{7};
  Stats stats;
  std::vector<float> c;
  const std::int64_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 4}, {17, 9, 33}, {32, 64, 128}, {5, 1, 257}};
  for (const auto& s : shapes) {
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        run_checked(ta, tb, s[0], s[1], s[2], Mode::kDetect, nullptr, &stats,
                    &c, rng);
      }
    }
  }
  EXPECT_EQ(stats.detected_rows.load(), 0u);
  EXPECT_EQ(stats.corrected_rows.load(), 0u);
  EXPECT_GT(stats.checks.load(), 0u);
  EXPECT_GT(stats.rows_checked.load(), 0u);
}

TEST(AbftChecksum, CleanGemmNeverFlaggedAvx2) {
  if (!backend::avx2_supported()) GTEST_SKIP() << "no AVX2 on this CPU";
  ASSERT_TRUE(backend::set_active("avx2"));
  util::Rng rng{11};
  Stats stats;
  std::vector<float> c;
  run_checked(false, false, 32, 48, 96, Mode::kDetect, nullptr, &stats, &c,
              rng);
  run_checked(false, true, 24, 16, 64, Mode::kDetect, nullptr, &stats, &c,
              rng);
  ASSERT_TRUE(backend::set_active("scalar"));
  EXPECT_EQ(stats.detected_rows.load(), 0u);
}

TEST(AbftChecksum, SingleHighBitFlipDetected) {
  // An exponent-bit flip of a nonzero element changes the row sum far beyond
  // any rounding slack — it must be flagged on every backend.
  for (const char* name : {"scalar", "avx2"}) {
    if (std::strcmp(name, "avx2") == 0 && !backend::avx2_supported()) continue;
    ASSERT_TRUE(backend::set_active(name));
    util::Rng rng{13};
    Stats stats;
    std::vector<float> c;
    const FlipList flips = {{7, 30}};  // element 7, exponent bit 30
    run_checked(false, false, 8, 8, 16, Mode::kDetect, &flips, &stats, &c,
                rng);
    EXPECT_EQ(stats.detected_rows.load(), 1u) << "backend " << name;
    EXPECT_EQ(stats.faults_injected.load(), 1u) << "backend " << name;
    EXPECT_EQ(stats.corrected_rows.load(), 0u) << "backend " << name;
  }
  ASSERT_TRUE(backend::set_active("scalar"));
}

TEST(AbftChecksum, DetectLeavesCorruptionInPlace) {
  // kDetect is a DUE: the row is flagged but the corrupted value stays.
  util::Rng clean_rng{17}, faulty_rng{17};
  Stats stats;
  std::vector<float> golden, faulty;
  run_checked(false, false, 4, 6, 8, Mode::kOff, nullptr, nullptr, &golden,
              clean_rng);
  const FlipList flips = {{2, 30}};
  run_checked(false, false, 4, 6, 8, Mode::kDetect, &flips, &stats, &faulty,
              faulty_rng);
  EXPECT_EQ(stats.detected_rows.load(), 1u);
  EXPECT_NE(faulty[2], golden[2]);
}

TEST(AbftChecksum, RecoveryRestoresGoldenBitExact) {
  // kCorrect recomputes the flagged row from the still-clean operands; on the
  // scalar backend the recomputed row is bit-identical to the fault-free run
  // (row-range recomputation uses the same serial kernel per row).
  ASSERT_TRUE(backend::set_active("scalar"));
  util::Rng clean_rng{19}, faulty_rng{19};
  Stats stats;
  std::vector<float> golden, repaired;
  run_checked(false, false, 6, 10, 12, Mode::kOff, nullptr, nullptr, &golden,
              clean_rng);
  const FlipList flips = {{13, 30}, {41, 25}};
  run_checked(false, false, 6, 10, 12, Mode::kCorrect, &flips, &stats,
              &repaired, faulty_rng);
  EXPECT_EQ(stats.corrected_rows.load(), 2u);
  EXPECT_EQ(stats.detected_rows.load(), 0u);
  ASSERT_EQ(repaired.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(repaired[i], golden[i]) << "element " << i;
  }
}

TEST(AbftChecksum, RecoveryWithinToleranceOnAvx2) {
  // AVX2 row-range recomputation may round differently from the full-matrix
  // pass (different cleanup tails), so recovery there asserts closeness, not
  // bit-exactness.
  if (!backend::avx2_supported()) GTEST_SKIP() << "no AVX2 on this CPU";
  ASSERT_TRUE(backend::set_active("avx2"));
  util::Rng clean_rng{23}, faulty_rng{23};
  Stats stats;
  std::vector<float> golden, repaired;
  run_checked(false, false, 8, 16, 32, Mode::kOff, nullptr, nullptr, &golden,
              clean_rng);
  const FlipList flips = {{20, 30}};
  run_checked(false, false, 8, 16, 32, Mode::kCorrect, &flips, &stats,
              &repaired, faulty_rng);
  ASSERT_TRUE(backend::set_active("scalar"));
  EXPECT_EQ(stats.corrected_rows.load(), 1u);
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_NEAR(repaired[i], golden[i], 1e-4) << "element " << i;
  }
}

TEST(AbftChecksum, NonFiniteRowAlwaysFails) {
  // A NaN-producing flip poisons the checksum comparison; the check must
  // treat the row as corrupted rather than letting NaN compare false.
  util::Rng rng{29};
  Stats stats;
  std::vector<float> c;
  // Bit pattern tricks aside: flipping bit 30 of a tiny value can produce
  // inf; force the issue with several high-bit flips in one row.
  const FlipList flips = {{0, 30}, {1, 30}, {2, 30}};
  run_checked(false, false, 2, 4, 4, Mode::kDetect, &flips, &stats, &c, rng);
  EXPECT_GE(stats.detected_rows.load(), 1u);
}

// --- Network-level transparency and plumbing -------------------------------

class AbftNetworkTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng{1};
    data_ = new data::Dataset(data::make_two_moons(240, 0.08, rng));
    util::Rng init{2};
    net_ = new nn::Network(nn::make_mlp({2, 16, 32, 2}, init));
    train::TrainConfig config;
    config.epochs = 25;
    config.lr = 0.05;
    config.seed = 3;
    train::fit(*net_, *data_, *data_, config);
  }
  static void TearDownTestSuite() {
    delete net_;
    delete data_;
  }
  static nn::Network* net_;
  static data::Dataset* data_;
};

nn::Network* AbftNetworkTest::net_ = nullptr;
data::Dataset* AbftNetworkTest::data_ = nullptr;

TEST_F(AbftNetworkTest, CheckedForwardIsBitExactOnCleanNetwork) {
  // Turning checking on must not perturb a fault-free forward: detect mode
  // only reads the output, and no clean row may be flagged (a false positive
  // under kCorrect would trigger a recompute and could change rounding).
  const Tensor plain = net_->forward(data_->inputs, false);
  for (const Mode mode : {Mode::kDetect, Mode::kCorrect}) {
    nn::Network checked = net_->clone();
    checked.set_abft(Config{mode, 4.0});
    const Tensor out = checked.forward(data_->inputs, false);
    EXPECT_EQ(Tensor::max_abs_diff(plain, out), 0.0f)
        << "mode " << mode_name(mode);
    EXPECT_EQ(checked.abft_stats().detected_rows.load(), 0u);
    EXPECT_EQ(checked.abft_stats().corrected_rows.load(), 0u);
    EXPECT_GT(checked.abft_stats().checks.load(), 0u);
  }
}

TEST_F(AbftNetworkTest, CloneCopiesConfigNotStats) {
  nn::Network checked = net_->clone();
  checked.set_abft(Config{Mode::kDetect, 4.0});
  (void)checked.forward(data_->inputs, false);
  ASSERT_GT(checked.abft_stats().checks.load(), 0u);
  nn::Network copy = checked.clone();
  EXPECT_EQ(copy.abft().mode, Mode::kDetect);
  EXPECT_EQ(copy.abft_stats().checks.load(), 0u);
}

TEST_F(AbftNetworkTest, ComputeSpaceEnumeratesGemmLayers) {
  bayes::BayesianFaultNetwork bfn(
      *net_, bayes::TargetSpec::compute_only(), fault::AvfProfile::uniform(),
      data_->inputs, data_->labels);
  ASSERT_GT(bfn.space().entries().size(), 0u);
  std::int64_t total = 0;
  for (const auto& e : bfn.space().entries()) {
    EXPECT_EQ(e.site, fault::InjectionSpace::SiteKind::kCompute);
    EXPECT_NE(e.name.find(".mac"), std::string::npos) << e.name;
    EXPECT_GE(e.layer, 0);
    total += e.numel;
  }
  EXPECT_EQ(total, bfn.space().total_elements());
  // An all-dense MLP exposes one .mac site per dense layer, each sized by the
  // eval batch: batch * layer_out elements.
  const auto batch = data_->inputs.shape()[0];
  EXPECT_EQ(bfn.space().total_elements(), batch * (16 + 32 + 2));
}

TEST_F(AbftNetworkTest, ComputeFaultSamplerDrawsOnlyComputeBits) {
  bayes::BayesianFaultNetwork bfn(
      *net_, bayes::TargetSpec::compute_only(), fault::AvfProfile::uniform(),
      data_->inputs, data_->labels);
  const fault::ComputeFaultSampler sampler(2e-4);
  util::Rng rng{5};
  std::size_t drew = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const fault::FaultMask mask = sampler.sample(bfn.space(), rng);
    for (const std::int64_t bit : mask.bits()) {
      ASSERT_GE(bit, 0);
      ASSERT_LT(bit, bfn.space().total_bits());
      ++drew;
    }
  }
  EXPECT_GT(drew, 0u);
}

TEST_F(AbftNetworkTest, OutcomeTaxonomyUnderComputeFaults) {
  // Unprotected: compute faults are either masked or SDC — never detected
  // (no checksum, and an exponent flip on an activation rarely reaches NaN
  // through the remaining layers... but NaN logits DO count as detected, so
  // only assert that ABFT adds detection on top).
  bayes::BayesianFaultNetwork plain(
      *net_, bayes::TargetSpec::compute_only(), fault::AvfProfile::uniform(),
      data_->inputs, data_->labels);
  nn::Network protected_net = net_->clone();
  protected_net.set_abft(Config{Mode::kDetect, 4.0});
  bayes::BayesianFaultNetwork checked(
      protected_net, bayes::TargetSpec::compute_only(),
      fault::AvfProfile::uniform(), data_->inputs, data_->labels);

  const fault::ComputeFaultSampler sampler(5e-5);
  util::Rng rng{31};
  std::size_t plain_detected = 0, checked_detected = 0, injected = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const fault::FaultMask mask = sampler.sample(plain.space(), rng);
    if (mask.bits().empty()) continue;
    ++injected;
    const auto base = plain.evaluate_mask(mask);
    const auto prot = checked.evaluate_mask(mask);
    EXPECT_GT(prot.abft_faults_injected, 0u);
    if (base.outcome == bayes::FaultOutcome::kDetected) ++plain_detected;
    if (prot.outcome == bayes::FaultOutcome::kDetected) ++checked_detected;
  }
  ASSERT_GT(injected, 0u);
  // The checksum sees every surviving high-bit compute fault; the unchecked
  // deployment only "detects" the rare NaN-logits case.
  EXPECT_GT(checked_detected, plain_detected);
}

TEST_F(AbftNetworkTest, RecoveryCorrectsComputeFaults) {
  nn::Network protected_net = net_->clone();
  protected_net.set_abft(Config{Mode::kCorrect, 4.0});
  bayes::BayesianFaultNetwork recovering(
      protected_net, bayes::TargetSpec::compute_only(),
      fault::AvfProfile::uniform(), data_->inputs, data_->labels);
  const fault::ComputeFaultSampler sampler(5e-5);
  util::Rng rng{37};
  std::size_t corrected = 0, injected = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const fault::FaultMask mask = sampler.sample(recovering.space(), rng);
    if (mask.bits().empty()) continue;
    ++injected;
    const auto outcome = recovering.evaluate_mask(mask);
    if (outcome.outcome == bayes::FaultOutcome::kCorrected) {
      ++corrected;
      // Scalar-backend recovery recomputes the row bit-exactly, so a fully
      // corrected evaluation matches golden with zero deviation.
      EXPECT_EQ(outcome.deviation, 0.0);
    }
  }
  ASSERT_GT(injected, 0u);
  EXPECT_GT(corrected, 0u);
}

TEST_F(AbftNetworkTest, ParameterFaultsInvisibleToAbft) {
  // ABFT checks the multiply, not the operands: a corrupted weight produces a
  // *consistent* (wrong) product, so checksum coverage of parameter faults
  // must be ~0 — that contrast is the point of the protection table.
  nn::Network protected_net = net_->clone();
  protected_net.set_abft(Config{Mode::kDetect, 4.0});
  bayes::BayesianFaultNetwork checked(
      protected_net, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), data_->inputs, data_->labels);
  util::Rng rng{41};
  for (int trial = 0; trial < 30; ++trial) {
    const fault::FaultMask mask = checked.sample_prior_mask(1e-4, rng);
    const auto outcome = checked.evaluate_mask(mask);
    EXPECT_EQ(outcome.abft_detected_rows, 0u);
    EXPECT_EQ(outcome.abft_corrected_rows, 0u);
  }
}

}  // namespace
}  // namespace bdlfi::tensor::abft
