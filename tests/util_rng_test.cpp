// RNG: determinism, distribution sanity, stream independence.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace bdlfi::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a{7};
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{5};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{17};
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng{19};
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng rng{23};
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches) {
  // E[failures before success] = (1-p)/p.
  Rng rng{29};
  const double p = 0.05;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.3);
}

TEST(Rng, GeometricWithPOneIsZero) {
  Rng rng{31};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, SplitStreamsDecorrelated) {
  Rng parent{37};
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitmixIsConstexprFriendly) {
  std::uint64_t s = 1;
  const auto v1 = splitmix64(s);
  const auto v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
  EXPECT_EQ(s, 1 + 0x9e3779b97f4a7c15ULL + 0x9e3779b97f4a7c15ULL);
}

}  // namespace
}  // namespace bdlfi::util
