// RNG: determinism, distribution sanity, stream independence.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <set>
#include <string>
#include <vector>

namespace bdlfi::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a{7};
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{5};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{17};
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng{19};
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng rng{23};
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches) {
  // E[failures before success] = (1-p)/p.
  Rng rng{29};
  const double p = 0.05;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.3);
}

TEST(Rng, GeometricWithPOneIsZero) {
  Rng rng{31};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, SplitStreamsDecorrelated) {
  Rng parent{37};
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, StateRoundtripMidStream) {
  Rng a{101};
  for (int i = 0; i < 1000; ++i) a();  // arbitrary mid-stream position
  const auto words = a.state_save();
  ASSERT_EQ(words.size(), Rng::kStateWords);
  Rng b{0};
  ASSERT_TRUE(b.state_load(words));
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StateRoundtripPreservesCachedNormal) {
  // normal() caches the second Box-Muller variate; a save between the pair
  // must carry it so the restored stream emits the identical sequence.
  Rng a{103};
  a.normal();  // leaves one cached variate
  Rng b{0};
  ASSERT_TRUE(b.state_load(a.state_save()));
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.normal(), b.normal());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StateRoundtripMixedDraws) {
  Rng a{107};
  for (int i = 0; i < 50; ++i) {
    a.uniform();
    a.normal();
    a.below(17);
    a.bernoulli(0.3);
  }
  Rng b{0};
  ASSERT_TRUE(b.state_load(a.state_save()));
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
    EXPECT_EQ(a.below(23), b.below(23));
    EXPECT_EQ(a.geometric(0.05), b.geometric(0.05));
  }
}

TEST(Rng, StateStringRoundtrip) {
  Rng a{109};
  a.normal();
  for (int i = 0; i < 77; ++i) a();
  const std::string text = a.state_to_string();
  Rng b{0};
  ASSERT_TRUE(b.state_from_string(text));
  EXPECT_EQ(a.state_save(), b.state_save());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StateLoadRejectsWrongSize) {
  Rng rng{1};
  EXPECT_FALSE(rng.state_load({}));
  EXPECT_FALSE(rng.state_load({1, 2, 3}));
  EXPECT_FALSE(rng.state_load({1, 2, 3, 4, 5, 6, 7}));
  // The cached-normal validity flag must be 0 or 1.
  EXPECT_FALSE(rng.state_load({1, 2, 3, 4, 5, 2}));
}

TEST(Rng, StateFromStringRejectsMalformed) {
  Rng rng{1};
  EXPECT_FALSE(rng.state_from_string(""));
  EXPECT_FALSE(rng.state_from_string("deadbeef"));  // too few words
  EXPECT_FALSE(rng.state_from_string("xyz"));
  const std::string good = Rng{5}.state_to_string();
  EXPECT_FALSE(rng.state_from_string(good + ":"));  // trailing separator
  EXPECT_FALSE(rng.state_from_string(good + ":0000000000000000"));
  std::string upper = good;
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  if (upper != good) EXPECT_FALSE(rng.state_from_string(upper));
  // A failed parse must leave the engine usable (state unchanged).
  Rng a{11}, b{11};
  EXPECT_FALSE(a.state_from_string("not-a-state"));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitmixIsConstexprFriendly) {
  std::uint64_t s = 1;
  const auto v1 = splitmix64(s);
  const auto v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
  EXPECT_EQ(s, 1 + 0x9e3779b97f4a7c15ULL + 0x9e3779b97f4a7c15ULL);
}

}  // namespace
}  // namespace bdlfi::util
