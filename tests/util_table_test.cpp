// Table/CSV rendering and the ASCII plotting used by bench output.
#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/ascii_plot.h"

namespace bdlfi::util {
namespace {

TEST(Table, TextRenderingAligned) {
  Table t({"p", "error"});
  t.row().col(1e-3).col(12.5);
  t.row().col(std::string("x")).col(std::string("yy"));
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| p "), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("0.001"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.row().col(std::string("a,b")).col(std::string("say \"hi\""));
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundtripToFile) {
  Table t({"a", "b"});
  t.row().col(std::size_t{1}).col(2.5);
  const std::string path = "/tmp/bdlfi_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2.5");
  std::remove(path.c_str());
}

TEST(Table, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(FormatDouble, UsesG6) {
  EXPECT_EQ(format_double(0.001), "0.001");
  EXPECT_EQ(format_double(123456789.0), "1.23457e+08");
}

TEST(AsciiPlot, RendersSeriesAndLabels) {
  Series s;
  s.name = "mean error";
  s.glyph = '*';
  for (int i = 0; i < 20; ++i) {
    s.xs.push_back(i);
    s.ys.push_back(i * i);
  }
  PlotOptions opt;
  opt.title = "test plot";
  opt.x_label = "x";
  opt.y_label = "y";
  const std::string art = render_plot({s}, opt);
  EXPECT_NE(art.find("test plot"), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find("mean error"), std::string::npos);
}

TEST(AsciiPlot, LogAxesHandlePositiveData) {
  Series s;
  s.name = "sweep";
  for (double p = 1e-5; p <= 1e-1; p *= 10) {
    s.xs.push_back(p);
    s.ys.push_back(1.0 / p);
  }
  PlotOptions opt;
  opt.log_x = true;
  opt.log_y = true;
  const std::string art = render_plot({s}, opt);
  EXPECT_FALSE(art.empty());
}

TEST(AsciiPlot, ConstantSeriesDoesNotDivideByZero) {
  Series s;
  s.name = "flat";
  s.xs = {1.0, 2.0, 3.0};
  s.ys = {5.0, 5.0, 5.0};
  const std::string art = render_plot({s}, PlotOptions{});
  EXPECT_FALSE(art.empty());
}

TEST(Heatmap, RendersWithAutoScale) {
  std::vector<double> grid(6 * 4);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = static_cast<double>(i);
  }
  const std::string art = render_heatmap(grid, 4, 6, 0, 0, "map");
  EXPECT_NE(art.find("map"), std::string::npos);
  EXPECT_NE(art.find('@'), std::string::npos);  // max cell uses top glyph
}

TEST(Heatmap, UniformGridIsHandled) {
  std::vector<double> grid(12, 3.0);
  const std::string art = render_heatmap(grid, 3, 4);
  EXPECT_FALSE(art.empty());
}

}  // namespace
}  // namespace bdlfi::util
