// Dropout & MC-Dropout: scaling invariants, train/eval/MC-mode semantics,
// backward masking, vote-entropy uncertainty.
#include "nn/dropout.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/toy2d.h"
#include "nn/builders.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::nn {
namespace {

TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop(0.5);
  Tensor x = Tensor::arange(Shape{4, 4});
  Tensor y = drop.forward(x, /*training=*/false);
  EXPECT_EQ(Tensor::max_abs_diff(x, y), 0.0f);
}

TEST(Dropout, ZeroRateIsIdentityEvenInTraining) {
  Dropout drop(0.0);
  Tensor x = Tensor::arange(Shape{2, 8});
  Tensor y = drop.forward(x, true);
  EXPECT_EQ(Tensor::max_abs_diff(x, y), 0.0f);
}

TEST(Dropout, TrainingDropsAndRescales) {
  Dropout drop(0.5, /*seed=*/7);
  Tensor x = Tensor::full(Shape{10000}, 1.0f);
  Tensor y = drop.forward(x, true);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // inverted-dropout scale 1/(1-0.5)
    }
    sum += y[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);  // expectation preserved
}

TEST(Dropout, BackwardMasksMatchForward) {
  Dropout drop(0.3, 11);
  Tensor x = Tensor::full(Shape{100}, 3.0f);
  Tensor y = drop.forward(x, true);
  Tensor grad = drop.backward(Tensor::full(Shape{100}, 1.0f));
  for (std::int64_t i = 0; i < 100; ++i) {
    if (y[i] == 0.0f) {
      EXPECT_EQ(grad[i], 0.0f);
    } else {
      EXPECT_NEAR(grad[i], 1.0f / 0.7f, 1e-5f);
    }
  }
}

TEST(Dropout, McModeSamplesDuringEval) {
  Dropout drop(0.5, 13);
  drop.set_mc_mode(true);
  Tensor x = Tensor::full(Shape{1000}, 1.0f);
  Tensor a = drop.forward(x, false);
  Tensor b = drop.forward(x, false);
  EXPECT_NE(Tensor::max_abs_diff(a, b), 0.0f);  // different stochastic masks
}

TEST(Dropout, CloneCarriesConfig) {
  Dropout drop(0.25, 17);
  drop.set_mc_mode(true);
  auto copy = drop.clone();
  auto* dc = static_cast<Dropout*>(copy.get());
  EXPECT_EQ(dc->rate(), 0.25);
  EXPECT_TRUE(dc->mc_mode());
}

TEST(Dropout, InvalidRateAborts) {
  EXPECT_DEATH(Dropout(1.0), "rate");
  EXPECT_DEATH(Dropout(-0.1), "rate");
}

TEST(McDropout, SetModeFindsAllLayers) {
  util::Rng rng{1};
  Network net = make_mlp_dropout({2, 16, 16, 2}, 0.2, rng);
  EXPECT_EQ(set_mc_dropout(net, true), 2u);
  EXPECT_EQ(set_mc_dropout(net, false), 2u);
  Network plain = make_mlp({2, 8, 2}, rng);
  EXPECT_EQ(set_mc_dropout(plain, true), 0u);
}

TEST(McDropout, EntropyZeroWithoutMcMode) {
  util::Rng rng{2};
  Network net = make_mlp_dropout({2, 8, 2}, 0.3, rng);
  Tensor x{Shape{5, 2}};
  const auto result = mc_dropout_predict(net, x, 10);
  // MC mode off → deterministic forwards → all passes agree.
  for (double h : result.vote_entropy) EXPECT_EQ(h, 0.0);
}

TEST(McDropout, UncertaintyHigherNearBoundary) {
  util::Rng data_rng{3};
  data::Dataset ds = data::make_two_moons(400, 0.1, data_rng);
  util::Rng init{4};
  Network net = make_mlp_dropout({2, 24, 24, 2}, 0.2, init);
  train::TrainConfig config;
  config.epochs = 40;
  config.lr = 0.05;
  config.seed = 5;
  train::fit(net, ds, ds, config);

  set_mc_dropout(net, true);
  // Probe one deep-in-class point and one on the class boundary.
  Tensor probes{Shape{2, 2}, {/*deep in class 0*/ -0.8f, 0.9f,
                              /*between moons*/ 0.5f, 0.25f}};
  const auto result = mc_dropout_predict(net, probes, 60);
  EXPECT_LE(result.vote_entropy[0], result.vote_entropy[1]);
}

TEST(McDropout, TrainingWithDropoutStillLearns) {
  util::Rng data_rng{6};
  data::Dataset ds = data::make_blobs(300, 3, 3.0, 0.3, data_rng);
  util::Rng init{7};
  Network net = make_mlp_dropout({2, 24, 3}, 0.2, init);
  train::TrainConfig config;
  config.epochs = 40;
  config.lr = 0.05;
  config.seed = 8;
  const auto result = train::fit(net, ds, ds, config);
  EXPECT_GT(result.final_test_accuracy, 0.9);
}

TEST(McDropout, MajorityVoteMatchesSinglePassWhenDeterministic) {
  util::Rng rng{9};
  Network net = make_mlp({2, 8, 3}, rng);
  Tensor x = Tensor::randn(Shape{7, 2}, rng);
  const auto mc = mc_dropout_predict(net, x, 5);
  EXPECT_EQ(mc.predictions, net.predict(x));
}

}  // namespace
}  // namespace bdlfi::nn
